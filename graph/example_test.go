package graph_test

import (
	"fmt"

	"thriftylp/graph"
)

func ExampleBuildUndirected() {
	g, err := graph.BuildUndirected([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 2}, // duplicate collapses
	}, graph.WithDedup())
	if err != nil {
		panic(err)
	}
	fmt.Println(g)
	fmt.Println("degree of 1:", g.Degree(1))
	// Output:
	// graph{|V|=3, |E|=2}
	// degree of 1: 2
}

func ExampleGraph_Neighbors() {
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 0, V: 2}, {U: 0, V: 1}},
		graph.WithSortedAdjacency())
	fmt.Println(g.Neighbors(0))
	// Output: [1 2]
}

func ExampleGraph_MaxDegreeVertex() {
	// The vertex Thrifty's Zero Planting selects.
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 3, V: 0}, {U: 3, V: 1}, {U: 3, V: 2}})
	fmt.Println(g.MaxDegreeVertex())
	// Output: 3
}

func ExampleRemoveIsolated() {
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 1, V: 3}}, graph.WithNumVertices(5))
	compact, origIDs := graph.RemoveIsolated(g)
	fmt.Println(compact.NumVertices(), origIDs)
	// Output: 2 [1 3]
}

func ExampleInducedSubgraph() {
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	sub, orig, _ := graph.InducedSubgraph(g, []uint32{1, 2, 3})
	fmt.Println(sub.NumVertices(), sub.NumEdges(), orig)
	// Output: 3 2 [1 2 3]
}

func ExampleRelabelByDegree() {
	// Hub-first renumbering: vertex 2 (degree 3) becomes vertex 0.
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 2, V: 0}, {U: 2, V: 1}, {U: 2, V: 3}})
	ng, perm, _ := graph.RelabelByDegree(g)
	fmt.Println(ng.MaxDegreeVertex(), perm[2])
	// Output: 0 0
}
