package gen

import (
	"testing"
	"testing/quick"
)

func TestSBMExactComponentCensus(t *testing.T) {
	g, err := SBM(SBMConfig{Blocks: 17, BlockSize: 20, IntraDegree: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 340 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// With no inter-block edges the census is exactly Blocks: check no
	// edge crosses a block.
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if int(u)/20 != v/20 {
				t.Fatalf("edge %d-%d crosses blocks", v, u)
			}
		}
	}
	// Each block is connected (ring backbone): every vertex has degree >= 2.
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) < 2 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(uint32(v)))
		}
	}
}

func TestSBMBridgedIsOneComponent(t *testing.T) {
	g, err := SBM(SBMConfig{Blocks: 5, BlockSize: 30, IntraDegree: 2, InterEdges: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Reachability check via simple BFS from 0 must cover everything.
	seen := make([]bool, g.NumVertices())
	queue := []uint32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	if count != g.NumVertices() {
		t.Fatalf("bridged SBM has %d reachable of %d", count, g.NumVertices())
	}
}

func TestSBMValidation(t *testing.T) {
	if _, err := SBM(SBMConfig{Blocks: 0, BlockSize: 5}); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if _, err := SBM(SBMConfig{Blocks: 2, BlockSize: 2, IntraDegree: -1}); err == nil {
		t.Fatal("negative degree accepted")
	}
}

// TestQuickSBMCensus: for arbitrary small configurations without bridges,
// the component count equals the block count.
func TestQuickSBMCensus(t *testing.T) {
	f := func(blocks, size, deg uint8) bool {
		b := int(blocks%8) + 1
		s := int(size%16) + 2
		g, err := SBM(SBMConfig{Blocks: b, BlockSize: s, IntraDegree: int(deg % 4), Seed: uint64(blocks)})
		if err != nil {
			return false
		}
		// Count components with a scan-based union via BFS.
		seen := make([]bool, g.NumVertices())
		comps := 0
		for v := 0; v < g.NumVertices(); v++ {
			if seen[v] {
				continue
			}
			comps++
			stack := []uint32{uint32(v)}
			seen[v] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range g.Neighbors(x) {
					if !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
		}
		return comps == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
