package padded_test

import (
	"testing"

	"thriftylp/internal/lint/linttest"
	"thriftylp/internal/lint/padded"
)

func TestPadded(t *testing.T) {
	linttest.Run(t, linttest.TestData(), padded.Analyzer, "padded")
}
