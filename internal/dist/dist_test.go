package dist

import (
	"testing"
	"testing/quick"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/core"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestDistMatchesOracle(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":    mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 3))),
		"cliques": mustGraph(gen.Components(5, 6)),
		"path":    mustGraph(gen.Path(500)),
		"star":    mustGraph(gen.Star(300)),
		"web":     mustGraph(gen.Web(gen.WebConfig{CoreScale: 8, CoreEdgeFactor: 6, NumChains: 4, ChainLength: 32, Seed: 1})),
		"empty":   mustGraph(gen.Empty(10)),
		// Self-loop-only hub: the Thrifty-mode initial superstep activates
		// nothing, so the bootstrap superstep must still fire (do-while
		// regression).
		"loophub": mustGraph(graph.BuildUndirected(
			[]graph.Edge{{U: 0, V: 0}, {U: 1, V: 2}}, graph.WithNumVertices(4))),
	}
	for name, g := range graphs {
		oracle := core.SeqCC(g)
		for _, workers := range []int{1, 3, 8} {
			for _, thrifty := range []bool{false, true} {
				res := Run(g, Config{Workers: workers, Thrifty: thrifty})
				if !core.Equivalent(res.Labels, oracle) {
					t.Fatalf("%s workers=%d thrifty=%v: wrong partition (supersteps=%d)",
						name, workers, thrifty, res.Supersteps)
				}
			}
		}
	}
}

func TestDistThriftyReducesMessages(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(13, 16, 7)))
	plain := Run(g, Config{Workers: 8, Thrifty: false})
	thr := Run(g, Config{Workers: 8, Thrifty: true})
	if thr.MessagesSent >= plain.MessagesSent {
		t.Fatalf("thrifty mode sent %d messages vs plain %d — expected a reduction",
			thr.MessagesSent, plain.MessagesSent)
	}
	if thr.EdgeScans >= plain.EdgeScans {
		t.Fatalf("thrifty mode scanned %d edges vs plain %d", thr.EdgeScans, plain.EdgeScans)
	}
}

func TestDistZeroPlantingLabels(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(10, 8, 5)))
	res := Run(g, Config{Workers: 4, Thrifty: true})
	if res.Labels[g.MaxDegreeVertex()] != 0 {
		t.Fatalf("hub label = %d", res.Labels[g.MaxDegreeVertex()])
	}
}

func TestDistWorkerCountClamped(t *testing.T) {
	g := mustGraph(gen.Path(3))
	res := Run(g, Config{Workers: 100})
	if !core.Equivalent(res.Labels, core.SeqCC(g)) {
		t.Fatal("over-provisioned cluster wrong")
	}
}

func TestDistEmptyGraph(t *testing.T) {
	g := mustGraph(gen.Empty(0))
	res := Run(g, Config{Workers: 4})
	if len(res.Labels) != 0 || res.Supersteps != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{Workers: -1}).Validate() == nil {
		t.Fatal("negative workers accepted")
	}
	if (Config{MaxSupersteps: -1}).Validate() == nil {
		t.Fatal("negative cap accepted")
	}
	if (Config{Workers: 4}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

// TestKLAReducesSupersteps: raising the asynchrony depth must not increase
// supersteps, and on a high-diameter graph it must strictly reduce them.
func TestKLAReducesSupersteps(t *testing.T) {
	g := mustGraph(gen.Path(2000))
	oracle := core.SeqCC(g)
	prev := -1
	for _, k := range []int{1, 2, 4, 16} {
		res := Run(g, Config{Workers: 4, KLevels: k})
		if !core.Equivalent(res.Labels, oracle) {
			t.Fatalf("k=%d: wrong partition", k)
		}
		if prev >= 0 && res.Supersteps > prev {
			t.Fatalf("k=%d: supersteps rose to %d from %d", k, res.Supersteps, prev)
		}
		prev = res.Supersteps
	}
	bsp := Run(g, Config{Workers: 4, KLevels: 1})
	kla := Run(g, Config{Workers: 4, KLevels: 16})
	if kla.Supersteps >= bsp.Supersteps {
		t.Fatalf("k=16 supersteps %d not below BSP's %d on a path", kla.Supersteps, bsp.Supersteps)
	}
}

// TestKLAWithThriftyCorrect: the two extensions compose.
func TestKLAWithThriftyCorrect(t *testing.T) {
	g := mustGraph(gen.Web(gen.WebConfig{CoreScale: 8, CoreEdgeFactor: 6, NumChains: 4, ChainLength: 32, Seed: 3}))
	oracle := core.SeqCC(g)
	for _, k := range []int{1, 4, 8} {
		res := Run(g, Config{Workers: 6, Thrifty: true, KLevels: k})
		if !core.Equivalent(res.Labels, oracle) {
			t.Fatalf("thrifty k=%d: wrong partition", k)
		}
	}
}

// TestQuickDistAgreesWithOracle: random multigraphs, both modes, random
// cluster sizes.
func TestQuickDistAgreesWithOracle(t *testing.T) {
	f := func(raw []byte, workers, kLevels uint8, thrifty bool) bool {
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{U: uint32(raw[i] % 64), V: uint32(raw[i+1] % 64)})
		}
		g, err := graph.BuildUndirected(edges, graph.WithNumVertices(64))
		if err != nil {
			return false
		}
		res := Run(g, Config{Workers: int(workers%7) + 1, Thrifty: thrifty, KLevels: int(kLevels % 5)})
		return core.Equivalent(res.Labels, core.SeqCC(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
