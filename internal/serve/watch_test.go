package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWatchReloadsOnChange: the poll watcher notices a rewritten file and
// hot-reloads it; a poisoned write is retried and — once the file is good
// again on a later change — recovered from.
func TestWatchReloadsOnChange(t *testing.T) {
	dir := t.TempDir()
	aPath := writeTestGraph(t, dir, "a", 42)
	bPath := writeTestGraph(t, dir, "b", 43)
	served := filepath.Join(dir, "served.bin")
	copyFile(t, served, aPath)

	s := New(Config{Path: served})
	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Source().Retire()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan error, 1)
	go func() { watchDone <- s.Watch(ctx, 10*time.Millisecond) }()
	// Let the watcher record its mtime baseline before the first rewrite —
	// a change racing the baseline stat is indistinguishable from it.
	time.Sleep(100 * time.Millisecond)

	waitSwaps := func(want int64, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for s.Source().Swaps() < want {
			if time.Now().After(deadline) {
				t.Fatalf("watcher did not %s (swaps=%d, want %d)", what, s.Source().Swaps(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	copyFile(t, served, bPath)
	waitSwaps(2, "reload the changed file") // 1 = initial load
	if ready, _ := s.Ready(); !ready {
		t.Fatal("not ready after watched reload")
	}

	// Poison the file: the watcher's retries fail, readiness drops, the old
	// snapshot keeps serving.
	if err := os.WriteFile(served, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ready, _ := s.Ready(); !ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never observed the poisoned file")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sn := s.Source().Acquire()
	if sn == nil {
		t.Fatal("old snapshot gone after poisoned watch reload")
	}
	sn.Release()

	// Heal the file: the next change reloads and readiness returns.
	copyFile(t, served, aPath)
	waitSwaps(3, "recover from the poisoned file")
	if ready, reason := s.Ready(); !ready {
		t.Fatalf("not ready after recovery: %s", reason)
	}

	cancel()
	select {
	case err := <-watchDone:
		if err != context.Canceled {
			t.Fatalf("Watch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch did not stop on cancellation")
	}
}
