package atomicx

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMinUint32Basic(t *testing.T) {
	v := uint32(10)
	if !MinUint32(&v, 5) {
		t.Fatal("lowering 10 to 5 reported no change")
	}
	if v != 5 {
		t.Fatalf("v = %d, want 5", v)
	}
	if MinUint32(&v, 7) {
		t.Fatal("raising reported a change")
	}
	if v != 5 {
		t.Fatalf("v = %d after failed min, want 5", v)
	}
	if MinUint32(&v, 5) {
		t.Fatal("equal value reported a change")
	}
}

// TestMinUint32Hammer checks linearizability of the CAS loop: under heavy
// contention the final value must be the global minimum, and the number of
// successful lowerings must be consistent with a strictly decreasing chain.
func TestMinUint32Hammer(t *testing.T) {
	var v uint32 = 1 << 30
	const workers = 16
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				MinUint32(&v, uint32(w*per+i+1))
			}
		}(w)
	}
	wg.Wait()
	if v != 1 {
		t.Fatalf("final value %d, want 1 (global minimum)", v)
	}
}

func TestMinUint64AndMax(t *testing.T) {
	var v64 uint64 = 100
	if !MinUint64(&v64, 1) || v64 != 1 {
		t.Fatalf("MinUint64: v = %d", v64)
	}
	var m uint32 = 3
	if !MaxUint32(&m, 9) || m != 9 {
		t.Fatalf("MaxUint32: m = %d", m)
	}
	if MaxUint32(&m, 4) {
		t.Fatal("MaxUint32 lowered")
	}
	var i64 int64 = -5
	if !MaxInt64(&i64, 5) || i64 != 5 {
		t.Fatalf("MaxInt64: i = %d", i64)
	}
}

// TestQuickMinIsMin: for any sequence of values applied via MinUint32, the
// result equals the sequence minimum (seeded with the initial value).
func TestQuickMinIsMin(t *testing.T) {
	f := func(init uint32, vals []uint32) bool {
		v := init
		want := init
		for _, x := range vals {
			MinUint32(&v, x)
			if x < want {
				want = x
			}
		}
		return v == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCASAndLoadStore(t *testing.T) {
	var v uint32 = 7
	if !CASUint32(&v, 7, 9) || LoadUint32(&v) != 9 {
		t.Fatal("CAS failed")
	}
	if CASUint32(&v, 7, 11) {
		t.Fatal("stale CAS succeeded")
	}
	StoreUint32(&v, 1)
	if LoadUint32(&v) != 1 {
		t.Fatal("store/load failed")
	}
	var a int64
	if AddInt64(&a, 41) != 41 || AddInt64(&a, 1) != 42 {
		t.Fatal("AddInt64 failed")
	}
}
