// Package retry is a small context-aware retry helper: capped exponential
// backoff with proportional jitter. It exists for the places in the serving
// stack where an operation is expected to succeed *eventually* — a reload
// watcher re-reading a file that is mid-write, a load-test client riding
// through 429 shedding — and where naive tight retries would either spin or
// synchronize into stampedes (the jitter breaks lockstep between clients).
package retry

import (
	"context"
	"math/rand"
	"time"
)

// Policy describes a backoff schedule. The zero value is usable: 10ms
// initial delay, doubling, capped at 1s, ±20% jitter, unlimited attempts.
type Policy struct {
	// Initial is the delay after the first failure (default 10ms).
	Initial time.Duration
	// Max caps the delay between attempts (default 1s).
	Max time.Duration
	// Multiplier grows the delay each failure (default 2; values < 1 are
	// treated as the default).
	Multiplier float64
	// Jitter is the fraction of each delay randomized symmetrically around
	// it: delay × (1 ± Jitter×u) for uniform u in [0,1). Negative disables
	// jitter; zero means the default 0.2. Values are clamped to [0,1].
	Jitter float64
	// Attempts bounds how many times the operation runs (not how many
	// retries); 0 means unlimited — the context is then the only exit.
	Attempts int

	// randFloat is the jitter source seam for deterministic tests; nil
	// uses math/rand's shared source.
	randFloat func() float64
}

func (p Policy) initial() time.Duration {
	if p.Initial > 0 {
		return p.Initial
	}
	return 10 * time.Millisecond
}

func (p Policy) max() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return time.Second
}

func (p Policy) multiplier() float64 {
	if p.Multiplier >= 1 {
		return p.Multiplier
	}
	return 2
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.2
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// Delay returns the backoff before attempt n (0-based: Delay(0) precedes
// the second run of the operation), jitter included. The un-jittered
// schedule is Initial × Multiplier^n, capped at Max; jitter can stretch a
// delay at most to its double and never past 2×Max.
func (p Policy) Delay(n int) time.Duration {
	d := float64(p.initial())
	mult, cap := p.multiplier(), float64(p.max())
	for i := 0; i < n && d < cap; i++ {
		d *= mult
	}
	if d > cap {
		d = cap
	}
	if j := p.jitter(); j > 0 {
		r := p.randFloat
		if r == nil {
			r = rand.Float64
		}
		d *= 1 + j*(2*r()-1)
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, the policy's attempts run out, or ctx ends.
// Between failures it sleeps the jittered backoff, abandoning the sleep the
// moment ctx is done. The returned error is the last op error (attempts
// exhausted), or ctx.Err() when the context ended the loop — whichever
// fired; op's error is never masked by a context that expired after op
// already failed terminally.
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = op(ctx)
		if lastErr == nil {
			return nil
		}
		if p.Attempts > 0 && attempt+1 >= p.Attempts {
			return lastErr
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}
