package reflease_test

import (
	"testing"

	"thriftylp/internal/lint/linttest"
	"thriftylp/internal/lint/reflease"
)

func TestRefLease(t *testing.T) {
	linttest.Run(t, linttest.TestData(), reflease.Analyzer, "snap", "use")
}
