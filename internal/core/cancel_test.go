package core

import (
	"testing"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/parallel"
)

// TestCancelPreRequestedStopsEveryAlgorithm: a Stop requested before the run
// starts must make every algorithm return promptly with Canceled set and a
// named phase, instead of running to convergence.
func TestCancelPreRequestedStopsEveryAlgorithm(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 8, 3)))
	for _, a := range algorithmsUnderTest {
		t.Run(a.name, func(t *testing.T) {
			stop := &Stop{}
			stop.Request()
			res := a.run(g, Config{Stop: stop})
			if !res.Canceled {
				t.Fatalf("%s: Canceled = false after pre-requested stop", a.name)
			}
			if res.Phase == "" {
				t.Fatalf("%s: cancelled run reports empty Phase", a.name)
			}
			if len(res.Labels) != g.NumVertices() {
				t.Fatalf("%s: cancelled run returned %d labels, want %d",
					a.name, len(res.Labels), g.NumVertices())
			}
			// A pre-requested stop must be honoured within the first
			// iteration boundary (Thrifty additionally counts the initial
			// push as iteration 0).
			if res.Iterations > 2 {
				t.Fatalf("%s: cancelled run executed %d iterations", a.name, res.Iterations)
			}
		})
	}
}

// TestCancelUnrequestedStopIsInert: passing a Stop that is never requested
// must not change the outcome — every algorithm still converges to the
// oracle partition and reports Canceled = false.
func TestCancelUnrequestedStopIsInert(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(10, 8, 3)))
	oracle := SeqCC(g)
	for _, a := range algorithmsUnderTest {
		t.Run(a.name, func(t *testing.T) {
			res := a.run(g, Config{Stop: &Stop{}})
			if res.Canceled {
				t.Fatalf("%s: Canceled = true without a stop request", a.name)
			}
			if res.Phase != "" {
				t.Fatalf("%s: completed run reports Phase %q", a.name, res.Phase)
			}
			if !Equivalent(res.Labels, oracle) {
				t.Fatalf("%s: labels diverge from oracle with inert Stop", a.name)
			}
		})
	}
}

// TestCancelConcurrentStopReturns: a stop requested from another goroutine
// mid-run must not hang, panic, or corrupt the result, whether it lands
// before, during, or after the run's own lifetime. Canceled may be either
// value depending on the race; the labels slice must always be complete.
func TestCancelConcurrentStopReturns(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 8, 3)))
	for _, a := range algorithmsUnderTest {
		t.Run(a.name, func(t *testing.T) {
			stop := &Stop{}
			done := make(chan struct{})
			go func() {
				stop.Request()
				close(done)
			}()
			res := a.run(g, Config{Stop: stop})
			<-done
			if len(res.Labels) != g.NumVertices() {
				t.Fatalf("%s: %d labels, want %d", a.name, len(res.Labels), g.NumVertices())
			}
		})
	}
}

// TestCancelPoolRemainsUsable: cancelling a run must leave a shared pool fit
// for the next run — the cancelled run's skipped partitions must not leave
// workers wedged or counters skewed.
func TestCancelPoolRemainsUsable(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(10, 8, 3)))
	oracle := SeqCC(g)
	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, a := range algorithmsUnderTest {
		t.Run(a.name, func(t *testing.T) {
			stop := &Stop{}
			stop.Request()
			if res := a.run(g, Config{Stop: stop, Pool: pool}); !res.Canceled {
				t.Fatalf("%s: cancelled run not marked Canceled", a.name)
			}
			res := a.run(g, Config{Pool: pool})
			if res.Canceled || !Equivalent(res.Labels, oracle) {
				t.Fatalf("%s: pool unusable after cancelled run", a.name)
			}
		})
	}
}

// TestStopNilSafety: the nil receiver convention lets kernels poll
// cfg.Stop.Requested() without guarding for the common no-cancellation case.
func TestStopNilSafety(t *testing.T) {
	var s *Stop
	if s.Requested() {
		t.Fatal("nil Stop reports requested")
	}
	s = &Stop{}
	if s.Requested() {
		t.Fatal("fresh Stop reports requested")
	}
	s.Request()
	if !s.Requested() {
		t.Fatal("requested Stop reports not requested")
	}
}

// TestCancelledLabelsAreRefinement: for the LP family, a cancelled run's
// labels must be an intermediate state of the monotone label-lowering
// process — every label no larger than the vertex's initial label and no
// smaller than the component minimum it is converging towards.
func TestCancelledLabelsAreRefinement(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 3)))
	oracle := SeqCC(g)
	lpFamily := []struct {
		name string
		run  func(*graph.Graph, Config) Result
		// offset converts a vertex id to its initial label (Thrifty plants
		// v+1, the rest use v).
		offset uint32
	}{
		{"dolp", DOLP, 0},
		{"dolp-unified", DOLPUnified, 0},
		{"lp", LP, 0},
	}
	for _, a := range lpFamily {
		t.Run(a.name, func(t *testing.T) {
			stop := &Stop{}
			stop.Request()
			res := a.run(g, Config{Stop: stop, MaxIterations: 1})
			for v, l := range res.Labels {
				if l > uint32(v)+a.offset {
					t.Fatalf("%s: label[%d] = %d above initial %d", a.name, v, l, uint32(v)+a.offset)
				}
				if l < oracle[v] {
					t.Fatalf("%s: label[%d] = %d below component minimum %d", a.name, v, l, oracle[v])
				}
			}
		})
	}
}
