package harness

import (
	"fmt"
	"sync"

	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// Scale selects dataset sizes. The paper runs graphs up to 15.6 billion
// edges on 768 GB - 2 TB machines; the suite scales each analog down to the
// same *structural regime* at laptop-friendly sizes (see DESIGN.md §5).
type Scale string

// Available scales. ScaleSmall is for unit/integration tests (~10⁴-10⁵
// edges), ScaleMedium for the default experiment runs (~10⁶ edges per
// graph), ScaleLarge for `ccbench -scale large` (~10⁷ edges per graph).
const (
	ScaleSmall  Scale = "small"
	ScaleMedium Scale = "medium"
	ScaleLarge  Scale = "large"
)

// Dataset is one entry of the analog suite.
type Dataset struct {
	// Name is the suite-local dataset name.
	Name string
	// Analog is the paper dataset (Table II) this one stands in for.
	Analog string
	// Kind is "road", "social", "web" or "knowledge".
	Kind string
	// PowerLaw mirrors Table II's Power-Law column.
	PowerLaw bool
	// Build generates the graph deterministically.
	Build func() (*graph.Graph, error)
}

// rmatScale returns the RMAT scale for the given suite scale with a delta.
func rmatScale(s Scale, base int) int {
	switch s {
	case ScaleSmall:
		return base - 6
	case ScaleLarge:
		return base + 2
	default:
		return base
	}
}

func gridSide(s Scale, base int) int {
	switch s {
	case ScaleSmall:
		return base / 8
	case ScaleLarge:
		return base * 2
	default:
		return base
	}
}

// islandCount keeps the small-component share proportional to the core
// size across scales, so the giant component stays in Table I's >= 94%
// regime at every scale.
func islandCount(coreVertices, per int) int {
	k := coreVertices / per
	if k < 2 {
		k = 2
	}
	return k
}

// Suite returns the dataset analogs in Table II order: two road networks
// (non-power-law, high diameter), the social-network family, and the web
// crawl family. Every Build is deterministic in its seed so experiment runs
// are reproducible.
func Suite(s Scale) []Dataset {
	return []Dataset{
		{
			Name: "road-gb", Analog: "GB Roads (GBRd)", Kind: "road", PowerLaw: false,
			Build: func() (*graph.Graph, error) {
				return gen.Road(gridSide(s, 384)*gridSide(s, 384), 101)
			},
		},
		{
			Name: "road-us", Analog: "US Roads (USRd)", Kind: "road", PowerLaw: false,
			Build: func() (*graph.Graph, error) {
				return gen.Road(gridSide(s, 640)*gridSide(s, 640), 102)
			},
		},
		{
			Name: "social-pokec", Analog: "Pokec (Pkc)", Kind: "social", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				return gen.RMATCompact(gen.DefaultRMAT(rmatScale(s, 16), 16, 103))
			},
		},
		{
			Name: "knowledge-wiki", Analog: "War Wikipedia (WWiki)", Kind: "knowledge", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				// Preferential attachment + small islands reproduces a
				// knowledge graph's skew and its multi-component census.
				n := 1 << rmatScale(s, 16)
				core, err := gen.BarabasiAlbert(n, 8, 104)
				if err != nil {
					return nil, err
				}
				isl, err := gen.Islands(islandCount(n, 1600), 12, 104)
				if err != nil {
					return nil, err
				}
				return gen.DisjointUnion(core, isl)
			},
		},
		{
			Name: "social-lj", Analog: "LiveJournal (LJLnks)", Kind: "social", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				// LiveJournal has a giant component plus ~5k small ones.
				core, err := gen.RMATCompact(gen.DefaultRMAT(rmatScale(s, 17), 12, 105))
				if err != nil {
					return nil, err
				}
				isl, err := gen.Islands(islandCount(core.NumVertices(), 720), 8, 105)
				if err != nil {
					return nil, err
				}
				return gen.DisjointUnion(core, isl)
			},
		},
		{
			Name: "social-twitter", Analog: "Twitter 2010 (Twtr10)", Kind: "social", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				return gen.RMATCompact(gen.DefaultRMAT(rmatScale(s, 17), 24, 106))
			},
		},
		{
			Name: "web-webbase", Analog: "WebBase-2001 (Wbbs)", Kind: "web", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				n := 1 << rmatScale(s, 15)
				return gen.Web(gen.WebConfig{
					CoreScale:      rmatScale(s, 15),
					CoreEdgeFactor: 10,
					NumChains:      n / 256,
					ChainLength:    96,
					Seed:           107,
				})
			},
		},
		{
			Name: "social-friendster", Analog: "Friendster (Frndstr)", Kind: "social", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				return gen.RMATCompact(gen.DefaultRMAT(rmatScale(s, 18), 16, 108))
			},
		},
		{
			Name: "web-uk", Analog: "UK-Union (UU)", Kind: "web", PowerLaw: true,
			Build: func() (*graph.Graph, error) {
				n := 1 << rmatScale(s, 16)
				return gen.Web(gen.WebConfig{
					CoreScale:      rmatScale(s, 16),
					CoreEdgeFactor: 14,
					NumChains:      n / 512,
					ChainLength:    160,
					Seed:           109,
				})
			},
		},
		{
			Name: "er-control", Analog: "(none — flat-degree control)", Kind: "control", PowerLaw: false,
			Build: func() (*graph.Graph, error) {
				n := 1 << rmatScale(s, 16)
				return gen.ErdosRenyi(n, 8*n, 110)
			},
		},
	}
}

// SkewedSuite filters Suite to the power-law datasets, the regime the
// paper's headline numbers cover.
func SkewedSuite(s Scale) []Dataset {
	var out []Dataset
	for _, d := range Suite(s) {
		if d.PowerLaw {
			out = append(out, d)
		}
	}
	return out
}

// FindDataset returns the named dataset of the suite.
func FindDataset(s Scale, name string) (Dataset, error) {
	for _, d := range Suite(s) {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("harness: unknown dataset %q", name)
}

// graphCache memoizes built graphs per (scale, name) so multi-experiment
// ccbench invocations build each dataset once.
var graphCache sync.Map

// BuildCached builds (or returns the memoized) graph of a dataset.
func BuildCached(s Scale, d Dataset) (*graph.Graph, error) {
	key := string(s) + "/" + d.Name
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph), nil
	}
	g, err := d.Build()
	if err != nil {
		return nil, err
	}
	graphCache.Store(key, g)
	return g, nil
}
