package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"thriftylp/internal/parallel"
)

// maxVertexID is the reserved top of the uint32 id space. Ids must stay
// strictly below it: several consumers compute id+1 — Thrifty's planted
// labels (v+1) and the degree-count indexing below (deg[e.U+1]) — and a
// vertex numbered MaxUint32 would silently wrap those to 0.
const maxVertexID = ^uint32(0)

// BuildOption configures BuildUndirected.
type BuildOption func(*buildConfig)

type buildConfig struct {
	numVertices int
	dedup       bool
	dropLoops   bool
	sortAdj     bool
}

// WithNumVertices fixes the vertex count instead of inferring max-id+1.
// Ids in edges must be < n.
func WithNumVertices(n int) BuildOption {
	return func(c *buildConfig) { c.numVertices = n }
}

// WithDedup removes duplicate edges (parallel edges collapse to one). It
// implies sorted adjacency lists.
func WithDedup() BuildOption {
	return func(c *buildConfig) { c.dedup = true; c.sortAdj = true }
}

// WithoutSelfLoops drops self-loop edges during construction.
func WithoutSelfLoops() BuildOption {
	return func(c *buildConfig) { c.dropLoops = true }
}

// WithSortedAdjacency sorts each vertex's neighbour list ascending.
func WithSortedAdjacency() BuildOption {
	return func(c *buildConfig) { c.sortAdj = true }
}

// BuildUndirected constructs a CSR graph from an edge list. Each edge {U,V}
// with U≠V occupies two adjacency slots (U→V and V→U); a self-loop occupies
// one. Construction is parallel: degrees are counted with atomic adds and
// slots filled through per-vertex atomic cursors, partitioned over the
// default worker pool.
func BuildUndirected(edges []Edge, opts ...BuildOption) (*Graph, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	pool := parallel.Default()

	n := cfg.numVertices
	if n == 0 {
		var maxID int64 = -1
		parallel.For(pool, len(edges), 1<<16, func(_, lo, hi int) {
			local := int64(-1)
			for _, e := range edges[lo:hi] {
				if int64(e.U) > local {
					local = int64(e.U)
				}
				if int64(e.V) > local {
					local = int64(e.V)
				}
			}
			for {
				cur := atomic.LoadInt64(&maxID)
				if cur >= local || atomic.CompareAndSwapInt64(&maxID, cur, local) {
					break
				}
			}
		})
		if maxID >= int64(maxVertexID) {
			return nil, fmt.Errorf("graph: vertex id %d is reserved (id space is [0,%d))", maxID, maxVertexID)
		}
		n = int(maxID + 1)
	} else {
		if int64(n) > int64(maxVertexID) {
			return nil, fmt.Errorf("graph: %d vertices exceeds the id space [0,%d)", n, maxVertexID)
		}
		for _, e := range edges {
			if int(e.U) >= n || int(e.V) >= n {
				return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, n)
			}
		}
	}

	// Pass 1: degree counting.
	deg := make([]int64, n+1) // deg[v+1] accumulates v's slot count
	parallel.For(pool, len(edges), 1<<16, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			if e.U == e.V {
				if !cfg.dropLoops {
					atomic.AddInt64(&deg[e.U+1], 1)
				}
				continue
			}
			atomic.AddInt64(&deg[e.U+1], 1)
			atomic.AddInt64(&deg[e.V+1], 1)
		}
	})

	// Prefix sum → offsets.
	offsets := deg
	for v := 1; v <= n; v++ {
		offsets[v] += offsets[v-1]
	}
	adj := make([]uint32, offsets[n])

	// Pass 2: slot filling through atomic per-vertex cursors.
	cursor := make([]int64, n)
	parallel.For(pool, n, 1<<16, func(_, lo, hi int) {
		copy(cursor[lo:hi], offsets[lo:hi])
	})
	parallel.For(pool, len(edges), 1<<16, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			if e.U == e.V {
				if !cfg.dropLoops {
					adj[atomic.AddInt64(&cursor[e.U], 1)-1] = e.V
				}
				continue
			}
			adj[atomic.AddInt64(&cursor[e.U], 1)-1] = e.V
			adj[atomic.AddInt64(&cursor[e.V], 1)-1] = e.U
		}
	})

	g := &Graph{offsets: offsets, adj: adj}
	if cfg.sortAdj || cfg.dedup {
		parallel.For(pool, n, 4096, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				l := adj[offsets[v]:offsets[v+1]]
				sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
			}
		})
	}
	if cfg.dedup {
		g = dedupCSR(g)
	}
	if g.NumVertices() > 0 {
		g.computeMaxDegree()
	}
	return g, nil
}

// dedupCSR rebuilds a graph with duplicate adjacency entries removed.
// Adjacency lists must already be sorted.
func dedupCSR(g *Graph) *Graph {
	n := g.NumVertices()
	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		l := g.Neighbors(uint32(v))
		cnt := int64(0)
		for i, u := range l {
			if i == 0 || u != l[i-1] {
				cnt++
			}
		}
		newOff[v+1] = newOff[v] + cnt
	}
	newAdj := make([]uint32, newOff[n])
	for v := 0; v < n; v++ {
		l := g.Neighbors(uint32(v))
		w := newOff[v]
		for i, u := range l {
			if i == 0 || u != l[i-1] {
				newAdj[w] = u
				w++
			}
		}
	}
	return &Graph{offsets: newOff, adj: newAdj}
}

// RemoveIsolated returns a copy of g with zero-degree vertices removed and
// the surviving vertices renumbered densely, plus a mapping from new id to
// original id. The paper removes zero-degree vertices from all datasets
// "because of their destructive effect" on frontier density heuristics
// (§V-A). If g has no isolated vertices it is returned unchanged with an
// identity mapping of nil.
func RemoveIsolated(g *Graph) (*Graph, []uint32) {
	n := g.NumVertices()
	isolated := 0
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) == 0 {
			isolated++
		}
	}
	if isolated == 0 {
		return g, nil
	}
	newID := make([]uint32, n)
	origID := make([]uint32, 0, n-isolated)
	next := uint32(0)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) > 0 {
			newID[v] = next
			origID = append(origID, uint32(v))
			next++
		}
	}
	m := int(next)
	offsets := make([]int64, m+1)
	adj := make([]uint32, len(g.adj))
	w := int64(0)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) == 0 {
			continue
		}
		nv := newID[v]
		offsets[nv] = w
		for _, u := range g.Neighbors(uint32(v)) {
			adj[w] = newID[u]
			w++
		}
	}
	offsets[m] = w
	ng := &Graph{offsets: offsets, adj: adj[:w]}
	if m > 0 {
		ng.computeMaxDegree()
	}
	return ng, origID
}
