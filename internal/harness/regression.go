package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// This file is the machine-readable perf-regression harness: the same two
// medium-scale skewed fixtures the BenchmarkThrifty gate runs on, timed
// uninstrumented (fast path) for every label-propagation algorithm, exported
// as JSON so the throughput trajectory can be tracked across commits
// (`make bench-json` writes BENCH_thrifty.json).

// RegressionFixture is one deterministic graph of the perf-regression suite.
type RegressionFixture struct {
	Name  string
	Build func() (*graph.Graph, error)
}

// RegressionFixtures returns the perf-gate fixtures: a pure RMAT social
// analog (pull-heavy, few iterations) and a web-crawl analog (skewed core
// plus pendant chains, the push-heavy many-iteration regime). Both are
// seed-deterministic so numbers are comparable across runs and commits.
func RegressionFixtures() []RegressionFixture {
	return []RegressionFixture{
		{"rmat-medium", func() (*graph.Graph, error) {
			return gen.RMATCompact(gen.DefaultRMAT(17, 16, 42))
		}},
		{"weblike-medium", func() (*graph.Graph, error) {
			return gen.Web(gen.DefaultWeb(16, 42))
		}},
	}
}

// regressionAlgos are the traversal kernels sharing the instrumentation-
// policy design, plus the auto selector; all are timed so a fast-path
// regression in any kernel — or a bad selector decision — is visible, not
// just in the headline algorithm.
var regressionAlgos = []cc.Algorithm{
	cc.AlgoThrifty, cc.AlgoDOLP, cc.AlgoDOLPUnified, cc.AlgoLP, cc.AlgoAuto,
}

// BenchSchema identifies the BENCH_thrifty.json layout. v2 added the host
// stamp (cpus, Go version, platform) and per-record phase breakdowns; v3
// added the auto-selector rows and their "selected" field.
const BenchSchema = "thriftylp/bench/v3"

// BenchRecord is one (algorithm, dataset) measurement.
type BenchRecord struct {
	Algorithm   string  `json:"algorithm"`
	Dataset     string  `json:"dataset"`
	Vertices    int     `json:"vertices"`
	Edges       int64   `json:"edges"`
	Iterations  int     `json:"iterations"`
	NsPerRun    int64   `json:"ns_per_run"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	Reps        int     `json:"reps"`
	// Selected is the concrete algorithm an "auto" row resolved to (its
	// NsPerRun includes the probe); empty on direct rows.
	Selected string `json:"selected,omitempty"`
	// PushIterations/PullIterations decompose Iterations by direction, and
	// PhaseNs breaks the (last timed) run's wall time down per iteration
	// kind — both from the always-on RunStats, so recording them does not
	// perturb the fast-path timing in NsPerRun.
	PushIterations int              `json:"push_iterations"`
	PullIterations int              `json:"pull_iterations"`
	PhaseNs        map[string]int64 `json:"phase_ns,omitempty"`
}

// HostStamp identifies the machine and toolchain a benchmark report was
// produced on: absolute throughput is machine-dependent, so reports are
// primarily read as same-machine trajectories and Mismatch flags comparisons
// across differing hosts. It embeds flat into report structs, so the JSON
// layout is unchanged from the pre-extraction format.
type HostStamp struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Threads    int    `json:"threads"` // 0 = GOMAXPROCS pool
}

// currentHostStamp stamps the running process's host and the configured
// worker-thread count.
func currentHostStamp(threads int) HostStamp {
	return HostStamp{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Threads:    threads,
	}
}

// Mismatch compares two host stamps and returns a human-readable line per
// differing field (empty when comparable). A perf delta measured across any
// mismatch is not a code regression signal.
func (h HostStamp) Mismatch(prev HostStamp) []string {
	var out []string
	diff := func(field string, old, new any) {
		out = append(out, fmt.Sprintf("%s changed: %v -> %v", field, old, new))
	}
	if prev.GoMaxProcs != h.GoMaxProcs {
		diff("gomaxprocs", prev.GoMaxProcs, h.GoMaxProcs)
	}
	if prev.NumCPU != h.NumCPU {
		diff("numcpu", prev.NumCPU, h.NumCPU)
	}
	if prev.GoVersion != h.GoVersion {
		diff("go version", prev.GoVersion, h.GoVersion)
	}
	if prev.GOOS != h.GOOS {
		diff("goos", prev.GOOS, h.GOOS)
	}
	if prev.GOARCH != h.GOARCH {
		diff("goarch", prev.GOARCH, h.GOARCH)
	}
	if prev.Threads != h.Threads {
		diff("threads", prev.Threads, h.Threads)
	}
	return out
}

// BenchReport is the full regression run, as serialized to
// BENCH_thrifty.json.
type BenchReport struct {
	// Schema versions the file layout (see BenchSchema).
	Schema string `json:"schema"`
	HostStamp
	Records []BenchRecord `json:"records"`
}

// HostMismatch compares the report's host stamp against a previous report;
// see HostStamp.Mismatch.
func (r BenchReport) HostMismatch(prev BenchReport) []string {
	return r.HostStamp.Mismatch(prev.HostStamp)
}

// ReadBenchReport loads a previously written BENCH JSON file. Reports written
// before the schema stamp existed load with Schema == "".
func ReadBenchReport(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return BenchReport{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}

// BenchRegression times every label-propagation algorithm, uninstrumented,
// on the regression fixtures: one warmup run plus cfg.Reps timed runs per
// cell, minimum reported (the paper's convention for eliminating scheduler
// noise, and the same discipline as TimeAlgorithm).
func BenchRegression(cfg RunConfig) (BenchReport, error) {
	rep := BenchReport{
		Schema:    BenchSchema,
		HostStamp: currentHostStamp(cfg.Threads),
	}
	algos := regressionAlgos
	if len(cfg.Algos) > 0 {
		algos = cfg.Algos
	}
	for _, f := range RegressionFixtures() {
		g, err := f.Build()
		if err != nil {
			return BenchReport{}, fmt.Errorf("building %s: %w", f.Name, err)
		}
		for _, a := range algos {
			best, res, err := TimeAlgorithm(a, g, cfg)
			if err != nil {
				return BenchReport{}, fmt.Errorf("%s on %s: %w", a, f.Name, err)
			}
			rec := BenchRecord{
				Algorithm:      string(a),
				Dataset:        f.Name,
				Vertices:       g.NumVertices(),
				Edges:          g.NumEdges(),
				Iterations:     res.Iterations,
				NsPerRun:       best.Nanoseconds(),
				EdgesPerSec:    float64(g.NumEdges()) / best.Seconds(),
				Reps:           cfg.reps(),
				PushIterations: res.PushIterations,
				PullIterations: res.PullIterations,
			}
			if res.Stats != nil && len(res.Stats.PhaseDurations) > 0 {
				rec.PhaseNs = make(map[string]int64, len(res.Stats.PhaseDurations))
				for kind, d := range res.Stats.PhaseDurations {
					rec.PhaseNs[kind] = d.Nanoseconds()
				}
			}
			if res.Stats != nil {
				rec.Selected = string(res.Stats.Selected)
			}
			rep.Records = append(rep.Records, rec)
			if cfg.Trace != nil {
				// One extra instrumented run per cell, outside the timed
				// loop: the counting path produces the iteration stream the
				// trace needs, so it must never contribute to NsPerRun.
				if err := traceCell(a, g, f.Name, cfg); err != nil {
					return BenchReport{}, fmt.Errorf("tracing %s on %s: %w", a, f.Name, err)
				}
			}
		}
	}
	return rep, nil
}

// traceCell runs one instrumented repetition and appends its per-iteration
// records to cfg.Trace.
func traceCell(a cc.Algorithm, g *graph.Graph, dataset string, cfg RunConfig) error {
	inst := &cc.Instrumentation{}
	res, err := cc.RunContext(cfg.ctx(), a, g, cfg.opts(cc.WithInstrumentation(inst))...)
	if err != nil {
		return err
	}
	// Auto runs additionally record which algorithm the probe chose and why.
	if err := cfg.Trace.WriteSelector(dataset, 0, res.Stats); err != nil {
		return err
	}
	return cfg.Trace.WriteRun(string(a), dataset, 0, inst.Iterations)
}

// WriteJSON serializes the report to path, indented for reviewable diffs.
func (r BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the report as an aligned console table.
func (r BenchReport) Render() string {
	out := fmt.Sprintf("Perf regression (uninstrumented fast path, min of %s reps)\n",
		pluralReps(r.Records))
	out += fmt.Sprintf("%-14s %-16s %10s %12s %6s %12s\n",
		"algorithm", "dataset", "ms/run", "Medges/s", "iters", "edges")
	for _, rec := range r.Records {
		algo := rec.Algorithm
		if rec.Selected != "" {
			algo += ":" + rec.Selected
		}
		out += fmt.Sprintf("%-14s %-16s %10.3f %12.1f %6d %12d\n",
			algo, rec.Dataset,
			float64(rec.NsPerRun)/float64(time.Millisecond),
			rec.EdgesPerSec/1e6, rec.Iterations, rec.Edges)
	}
	return out
}

func pluralReps(recs []BenchRecord) string {
	if len(recs) == 0 {
		return "?"
	}
	return fmt.Sprintf("%d", recs[0].Reps)
}
