package harness

import (
	"strings"
	"testing"
)

func TestAsciiChartShape(t *testing.T) {
	out := AsciiChart("demo", "it",
		Series{Name: "a", Values: []float64{0, 50, 100}},
		Series{Name: "b", Values: []float64{100, 25}},
	)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "# = a") || !strings.Contains(out, "* = b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 2 legend + 3 rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Row 2 (value 100 for a) must have a full-width bar; row 0 (value 0)
	// must have none.
	if !strings.Contains(lines[5], strings.Repeat("#", 40)) {
		t.Fatalf("full bar missing: %q", lines[5])
	}
	if strings.Contains(lines[3], "#") {
		t.Fatalf("zero value drew a bar: %q", lines[3])
	}
	// Shorter series pad with "-".
	if !strings.Contains(lines[5], "/ -") {
		t.Fatalf("missing placeholder for exhausted series: %q", lines[5])
	}
}

func TestAsciiChartAllZero(t *testing.T) {
	out := AsciiChart("z", "x", Series{Name: "s", Values: []float64{0, 0}})
	if !strings.Contains(out, "x 1") {
		t.Fatalf("rows missing:\n%s", out)
	}
}

func TestAsciiChartTinyValueGetsMinBar(t *testing.T) {
	out := AsciiChart("t", "x", Series{Name: "s", Values: []float64{0.001, 100}})
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[2], "#") {
		t.Fatalf("tiny nonzero value drew no bar: %q", lines[2])
	}
}
