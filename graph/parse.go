package graph

import (
	"bytes"
	"fmt"

	"thriftylp/internal/parallel"
)

// Chunked parallel edge-list parsing: the input buffer is split at newline
// boundaries into several shards per worker, each shard is scanned into a
// private []Edge with a strconv-free integer scanner (no per-line string
// allocation, no Fields split), and the shard outputs are concatenated in
// shard order — so the resulting edge order is identical to a sequential
// scan of the file, independent of scheduling.
//
// Field separators are ASCII whitespace (space, tab, \v, \f, \r); lines end
// at '\n' (CRLF therefore works, the '\r' reads as a trailing separator).
// '#'- and '%'-prefixed lines and blank lines are skipped, extra fields
// beyond the first two are ignored — the same language the previous
// scanner-based reader accepted for ASCII inputs.

const (
	// parseParallelCutoff is the input size below which sharding costs more
	// than it saves and a single shard is parsed inline.
	parseParallelCutoff = 1 << 16
	// parseShardsPerThread oversubscribes shards so dynamic chunk claiming
	// can even out shards with unlike comment/blank-line density.
	parseShardsPerThread = 4
)

// splitChunks cuts data into at most k newline-bounded chunks of roughly
// equal byte size. Invariants: the concatenation of the chunks is exactly
// data, no chunk is empty, and every chunk except possibly the last ends
// with '\n' — so no text line ever spans two chunks.
func splitChunks(data []byte, k int) [][]byte {
	if k < 1 {
		k = 1
	}
	chunks := make([][]byte, 0, k)
	start := 0
	for i := 1; i <= k && start < len(data); i++ {
		end := int(int64(len(data)) * int64(i) / int64(k))
		if end < start {
			end = start
		}
		if i == k || end >= len(data) {
			end = len(data)
		} else if j := bytes.IndexByte(data[end:], '\n'); j >= 0 {
			end += j + 1
		} else {
			end = len(data)
		}
		if end > start {
			chunks = append(chunks, data[start:end])
		}
		start = end
	}
	return chunks
}

// isFieldSep reports whether c separates fields within a line.
func isFieldSep(c byte) bool {
	return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r'
}

// parseError is a shard-local parse failure; the global line number is
// resolved lazily (only errors pay for line counting).
type parseError struct {
	localLine int // 1-based line index within the shard
	msg       string
}

// scanVertexID scans one decimal vertex id starting at row[p]. The field
// must consist solely of digits and end at a separator or the line end;
// values above the uint32 range are rejected. Returns the id, the index one
// past the field, and whether the scan succeeded.
func scanVertexID(row []byte, p int) (uint32, int, bool) {
	start := p
	var v uint64
	for p < len(row) {
		c := row[p]
		if c >= '0' && c <= '9' {
			// v stays <= MaxUint32 before each step, so v*10+9 cannot
			// overflow uint64.
			v = v*10 + uint64(c-'0')
			if v > uint64(^uint32(0)) {
				return 0, p, false
			}
			p++
			continue
		}
		if isFieldSep(c) {
			break
		}
		return 0, p, false
	}
	if p == start {
		return 0, p, false
	}
	return uint32(v), p, true
}

// parseEdgeChunk scans one newline-bounded chunk, appending parsed edges to
// dst. On a malformed line it stops and reports the shard-local line index.
func parseEdgeChunk(chunk []byte, dst []Edge) ([]Edge, *parseError) {
	line := 0
	for len(chunk) > 0 {
		line++
		var row []byte
		if j := bytes.IndexByte(chunk, '\n'); j >= 0 {
			row, chunk = chunk[:j], chunk[j+1:]
		} else {
			row, chunk = chunk, nil
		}
		p := 0
		for p < len(row) && isFieldSep(row[p]) {
			p++
		}
		if p == len(row) || row[p] == '#' || row[p] == '%' {
			continue
		}
		u, q, ok := scanVertexID(row, p)
		if !ok {
			return dst, &parseError{line, fmt.Sprintf("want two numeric vertex ids, got %q", bytes.TrimSpace(row))}
		}
		p = q
		for p < len(row) && isFieldSep(row[p]) {
			p++
		}
		if p == len(row) {
			return dst, &parseError{line, fmt.Sprintf("want at least two fields, got %q", bytes.TrimSpace(row))}
		}
		v, _, ok := scanVertexID(row, p)
		if !ok {
			return dst, &parseError{line, fmt.Sprintf("want two numeric vertex ids, got %q", bytes.TrimSpace(row))}
		}
		// The id space is [0, MaxUint32): the top id is reserved because
		// several consumers compute id+1 (Thrifty's planted labels, CSR
		// degree indexing), which must not wrap.
		if u == maxVertexID || v == maxVertexID {
			return dst, &parseError{line, fmt.Sprintf("vertex id %d is reserved", maxVertexID)}
		}
		dst = append(dst, Edge{U: u, V: v})
	}
	return dst, nil
}

// edgeCapFor sizes a shard's private edge buffer from its byte length: the
// shortest possible edge line ("0 1\n") is 4 bytes and realistic lines run
// longer, so bytes/8 overshoots by at most ~2x and usually pre-sizes right.
func edgeCapFor(chunkBytes int) int {
	return chunkBytes/8 + 8
}

// parseEdgeList parses a whole edge-list buffer into an edge slice, sharding
// the work across the pool. The returned edge order equals the file order.
func parseEdgeList(data []byte, pool *parallel.Pool) ([]Edge, error) {
	if pool == nil {
		pool = parallel.Default()
	}
	k := 1
	if pool.Threads() > 1 && len(data) >= parseParallelCutoff {
		k = pool.Threads() * parseShardsPerThread
	}
	chunks := splitChunks(data, k)
	if len(chunks) == 0 {
		return nil, nil
	}
	if len(chunks) == 1 {
		edges, perr := parseEdgeChunk(chunks[0], make([]Edge, 0, edgeCapFor(len(chunks[0]))))
		if perr != nil {
			return nil, perr.global(chunks, 0)
		}
		return edges, nil
	}
	shardEdges := make([][]Edge, len(chunks))
	shardErrs := make([]*parseError, len(chunks))
	parallel.For(pool, len(chunks), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			//thrifty:benign-race per-shard result slots; each worker owns a disjoint index range
			shardEdges[i], shardErrs[i] = parseEdgeChunk(chunks[i], make([]Edge, 0, edgeCapFor(len(chunks[i]))))
		}
	})
	// The lowest-shard error is the first bad line of the file: shards are
	// contiguous and each shard stops at its first malformed line.
	for i, perr := range shardErrs {
		if perr != nil {
			return nil, perr.global(chunks, i)
		}
	}
	starts := make([]int, len(chunks)+1)
	for i, se := range shardEdges {
		starts[i+1] = starts[i] + len(se)
	}
	out := make([]Edge, starts[len(chunks)])
	parallel.For(pool, len(chunks), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out[starts[i]:], shardEdges[i])
		}
	})
	return out, nil
}

// global resolves a shard-local parse error to a file-global error by
// counting the newlines of the preceding shards (done only on the error
// path, so the happy path never pays for line accounting).
func (e *parseError) global(chunks [][]byte, shard int) error {
	line := e.localLine
	for _, c := range chunks[:shard] {
		line += bytes.Count(c, []byte{'\n'})
	}
	return fmt.Errorf("graph: line %d: %s", line, e.msg)
}
