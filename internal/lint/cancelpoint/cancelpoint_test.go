package cancelpoint_test

import (
	"testing"

	"thriftylp/internal/lint/cancelpoint"
	"thriftylp/internal/lint/linttest"
)

func TestCancelpoint(t *testing.T) {
	linttest.Run(t, linttest.TestData(), cancelpoint.Analyzer, "core")
}
