package cc_test

import (
	"fmt"
	"testing"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// fixtures returns the adversarial and realistic graph matrix every
// algorithm must agree with the sequential oracle on.
func fixtures(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	fs := map[string]*graph.Graph{}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			t.Fatalf("building fixture %s: %v", name, err)
		}
		fs[name] = g
	}
	g, err := gen.Empty(0)
	add("empty", g, err)
	g, err = gen.Empty(1)
	add("one-vertex", g, err)
	g, err = gen.Empty(100)
	add("isolated-100", g, err)
	g, err = gen.Path(1000)
	add("path-1000", g, err)
	g, err = gen.Cycle(257)
	add("cycle-257", g, err)
	g, err = gen.Star(5000)
	add("star-5000", g, err)
	g, err = gen.Complete(40)
	add("complete-40", g, err)
	g, err = gen.Components(7, 13)
	add("cliques-7x13", g, err)
	g, err = gen.PaperFigure2()
	add("paper-fig2", g, err)
	g, err = gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	add("rmat-12", g, err)
	g, err = gen.RMATCompact(gen.DefaultRMAT(13, 4, 2))
	add("rmat-13-compact", g, err)
	g, err = gen.ErdosRenyi(4096, 8192, 3)
	add("er-4096", g, err)
	g, err = gen.Grid(gen.GridConfig{Rows: 64, Cols: 64, DropFraction: 0.05, Seed: 4})
	add("grid-64", g, err)
	g, err = gen.Web(gen.WebConfig{CoreScale: 10, CoreEdgeFactor: 8, NumChains: 8, ChainLength: 64, Seed: 5})
	add("web-10", g, err)
	g, err = gen.BarabasiAlbert(3000, 3, 6)
	add("ba-3000", g, err)
	// Self-loops and duplicate edges, not removed at build time.
	g, err = graph.BuildUndirected([]graph.Edge{
		{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 2, V: 2}, {U: 3, V: 4}, {U: 4, V: 3},
	}, graph.WithNumVertices(6))
	add("loops-dups", g, err)
	return fs
}

// TestAllAlgorithmsMatchOracle is the central correctness matrix: every
// algorithm × every fixture must produce the oracle's partition.
func TestAllAlgorithmsMatchOracle(t *testing.T) {
	for name, g := range fixtures(t) {
		oracle := cc.Sequential(g)
		for _, algo := range cc.Algorithms() {
			t.Run(fmt.Sprintf("%s/%s", name, algo), func(t *testing.T) {
				res, err := cc.Run(algo, g)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if len(res.Labels) != g.NumVertices() {
					t.Fatalf("got %d labels for %d vertices", len(res.Labels), g.NumVertices())
				}
				if !cc.Equivalent(res.Labels, oracle) {
					t.Fatalf("partition differs from oracle (iterations=%d)", res.Iterations)
				}
			})
		}
	}
}

// TestVerify exercises the public Verify helper in both directions.
func TestVerify(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	res := cc.Thrifty(g)
	if !cc.Verify(g, res.Labels) {
		t.Fatal("Verify rejected a correct labelling")
	}
	if g.NumVertices() > 1 && g.Degree(0) > 0 {
		bad := append([]uint32(nil), res.Labels...)
		bad[0] = ^uint32(0) // split vertex 0 from its component
		if cc.Verify(g, bad) {
			t.Fatal("Verify accepted a corrupted labelling")
		}
	}
}
