package cc_test

import (
	"testing"

	"thriftylp/cc"
	"thriftylp/graph"
)

// TestExhaustiveTinyGraphs enumerates EVERY undirected simple graph on 5
// vertices (all 2^10 = 1024 subsets of K5's edge set) and checks every
// algorithm against the oracle on each. Combined with the randomized
// property tests this gives exhaustive coverage of the small-graph corner
// cases (empty, disconnected, trees, cycles, cliques, and everything in
// between) that sampling could miss.
func TestExhaustiveTinyGraphs(t *testing.T) {
	const n = 5
	var pairs [][2]uint32
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]uint32{u, v})
		}
	}
	if len(pairs) != 10 {
		t.Fatalf("expected 10 vertex pairs, got %d", len(pairs))
	}
	algos := cc.Algorithms()
	for mask := 0; mask < 1<<len(pairs); mask++ {
		var edges []graph.Edge
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				edges = append(edges, graph.Edge{U: p[0], V: p[1]})
			}
		}
		g, err := graph.BuildUndirected(edges, graph.WithNumVertices(n))
		if err != nil {
			t.Fatalf("mask %04x: %v", mask, err)
		}
		oracle := cc.Sequential(g)
		for _, a := range algos {
			res, err := cc.Run(a, g)
			if err != nil {
				t.Fatalf("mask %04x %s: %v", mask, a, err)
			}
			if !cc.Equivalent(res.Labels, oracle) {
				t.Fatalf("mask %04x: %s computed wrong partition (labels %v, oracle %v)",
					mask, a, res.Labels, oracle)
			}
		}
	}
}

// TestExhaustiveTinyGraphsWithLoops repeats the sweep on 4 vertices with
// self-loops included in the enumerated edge set (2^10 again: 6 pairs + 4
// loops).
func TestExhaustiveTinyGraphsWithLoops(t *testing.T) {
	const n = 4
	var pairs [][2]uint32
	for u := uint32(0); u < n; u++ {
		for v := u; v < n; v++ { // v == u gives a self-loop
			pairs = append(pairs, [2]uint32{u, v})
		}
	}
	algos := cc.Algorithms()
	for mask := 0; mask < 1<<len(pairs); mask++ {
		var edges []graph.Edge
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				edges = append(edges, graph.Edge{U: p[0], V: p[1]})
			}
		}
		g, err := graph.BuildUndirected(edges, graph.WithNumVertices(n))
		if err != nil {
			t.Fatalf("mask %04x: %v", mask, err)
		}
		oracle := cc.Sequential(g)
		for _, a := range algos {
			res, err := cc.Run(a, g)
			if err != nil {
				t.Fatalf("mask %04x %s: %v", mask, a, err)
			}
			if !cc.Equivalent(res.Labels, oracle) {
				t.Fatalf("mask %04x: %s computed wrong partition", mask, a)
			}
		}
	}
}
