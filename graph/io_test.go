package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	return mustBuild(t, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}, {4, 4}},
		WithNumVertices(6), WithSortedAdjacency())
}

func graphsEqual(a, b *Graph) bool {
	return reflect.DeepEqual(a.Offsets(), b.Offsets()) &&
		reflect.DeepEqual(a.Adjacency(), b.Adjacency())
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(buf.String()),
		WithNumVertices(6), WithSortedAdjacency())
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatalf("round trip mismatch:\n%v\n%v", g.Adjacency(), g2.Adjacency())
	}
}

// TestWriteEdgeListGolden pins the exact text emitted by the allocation-free
// writer: header line, one "u v" pair per undirected edge with u <= v, in
// vertex order.
func TestWriteEdgeListGolden(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "# thriftylp edge list: 6 vertices, 6 edges\n" +
		"0 1\n0 3\n1 2\n1 3\n2 3\n4 4\n"
	if buf.String() != want {
		t.Fatalf("edge-list text drifted:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestReadEdgeListCommentsAndErrors(t *testing.T) {
	in := "# comment\n% other comment\n\n0 1\n1 2 999\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (third field ignored)", g.NumEdges())
	}
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 99999999999\n")); err == nil {
		t.Fatal("id overflowing uint32 accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip mismatch")
	}
	// Max-degree metadata must be recomputed on load.
	if g2.MaxDegreeVertex() != g.MaxDegreeVertex() {
		t.Fatal("max-degree vertex lost in round trip")
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), data...)
	bad[8] = 0xee
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Corrupted adjacency id (points out of range) must fail validation.
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] = 0x7f
	bad[len(bad)-2] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted adjacency accepted")
	}
	// Empty stream.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestFileSaveLoadAndDispatch(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary file round trip mismatch")
	}

	elPath := filepath.Join(dir, "g.el")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g3, err := Load(elPath)
	if err != nil {
		t.Fatal(err)
	}
	// An edge list carries no vertex count, so trailing isolated vertices
	// (vertex 5 here) are dropped on reload — a documented property of the
	// text format. Compare degrees over the surviving prefix.
	if g3.NumVertices() != 5 {
		t.Fatalf("edge-list reload has %d vertices, want 5 (isolated tail dropped)", g3.NumVertices())
	}
	for v := 0; v < g3.NumVertices(); v++ {
		if g.Degree(uint32(v)) != g3.Degree(uint32(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}

	if _, err := Load(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadEdgeList(filepath.Join(dir, "missing.el")); err == nil {
		t.Fatal("missing edge list accepted")
	}
}

func TestEmptyGraphIO(t *testing.T) {
	g := mustBuild(t, nil, WithNumVertices(0))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 0 {
		t.Fatal("empty graph round trip")
	}
}
