package serve

import (
	"context"
	"time"

	"thriftylp/internal/atomicx"
)

// admission is the load-shedding front door of the query path: a counting
// semaphore of MaxInFlight slots plus a bounded wait queue. A request either
// gets a slot immediately, waits up to QueueWait with at most MaxQueue peers
// also waiting, or is shed. Shedding is deliberate back-pressure: under
// saturation the server answers 429 with Retry-After in microseconds rather
// than letting latency collapse for everyone (and rather than letting the
// Go runtime queue unbounded handler goroutines).
type admission struct {
	slots     chan struct{} // capacity = max in-flight requests
	waiting   atomicx.Int64 // current queue depth
	maxQueue  int64
	queueWait time.Duration
}

func newAdmission(maxInFlight, maxQueue int, queueWait time.Duration) *admission {
	return &admission{
		slots:     make(chan struct{}, maxInFlight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
	}
}

// admit tries to claim an execution slot. On success it returns a release
// function the caller must invoke exactly once (usually deferred). ok=false
// means the request was shed — queue full, wait timed out, or the caller's
// context ended first.
func (a *admission) admit(ctx context.Context) (release func(), ok bool) {
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return a.release, true
	default:
	}
	// Bounded queue: reserve a waiter position or shed immediately. The
	// add-then-check pattern over-admits by at most the number of racing
	// requests (each of which backs out), never under-admits.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return nil, false
	}
	defer a.waiting.Add(-1)
	t := time.NewTimer(a.queueWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.release, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

func (a *admission) release() { <-a.slots }

// inFlight returns the number of currently held slots (metrics).
func (a *admission) inFlight() int { return len(a.slots) }

// queued returns the current wait-queue depth (metrics).
func (a *admission) queued() int64 { return a.waiting.Load() }
