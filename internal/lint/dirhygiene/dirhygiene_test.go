package dirhygiene_test

import (
	"testing"

	"thriftylp/internal/lint/dirhygiene"
	"thriftylp/internal/lint/linttest"
)

func TestDirHygiene(t *testing.T) {
	linttest.Run(t, linttest.TestData(), dirhygiene.Analyzer, "dirty")
}
