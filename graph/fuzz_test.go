package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the parsing/serialization surfaces. Under plain
// `go test` they run their seed corpus as regression tests; under
// `go test -fuzz=FuzzX` they explore further.

// hostileHeader builds a binary CSR header with valid magic and version but
// attacker-chosen vertex and slot counts, and no payload.
func hostileHeader(n, m uint64) []byte {
	var buf bytes.Buffer
	for _, h := range []uint64{0x54484c50, 1, n, m} {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(h >> (8 * i))
		}
		buf.Write(b[:])
	}
	return buf.Bytes()
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("0 1 extra tokens\n")
	f.Add("999999 3\n")
	f.Add("-1 2\n")
	f.Add("a b\n")
	f.Add(strings.Repeat("1 2\n", 100))
	// Newline-boundary shapes the sharded parser must cut around: CRLF line
	// ends, comment/blank lines at potential chunk boundaries, no final
	// newline, leading whitespace.
	f.Add("0 1\r\n1 2\r\n")
	f.Add("# c\n% c\n\n   \n0 1")
	f.Add("\t 0 \t1 \n")
	f.Add(strings.Repeat("# filler\n", 50) + "3 4\n" + strings.Repeat("\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid CSR: %v\ninput: %q", err, input)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and with mutations of it.
	g, err := BuildUndirected([]Edge{{0, 1}, {1, 2}, {2, 2}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Hostile headers: valid magic/version but counts far beyond the data.
	// These must fail with a truncation error, not allocate count-sized
	// arrays (the OOM vector this corpus pins down).
	f.Add(hostileHeader(1<<40, 1<<40))
	f.Add(hostileHeader(1<<62, 1<<62))                // payload size overflows int64
	f.Add(hostileHeader(uint64(1)<<33, 4))            // vertex count above uint32 space
	f.Add(hostileHeader(3, uint64(1)<<63))            // slot bytes overflow
	f.Add(append(hostileHeader(3, 8), valid[32:]...)) // plausible counts, short payload
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary produced invalid CSR: %v", err)
		}
	})
}

// parseEdgeListChunks parses pre-split chunks in shard order, mirroring the
// concatenation and lowest-shard-error-wins semantics of parseEdgeList.
func parseEdgeListChunks(chunks [][]byte) ([]Edge, error) {
	var out []Edge
	for i, c := range chunks {
		edges, perr := parseEdgeChunk(c, nil)
		out = append(out, edges...)
		if perr != nil {
			return out, perr.global(chunks, i)
		}
	}
	return out, nil
}

// FuzzSplitChunks pins the chunk splitter's invariants (lossless
// concatenation, newline-terminated chunks) and that a sharded parse is
// byte-for-byte equivalent to a single-chunk parse of the same input.
func FuzzSplitChunks(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 3\n"), uint8(3))
	f.Add([]byte("# c\n\n0 1\r\n"), uint8(7))
	f.Add([]byte("no newline at all"), uint8(2))
	f.Add([]byte("\n\n\n"), uint8(255))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		chunks := splitChunks(data, int(k))
		var total int
		for i, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("chunk %d empty", i)
			}
			if i < len(chunks)-1 && c[len(c)-1] != '\n' {
				t.Fatalf("chunk %d does not end with newline: %q", i, c)
			}
			total += len(c)
		}
		if total != len(data) {
			t.Fatalf("chunks cover %d bytes, input has %d", total, len(data))
		}
		cat := make([]byte, 0, len(data))
		for _, c := range chunks {
			cat = append(cat, c...)
		}
		if !bytes.Equal(cat, data) {
			t.Fatalf("concatenation differs from input")
		}

		// Sharded parse ≡ single-chunk parse: same edges or same error line.
		single, serr := parseEdgeChunk(data, nil)
		sharded, merr := parseEdgeListChunks(chunks)
		if (serr == nil) != (merr == nil) {
			t.Fatalf("error disagreement: single=%v sharded=%v", serr, merr)
		}
		if serr != nil {
			return
		}
		if len(single) != len(sharded) {
			t.Fatalf("edge count: single=%d sharded=%d", len(single), len(sharded))
		}
		for i := range single {
			if single[i] != sharded[i] {
				t.Fatalf("edge %d: single=%v sharded=%v", i, single[i], sharded[i])
			}
		}
	})
}

func FuzzBuildUndirected(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{5, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: uint32(raw[i]), V: uint32(raw[i+1])})
		}
		g, err := BuildUndirected(edges, WithDedup())
		if err != nil {
			t.Fatalf("build failed on in-range input: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph invalid: %v", err)
		}
		// Round trip through both formats preserves the structure.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumDirectedEdges() != g.NumDirectedEdges() {
			t.Fatal("binary round trip changed sizes")
		}
	})
}
