package worklist

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAddAndLen(t *testing.T) {
	s := New(100, 2)
	s.Add(0, 5)
	s.Add(1, 6)
	s.Add(0, 5) // duplicate, same thread: mark array suppresses it
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(5) || !s.Contains(6) || s.Contains(7) {
		t.Fatal("Contains wrong")
	}
	if s.Empty() {
		t.Fatal("Empty on non-empty set")
	}
}

func TestDrainDeliversEverythingOnce(t *testing.T) {
	const n = 10000
	const threads = 4
	s := New(n, threads)
	for v := 0; v < n; v++ {
		s.Add(v%threads, uint32(v))
	}
	counts := make([]int32, n)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Drain(tid, func(v uint32) { atomic.AddInt32(&counts[v], 1) })
		}(tid)
	}
	wg.Wait()
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("vertex %d delivered %d times, want exactly 1", v, c)
		}
	}
}

// TestDrainStealsAcrossThreads puts all work on thread 0's list and checks
// that other threads' Drain calls still retrieve it.
func TestDrainStealsAcrossThreads(t *testing.T) {
	const n = 1000
	s := New(n, 4)
	for v := 0; v < n; v++ {
		s.Add(0, uint32(v))
	}
	var got int64
	var wg sync.WaitGroup
	for tid := 1; tid < 4; tid++ { // note: owner thread 0 never drains
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s.Drain(tid, func(uint32) { atomic.AddInt64(&got, 1) })
		}(tid)
	}
	wg.Wait()
	if got != n {
		t.Fatalf("stealers retrieved %d of %d items", got, n)
	}
}

func TestResetAllowsReuse(t *testing.T) {
	s := New(50, 2)
	for round := 0; round < 5; round++ {
		s.Add(0, 10)
		s.Add(1, 20)
		if s.Len() != 2 {
			t.Fatalf("round %d: Len = %d", round, s.Len())
		}
		var seen []uint32
		s.Drain(0, func(v uint32) { seen = append(seen, v) })
		sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
		if len(seen) != 2 || seen[0] != 10 || seen[1] != 20 {
			t.Fatalf("round %d: drained %v", round, seen)
		}
		s.Reset()
		if !s.Empty() || s.Contains(10) {
			t.Fatalf("round %d: Reset incomplete", round)
		}
	}
}

func TestAddIfAbsent(t *testing.T) {
	s := New(100, 2)
	if !s.AddIfAbsent(0, 5) {
		t.Fatal("first AddIfAbsent(5) should report insertion")
	}
	if s.AddIfAbsent(1, 5) {
		t.Fatal("second AddIfAbsent(5) should report already-present")
	}
	if !s.Contains(5) || s.Len() != 1 {
		t.Fatalf("after AddIfAbsent: Contains(5)=%v Len=%d", s.Contains(5), s.Len())
	}
	// Must also see vertices queued by the other insertion paths.
	s.Add(0, 7)
	if s.AddIfAbsent(1, 7) {
		t.Fatal("AddIfAbsent must report vertices inserted via Add as present")
	}
	s.AddUnchecked(0, 9)
	if s.AddIfAbsent(1, 9) {
		t.Fatal("AddIfAbsent must report vertices inserted via AddUnchecked as present")
	}
	s.Reset()
	if !s.AddIfAbsent(0, 5) {
		t.Fatal("Reset should clear marks so AddIfAbsent inserts again")
	}
}

func TestAddUnchecked(t *testing.T) {
	s := New(10, 1)
	s.AddUnchecked(0, 3)
	if !s.Contains(3) || s.Len() != 1 {
		t.Fatal("AddUnchecked did not mark/queue")
	}
	// A checked Add afterwards must be suppressed.
	s.Add(0, 3)
	if s.Len() != 1 {
		t.Fatal("duplicate after AddUnchecked not suppressed")
	}
}

// TestConcurrentAddDuplicatesAreBounded verifies the benign-race contract:
// concurrent Adds of the same vertex may duplicate, but every queued vertex
// is marked, and the queue never exceeds threads copies of one vertex.
func TestConcurrentAddDuplicatesAreBounded(t *testing.T) {
	const threads = 8
	s := New(16, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(tid, uint32(i%16))
			}
		}(tid)
	}
	wg.Wait()
	if s.Len() > 16*threads {
		t.Fatalf("queue holds %d entries for 16 vertices × %d threads", s.Len(), threads)
	}
	for v := uint32(0); v < 16; v++ {
		if !s.Contains(v) {
			t.Fatalf("vertex %d lost", v)
		}
	}
	// ForEach must visit at least each distinct vertex.
	seen := map[uint32]bool{}
	s.ForEach(func(v uint32) { seen[v] = true })
	if len(seen) != 16 {
		t.Fatalf("ForEach saw %d distinct vertices, want 16", len(seen))
	}
}

func TestThreadsAccessor(t *testing.T) {
	if New(1, 3).Threads() != 3 {
		t.Fatal("Threads accessor wrong")
	}
	if New(1, 0).Threads() != 1 {
		t.Fatal("zero threads should clamp to 1")
	}
}
