package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the parsing/serialization surfaces. Under plain
// `go test` they run their seed corpus as regression tests; under
// `go test -fuzz=FuzzX` they explore further.

// hostileHeader builds a binary CSR header with valid magic and version but
// attacker-chosen vertex and slot counts, and no payload.
func hostileHeader(n, m uint64) []byte {
	var buf bytes.Buffer
	for _, h := range []uint64{0x54484c50, 1, n, m} {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(h >> (8 * i))
		}
		buf.Write(b[:])
	}
	return buf.Bytes()
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("0 1 extra tokens\n")
	f.Add("999999 3\n")
	f.Add("-1 2\n")
	f.Add("a b\n")
	f.Add(strings.Repeat("1 2\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid CSR: %v\ninput: %q", err, input)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and with mutations of it.
	g, err := BuildUndirected([]Edge{{0, 1}, {1, 2}, {2, 2}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Hostile headers: valid magic/version but counts far beyond the data.
	// These must fail with a truncation error, not allocate count-sized
	// arrays (the OOM vector this corpus pins down).
	f.Add(hostileHeader(1<<40, 1<<40))
	f.Add(hostileHeader(1<<62, 1<<62))                // payload size overflows int64
	f.Add(hostileHeader(uint64(1)<<33, 4))            // vertex count above uint32 space
	f.Add(hostileHeader(3, uint64(1)<<63))            // slot bytes overflow
	f.Add(append(hostileHeader(3, 8), valid[32:]...)) // plausible counts, short payload
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary produced invalid CSR: %v", err)
		}
	})
}

func FuzzBuildUndirected(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{5, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: uint32(raw[i]), V: uint32(raw[i+1])})
		}
		g, err := BuildUndirected(edges, WithDedup())
		if err != nil {
			t.Fatalf("build failed on in-range input: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph invalid: %v", err)
		}
		// Round trip through both formats preserves the structure.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumDirectedEdges() != g.NumDirectedEdges() {
			t.Fatal("binary round trip changed sizes")
		}
	})
}
