package cc

import (
	"time"

	"thriftylp/graph"
)

// SchedStats summarizes the runtime-scheduler activity of one run. All of it
// is collected at partition and job boundaries — never per edge — so it is
// available even on the uninstrumented fast path at no measurable cost.
type SchedStats struct {
	// PartitionsOwned counts sweep partitions a worker ran from its own
	// block; PartitionsStolen counts partitions taken from another worker's
	// block (the §V-A work-stealing discipline). Their ratio is the
	// load-balance signal: a healthy skewed-graph run steals a small but
	// non-zero fraction. Both are zero under WithDynamicScheduling and for
	// algorithms that do not sweep through the stealer.
	PartitionsOwned  int64
	PartitionsStolen int64
	// FailedSteals counts steal-scan claim attempts that found the
	// partition already taken.
	FailedSteals int64
	// PoolJobs counts worker-job invocations on the run's pool and PoolIdle
	// sums the time those workers spent parked between jobs. On the shared
	// default pool these are deltas over the run's duration; concurrent
	// runs sharing a pool will see each other's activity.
	PoolJobs int64
	PoolIdle time.Duration
}

// RunStats is the always-on telemetry of a run, attached to every Result by
// Run/RunContext. Unlike WithInstrumentation — which switches the kernels to
// their counting path and taxes the traversal — RunStats is assembled
// entirely from iteration- and partition-boundary bookkeeping, so requesting
// it does not perturb what it measures.
type RunStats struct {
	// Algorithm is the algorithm the caller asked for ("auto" for
	// selector-driven runs; see Selected).
	Algorithm Algorithm
	// Selected is the concrete algorithm an AlgoAuto run resolved to; empty
	// when the caller named an algorithm directly.
	Selected Algorithm
	// Probe is the structural fingerprint an AlgoAuto run measured to make
	// its choice, including the probe's own cost and the decision rule that
	// fired. Nil unless Algorithm is AlgoAuto.
	Probe *ProbeStats
	// Duration is the wall time of the whole run.
	Duration time.Duration
	// PhaseDurations sums wall time per iteration kind ("pull", "push",
	// "pull-frontier", "initial-push"), measured at iteration boundaries.
	// Nil for the union-find algorithms, whose passes are not phase loops.
	PhaseDurations map[string]time.Duration
	// Sched is the run's scheduler activity.
	Sched SchedStats
	// Events maps event name → software event count (same names as
	// Instrumentation.Events). Nil unless the run was instrumented: event
	// counting requires the kernels' counting path.
	Events map[string]int64
	// Ingest carries the load/build timings of the graph the run consumed.
	// Nil unless the caller supplied them via WithIngestStats.
	Ingest *graph.IngestStats
	// Shard is the sharded pipeline's exchange telemetry. Nil unless the run
	// executed AlgoShard (directly or via the selector).
	Shard *ShardStats
}

// PhaseDuration returns the summed wall time of one iteration kind, zero if
// the phase never ran.
func (s *RunStats) PhaseDuration(kind string) time.Duration {
	if s == nil {
		return 0
	}
	return s.PhaseDurations[kind]
}
