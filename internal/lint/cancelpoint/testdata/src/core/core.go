// Fixture for the cancelpoint analyzer. The package is named core so the
// package-path gate applies; it defines its own Config/cancelPoint pair with
// the same shapes as the real kernel package.
package core

type Result struct{ Iterations int }

type Config struct{ stopped bool }

func (c *Config) cancelPoint(res *Result) bool { return c.stopped }

// GoodDirect polls at its own iteration boundary.
func GoodDirect(n int, cfg *Config) Result {
	var res Result
	for i := 0; i < n; i++ {
		res.Iterations++
		if cfg.cancelPoint(&res) {
			break
		}
	}
	return res
}

// GoodViaHelper reaches the poll through an unexported helper, like the
// generic kernel bodies in the real package.
func GoodViaHelper(cfg *Config) Result {
	var res Result
	iterate(cfg, &res)
	return res
}

func iterate(cfg *Config, res *Result) {
	for !cfg.cancelPoint(res) {
		res.Iterations++
	}
}

// GoodByValue takes Config by value; the poll still counts.
func GoodByValue(cfg Config) Result {
	var res Result
	cfg.cancelPoint(&res)
	return res
}

func BadKernel(n int, cfg *Config) Result { // want `never reaches cfg\.cancelPoint`
	var res Result
	for i := 0; i < n; i++ {
		res.Iterations++
	}
	return res
}

func BadViaHelper(cfg *Config) Result { // want `never reaches cfg\.cancelPoint`
	var res Result
	spin(&res)
	return res
}

func spin(res *Result) { res.Iterations++ }

// ExemptSetup declares itself non-iterative.
//
//thrifty:nocancel
func ExemptSetup(cfg *Config) Result { return Result{} }

// notExported is not a kernel entry: unexported functions are reachable
// only through exported ones, which carry the obligation.
func notExported(cfg *Config) {}

// NoConfig is exported but takes no Config, so it is not a kernel entry.
func NoConfig(n int) int { return n * 2 }
