package errfreeze

// Frozen is the checked-in list of error format strings the graph package is
// allowed to construct (the first argument of its fmt.Errorf / errors.New
// calls). Graph I/O error text is part of the package's contract: callers,
// fixtures and the hardening tests match on it, so a refactor that rewords a
// message is an API change, not a cleanup.
//
// To change an error string deliberately: update the call site AND this
// list in the same commit. The errfreeze analyzer fails when a live string
// is missing here; TestFrozenRoundTrip fails when an entry here no longer
// exists in the live package, so the two can never drift apart silently.
var Frozen = map[string]bool{
	"element %d of %d: %w":                           true,
	"graph: %d vertices exceeds the id space [0,%d)": true,
	"graph: %s: header claims %d vertices and %d slots (%d payload bytes) but file holds %d": true,
	"graph: %s: reading adjacency: %w":                                     true,
	"graph: %s: reading offsets: %w":                                       true,
	"graph: adjacency slot %d references vertex %d out of range [0,%d)":    true,
	"graph: adjacency without offsets":                                     true,
	"graph: bad magic %#x":                                                 true,
	"graph: duplicate vertex %d in subgraph set":                           true,
	"graph: edge {%d,%d} out of range [0,%d)":                              true,
	"graph: empty offsets array":                                           true,
	"graph: header claims %d vertices, above the uint32 id space":          true,
	"graph: header sizes overflow (%d vertices, %d slots)":                 true,
	"graph: labelling has %d entries for %d vertices":                      true,
	"graph: line %d: %s":                                                   true,
	"graph: mmap unavailable":                                              true,
	"graph: negative slot count %d":                                        true,
	"graph: offsets byte size overflows (%d entries, %d slots)":            true,
	"graph: offsets not monotone at vertex %d":                             true,
	"graph: offsets[%d] = %d, want len(adj) = %d":                          true,
	"graph: offsets[%d] = %d, want slot count %d":                          true,
	"graph: offsets[0] = %d, want 0":                                       true,
	"graph: perm maps two vertices to %d":                                  true,
	"graph: perm[%d] = %d out of range":                                    true,
	"graph: permutation has %d entries for %d vertices":                    true,
	"graph: reading adjacency: %w":                                         true,
	"graph: reading binary header: %w":                                     true,
	"graph: reading offsets: %w":                                           true,
	"graph: reading slice header: %w":                                      true,
	"graph: slice has %d offsets for range [%d,%d)":                        true,
	"graph: slice header range [%d,%d) invalid for %d vertices":            true,
	"graph: slice range [%d,%d) invalid for %d vertices":                   true,
	"graph: subgraph vertex %d out of range [0,%d)":                        true,
	"graph: unsupported version %d":                                        true,
	"graph: use of mmap-backed graph after Close":                          true,
	"graph: vertex %d degree %d exceeds the uint32 range":                  true,
	"graph: vertex %d has out-degree %d but in-degree %d (asymmetric CSR)": true,
	"graph: vertex id %d is reserved (id space is [0,%d))":                 true,
}
