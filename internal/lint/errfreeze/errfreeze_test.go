package errfreeze_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thriftylp/internal/lint/errfreeze"
	"thriftylp/internal/lint/linttest"
)

func TestErrfreeze(t *testing.T) {
	linttest.Run(t, linttest.TestData(), errfreeze.Analyzer, "graph")
}

// TestFrozenRoundTrip is the reverse direction of the analyzer: every entry
// in the Frozen list must still exist as a literal error string in the live
// graph package, so deleted or reworded call sites cannot leave stale
// entries behind. Together the two checks force Frozen == live strings.
func TestFrozenRoundTrip(t *testing.T) {
	graphDir := filepath.Join("..", "..", "..", "graph")
	entries, err := os.ReadDir(graphDir)
	if err != nil {
		t.Fatalf("reading graph package dir: %v", err)
	}
	live := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(graphDir, name), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, site := range errfreeze.ErrorStrings(f) {
			live[site.Text] = true
		}
	}
	if len(live) == 0 {
		t.Fatal("found no error strings in the live graph package; is the path right?")
	}
	for s := range errfreeze.Frozen {
		if !live[s] {
			t.Errorf("frozen error string %q no longer exists in package graph: remove it from frozen.go in the commit that changed the call site", s)
		}
	}
}
