package obs

import (
	"io"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"thriftylp/internal/atomicx"
)

// This file is the serving layer's self-monitoring: a Watchdog goroutine
// that periodically publishes runtime health (GC pause, heap, goroutine
// count) and caller-registered probes (snapshot refcounts, mmap residency)
// as gauges, plus a stall detector — long-running operations register
// Heartbeats with a deadline, and when one overruns, the watchdog logs a
// full goroutine dump exactly once per overrun so the operator sees *where*
// the process is stuck, not just that it is. The watchdog also monitors
// itself: if its own ticks arrive late, the scheduler (or the whole
// machine) is stalling, and that lag is published too.

// Watchdog metric names. Runtime totals are published as gauges holding
// monotone values — the scrape-side rate() works the same and the registry
// keeps one write path for float metrics.
const (
	MetricHeapAlloc    = "thriftylp_runtime_heap_alloc_bytes"
	MetricHeapInuse    = "thriftylp_runtime_heap_inuse_bytes"
	MetricSysBytes     = "thriftylp_runtime_sys_bytes"
	MetricGoroutines   = "thriftylp_runtime_goroutines"
	MetricGCPauseTotal = "thriftylp_runtime_gc_pause_seconds_total"
	MetricGCCycles     = "thriftylp_runtime_gc_cycles_total"
	MetricTicks        = "thriftylp_watchdog_ticks_total"
	MetricStalls       = "thriftylp_watchdog_stalls_total"
	MetricTickLag      = "thriftylp_watchdog_tick_lag_seconds"
)

// WatchdogConfig parameterizes a Watchdog; the zero value of every field
// gets a sensible default in NewWatchdog.
type WatchdogConfig struct {
	// Interval between health ticks (default 10s).
	Interval time.Duration
	// Registry receives the gauges (default: a private registry — pass the
	// serving registry so /metrics exposes them).
	Registry *Registry
	// Log receives stall events (default: discard).
	Log *slog.Logger
	// DumpTo receives goroutine dumps on stall (default os.Stderr). Dumps
	// are bounded to 1MiB.
	DumpTo io.Writer
}

// Watchdog publishes runtime health gauges and watches heartbeats for
// stalls. Create with NewWatchdog, register probes and heartbeats, then
// Start; Stop when draining.
type Watchdog struct {
	cfg WatchdogConfig

	mu     sync.Mutex
	probes []probe
	beats  []*Heartbeat

	lastTick atomicx.Int64 // unix ns of the previous tick (self-stall check)
	stop     chan struct{}
	done     chan struct{}
}

type probe struct {
	name string
	fn   func() float64
}

// NewWatchdog builds a watchdog around cfg without starting it.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = NopLogger()
	}
	if cfg.DumpTo == nil {
		cfg.DumpTo = os.Stderr
	}
	return &Watchdog{cfg: cfg}
}

// Gauge registers a probe: fn is called on every tick and its result
// published as a gauge under name. fn must be safe to call from the
// watchdog goroutine and should be cheap (it runs at Interval).
func (w *Watchdog) Gauge(name string, fn func() float64) {
	w.mu.Lock()
	w.probes = append(w.probes, probe{name, fn})
	w.mu.Unlock()
}

// Heartbeat registers a named heartbeat with a stall deadline: an operation
// that calls Begin and does not call End within deadline triggers a stall
// event (log line + goroutine dump), once per overrunning activation.
func (w *Watchdog) Heartbeat(name string, deadline time.Duration) *Heartbeat {
	hb := &Heartbeat{name: name, deadline: deadline.Nanoseconds()}
	w.mu.Lock()
	w.beats = append(w.beats, hb)
	w.mu.Unlock()
	return hb
}

// Start launches the watchdog goroutine. It ticks immediately once (so
// gauges exist from the first scrape) and then every Interval until Stop.
func (w *Watchdog) Start() {
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	w.lastTick.Store(time.Now().UnixNano())
	//thrifty:goroutine exits when Stop closes w.stop; Stop waits on w.done
	go func() {
		defer close(w.done)
		w.tick()
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.tick()
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop halts the watchdog goroutine and waits for it to exit. Safe to call
// once after Start; a never-started watchdog needs no Stop.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

// tick publishes one round of health gauges and checks every heartbeat.
func (w *Watchdog) tick() {
	now := time.Now().UnixNano()
	reg := w.cfg.Registry

	// Self-check first: if this tick is badly late, the scheduler was not
	// running us — which is itself the most important thing to report.
	prev := w.lastTick.Swap(now)
	lag := time.Duration(now-prev) - w.cfg.Interval
	if lag < 0 {
		lag = 0
	}
	reg.SetGauge(MetricTickLag, lag.Seconds())
	if w.cfg.Interval > 0 && lag > 2*w.cfg.Interval {
		w.cfg.Log.Warn("watchdog tick late: scheduler or host stall",
			"lag", lag, "interval", w.cfg.Interval)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.SetGauge(MetricHeapAlloc, float64(ms.HeapAlloc))
	reg.SetGauge(MetricHeapInuse, float64(ms.HeapInuse))
	reg.SetGauge(MetricSysBytes, float64(ms.Sys))
	reg.SetGauge(MetricGCPauseTotal, time.Duration(ms.PauseTotalNs).Seconds())
	reg.SetGauge(MetricGCCycles, float64(ms.NumGC))
	reg.SetGauge(MetricGoroutines, float64(runtime.NumGoroutine()))

	w.mu.Lock()
	probes := w.probes
	beats := w.beats
	w.mu.Unlock()
	for _, p := range probes {
		reg.SetGauge(p.name, p.fn())
	}
	for _, hb := range beats {
		if elapsed, stalled := hb.check(now); stalled {
			reg.Add(MetricStalls, 1)
			w.cfg.Log.Error("stall detected: operation past its deadline",
				"op", hb.name, "elapsed", elapsed, "deadline", time.Duration(hb.deadline))
			w.dumpGoroutines()
		}
	}
	reg.Add(MetricTicks, 1)
}

// dumpGoroutines writes a bounded all-goroutine stack dump to DumpTo.
func (w *Watchdog) dumpGoroutines() {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	_, _ = w.cfg.DumpTo.Write(buf[:n])
	if n == len(buf) {
		_, _ = io.WriteString(w.cfg.DumpTo, "\n...goroutine dump truncated at 1MiB\n")
	}
}

// Heartbeat tracks one long-running operation kind for the stall detector.
// Begin/End bracket each activation; both are single atomic stores, cheap
// enough for per-request use. The dump fires at most once per activation:
// a reload stuck for ten minutes produces one goroutine dump, not one per
// watchdog tick.
type Heartbeat struct {
	name     string
	deadline int64
	started  atomicx.Int64 // unix ns of the current activation, 0 when idle
	dumped   atomicx.Bool  // this activation already reported
	stalls   atomicx.Int64
}

// Begin marks the start of an activation.
func (h *Heartbeat) Begin() {
	h.dumped.Store(false)
	h.started.Store(time.Now().UnixNano())
}

// End marks the activation finished.
func (h *Heartbeat) End() { h.started.Store(0) }

// Stalls returns how many activations overran the deadline.
func (h *Heartbeat) Stalls() int64 { return h.stalls.Load() }

// check reports whether the current activation just crossed the deadline
// (only the first check after the crossing returns stalled=true).
func (h *Heartbeat) check(now int64) (elapsed time.Duration, stalled bool) {
	st := h.started.Load()
	if st == 0 || now-st < h.deadline {
		return 0, false
	}
	if !h.dumped.CompareAndSwap(false, true) {
		return 0, false
	}
	h.stalls.Add(1)
	return time.Duration(now - st), true
}
