package obs

import (
	"context"
	"io"
	"log/slog"

	"thriftylp/cc"
)

// NewLogger builds the CLIs' structured logger: text or JSON handler on w at
// the given level. Pass slog.LevelDebug to see per-iteration events;
// slog.LevelInfo shows run lifecycle and phase switches only.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything, so call sites can log
// unconditionally instead of nil-checking.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// RunLogger narrates one run's lifecycle on a slog.Logger: a start event,
// per-iteration debug events, phase-switch info events (the moment the
// direction decision flips, with the frontier density that drove it), and a
// done/canceled event. It consumes the iteration stream after the run — it
// adds nothing to the traversal itself.
type RunLogger struct {
	Log *slog.Logger
}

// Start logs the run-start event.
func (l RunLogger) Start(algo cc.Algorithm, vertices int, edges int64, threads int) {
	l.Log.Info("run start",
		"algo", string(algo), "vertices", vertices, "edges", edges, "threads", threads)
}

// Iterations logs the run's iteration stream: every iteration at debug level
// and an info event at each phase switch explaining the direction decision.
func (l RunLogger) Iterations(algo cc.Algorithm, iters []cc.IterationStats) {
	prev := ""
	for _, it := range iters {
		if it.Kind != prev {
			l.Log.Info("phase switch",
				"algo", string(algo), "iter", it.Index, "from", prev, "to", it.Kind,
				"active", it.Active, "active_edges", it.ActiveEdges,
				"density", it.Density, "threshold", it.Threshold)
			prev = it.Kind
		}
		if l.Log.Enabled(context.Background(), slog.LevelDebug) {
			l.Log.Debug("iteration",
				"algo", string(algo), "iter", it.Index, "kind", it.Kind,
				"active", it.Active, "active_edges", it.ActiveEdges,
				"changed", it.Changed, "edges", it.Edges,
				"density", it.Density, "threshold", it.Threshold,
				"duration", it.Duration)
		}
	}
}

// Done logs the run-complete event with its headline telemetry.
func (l RunLogger) Done(res *cc.Result) {
	attrs := []any{"iterations", res.Iterations, "components", res.NumComponents()}
	if st := res.Stats; st != nil {
		attrs = append(attrs,
			"algo", string(st.Algorithm),
			"duration", st.Duration,
			"partitions_owned", st.Sched.PartitionsOwned,
			"partitions_stolen", st.Sched.PartitionsStolen)
	}
	l.Log.Info("run done", attrs...)
}

// Canceled logs a cooperative-cancellation event.
func (l RunLogger) Canceled(err *cc.CanceledError) {
	l.Log.Warn("run canceled",
		"algo", string(err.Algorithm), "iterations", err.Iterations,
		"phase", err.Phase, "cause", err.Err)
}
