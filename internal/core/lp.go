package core

import (
	"thriftylp/internal/atomicx"
	"time"

	"thriftylp/graph"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// LP is the textbook synchronous Label Propagation CC (§II): every vertex,
// every iteration, takes the minimum of its own and its neighbours' labels
// from the previous iteration's array, until a fixed point. It has no
// frontier, no direction optimization and no convergence shortcuts — it is
// the semantic reference the optimized variants are validated against, and
// the zero line for measuring what DO-LP's frontier machinery buys.
func LP(g *graph.Graph, cfg Config) Result {
	switch {
	case cfg.Faults != nil:
		return lpRun(g, cfg, newChaos(cfg))
	case !cfg.fastInstr():
		return lpRun(g, cfg, newCounting(cfg))
	default:
		return lpRun(g, cfg, noInstr{})
	}
}

func lpRun[I instr[I]](g *graph.Graph, cfg Config, proto I) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	oldLbs := cfg.Arena.Uint32s(n)
	newLbs := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, oldLbs, func(i int) uint32 { return uint32(i) })
	parallel.Copy(pool, newLbs, oldLbs)
	sch := newScheduler(g, cfg, pool)

	res := Result{}
	maxIters := cfg.maxIters(n)
	var pullTime time.Duration
	totalE := g.Offsets()[n] // every iteration scans the full adjacency
	for res.Iterations < maxIters {
		start := time.Now()
		var ebefore int64
		if cfg.Trace.Enabled() {
			ebefore = cfg.Ctr.Total(counters.EdgesProcessed)
		}
		changed := lpSweep(g, sch, oldLbs, newLbs, cfg.Stop, proto)
		res.Iterations++
		dur := time.Since(start)
		pullTime += dur
		if cfg.Trace.Enabled() {
			// LP has no frontier and no direction decision: every vertex is
			// active every iteration, density is by definition 1 and there is
			// no threshold to compare against.
			cfg.Trace.Record(counters.IterRecord{
				Index:       res.Iterations - 1,
				Kind:        counters.KindPull,
				Active:      int64(n),
				ActiveEdges: totalE,
				Changed:     changed,
				Zero:        int64(n) - changed,
				Edges:       cfg.Ctr.Total(counters.EdgesProcessed) - ebefore,
				Density:     1,
				Duration:    dur,
			}, newLbs)
		}
		// The cancellation check must precede the convergence check: a
		// cancelled sweep skips partitions, and its changed count of 0
		// means "aborted", not "fixed point".
		if cfg.cancelPoint(&res, string(counters.KindPull)) {
			break
		}
		if changed == 0 {
			break
		}
		parallel.Copy(pool, oldLbs, newLbs)
	}
	res.Labels = newLbs
	res.PullIterations = res.Iterations
	res.Sched = sch.stealStats()
	res.PhaseDurations = map[string]time.Duration{string(counters.KindPull): pullTime}
	return res
}

// lpSweep runs one synchronous pull sweep: every vertex's new label becomes
// the minimum over itself and its neighbours in the old array. Returns the
// number of changed vertices.
func lpSweep[I instr[I]](g *graph.Graph, sch *scheduler, oldLbs, newLbs []uint32, stop *Stop, proto I) int64 {
	offs, adj := g.Offsets(), g.Adjacency()
	var changed int64
	sch.sweep(func(tid, lo, hi int) {
		ins := proto.Fresh()
		if stop.Requested() {
			return // cancellation poll at partition entry
		}
		var local int64
		for v := lo; v < hi; v++ {
			iVisit(ins)
			newLabel := oldLbs[v]
			iLoad(ins)
			for _, u := range adj[offs[v]:offs[v+1]] {
				iEdge(ins)
				iLoad(ins)
				iBranch(ins)
				if l := oldLbs[u]; l < newLabel {
					newLabel = l
				}
			}
			iBranch(ins)
			if newLabel < oldLbs[v] {
				newLbs[v] = newLabel
				iStore(ins)
				local++
			}
		}
		iFlush(ins, tid)
		if local > 0 {
			atomicx.AddInt64(&changed, local)
		}
	})
	return changed
}
