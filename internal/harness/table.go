// Package harness drives the reproduction of every table and figure in the
// paper's evaluation (§V): it defines the synthetic dataset suite standing
// in for Table II, per-experiment runners keyed by the paper's table/figure
// numbers, wall-time measurement utilities, and plain-text/CSV rendering
// used by cmd/ccbench and recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result: a titled grid plus free-form
// notes (the "expected shape" commentary comparing against the paper).
type Table struct {
	ID      string // experiment id, e.g. "table4", "fig5"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Chart, when non-empty, is an ASCII rendering of the figure's series
	// (built with AsciiChart) printed after the grid.
	Chart string
}

// AddRow appends a row, stringifying the cells with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat picks a compact human precision.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render returns the table as aligned monospaced text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Chart != "" {
		sb.WriteString("\n")
		sb.WriteString(t.Chart)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\nNote: %s\n", n)
	}
	return sb.String()
}

// CSV returns the table as comma-separated values (quotes elided: cells in
// this harness never contain commas).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}
