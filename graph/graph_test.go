package graph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, edges []Edge, opts ...BuildOption) *Graph {
	t.Helper()
	g, err := BuildUndirected(edges, opts...)
	if err != nil {
		t.Fatalf("BuildUndirected: %v", err)
	}
	return g
}

func TestBuildBasic(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {0, 2}})
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.NumDirectedEdges() != 6 {
		t.Fatalf("NumDirectedEdges = %d", g.NumDirectedEdges())
	}
	for v := uint32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Degree(%d) = %d", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEmpty(t *testing.T) {
	g := mustBuild(t, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g = mustBuild(t, nil, WithNumVertices(5))
	if g.NumVertices() != 5 || g.NumDirectedEdges() != 0 {
		t.Fatalf("edgeless graph: %v", g)
	}
}

func TestBuildSelfLoops(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 0}, {0, 1}})
	if g.Degree(0) != 2 { // one loop slot + one edge slot
		t.Fatalf("Degree(0) = %d, want 2", g.Degree(0))
	}
	g = mustBuild(t, []Edge{{0, 0}, {0, 1}}, WithoutSelfLoops())
	if g.Degree(0) != 1 {
		t.Fatalf("Degree(0) with WithoutSelfLoops = %d, want 1", g.Degree(0))
	}
}

func TestBuildDedup(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 1}}, WithDedup())
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges after dedup = %d, want 2", g.NumEdges())
	}
	nb := g.Neighbors(1)
	if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
		t.Fatalf("adjacency not sorted: %v", nb)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOutOfRange(t *testing.T) {
	if _, err := BuildUndirected([]Edge{{0, 9}}, WithNumVertices(5)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {2, 1}, {3, 1}, {3, 4}})
	if got := g.MaxDegreeVertex(); got != 1 {
		t.Fatalf("MaxDegreeVertex = %d, want 1", got)
	}
	// Ties resolve to smallest id.
	g = mustBuild(t, []Edge{{0, 1}, {2, 3}})
	if got := g.MaxDegreeVertex(); got != 0 {
		t.Fatalf("MaxDegreeVertex tie = %d, want 0", got)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {3, 3}, {2, 4}}
	g := mustBuild(t, orig)
	back := g.Edges()
	if len(back) != len(orig) {
		t.Fatalf("Edges() returned %d, want %d", len(back), len(orig))
	}
	g2 := mustBuild(t, back, WithNumVertices(g.NumVertices()))
	if !reflect.DeepEqual(g.Offsets(), g2.Offsets()) {
		t.Fatal("offsets differ after round trip")
	}
}

// TestQuickBuildInvariants: for arbitrary edge lists, the built CSR
// validates, has twice as many slots as non-loop edges plus loop slots, and
// degree sums match.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: uint32(raw[i] % 512), V: uint32(raw[i+1] % 512)})
		}
		g, err := BuildUndirected(edges, WithNumVertices(512))
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		wantSlots := 0
		for _, e := range edges {
			if e.U == e.V {
				wantSlots++
			} else {
				wantSlots += 2
			}
		}
		if int(g.NumDirectedEdges()) != wantSlots {
			return false
		}
		degSum := 0
		for v := 0; v < g.NumVertices(); v++ {
			degSum += g.Degree(uint32(v))
		}
		return degSum == wantSlots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveIsolated(t *testing.T) {
	g := mustBuild(t, []Edge{{1, 3}, {3, 5}}, WithNumVertices(7))
	ng, origID := RemoveIsolated(g)
	if ng.NumVertices() != 3 {
		t.Fatalf("NumVertices after removal = %d, want 3", ng.NumVertices())
	}
	if ng.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", ng.NumEdges())
	}
	want := []uint32{1, 3, 5}
	if !reflect.DeepEqual(origID, want) {
		t.Fatalf("origID = %v, want %v", origID, want)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge structure preserved: new 0-1-2 path.
	if ng.Degree(1) != 2 || ng.Degree(0) != 1 || ng.Degree(2) != 1 {
		t.Fatal("structure not preserved")
	}
	// No-op case returns the same graph.
	g2 := mustBuild(t, []Edge{{0, 1}})
	ng2, m2 := RemoveIsolated(g2)
	if ng2 != g2 || m2 != nil {
		t.Fatal("RemoveIsolated copied a graph with no isolated vertices")
	}
}

func TestFromCSRRejectsCorrupt(t *testing.T) {
	// Non-monotone offsets.
	if _, err := FromCSR([]int64{0, 2, 1}, []uint32{1, 0}); err == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	// Out-of-range neighbour.
	if _, err := FromCSR([]int64{0, 1, 2}, []uint32{1, 5}); err == nil {
		t.Fatal("out-of-range neighbour accepted")
	}
	// Asymmetric adjacency (0→1 without 1→0).
	if _, err := FromCSR([]int64{0, 1, 1}, []uint32{1}); err == nil {
		t.Fatal("asymmetric CSR accepted")
	}
	// Valid round trip.
	g := mustBuild(t, []Edge{{0, 1}})
	if _, err := FromCSR(g.Offsets(), g.Adjacency()); err != nil {
		t.Fatal(err)
	}
}
