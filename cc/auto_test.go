package cc_test

import (
	"testing"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

// TestAutoSelectorGoldenDecisions pins the decision policy: for each
// generator family the probe vector must steer AlgoAuto to the expected
// concrete algorithm, with the expected rule firing. These are goldens, not
// tautologies — a change to the probe or the policy that flips a family
// shows up here and must be justified by re-measurement (see DESIGN.md
// "Algorithm auto-selection").
func TestAutoSelectorGoldenDecisions(t *testing.T) {
	cases := []struct {
		name   string
		want   cc.Algorithm
		reason string
	}{
		{"empty", cc.AlgoThrifty, "trivial"},
		{"one-vertex", cc.AlgoThrifty, "trivial"},
		{"isolated-100", cc.AlgoThrifty, "trivial"},
		{"path-1000", cc.AlgoThrifty, "chain-like"},
		{"cycle-257", cc.AlgoThrifty, "chain-like"},
		{"star-5000", cc.AlgoBFSCC, "hub-dominated"},
		{"complete-40", cc.AlgoBFSCC, "uniform-degree"},
		{"cliques-7x13", cc.AlgoAfforest, "fragmented"},
		{"rmat-12", cc.AlgoThrifty, "skewed"},
		{"ba-3000", cc.AlgoThrifty, "skewed"},
		{"web-10", cc.AlgoThrifty, "skewed"},
		{"grid-64", cc.AlgoBFSCC, "uniform-degree"},
		{"er-4096", cc.AlgoBFSCC, "uniform-degree"},
	}
	fs := fixtures(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, ok := fs[tc.name]
			if !ok {
				t.Fatalf("no fixture %q", tc.name)
			}
			res, err := cc.Run(cc.AlgoAuto, g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Algorithm != cc.AlgoAuto {
				t.Fatalf("Stats.Algorithm = %s, want auto", res.Stats.Algorithm)
			}
			if res.Stats.Selected != tc.want {
				t.Fatalf("selected %s (reason %q), want %s",
					res.Stats.Selected, probeReason(res), tc.want)
			}
			if got := probeReason(res); got != tc.reason {
				t.Fatalf("decision reason = %q, want %q", got, tc.reason)
			}
			if !cc.Equivalent(res.Labels, cc.Sequential(g)) {
				t.Fatal("auto-selected run disagrees with oracle")
			}
		})
	}
}

func probeReason(r cc.Result) string {
	if r.Stats == nil || r.Stats.Probe == nil {
		return "<nil probe>"
	}
	return r.Stats.Probe.Reason
}

// TestAutoIsDeterministic: the probe samples with a fixed seed, so the same
// graph must always resolve to the same algorithm.
func TestAutoIsDeterministic(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(13, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	first := cc.Auto(g)
	for i := 0; i < 5; i++ {
		if got := cc.Auto(g).Stats.Selected; got != first.Stats.Selected {
			t.Fatalf("run %d selected %s, first run selected %s", i, got, first.Stats.Selected)
		}
	}
}

// TestAutoReportsProbe: an auto run must surface the probe values and its
// cost; a direct run must not.
func TestAutoReportsProbe(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	res := cc.Auto(g)
	p := res.Stats.Probe
	if p == nil {
		t.Fatal("auto run has nil Probe")
	}
	if p.Vertices != g.NumVertices() || p.DirectedEdges != g.NumDirectedEdges() {
		t.Fatalf("probe counts %d/%d disagree with graph %d/%d",
			p.Vertices, p.DirectedEdges, g.NumVertices(), g.NumDirectedEdges())
	}
	if p.SkewRatio <= 0 || p.SampleSize <= 0 || p.Reason == "" {
		t.Fatalf("probe not populated: %+v", p)
	}
	if p.Cost <= 0 {
		t.Fatal("probe cost not measured")
	}
	if res.Stats.Duration < p.Cost {
		t.Fatal("run duration excludes probe cost")
	}

	direct := cc.Thrifty(g)
	if direct.Stats.Selected != "" || direct.Stats.Probe != nil {
		t.Fatal("direct run carries selector fields")
	}
}

// TestAutoWithArena: the selector composes with arena-backed buffer reuse
// across runs, including when consecutive runs resolve to different
// algorithms with different buffer shapes.
func TestAutoWithArena(t *testing.T) {
	rmat, err := gen.RMAT(gen.DefaultRMAT(11, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	star, err := gen.Star(4000)
	if err != nil {
		t.Fatal(err)
	}
	arena := cc.NewArena()
	for rep := 0; rep < 3; rep++ {
		for _, g := range []struct {
			g      interface{ NumVertices() int }
			run    func() cc.Result
			oracle []uint32
		}{
			{rmat, func() cc.Result { return cc.Auto(rmat, cc.WithArena(arena)) }, cc.Sequential(rmat)},
			{star, func() cc.Result { return cc.Auto(star, cc.WithArena(arena)) }, cc.Sequential(star)},
		} {
			res := g.run()
			if !cc.Equivalent(res.Labels, g.oracle) {
				t.Fatalf("rep %d: arena-backed auto run disagrees with oracle", rep)
			}
		}
	}
}
