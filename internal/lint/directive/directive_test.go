package directive

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		text string
		name string
		arg  string
		ok   bool
	}{
		{"//thrifty:hotpath", "hotpath", "", true},
		{"//thrifty:benign-race disjoint index ranges", "benign-race", "disjoint index ranges", true},
		{"//thrifty:benign-race", "benign-race", "", true},
		{"//thrifty:padded", "padded", "", true},
		{"// thrifty:hotpath", "", "", false}, // space after // is an ordinary comment
		{"//go:noinline", "", "", false},
		{"// plain comment", "", "", false},
		{"//thrifty:", "", "", false}, // empty directive name
	}
	for _, c := range cases {
		name, arg, ok := parse(c.text)
		if name != c.name || arg != c.arg || ok != c.ok {
			t.Errorf("parse(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, arg, ok, c.name, c.arg, c.ok)
		}
	}
}

const coversSrc = `package p

func f(xs []int) {
	xs[0] = 1 //thrifty:benign-race trailing with reason
	//thrifty:benign-race covering the line below
	xs[1] = 2
	xs[2] = 3
	//thrifty:benign-race
	xs[3] = 4
	//thrifty:hotpath
	xs[4] = 5
}
`

func TestFileLinesAndCovers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", coversSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	lines := FileLines(fset, f)
	if len(lines) != 4 {
		t.Fatalf("FileLines found %d directives, want 4: %+v", len(lines), lines)
	}

	cases := []struct {
		line       int
		requireArg bool
		want       bool
		what       string
	}{
		{4, true, true, "trailing same-line directive"},
		{6, true, true, "directive on the line above"},
		{7, true, false, "no directive in range"},
		{9, true, false, "bare directive with requireArg"},
		{9, false, true, "bare directive without requireArg"},
		{11, true, false, "wrong directive name"},
	}
	for _, c := range cases {
		if got := Covers(lines, BenignRace, c.line, c.requireArg); got != c.want {
			t.Errorf("Covers(benign-race, line %d, requireArg=%v) = %v, want %v (%s)",
				c.line, c.requireArg, got, c.want, c.what)
		}
	}
	if !Covers(lines, Hotpath, 11, false) {
		t.Error("Covers(hotpath, line 11) = false, want true")
	}
}
