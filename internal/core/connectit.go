package core

import (
	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/parallel"
)

// ConnectIt (Dhulipala, Hong & Shun, VLDB 2021) generalizes Afforest into a
// framework of sampling strategies × finish strategies. The paper attempted
// to evaluate it but its repository would not compile at the time (§VI);
// these two representative points of the framework fill that column:
//
//   - k-out sampling: every vertex links to k pseudo-random neighbours
//     (Afforest's neighbour rounds pick the first k instead);
//   - BFS sampling: one breadth-first search from the maximum-degree vertex
//     pre-unites (almost surely) the giant component — the union-find
//     mirror of Thrifty's Zero Planting intuition.
//
// Both share the Afforest-style finish: identify the most frequent
// component among samples and union the remaining edges only for vertices
// outside it.

// connectItKOutRounds is k for k-out sampling (ConnectIt's default is 2).
const connectItKOutRounds = 2

// ConnectItKOut runs k-out sampling + union-find finish.
func ConnectItKOut(g *graph.Graph, cfg Config) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	comp := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, comp, func(i int) uint32 { return uint32(i) })
	if n == 0 {
		return Result{Labels: comp}
	}
	fl := &chunkFlusher{cfg: &cfg}
	sch := newScheduler(g, cfg, pool)
	res := Result{}

	// Sampling: k pseudo-random neighbours per vertex, deterministic in the
	// vertex id so runs are reproducible.
	for r := 0; r < connectItKOutRounds; r++ {
		rr := uint64(r)
		sch.sweep(func(tid, lo, hi int) {
			if cfg.Stop.Requested() {
				return // cancellation poll at partition entry
			}
			var ck chunkCounts
			for v := lo; v < hi; v++ {
				ck.visits++
				nb := g.Neighbors(uint32(v))
				if len(nb) == 0 {
					continue
				}
				z := uint64(v)*0x9e3779b97f4a7c15 + rr*0xbf58476d1ce4e5b9
				z ^= z >> 29
				z *= 0x94d049bb133111eb
				z ^= z >> 32
				u := nb[z%uint64(len(nb))]
				ck.edges++
				afforestLink(uint32(v), u, comp, &ck)
			}
			ck.flush(cfg.Ctr, tid)
		})
		res.Iterations++
		if cfg.cancelPoint(&res, PhaseSample) {
			// A partial forest is still a valid union-find state; compress
			// it so the returned labels are root ids, then bail.
			afforestCompress(pool, comp, fl)
			res.Labels = comp
			res.Sched = sch.stealStats()
			return res
		}
	}
	afforestCompress(pool, comp, fl)

	connectItFinish(g, cfg, pool, comp, fl)
	res.Iterations++
	cfg.cancelPoint(&res, PhaseFinish)
	res.Labels = comp
	res.Sched = sch.stealStats()
	return res
}

// ConnectItBFS runs BFS sampling + union-find finish: a direction-
// optimizing BFS from the max-degree vertex flat-unites everything it
// reaches, then the finish pass handles the rest.
func ConnectItBFS(g *graph.Graph, cfg Config) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	comp := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, comp, func(i int) uint32 { return uint32(i) })
	if n == 0 {
		return Result{Labels: comp}
	}
	fl := &chunkFlusher{cfg: &cfg}
	res := Result{}

	// Sampling: claim the hub's component with one BFS. bfsFrom writes the
	// root id into every reached slot of a bfsUnset-initialized array; here
	// comp is identity-initialized, so run the BFS on a scratch array and
	// fold the reached set into comp as a depth-1 star.
	hub := g.MaxDegreeVertex()
	scratch := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, scratch, func(i int) uint32 { return bfsUnset })
	var explored int64
	levels := bfsFrom(g, cfg, pool, scratch, hub, &explored)
	res.Iterations += levels
	parallel.For(pool, n, 4096, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if scratch[v] == hub {
				comp[v] = hub //thrifty:benign-race workers own disjoint vertex ranges of comp
			}
		}
	})
	if cfg.cancelPoint(&res, PhaseBFS) {
		// bfsFrom exited at a level boundary; the partially claimed star is
		// already folded into comp, which stays a valid union-find state.
		res.Labels = comp
		return res
	}

	connectItFinish(g, cfg, pool, comp, fl)
	res.Iterations++
	cfg.cancelPoint(&res, PhaseFinish)
	res.Labels = comp
	return res
}

// connectItFinish is the shared Afforest-style finish: skip members of the
// dominant sampled component, union every remaining edge, compress.
func connectItFinish(g *graph.Graph, cfg Config, pool *parallel.Pool, comp []uint32, fl *chunkFlusher) {
	giant := sampleFrequentComponent(comp)
	newScheduler(g, cfg, pool).sweep(func(tid, lo, hi int) {
		if cfg.Stop.Requested() {
			return // cancellation poll at partition entry
		}
		var ck chunkCounts
		for v := lo; v < hi; v++ {
			ck.visits++
			ck.branches++
			if atomicx.LoadUint32(&comp[v]) == giant {
				ck.loads++
				continue
			}
			for _, u := range g.Neighbors(uint32(v)) {
				ck.edges++
				afforestLink(uint32(v), u, comp, &ck)
			}
		}
		ck.flush(cfg.Ctr, tid)
	})
	afforestCompress(pool, comp, fl)
}
