package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"thriftylp/cc"
	"thriftylp/internal/obs"
)

// newTestServer builds a server around a freshly generated binary graph,
// loads it, and returns the server plus an httptest front end. mutate lets
// tests shrink limits before anything starts.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	cfg := Config{Path: path, Algo: cc.AlgoThrifty}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Source().Retire()
	})
	return s, ts
}

// get fetches a URL and returns status plus body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	status, body := get(t, url)
	if status == http.StatusOK {
		if err := json.Unmarshal([]byte(body), out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return status
}

// TestServerEndpoints exercises all four query endpoints against the
// sequential oracle.
func TestServerEndpoints(t *testing.T) {
	s, ts := newTestServer(t, nil)
	sn := s.Source().Acquire()
	defer sn.Release()
	oracle := cc.Sequential(sn.Graph)

	var comp struct {
		Vertex    uint32 `json:"vertex"`
		Component uint32 `json:"component"`
		Size      int64  `json:"size"`
	}
	if st := getJSON(t, ts.URL+"/component?v=0", &comp); st != http.StatusOK {
		t.Fatalf("/component status %d", st)
	}
	if comp.Vertex != 0 || comp.Size <= 0 {
		t.Errorf("component response %+v", comp)
	}

	// same must agree with the oracle for connected and disconnected pairs.
	pairs := [][2]uint32{{0, 1}, {0, uint32(sn.NumVertices() - 1)}, {3, 7}}
	for _, p := range pairs {
		var same struct {
			Same bool `json:"same"`
		}
		url := fmt.Sprintf("%s/same?u=%d&v=%d", ts.URL, p[0], p[1])
		if st := getJSON(t, url, &same); st != http.StatusOK {
			t.Fatalf("%s status %d", url, st)
		}
		if want := oracle[p[0]] == oracle[p[1]]; same.Same != want {
			t.Errorf("same(%d,%d) = %v, oracle says %v", p[0], p[1], same.Same, want)
		}
	}

	var size struct {
		Size int64 `json:"size"`
	}
	if st := getJSON(t, fmt.Sprintf("%s/size?c=%d", ts.URL, comp.Component), &size); st != http.StatusOK {
		t.Fatal("size status")
	}
	if size.Size != comp.Size {
		t.Errorf("/size = %d, /component reported %d", size.Size, comp.Size)
	}

	var census struct {
		Vertices   int   `json:"vertices"`
		Components int   `json:"components"`
		Edges      int64 `json:"edges"`
		Largest    struct {
			Size int64 `json:"size"`
		} `json:"largest"`
		Algorithm string `json:"algorithm"`
	}
	if st := getJSON(t, ts.URL+"/census", &census); st != http.StatusOK {
		t.Fatal("census status")
	}
	if census.Vertices != sn.NumVertices() ||
		census.Components != sn.Result.NumComponents() ||
		census.Largest.Size <= 0 || census.Algorithm != "thrifty" {
		t.Errorf("census response %+v", census)
	}
}

// TestServerBadRequests pins the 4xx surface.
func TestServerBadRequests(t *testing.T) {
	s, ts := newTestServer(t, nil)
	n := s.Source().Current().NumVertices()
	cases := []struct {
		url  string
		want int
	}{
		{"/component", http.StatusBadRequest},                     // missing v
		{"/component?v=abc", http.StatusBadRequest},               // malformed
		{fmt.Sprintf("/component?v=%d", n), http.StatusNotFound},  // out of range
		{"/same?u=0", http.StatusBadRequest},                      // missing v
		{fmt.Sprintf("/same?u=0&v=%d", n+5), http.StatusNotFound}, // out of range
		{"/size", http.StatusBadRequest},                          // missing c
		{"/size?c=4294967295", http.StatusNotFound},               // no such component
		{"/nosuch", http.StatusNotFound},                          // unknown path
	}
	for _, c := range cases {
		if st, body := get(t, ts.URL+c.url); st != c.want {
			t.Errorf("GET %s = %d (%q), want %d", c.url, st, strings.TrimSpace(body), c.want)
		}
	}
	// Reload is POST-only.
	if st, _ := get(t, ts.URL+"/reload"); st != http.StatusMethodNotAllowed {
		t.Errorf("GET /reload = %d, want 405", st)
	}
}

// TestServerNotReadyBeforeLoad: a fresh server answers health but not
// queries, and /readyz flips exactly when the initial load publishes.
func TestServerNotReadyBeforeLoad(t *testing.T) {
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	s := New(Config{Path: path})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Source().Retire()

	if st, _ := get(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz before load = %d", st)
	}
	if st, body := get(t, ts.URL+"/readyz"); st != http.StatusServiceUnavailable ||
		!strings.Contains(body, "initial load") {
		t.Fatalf("/readyz before load = %d %q", st, body)
	}
	if st, _ := get(t, ts.URL+"/component?v=0"); st != http.StatusServiceUnavailable {
		t.Fatalf("query before load = %d, want 503", st)
	}

	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st, _ := get(t, ts.URL+"/readyz"); st != http.StatusOK {
		t.Fatalf("/readyz after load = %d", st)
	}
	if st, _ := get(t, ts.URL+"/component?v=0"); st != http.StatusOK {
		t.Fatalf("query after load = %d", st)
	}
}

// TestServerLoadShedding saturates a deliberately tiny admission layer and
// checks the contract both ways: overflow requests get 429 with a
// Retry-After header, while every admitted request completes 200 within its
// deadline.
func TestServerLoadShedding(t *testing.T) {
	const delay = 100 * time.Millisecond
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.QueueWait = 2 * time.Second // queued requests wait out the slot
		c.RequestTimeout = time.Second
	})
	s.testQueryDelay = delay

	const clients = 8
	type outcome struct {
		status  int
		latency time.Duration
		retry   string
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Get(ts.URL + "/component?v=1")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results[i] = outcome{resp.StatusCode, time.Since(start), resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
			if r.latency > s.cfg.QueueWait+s.cfg.RequestTimeout {
				t.Errorf("client %d admitted but took %v", i, r.latency)
			}
		case http.StatusTooManyRequests:
			shed++
			if r.retry == "" {
				t.Errorf("client %d shed without Retry-After", i)
			}
		default:
			t.Errorf("client %d status %d", i, r.status)
		}
	}
	if ok < 1 || shed < 1 {
		t.Fatalf("ok=%d shed=%d; want both admission and shedding under saturation", ok, shed)
	}
	if got := s.reg.Counter(MetricShed); got != int64(shed) {
		t.Errorf("%s = %d, observed %d sheds", MetricShed, got, shed)
	}
}

// TestServerDeadline: a query slower than its deadline answers 503 instead
// of hanging.
func TestServerDeadline(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.RequestTimeout = 30 * time.Millisecond
	})
	s.testQueryDelay = 500 * time.Millisecond
	start := time.Now()
	st, body := get(t, ts.URL+"/component?v=0")
	if st != http.StatusServiceUnavailable || !strings.Contains(body, "deadline") {
		t.Fatalf("slow query = %d %q, want 503 deadline", st, body)
	}
	if e := time.Since(start); e > 400*time.Millisecond {
		t.Errorf("deadline response took %v, want ~30ms", e)
	}
}

// TestServerMetrics: per-endpoint request/latency counters accumulate.
func TestServerMetrics(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for i := 0; i < 3; i++ {
		get(t, ts.URL+"/component?v=0")
	}
	get(t, ts.URL+"/census")
	if n := s.reg.Counter(RequestsMetric("component")); n != 3 {
		t.Errorf("component requests = %d, want 3", n)
	}
	if n := s.reg.Counter(LatencyMetric("component")); n <= 0 {
		t.Errorf("component latency total = %d, want > 0", n)
	}
	if n := s.reg.Counter(RequestsMetric("census")); n != 1 {
		t.Errorf("census requests = %d, want 1", n)
	}
	if n := s.reg.Counter(MetricReloads); n != 1 {
		t.Errorf("%s = %d, want 1 (the initial load)", MetricReloads, n)
	}
	// The latency histogram behind the compat counter: every served request
	// recorded, quantiles ordered, buckets exposed on /metrics with the
	// versioned text content type.
	hs := s.reg.Histogram(LatencyHistogram("component")).Snapshot()
	if hs.Count != 3 {
		t.Errorf("component histogram count = %d, want 3", hs.Count)
	}
	if p50, p99 := hs.Quantile(0.50), hs.Quantile(0.99); p50 <= 0 || p50 > p99 {
		t.Errorf("component histogram p50=%d p99=%d, want 0 < p50 <= p99", p50, p99)
	}
	if sum := hs.Sum; sum != s.reg.Counter(LatencyMetric("component")) {
		t.Errorf("compat latency counter %d != histogram sum %d",
			s.reg.Counter(LatencyMetric("component")), sum)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		LatencyHistogram("component") + "_bucket{le=",
		LatencyHistogram("component") + "_p99 ",
		MetricQueueWaitHist + "_count ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerSlowLog: with a zero threshold every request span is offered to
// the slow log and the rate cap off, so each served request produces one
// request record carrying the span phases; Drain flushes them out.
func TestServerSlowLog(t *testing.T) {
	var buf bytes.Buffer
	slow := obs.NewSlowLog(obs.NewTraceWriter(&buf), 0, 0)
	s, ts := newTestServer(t, func(c *Config) { c.SlowLog = slow })
	get(t, ts.URL+"/component?v=0")
	get(t, ts.URL+"/same?u=0&v=1")
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var reqs, reloads int
	for _, r := range recs {
		switch r.Kind {
		case obs.KindRequest:
			reqs++
			if r.ReqID == 0 || r.Status != http.StatusOK || r.DurationNs <= 0 {
				t.Errorf("bad request record: %+v", r)
			}
			if r.Endpoint != "component" && r.Endpoint != "same" {
				t.Errorf("unexpected endpoint %q", r.Endpoint)
			}
		case obs.KindReload:
			// The initial load publishes through the same path as a reload
			// and records the ingest/validate/solve/publish split.
			reloads++
			if r.SolveNs <= 0 || r.DurationNs <= 0 || r.Dataset == "" {
				t.Errorf("bad reload record: %+v", r)
			}
		}
	}
	if reqs != 2 {
		t.Errorf("%d request records, want 2", reqs)
	}
	if reloads != 1 {
		t.Errorf("%d reload records, want 1 (the initial load)", reloads)
	}
}

// TestServerDrain: in-flight requests complete during Drain, the listener
// stops accepting, and the final munmap happens only after the last request
// released its snapshot.
func TestServerDrain(t *testing.T) {
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	s := New(Config{Path: path, RequestTimeout: 2 * time.Second})
	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.testQueryDelay = 150 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Launch slow in-flight requests, then drain while they run.
	const inflight = 4
	statuses := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/component?v=0")
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	time.Sleep(30 * time.Millisecond) // let the requests reach the handler

	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != http.StatusOK && st != http.StatusTooManyRequests {
			t.Errorf("in-flight request during drain finished %d", st)
		}
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after drain", err)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after drain")
	}
	if ready, reason := s.Ready(); ready || !strings.Contains(reason, "drain") {
		t.Errorf("Ready after drain = %v %q", ready, reason)
	}
	if sn := s.Source().Acquire(); sn != nil {
		t.Error("snapshot still acquirable after drain")
	}
}

// TestServerDrainDeadline: requests that refuse to finish cannot hold the
// drain past its deadline — Drain returns the context error and the
// connections are aborted.
func TestServerDrainDeadline(t *testing.T) {
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	s := New(Config{Path: path, RequestTimeout: 10 * time.Second})
	if err := s.Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.testQueryDelay = 5 * time.Second

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	go http.Get("http://" + ln.Addr().String() + "/component?v=0")
	time.Sleep(50 * time.Millisecond)

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Drain(dctx)
	if err == nil {
		t.Fatal("Drain with a stuck request returned nil before the deadline")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("Drain took %v, want ~100ms deadline", e)
	}
}
