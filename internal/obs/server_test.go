package obs

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestShutdownGraceful: with no held connections, Shutdown returns promptly
// and the listener is released (a fresh bind to the same port succeeds).
func TestShutdownGraceful(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with no connections: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Shutdown: %v", err)
	}
	ln.Close()
}

// TestShutdownReleasesHeldSockets: a client that opens a connection and never
// completes a request (the held-socket case -hold teardown must survive)
// cannot pin Shutdown past its deadline — Shutdown returns the deadline
// error, aborts the socket via its Close fallback, and the port is free.
func TestShutdownReleasesHeldSockets(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// Hold a raw connection open with a half-written request so the server
	// counts it as active, not idle (idle connections are closed by Shutdown
	// without waiting).
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Shutdown returned nil despite a held socket")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v, want ~the 200ms deadline", elapsed)
	}
	// The Close fallback must have released the listener and aborted the
	// held socket: the port rebinds and the stalled connection is dead.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after deadline Shutdown: %v", err)
	}
	ln.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("held socket still alive after Shutdown's Close fallback")
	}
}

// TestShutdownAllowsInFlightScrape: a request already being served finishes
// with a complete response even though Shutdown was called mid-flight. A 1s
// CPU profile is the slow request — the handler is guaranteed to still be
// running when Shutdown arrives.
func TestShutdownAllowsInFlightScrape(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/debug/pprof/profile?seconds=1")
		if err != nil {
			done <- result{0, err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && len(body) == 0 {
			err = errors.New("empty profile body")
		}
		done <- result{resp.StatusCode, err}
	}()
	// Let the profile request reach its handler before shutting down.
	time.Sleep(200 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during scrape: %v", err)
	}
	r := <-done
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight scrape got (%d, %v), want complete 200", r.code, r.err)
	}
}
