package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function declaration and returns its
// CFG plus the fileset. mayReturn rejects calls to functions whose name
// starts with "noreturn" (standing in for os.Exit etc).
func build(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	mayReturn := func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return !ok || !strings.HasPrefix(id.Name, "noreturn")
	}
	return New(fd.Body, mayReturn), fset
}

// reach returns the set of blocks reachable from the entry.
func reach(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	c, _ := build(t, "x := 1\ny := x\n_ = y")
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should fall through to exit; succs %v", c.Entry.Succs)
	}
}

func TestIfElse(t *testing.T) {
	c, fset := build(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	got := c.Format(fset)
	want := `.0: # entry
	x := 1
	x > 0
	succs: .2 .4
.1: # exit
.2: # if.then
	x = 2
	succs: .3
.3: # if.done
	_ = x
	succs: .1
.4: # if.else
	x = 3
	succs: .3
`
	if got != want {
		t.Errorf("if/else CFG:\n%s\nwant:\n%s", got, want)
	}
}

func TestIfReturnReachesExit(t *testing.T) {
	c, _ := build(t, "if cond() {\n\treturn\n}\nwork()")
	r := reach(c)
	if !r[c.Exit] {
		t.Fatal("exit unreachable")
	}
	// The then-block must end in a return edging straight to Exit.
	var then *Block
	for b := range r {
		if b.Return() != nil {
			then = b
		}
	}
	if then == nil {
		t.Fatal("no block ends in a return")
	}
	if len(then.Succs) != 1 || then.Succs[0] != c.Exit {
		t.Fatalf("return block succs = %v, want [exit]", then.Succs)
	}
}

func TestPanicTerminates(t *testing.T) {
	c, _ := build(t, "if bad() {\n\tpanic(\"boom\")\n}\nwork()")
	// The panic block is reachable but must not reach Exit.
	r := reach(c)
	var panicBlock *Block
	for b := range r {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlock = b
					}
				}
			}
		}
	}
	if panicBlock == nil {
		t.Fatal("panic block unreachable")
	}
	if len(panicBlock.Succs) != 0 {
		t.Fatalf("panic block has succs %v, want none", panicBlock.Succs)
	}
}

func TestNoReturnCall(t *testing.T) {
	c, _ := build(t, "if bad() {\n\tnoreturnExit(1)\n}\nwork()")
	r := reach(c)
	for b := range r {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "noreturnExit" {
				if len(b.Succs) != 0 {
					t.Fatalf("noreturn call block has succs %v, want none", b.Succs)
				}
				return
			}
		}
	}
	t.Fatal("noreturn call block not found")
}

func TestForLoop(t *testing.T) {
	c, fset := build(t, "for i := 0; i < 10; i++ {\n\tuse(i)\n}\ndone()")
	got := c.Format(fset)
	want := `.0: # entry
	i := 0
	succs: .2
.1: # exit
.2: # for.loop
	i < 10
	succs: .3 .4
.3: # for.body
	use(i)
	succs: .5
.4: # for.done
	done()
	succs: .1
.5: # for.post
	i++
	succs: .2
`
	if got != want {
		t.Errorf("for CFG:\n%s\nwant:\n%s", got, want)
	}
}

func TestForBreakContinue(t *testing.T) {
	c, _ := build(t, "for {\n\tif a() {\n\t\tbreak\n\t}\n\tif b() {\n\t\tcontinue\n\t}\n\twork()\n}\ndone()")
	if !reach(c)[c.Exit] {
		t.Fatal("exit unreachable despite break")
	}
}

func TestLabeledBreak(t *testing.T) {
	c, _ := build(t, "outer:\nfor {\n\tfor {\n\t\tif a() {\n\t\t\tbreak outer\n\t\t}\n\t}\n}\ndone()")
	if !reach(c)[c.Exit] {
		t.Fatal("exit unreachable despite labeled break")
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	c, _ := build(t, "for {\n\twork()\n}")
	if reach(c)[c.Exit] {
		t.Fatal("exit reachable through an infinite loop")
	}
}

func TestRange(t *testing.T) {
	c, fset := build(t, "for _, v := range xs {\n\tuse(v)\n}\ndone()")
	got := c.Format(fset)
	want := `.0: # entry
	xs
	succs: .2
.1: # exit
.2: # range.loop
	for _, v := range xs { use(v) }
	succs: .3 .4
.3: # range.body
	use(v)
	succs: .2
.4: # range.done
	done()
	succs: .1
`
	if got != want {
		t.Errorf("range CFG:\n%s\nwant:\n%s", got, want)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	c, _ := build(t, "switch x() {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}\ndone()")
	r := reach(c)
	// Find the case-1 body and check it edges to the case-2 body.
	var b1, b2 *Block
	for b := range r {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "a":
							b1 = b
						case "b":
							b2 = b
						}
					}
				}
			}
		}
	}
	if b1 == nil || b2 == nil {
		t.Fatal("case bodies not found")
	}
	found := false
	for _, s := range b1.Succs {
		if s == b2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge missing: case-1 succs %v", b1.Succs)
	}
	if !r[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestSwitchNoDefaultEdgesToDone(t *testing.T) {
	c, _ := build(t, "switch x() {\ncase 1:\n\tnoreturnExit(0)\n}\ndone()")
	// Without a default, the head must edge past the cases to done.
	if !reach(c)[c.Exit] {
		t.Fatal("exit unreachable: missing no-default edge")
	}
}

func TestTypeSwitch(t *testing.T) {
	c, _ := build(t, "switch v := x.(type) {\ncase int:\n\tuse(v)\ncase string:\n\tuse(v)\n}\ndone()")
	if !reach(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestSelect(t *testing.T) {
	c, _ := build(t, "select {\ncase <-ch:\n\ta()\ncase v := <-ch2:\n\tuse(v)\n}\ndone()")
	if !reach(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	c, _ := build(t, "work()\nselect {}\ndone()")
	if reach(c)[c.Exit] {
		t.Fatal("exit reachable through select{}")
	}
}

func TestGoto(t *testing.T) {
	c, _ := build(t, "i := 0\nloop:\nif i < 10 {\n\ti++\n\tgoto loop\n}\ndone()")
	if !reach(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestDeferIsOrdinaryNode(t *testing.T) {
	c, _ := build(t, "defer release()\nwork()")
	var found bool
	for _, n := range c.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("defer statement not recorded in entry block")
	}
}

// TestConditionIsLastNode checks the contract branch-refining analyzers
// rely on: a two-successor block's condition is its final node.
func TestConditionIsLastNode(t *testing.T) {
	c, _ := build(t, "v := get()\nif v == nil {\n\treturn\n}\nuse(v)")
	for b := range reach(c) {
		if len(b.Succs) == 2 {
			last := b.Nodes[len(b.Nodes)-1]
			if _, ok := last.(ast.Expr); !ok {
				t.Fatalf("two-successor block's last node is %T, want expression", last)
			}
			return
		}
	}
	t.Fatal("no conditional block found")
}
