// Road-network counterexample: the regime where Thrifty loses. Road
// networks have bounded degree and huge diameter, so there is no hub to
// plant the zero label on and label propagation needs diameter-many hops —
// the paper's Table IV shows union-find (SV/JT/Afforest) winning on GB/US
// roads. This example reproduces that crossover and shows how to pick an
// algorithm from measured structure.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/stats"
)

func time3(a cc.Algorithm, g *graph.Graph) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := cc.Run(a, g); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func main() {
	road, err := gen.Road(1<<18, 99)
	if err != nil {
		log.Fatal(err)
	}
	social, err := gen.RMATCompact(gen.DefaultRMAT(15, 16, 99))
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"road-network", road}, {"social-network", social}} {
		ds := stats.Degrees(tc.g)
		fmt.Printf("%s: %d vertices, %d edges, max/mean degree %.1f -> skewed=%v\n",
			tc.name, tc.g.NumVertices(), tc.g.NumEdges(), ds.SkewRatio, stats.IsSkewed(ds))

		tThrifty := time3(cc.AlgoThrifty, tc.g)
		tAfforest := time3(cc.AlgoAfforest, tc.g)
		tJT := time3(cc.AlgoJayantiT, tc.g)
		fmt.Printf("  thrifty  %12v\n  afforest %12v\n  jt       %12v\n",
			tThrifty.Round(time.Microsecond), tAfforest.Round(time.Microsecond), tJT.Round(time.Microsecond))

		// The structure-driven choice the paper's Table IV implies.
		if stats.IsSkewed(ds) {
			fmt.Printf("  -> skewed degrees: label propagation (Thrifty) is the right family\n\n")
		} else {
			fmt.Printf("  -> flat degrees & high diameter: union-find is the right family\n\n")
		}
	}
}
