package stats

import (
	"sort"
	"time"

	"thriftylp/graph"
)

// This file is the O(sample) structural probe behind cc.AlgoAuto: a cheap
// pre-pass that characterizes an input graph well enough to pick a CC
// algorithm for it, in the spirit of the adaptive GPU CC work (runtime
// structure-driven adaptation) and Contour's sampling phase. The probe NEVER
// scans the full edge array: everything it reads is O(1) CSR metadata
// (vertex/edge counts, the memoized max-degree vertex, per-vertex degrees
// from the offsets array) plus a bounded vertex/edge sample, so its cost is
// independent of graph size and amortizes to noise on medium inputs.

// DefaultProbeSamples is the default vertex-sample size. 1024 keeps the
// sampled percentile/alpha estimates stable on skewed inputs while the whole
// probe stays tens of microseconds.
const DefaultProbeSamples = 1024

// probeKOut is how many incident edges per sampled vertex feed the
// connectivity hint (Afforest/Contour use 2 neighbour rounds for the same
// reason: two links already collapse most of a giant component).
const probeKOut = 2

// ProbeOptions configures ProbeGraph. The zero value selects the defaults.
type ProbeOptions struct {
	// Samples is the vertex-sample size; 0 selects DefaultProbeSamples.
	Samples int
	// Seed drives the sampling RNG. The default (0) is a fixed seed, so
	// probe results — and therefore auto-selector decisions — are
	// deterministic per graph.
	Seed uint64
}

// Probe is the structural fingerprint the auto-selector decides on.
//
// The exact fields (Vertices..HubEdgeFraction) cost O(1) reads of CSR
// metadata. The Sample* fields are estimates over SampleSize sampled
// vertices; LargestSampleComponent is only populated when the sample covers
// at least half the vertex set (SampleCoverage >= 0.5), because a k-out
// union-find over a sparse sample of a large graph is vacuously fragmented
// and would mislead the decision policy.
type Probe struct {
	// Vertices and DirectedEdges are |V| and the directed adjacency-slot
	// count (2|E| for undirected graphs), read in O(1).
	Vertices      int
	DirectedEdges int64
	// MeanDegree is the exact mean directed degree, DirectedEdges/Vertices.
	MeanDegree float64
	// MaxDegree is the exact maximum degree (the CSR memoizes its vertex).
	MaxDegree int
	// SkewRatio is MaxDegree/MeanDegree — the same heavy-tail indicator as
	// DegreeStats.SkewRatio, here without any full scan.
	SkewRatio float64
	// HubEdgeFraction is MaxDegree/DirectedEdges: the share of all adjacency
	// slots incident to the single max-degree vertex. Near 0.5 means a
	// star-like graph whose hub touches almost every edge.
	HubEdgeFraction float64

	// SampleSize is the number of vertex samples drawn; SampleCoverage is
	// SampleSize/Vertices (capped at 1 — small graphs are probed
	// exhaustively).
	SampleSize     int
	SampleCoverage float64
	// SampleMeanDegree, SampleP99 and SampleAlpha estimate the degree
	// distribution's shape from the sample: mean, 99th percentile, and the
	// Clauset-Shalizi-Newman MLE power-law exponent (0 when the sampled tail
	// is too small to fit).
	SampleMeanDegree float64
	SampleP99        int
	SampleAlpha      float64
	// IsolatedFraction is the sampled fraction of degree-0 vertices.
	IsolatedFraction float64

	// LargestSampleComponent is the Contour-style connectivity hint: the
	// fraction of probed vertices landing in the largest cluster after
	// union-finding probeKOut sampled incident edges per vertex. It is 0
	// unless SampleCoverage >= 0.5 (see type comment); EdgeSamples counts
	// the adjacency entries the hint examined.
	LargestSampleComponent float64
	EdgeSamples            int

	// Cost is the probe's wall time.
	Cost time.Duration
}

// probeRNG is a splitmix64 stream, private to the probe so stats does not
// depend on graph/gen.
type probeRNG struct{ state uint64 }

func (r *probeRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *probeRNG) intn(n int) int {
	return int((r.next() >> 32) * uint64(n) >> 32)
}

// ProbeGraph computes the structural probe of g. Runtime is O(opt.Samples);
// no full vertex or edge scan ever happens, so probing a billion-edge graph
// costs the same as probing a million-edge one.
func ProbeGraph(g *graph.Graph, opt ProbeOptions) Probe {
	start := time.Now()
	p := Probe{Vertices: g.NumVertices(), DirectedEdges: g.NumDirectedEdges()}
	if p.Vertices == 0 {
		p.Cost = time.Since(start)
		return p
	}
	p.MaxDegree = g.Degree(g.MaxDegreeVertex())
	p.MeanDegree = float64(p.DirectedEdges) / float64(p.Vertices)
	if p.MeanDegree > 0 {
		p.SkewRatio = float64(p.MaxDegree) / p.MeanDegree
	}
	if p.DirectedEdges > 0 {
		p.HubEdgeFraction = float64(p.MaxDegree) / float64(p.DirectedEdges)
	}

	samples := opt.Samples
	if samples <= 0 {
		samples = DefaultProbeSamples
	}
	rng := &probeRNG{state: opt.Seed + 0x9e3779b97f4a7c15}
	rng.next()

	// Degree sample: exhaustive when the graph is no bigger than the sample
	// budget (then every estimate is exact), uniform with replacement
	// otherwise. Degrees are O(1) offset subtractions.
	exhaustive := p.Vertices <= samples
	if exhaustive {
		samples = p.Vertices
	}
	degs := make([]int, samples)
	isolated := 0
	var degSum int64
	for i := 0; i < samples; i++ {
		v := uint32(i)
		if !exhaustive {
			v = uint32(rng.intn(p.Vertices))
		}
		d := g.Degree(v)
		degs[i] = d
		degSum += int64(d)
		if d == 0 {
			isolated++
		}
	}
	p.SampleSize = samples
	p.SampleCoverage = float64(samples) / float64(p.Vertices)
	p.SampleMeanDegree = float64(degSum) / float64(samples)
	p.IsolatedFraction = float64(isolated) / float64(samples)
	sort.Ints(degs)
	p.SampleP99 = degs[min(samples-1, samples*99/100)]
	p.SampleAlpha = powerLawAlpha(degs, max(2, int(p.SampleMeanDegree)))

	// Connectivity hint, only when the sample covers most of the graph:
	// union-find over the first probeKOut edges of every vertex (exactly
	// Afforest's neighbour rounds, restricted to small inputs) and report
	// the largest cluster's share. On a fragmented input — thousands of
	// small components — this stays far below 1 and steers the selector
	// toward union-find; on a connected input it approaches 1.
	if p.SampleCoverage >= 0.5 {
		parent := make([]uint32, p.Vertices)
		for i := range parent {
			parent[i] = uint32(i)
		}
		var find func(uint32) uint32
		find = func(x uint32) uint32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]] // path halving
				x = parent[x]
			}
			return x
		}
		for v := 0; v < p.Vertices; v++ {
			nbrs := g.Neighbors(uint32(v))
			k := min(probeKOut, len(nbrs))
			for j := 0; j < k; j++ {
				p.EdgeSamples++
				ru, rv := find(uint32(v)), find(nbrs[j])
				if ru != rv {
					if ru < rv {
						parent[rv] = ru
					} else {
						parent[ru] = rv
					}
				}
			}
		}
		counts := make(map[uint32]int, 64)
		largest := 0
		for v := 0; v < p.Vertices; v++ {
			r := find(uint32(v))
			counts[r]++
			if counts[r] > largest {
				largest = counts[r]
			}
		}
		p.LargestSampleComponent = float64(largest) / float64(p.Vertices)
	}

	p.Cost = time.Since(start)
	return p
}
