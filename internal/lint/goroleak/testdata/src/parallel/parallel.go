// Package parallel is the structured-concurrency runtime stand-in: the
// whole package is exempt from goroleak, so its bare go statements are
// clean.
package parallel

func workers(n int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
