package cc_test

import (
	"strconv"
	"testing"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

func TestShardMatchesThrifty(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	want := cc.Thrifty(g)
	for _, shards := range []int{1, 2, 4, 8} {
		res, err := cc.Run(cc.AlgoShard, g, cc.WithShards(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		// Same value space, not just the same partition: the sharded
		// pipeline is a drop-in for Thrifty.
		for v := range want.Labels {
			if res.Labels[v] != want.Labels[v] {
				t.Fatalf("shards=%d: labels[%d] = %d, want %d", shards, v, res.Labels[v], want.Labels[v])
			}
		}
	}
}

func TestShardStatsPopulated(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoShard, g, cc.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.Shard
	if st == nil {
		t.Fatal("AlgoShard run has nil Stats.Shard")
	}
	if st.Shards != 4 || st.Rounds <= 0 || st.LocalIterations <= 0 {
		t.Fatalf("shape fields not populated: %+v", st)
	}
	if st.BoundaryEntries <= 0 || st.ExchangedBytes <= 0 || st.Pairs <= 0 {
		t.Fatalf("exchange fields not populated: %+v", st)
	}
	if st.ExchangedBytes >= st.NaiveBytes {
		t.Fatalf("compacted exchange %d B >= naive %d B", st.ExchangedBytes, st.NaiveBytes)
	}
	if st.SuppressedVertices <= 0 {
		t.Fatalf("suppression never fired: %+v", st)
	}
	if len(st.PerRound) != st.Rounds {
		t.Fatalf("%d per-round records for %d rounds", len(st.PerRound), st.Rounds)
	}
	if res.Iterations != st.LocalIterations {
		t.Fatalf("Iterations %d != LocalIterations %d", res.Iterations, st.LocalIterations)
	}

	direct := cc.Thrifty(g)
	if direct.Stats.Shard != nil {
		t.Fatal("non-shard run carries ShardStats")
	}
}

// TestAutoBeyondMemoryBudget: with a budget smaller than the input's
// estimated working set, the selector must route to the sharded pipeline
// with a shard count scaled to the deficit — and still be correct.
func TestAutoBeyondMemoryBudget(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoAuto, g, cc.WithMemoryBudget(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Selected != cc.AlgoShard {
		t.Fatalf("selected %s, want shard", res.Stats.Selected)
	}
	if got := probeReason(res); got != "beyond-memory-budget" {
		t.Fatalf("decision reason = %q", got)
	}
	st := res.Stats.Shard
	if st == nil {
		t.Fatal("budget-driven run has nil ShardStats")
	}
	if st.Shards < 2 {
		t.Fatalf("budget rule chose %d shards", st.Shards)
	}
	if !cc.Equivalent(res.Labels, cc.Sequential(g)) {
		t.Fatal("budget-driven run disagrees with oracle")
	}

	// An ample budget must leave the structural rules in charge.
	ample, err := cc.Run(cc.AlgoAuto, g, cc.WithMemoryBudget(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	if ample.Stats.Selected == cc.AlgoShard {
		t.Fatal("ample budget still routed to the sharded pipeline")
	}
}

// TestAutoMemoryBudgetFromEnv: THRIFTY_MEM_BUDGET supplies the budget when
// the option is absent; an explicit WithMemoryBudget wins over it.
func TestAutoMemoryBudgetFromEnv(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(cc.MemBudgetEnv, strconv.Itoa(64<<10))
	res, err := cc.Run(cc.AlgoAuto, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Selected != cc.AlgoShard || probeReason(res) != "beyond-memory-budget" {
		t.Fatalf("env budget ignored: selected %s (%s)", res.Stats.Selected, probeReason(res))
	}
	over, err := cc.Run(cc.AlgoAuto, g, cc.WithMemoryBudget(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	if over.Stats.Selected == cc.AlgoShard {
		t.Fatal("explicit option did not override the env budget")
	}
	t.Setenv(cc.MemBudgetEnv, "not-a-number")
	junk, err := cc.Run(cc.AlgoAuto, g)
	if err != nil {
		t.Fatal(err)
	}
	if junk.Stats.Probe.Reason == "beyond-memory-budget" {
		t.Fatal("malformed env budget was honoured")
	}
}

// TestShardWithThreads: the sharded pipeline must honour a dedicated pool.
func TestShardWithThreads(t *testing.T) {
	g, err := gen.Web(gen.DefaultWeb(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	oracle := cc.Sequential(g)
	for _, threads := range []int{1, 2, 4} {
		res, err := cc.Run(cc.AlgoShard, g, cc.WithThreads(threads), cc.WithShards(3))
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !cc.Equivalent(res.Labels, oracle) {
			t.Fatalf("threads=%d produced a wrong partition", threads)
		}
	}
}
