package core

import (
	"testing"

	"thriftylp/graph/gen"
	"thriftylp/internal/bitmap"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// TestDOLPStartsDense: Algorithm 1 initializes the frontier to all
// vertices, so iteration 0 must be a pull at density >= 1.
func TestDOLPStartsDense(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(10, 8, 1)))
	tr := &counters.Trace{}
	DOLP(g, Config{Trace: tr})
	if tr.Iters[0].Kind != counters.KindPull {
		t.Fatalf("iteration 0 kind = %s", tr.Iters[0].Kind)
	}
	if tr.Iters[0].Density < 1 {
		t.Fatalf("iteration 0 density = %v, want >= 1 (all vertices + all edges active)", tr.Iters[0].Density)
	}
	if tr.Iters[0].Active != int64(g.NumVertices()) {
		t.Fatalf("iteration 0 active = %d, want |V|", tr.Iters[0].Active)
	}
}

// TestDOLPSwitchesToPushWhenSparse: once the frontier shrinks below the
// threshold the traversal must flip to push.
func TestDOLPSwitchesToPushWhenSparse(t *testing.T) {
	// A long path keeps exactly 1-2 active vertices after the wave passes.
	g := mustGraph(gen.Path(2000))
	tr := &counters.Trace{}
	DOLP(g, Config{Trace: tr})
	sawPush := false
	for i, it := range tr.Iters {
		if it.Kind == counters.KindPush {
			sawPush = true
			if it.Density >= DefaultDOLPThreshold {
				t.Fatalf("iteration %d pushed at density %v", i, it.Density)
			}
		}
	}
	if !sawPush {
		t.Fatal("path graph never triggered a push iteration")
	}
}

// TestDOLPThresholdRespected: the direction rule is "push when density <
// threshold". A threshold above any possible density ((|V|+|E|)/|E| < 10)
// forces all-push; a threshold of 0 forces all-pull. Both must still be
// correct.
func TestDOLPThresholdRespected(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(10, 8, 2)))
	rAllPush := DOLP(g, Config{Threshold: 10})
	if rAllPush.PullIterations != 0 {
		t.Fatalf("threshold 10 produced %d pull iterations", rAllPush.PullIterations)
	}
	rAllPull := DOLP(g, Config{Threshold: 1e-300})
	if rAllPull.PushIterations != 0 {
		t.Fatalf("threshold ~0 produced %d push iterations", rAllPull.PushIterations)
	}
	if !Equivalent(rAllPull.Labels, rAllPush.Labels) {
		t.Fatal("threshold changed the partition")
	}
}

// TestFrontierStateCountsAndExtract exercises the dense-frontier helper.
func TestFrontierStateCountsAndExtract(t *testing.T) {
	g := mustGraph(gen.Star(64))
	pool := parallel.Default()
	f := frontierState{bm: bitmap.New(g.NumVertices())}
	f.bm.Set(0)
	f.bm.Set(5)
	f.bm.Set(63)
	f.recount(pool, g)
	if f.activeV != 3 {
		t.Fatalf("activeV = %d", f.activeV)
	}
	// Vertex 0 is the hub with degree 63; 5 and 63 are leaves of degree 1.
	if f.activeE != 65 {
		t.Fatalf("activeE = %d", f.activeE)
	}
	got := f.extract(pool)
	if len(got) != 3 {
		t.Fatalf("extract returned %v", got)
	}
	seen := map[uint32]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if !seen[0] || !seen[5] || !seen[63] {
		t.Fatalf("extract contents wrong: %v", got)
	}
	if d := f.density(g); d <= 0 {
		t.Fatalf("density = %v", d)
	}
}

// TestTable5InvariantAcrossSuite: Thrifty never needs more iterations than
// DO-LP on skewed graphs (the Table V claim).
func TestTable5InvariantAcrossSuite(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 12, seed)))
		rd := DOLP(g, Config{})
		rt := Thrifty(g, Config{})
		if rt.Iterations > rd.Iterations {
			t.Fatalf("seed %d: Thrifty %d iterations > DO-LP %d", seed, rt.Iterations, rd.Iterations)
		}
	}
}
