package harness

import (
	"os"
	"testing"

	"thriftylp/cc"
)

// TestSelectorGoldenPicks runs cc.AlgoAuto once per selector fixture and
// pins the decision to the family's golden algorithm. Always on: one auto
// run per family is cheap, and a policy or probe change that flips a family
// must update the golden (with re-measurement, per DESIGN.md).
func TestSelectorGoldenPicks(t *testing.T) {
	for _, f := range SelectorFixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			g, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := cc.Run(cc.AlgoAuto, g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Selected != f.Expect {
				t.Fatalf("selected %s (reason %q), golden is %s",
					res.Stats.Selected, res.Stats.Probe.Reason, f.Expect)
			}
		})
	}
}

// TestSelectorMatrixWithinTolerance is the timed acceptance matrix: on
// every family, the auto run (probe included) must land within 5% of the
// fastest candidate, plus a 2ms absolute slack absorbing scheduler noise on
// cells whose absolute runtimes are tiny. Timing assertions are inherently
// machine-sensitive, so the test only runs when THRIFTY_SELECTOR_MATRIX=1
// (the CI selector-matrix job sets it; tier-1 `go test ./...` stays
// deterministic).
func TestSelectorMatrixWithinTolerance(t *testing.T) {
	if os.Getenv("THRIFTY_SELECTOR_MATRIX") != "1" {
		t.Skip("set THRIFTY_SELECTOR_MATRIX=1 to run the timed selector matrix")
	}
	cells, err := SelectorMatrix(RunConfig{Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderSelectorCells(cells))
	const (
		relTolerance = 1.05
		absSlackNs   = 2_000_000 // 2ms
	)
	for _, c := range cells {
		limit := int64(float64(c.BestNs)*relTolerance) + absSlackNs
		if c.AutoNs > limit {
			t.Errorf("%s: auto %dns (selected %s) exceeds best %s %dns beyond tolerance (limit %dns)",
				c.Dataset, c.AutoNs, c.Selected, c.BestAlgo, c.BestNs, limit)
		}
	}
}

// TestSelectorProbeOverhead asserts the acceptance bound on probe cost:
// under 2% of the full auto run on the medium regression fixtures.
// Env-gated with the matrix — it is a timing assertion too.
func TestSelectorProbeOverhead(t *testing.T) {
	if os.Getenv("THRIFTY_SELECTOR_MATRIX") != "1" {
		t.Skip("set THRIFTY_SELECTOR_MATRIX=1 to run the timed probe-overhead check")
	}
	for _, f := range RegressionFixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			g, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			best, res, err := TimeAlgorithm(cc.AlgoAuto, g, RunConfig{Reps: 3})
			if err != nil {
				t.Fatal(err)
			}
			probe := res.Stats.Probe.Cost
			if float64(probe) > 0.02*float64(best) {
				t.Errorf("probe cost %v is %.1f%% of the %v auto run (bound 2%%)",
					probe, 100*float64(probe)/float64(best), best)
			}
		})
	}
}
