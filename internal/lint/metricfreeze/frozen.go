package metricfreeze

// Frozen is the checked-in list of metric-name literals the obs and serve
// packages are allowed to contain: full Prometheus series names, the prefix
// fragments composed names are built from (per-endpoint and per-event
// series), and the suffix fragments appended to histogram and counter
// names. Metric names are scraped API — dashboards, alerts, and the CI
// obs-smoke assertions match on them — so renaming one is an interface
// change, not a cleanup.
//
// To change a metric name deliberately: update the call site AND this list
// in the same commit. The metricfreeze analyzer fails when a live literal
// is missing here; TestFrozenRoundTrip fails when an entry here no longer
// exists in the live packages, so the two can never drift apart silently.
var Frozen = map[string]bool{
	// Solver/runtime series (internal/obs).
	"thriftylp_runs_total":                    true,
	"thriftylp_iterations_total":              true,
	"thriftylp_run_duration_seconds":          true,
	"thriftylp_sched_partitions_owned_total":  true,
	"thriftylp_sched_partitions_stolen_total": true,
	"thriftylp_sched_steal_failures_total":    true,
	"thriftylp_pool_jobs_total":               true,
	"thriftylp_pool_idle_seconds":             true,
	"thriftylp_events_":                       true, // + sanitized event + "_total"
	"thriftylp_phase_":                        true, // + sanitized kind + "_seconds"

	// Sharded-pipeline exchange series (internal/obs).
	"thriftylp_shard_rounds_total":          true,
	"thriftylp_shard_exchanged_bytes_total": true,
	"thriftylp_shard_naive_bytes_total":     true,
	"thriftylp_shard_suppressed_total":      true,
	"thriftylp_shard_boundary_entries":      true,

	// Watchdog series (internal/obs).
	"thriftylp_runtime_heap_alloc_bytes":       true,
	"thriftylp_runtime_heap_inuse_bytes":       true,
	"thriftylp_runtime_sys_bytes":              true,
	"thriftylp_runtime_goroutines":             true,
	"thriftylp_runtime_gc_pause_seconds_total": true,
	"thriftylp_runtime_gc_cycles_total":        true,
	"thriftylp_watchdog_ticks_total":           true,
	"thriftylp_watchdog_stalls_total":          true,
	"thriftylp_watchdog_tick_lag_seconds":      true,

	// Serving series (internal/serve).
	"thriftyd_shed_total":              true,
	"thriftyd_inflight":                true,
	"thriftyd_queue_depth":             true,
	"thriftyd_reloads_total":           true,
	"thriftyd_reload_failures_total":   true,
	"thriftyd_snapshot_swaps_total":    true,
	"thriftyd_reload_seconds":          true,
	"thriftyd_queue_wait_ns":           true,
	"thriftyd_snapshot_refs":           true,
	"thriftyd_snapshot_mapped_bytes":   true,
	"thriftyd_snapshot_resident_bytes": true,
	"thriftyd_":                        true, // + endpoint + per-endpoint suffix

	// Composed suffix fragments.
	"_requests_total":   true, // thriftyd_<endpoint>_requests_total
	"_latency_ns":       true, // thriftyd_<endpoint>_latency_ns (histogram)
	"_latency_ns_total": true, // legacy-compat counter name
	"_total":            true, // histogram sum compat suffix
	"_seconds":          true, // thriftylp_phase_<kind>_seconds
	"_count":            true, // histogram sample-count suffix
	"_p50":              true, // scrape-time quantile gauges
	"_p90":              true,
	"_p99":              true,
	"_p999":             true,
}
