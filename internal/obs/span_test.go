package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRequestSpanPhases walks one span through every boundary and checks
// the phase accounting: ids are unique, phases are non-negative, the encode
// boundaries are idempotent, and the total covers the phases.
func TestRequestSpanPhases(t *testing.T) {
	sp := StartSpan("component")
	sp2 := StartSpan("component")
	if sp.ID == 0 || sp.ID == sp2.ID {
		t.Fatalf("request ids not unique: %d, %d", sp.ID, sp2.ID)
	}
	sp.EndQueue()
	sp.EndAcquire()
	sp.EndHandler()
	firstHandler := sp.HandlerNs
	sp.EndHandler() // idempotent: the envelope re-ends after the encoder did
	if sp.HandlerNs != firstHandler {
		t.Error("EndHandler not idempotent")
	}
	sp.EndEncode()
	firstEncode := sp.EncodeNs
	sp.EndEncode()
	if sp.EncodeNs != firstEncode {
		t.Error("EndEncode not idempotent")
	}
	sp.Finish(200)
	if sp.Status != 200 {
		t.Errorf("status = %d", sp.Status)
	}
	phases := sp.QueueNs + sp.AcquireNs + sp.HandlerNs + sp.EncodeNs
	if sp.TotalNs < phases {
		t.Errorf("total %dns less than the phases it contains (%dns)", sp.TotalNs, phases)
	}

	rec := sp.record()
	if rec.Kind != KindRequest || rec.Schema != TraceSchema {
		t.Errorf("record kind/schema = %q/%q", rec.Kind, rec.Schema)
	}
	if rec.ReqID != sp.ID || rec.Endpoint != "component" || rec.DurationNs != sp.TotalNs {
		t.Errorf("record did not carry the span: %+v", rec)
	}
}

// TestSlowLogThreshold checks the gate: fast spans are skipped, slow ones
// written as request records.
func TestSlowLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(NewTraceWriter(&buf), 50*time.Millisecond, 0)

	fast := StartSpan("same")
	fast.Finish(200)
	if l.Observe(&fast) {
		t.Error("fast span was logged")
	}
	slow := StartSpan("same")
	slow.TotalNs = (60 * time.Millisecond).Nanoseconds()
	slow.Status = 200
	if !l.Observe(&slow) {
		t.Error("slow span was not logged")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Logged(); got != 1 {
		t.Errorf("Logged = %d, want 1", got)
	}
	if out := buf.String(); !strings.Contains(out, `"kind":"request"`) || !strings.Contains(out, `"endpoint":"same"`) {
		t.Errorf("unexpected record: %s", out)
	}
}

// TestSlowLogRateCap checks the sampling gate: an overload of slow spans
// produces at most maxPerSec records per second, the rest counted dropped —
// concurrently, since the CAS gate is what makes that safe.
func TestSlowLogRateCap(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(NewTraceWriter(&buf), 0, 1) // 1 record/s, log everything offered

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := StartSpan("census")
			sp.TotalNs = 1
			l.Observe(&sp)
		}()
	}
	wg.Wait()
	if got := l.Logged(); got != 1 {
		t.Errorf("Logged = %d, want exactly 1 under a 1/s cap", got)
	}
	if got := l.Dropped(); got != 15 {
		t.Errorf("Dropped = %d, want 15", got)
	}
}

// TestSlowLogWriteRecord checks the bypass for reload/ingest records: no
// threshold, no rate gate.
func TestSlowLogWriteRecord(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(NewTraceWriter(&buf), time.Hour, 1)
	for i := 0; i < 3; i++ {
		if err := l.WriteRecord(TraceRecord{Schema: TraceSchema, Kind: KindReload, SolveNs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"kind":"reload"`); got != 3 {
		t.Errorf("%d reload records, want 3:\n%s", got, buf.String())
	}
}
