package clitest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startThriftyd launches the daemon on a free port and returns its base URL
// once the listener line appears on stdout. The returned cmd is running; the
// caller signals and waits it.
func startThriftyd(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "thriftyd"),
		append([]string{"-addr", "127.0.0.1:0", "-log", "off"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "thriftyd listening on ") {
				lines <- strings.TrimPrefix(sc.Text(), "thriftyd listening on ")
			}
		}
		close(lines)
	}()
	select {
	case url, ok := <-lines:
		if !ok {
			t.Fatal("thriftyd exited before printing its listen address")
		}
		return cmd, url
	case <-time.After(30 * time.Second):
		t.Fatal("thriftyd never printed its listen address")
	}
	panic("unreachable")
}

// waitReady polls /readyz until the initial snapshot publishes.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("thriftyd never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestThriftydServeQueryDrain is the daemon's end-to-end lifecycle: serve a
// generated graph, answer every query endpoint, then exit 0 on a single
// SIGTERM — a clean drain is the acceptance criterion; a non-zero exit is
// reserved for the forced second signal.
func TestThriftydServeQueryDrain(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	if out, err := run(t, "graphgen", "-gen", "rmat:12:8", "-o", bin); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}

	cmd, base := startThriftyd(t, "-in", bin)
	waitReady(t, base)

	for _, q := range []struct{ path, want string }{
		{"/component?v=0", `"component"`},
		{"/same?u=0&v=1", `"same"`},
		{"/census", `"components"`},
		{"/healthz", "ok"},
	} {
		resp, err := http.Get(base + q.path)
		if err != nil {
			t.Fatalf("GET %s: %v", q.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), q.want) {
			t.Fatalf("GET %s = %d %q, want 200 containing %s", q.path, resp.StatusCode, body, q.want)
		}
	}
	// /size with a component label learned from /component.
	resp, err := http.Get(base + "/component?v=0")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Component uint32 `json:"component"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(fmt.Sprintf("%s/size?c=%d", base, doc.Component))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/size for a live component = %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("thriftyd did not drain cleanly on SIGTERM: %v", err)
	}
}

// TestThriftydReloadRollback drives the operator loop through the HTTP
// surface of the built binary: poisoned reload rolls back (500 + not-ready,
// old answers intact), restored reload recovers (200 + ready).
func TestThriftydReloadRollback(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bin")
	if out, err := run(t, "graphgen", "-gen", "rmat:12:8", "-o", good); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	served := filepath.Join(dir, "served.bin")
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(served, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd, base := startThriftyd(t, "-in", served)
	waitReady(t, base)

	censusBefore := get200(t, base+"/census")

	if err := os.WriteFile(served, []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if st := post(t, base+"/reload"); st != http.StatusInternalServerError {
		t.Fatalf("poisoned reload = %d, want 500", st)
	}
	if st := getStatus(t, base+"/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after poisoned reload = %d, want 503", st)
	}
	if got := get200(t, base+"/census"); got != censusBefore {
		t.Fatalf("census changed across failed reload:\n%s\nvs\n%s", got, censusBefore)
	}

	if err := os.WriteFile(served, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if st := post(t, base+"/reload"); st != http.StatusOK {
		t.Fatalf("restored reload = %d, want 200", st)
	}
	if st := getStatus(t, base+"/readyz"); st != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", st)
	}

	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drain after reload cycle: %v", err)
	}
}

func get200(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d %q", url, resp.StatusCode, body)
	}
	return string(body)
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func post(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
