package parallel

import "thriftylp/internal/atomicx"

// For runs fn over [0, n) on the pool, handing each worker dynamically
// claimed chunks of the given grain size. fn receives half-open [lo, hi)
// chunks. grain <= 0 selects a grain that yields ~4 chunks per worker.
//
// A panic in fn surfaces as a *PanicError panic on the calling goroutine
// (see the package comment's failure contract).
func For(pool *Pool, n, grain int, fn func(tid, lo, hi int)) {
	if n <= 0 {
		return
	}
	threads := pool.Threads()
	if grain <= 0 {
		grain = n / (threads * 4)
		if grain < 1 {
			grain = 1
		}
	}
	if threads == 1 || n <= grain {
		fn(0, 0, n)
		return
	}
	var next int64
	pool.MustRun(func(tid int) {
		for {
			lo := int(atomicx.AddInt64(&next, int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(tid, lo, hi)
		}
	})
}

// ForEach runs fn(i) for each i in [0, n) in parallel with dynamic chunking.
func ForEach(pool *Pool, n, grain int, fn func(i int)) {
	For(pool, n, grain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// SumInt64 computes the sum of fn(lo, hi) partial results over [0, n) in
// parallel. fn must return the partial value for its chunk.
func SumInt64(pool *Pool, n, grain int, fn func(lo, hi int) int64) int64 {
	var total int64
	For(pool, n, grain, func(_, lo, hi int) {
		atomicx.AddInt64(&total, fn(lo, hi))
	})
	return total
}

// MaxIndex finds an index i in [0, n) maximizing key(i), reproducing the
// Zero Planting reduction of Algorithm 2 (lines 3-9): each thread tracks a
// local maximum, then the master reduces over the per-thread maxima. Ties
// resolve to the smallest index so the result is deterministic regardless of
// chunk scheduling. n must be > 0.
func MaxIndex(pool *Pool, n int, key func(i int) int64) int {
	if n <= 0 {
		panic("parallel: MaxIndex over empty range")
	}
	threads := pool.Threads()
	maxVals := make([]int64, threads)
	maxIdx := make([]int, threads)
	for t := range maxVals {
		maxVals[t] = -1 << 62
		maxIdx[t] = -1
	}
	For(pool, n, 0, func(tid, lo, hi int) {
		bestV, bestI := maxVals[tid], maxIdx[tid]
		for i := lo; i < hi; i++ {
			if v := key(i); v > bestV || (v == bestV && i < bestI) {
				bestV, bestI = v, i
			}
		}
		//thrifty:benign-race per-thread reduction slots indexed by tid; no two workers share an index
		maxVals[tid], maxIdx[tid] = bestV, bestI
	})
	bestV, bestI := int64(-1<<62), -1
	for t := 0; t < threads; t++ {
		if maxIdx[t] < 0 {
			continue
		}
		if maxVals[t] > bestV || (maxVals[t] == bestV && maxIdx[t] < bestI) {
			bestV, bestI = maxVals[t], maxIdx[t]
		}
	}
	return bestI
}

// Fill sets dst[i] = fn(i) for all i in parallel. Used for the initial label
// assignment loops of the LP algorithms.
func Fill(pool *Pool, dst []uint32, fn func(i int) uint32) {
	For(pool, len(dst), 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			//thrifty:benign-race workers write disjoint [lo,hi) ranges of dst
			dst[i] = fn(i)
		}
	})
}

// Copy copies src into dst in parallel; the slices must have equal length.
// This is the labels-array synchronization step of DO-LP (Algorithm 1,
// lines 21-22), which Thrifty's Unified Labels Array removes.
func Copy(pool *Pool, dst, src []uint32) {
	if len(dst) != len(src) {
		panic("parallel: Copy length mismatch")
	}
	For(pool, len(dst), 0, func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
