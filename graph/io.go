package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list format: one "u v" pair per line, whitespace separated,
// '#' or '%' prefixed lines are comments. Binary CSR format: a fixed header
// (magic, version, |V|, directed slot count) followed by the little-endian
// offsets and adjacency arrays; loading a binary CSR skips edge-list
// re-symmetrization entirely, which is how the large generated datasets are
// shipped between cmd/graphgen and the benchmark tools.

const (
	binMagic   = 0x54484c50 // "THLP"
	binVersion = 1
)

// WriteEdgeList writes g as a text edge list with one line per undirected
// edge (u <= v). Lines are formatted with strconv.AppendUint into a reused
// buffer, so the per-edge cost is two integer conversions and a copy — no
// fmt state machine and no per-line allocation.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# thriftylp edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	buf := make([]byte, 0, 32)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) <= u {
				buf = strconv.AppendUint(buf[:0], uint64(v), 10)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, uint64(u), 10)
				buf = append(buf, '\n')
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list and builds an undirected graph with
// the supplied build options. The whole input is read into one buffer
// (pre-sized from the file length when the reader is a regular file) and
// parsed with the sharded parser in parse.go.
func ReadEdgeList(r io.Reader, opts ...BuildOption) (*Graph, error) {
	data, err := readAll(r)
	if err != nil {
		return nil, err
	}
	edges, err := parseEdgeList(data, nil)
	if err != nil {
		return nil, err
	}
	return BuildUndirected(edges, opts...)
}

// readAll slurps r, pre-sizing the buffer from Stat when r is a regular
// file so the read happens into one allocation instead of the doubling
// growth of a bare io.ReadAll.
func readAll(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	if f, ok := r.(*os.File); ok {
		if st, err := f.Stat(); err == nil && st.Mode().IsRegular() {
			if pos, err := f.Seek(0, io.SeekCurrent); err == nil && st.Size() > pos {
				// +1 spares ReadFrom's final probe-for-EOF grow.
				buf.Grow(int(st.Size()-pos) + 1)
			}
		}
	}
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteBinary writes g in the binary CSR format. On little-endian hosts the
// offsets and adjacency arrays are emitted as two bulk byte views of the
// in-memory arrays; other hosts convert through a chunked staging buffer.
func WriteBinary(w io.Writer, g *Graph) error {
	var hdr [binHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], binMagic)
	binary.LittleEndian.PutUint64(hdr[8:], binVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(g.adj)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt64s(w, g.offsets); err != nil {
		return err
	}
	return writeUint32s(w, g.adj)
}

// writeInt64s emits s little-endian: zero-copy on little-endian hosts, via
// a chunked conversion buffer elsewhere.
func writeInt64s(w io.Writer, s []int64) error {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(int64sAsBytes(s))
		return err
	}
	buf := make([]byte, 8*minU64(uint64(len(s)), readChunkCap))
	for len(s) > 0 {
		k := minU64(uint64(len(s)), readChunkCap)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(s[i]))
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		s = s[k:]
	}
	return nil
}

// writeUint32s emits s little-endian: zero-copy on little-endian hosts, via
// a chunked conversion buffer elsewhere.
func writeUint32s(w io.Writer, s []uint32) error {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(uint32sAsBytes(s))
		return err
	}
	buf := make([]byte, 4*minU64(uint64(len(s)), readChunkCap))
	for len(s) > 0 {
		k := minU64(uint64(len(s)), readChunkCap)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], s[i])
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		s = s[k:]
	}
	return nil
}

// binHeaderSize is the fixed binary CSR header: magic, version, |V|,
// directed slot count, 8 bytes each.
const binHeaderSize = 32

// binPayloadSize returns the byte size of the offsets + adjacency payload
// for a graph with n vertices and m directed slots, or -1 on overflow. Used
// to validate untrusted headers against a known input size before
// allocating anything.
func binPayloadSize(n, m uint64) int64 {
	const maxInt64 = 1<<63 - 1
	if n >= maxInt64/8-1 || m >= maxInt64/4 {
		return -1
	}
	off := 8 * (n + 1)
	adj := 4 * m
	if off > maxInt64-adj {
		return -1
	}
	return int64(off + adj)
}

// readBinaryHeader reads and sanity-checks the fixed header, returning the
// claimed vertex and directed-slot counts.
func readBinaryHeader(r io.Reader) (n, m uint64, err error) {
	var raw [binHeaderSize]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return 0, 0, fmt.Errorf("graph: reading binary header: %w", err)
	}
	magic := binary.LittleEndian.Uint64(raw[0:])
	version := binary.LittleEndian.Uint64(raw[8:])
	n = binary.LittleEndian.Uint64(raw[16:])
	m = binary.LittleEndian.Uint64(raw[24:])
	if magic != binMagic {
		return 0, 0, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != binVersion {
		return 0, 0, fmt.Errorf("graph: unsupported version %d", version)
	}
	// CSR indices are int and vertex ids uint32; anything larger cannot
	// have been written by WriteBinary and is a corrupt or hostile header.
	if n > uint64(^uint32(0)) {
		return 0, 0, fmt.Errorf("graph: header claims %d vertices, above the uint32 id space", n)
	}
	if binPayloadSize(n, m) < 0 {
		return 0, 0, fmt.Errorf("graph: header sizes overflow (%d vertices, %d slots)", n, m)
	}
	return n, m, nil
}

// readChunkCap bounds how much memory a single allocation step may commit
// before the bytes backing it have actually been read: headers are
// untrusted, so slices grow incrementally as data arrives instead of
// trusting the claimed element count up front. 4Mi elements ≈ 16–32 MiB.
const readChunkCap = 4 << 20

// ReadBinary reads a graph written by WriteBinary, validating the CSR
// invariants before returning it.
//
// The input is treated as untrusted: header counts are range- and
// overflow-checked, and the offsets/adjacency arrays are allocated
// incrementally while the stream delivers bytes, so a corrupt or hostile
// header claiming huge counts fails with ErrUnexpectedEOF after reading at
// most the real input — it cannot force an allocation proportional to the
// claim. Readers with a known size (files) get a cheaper up-front check via
// LoadBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	n, m, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}

	offsets, err := readInt64s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	adj, err := readUint32s(br, m)
	if err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	return FromCSR(offsets, adj)
}

// readInt64s reads count little-endian int64s in chunks, growing the result
// only as bytes actually arrive.
func readInt64s(r io.Reader, count uint64) ([]int64, error) {
	out := make([]int64, 0, minU64(count, readChunkCap))
	buf := make([]byte, 8*minU64(count, readChunkCap))
	for done := uint64(0); done < count; {
		k := minU64(count-done, readChunkCap)
		b := buf[:8*k]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("element %d of %d: %w", done, count, noEOF(err))
		}
		for i := 0; i < k; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
		done += uint64(k)
	}
	return out, nil
}

// readUint32s reads count little-endian uint32s in chunks, growing the
// result only as bytes actually arrive.
func readUint32s(r io.Reader, count uint64) ([]uint32, error) {
	out := make([]uint32, 0, minU64(count, readChunkCap))
	buf := make([]byte, 4*minU64(count, readChunkCap))
	for done := uint64(0); done < count; {
		k := minU64(count-done, readChunkCap)
		b := buf[:4*k]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("element %d of %d: %w", done, count, noEOF(err))
		}
		for i := 0; i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[4*i:]))
		}
		done += uint64(k)
	}
	return out, nil
}

func minU64(a, b uint64) int {
	if a < b {
		return int(a)
	}
	return int(b)
}

// noEOF maps io.EOF to ErrUnexpectedEOF: once the header promised more
// elements, a clean EOF mid-array is still a truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// SaveBinary writes g to the named file in binary CSR format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// errMmapFallback signals that the zero-copy loader could not establish a
// mapping (kernel refusal, special file) and the portable path should run
// instead. It never escapes LoadBinary.
var errMmapFallback = errors.New("graph: mmap unavailable")

// LoadBinary reads a graph from a binary CSR file. Unlike ReadBinary on a
// bare stream, the file size is known, so the header's claimed counts are
// validated against it before any allocation: a corrupt header that
// promises more data than the file holds is rejected up front.
//
// On little-endian hosts with mmap support the offsets and adjacency arrays
// are aliased directly out of the page cache — no copy, no decode loop. The
// returned graph then owns a memory mapping; call Close to release it (see
// Graph.Close). Elsewhere, and whenever the kernel refuses the mapping, the
// portable chunked-read path runs instead. Both paths validate the header
// and the structural CSR invariants (monotone offsets, in-range ids); the
// portable path additionally audits symmetry, as FromCSR always has.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if mmapSupported && hostLittleEndian && st.Mode().IsRegular() && st.Size() >= binHeaderSize {
		g, err := loadBinaryMmap(f, path, st.Size())
		if err == nil {
			return g, nil
		}
		if !errors.Is(err, errMmapFallback) {
			return nil, err
		}
	}
	n, m, err := readBinaryHeader(f)
	if err != nil {
		return nil, err
	}
	if need := binPayloadSize(n, m); st.Mode().IsRegular() && need > st.Size()-binHeaderSize {
		return nil, fmt.Errorf(
			"graph: %s: header claims %d vertices and %d slots (%d payload bytes) but file holds %d",
			path, n, m, need, st.Size()-binHeaderSize)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	offsets, err := readInt64s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: reading offsets: %w", path, err)
	}
	adj, err := readUint32s(br, m)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: reading adjacency: %w", path, err)
	}
	return FromCSR(offsets, adj)
}

// loadBinaryMmap is the zero-copy LoadBinary path: map the file, validate
// the header against the mapped size, and alias the CSR arrays straight
// from the mapping. The header is 32 bytes and the mapping page-aligned, so
// the offsets alias is 8-byte aligned and the adjacency alias 4-byte
// aligned by construction. Returns errMmapFallback when no mapping can be
// established; any other error is a verdict on the file itself.
func loadBinaryMmap(f *os.File, path string, size int64) (*Graph, error) {
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, errMmapFallback
	}
	ok := false
	defer func() {
		if !ok {
			munmapBytes(data)
		}
	}()
	n, m, err := readBinaryHeader(bytes.NewReader(data[:binHeaderSize]))
	if err != nil {
		return nil, err
	}
	need := binPayloadSize(n, m)
	if need > size-binHeaderSize {
		return nil, fmt.Errorf(
			"graph: %s: header claims %d vertices and %d slots (%d payload bytes) but file holds %d",
			path, n, m, need, size-binHeaderSize)
	}
	offEnd := binHeaderSize + int64(8*(n+1))
	offsets := int64sFromBytes(data[binHeaderSize:offEnd])
	var adj []uint32
	if m > 0 {
		adj = uint32sFromBytes(data[offEnd : offEnd+int64(4*m)])
	}
	g := &Graph{offsets: offsets, adj: adj, mapped: data}
	// Structural validation only: monotone offsets spanning the adjacency
	// array and in-range ids — everything memory safety downstream depends
	// on. The O(|E|) symmetry audit is skipped here: binary CSR is this
	// repository's own interchange format and WriteBinary only emits
	// symmetric graphs, while an asymmetric file can skew results but cannot
	// corrupt memory. Untrusted streams (ReadBinary) and raw arrays
	// (FromCSR) still run the full audit; callers wanting it on a mapped
	// graph can invoke Validate themselves.
	if err := g.validateStructure(nil); err != nil {
		return nil, err
	}
	if g.NumVertices() > 0 {
		g.computeMaxDegree(nil)
	}
	ok = true
	return g, nil
}

// LoadEdgeList reads a graph from a text edge-list file.
func LoadEdgeList(path string, opts ...BuildOption) (*Graph, error) {
	g, _, err := ingestEdgeList(path, opts...)
	return g, err
}

// Load reads a graph from path, dispatching on extension: ".bin" and ".csr"
// use the binary CSR format, anything else is parsed as a text edge list.
func Load(path string, opts ...BuildOption) (*Graph, error) {
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".csr") {
		return LoadBinary(path)
	}
	return LoadEdgeList(path, opts...)
}
