package core

import (
	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/parallel"
)

// FastSV (Zhang, Azad & Buluç, 2020) is the min-based hooking algorithm the
// paper's related-work section singles out (§VI): although presented as an
// SV refinement, its use of the MIN operator over parent labels makes it
// "a variant of the Label Propagation CC instead of SV". It is included as
// an extension baseline to position Thrifty among the LP-family algorithms.
//
// Each iteration applies three rules with grandparent values gp[v] = f[f[v]]:
//
//	stochastic hooking:  f[f[u]] ← min(f[f[u]], gp[v]) over edges (u,v)
//	aggressive hooking:  f[u]    ← min(f[u],    gp[v]) over edges (u,v)
//	shortcutting:        f[u]    ← min(f[u],    gp[u])
//
// until no value changes. All three use atomic-min, so iterations are safe
// to run fully in parallel.
func FastSV(g *graph.Graph, cfg Config) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	f := cfg.Arena.Uint32s(n)
	gp := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, f, func(i int) uint32 { return uint32(i) })
	parallel.Copy(pool, gp, f)
	sch := newScheduler(g, cfg, pool)

	res := Result{}
	maxIters := cfg.maxIters(n)
	for res.Iterations < maxIters {
		var changed int64
		// Hooking over all directed slots (u,v).
		sch.sweep(func(tid, lo, hi int) {
			if cfg.Stop.Requested() {
				return // cancellation poll at partition entry
			}
			var local int64
			var ck chunkCounts
			for u := lo; u < hi; u++ {
				ck.visits++
				for _, v := range g.Neighbors(uint32(u)) {
					ck.edges++
					gpv := atomicx.LoadUint32(&gp[v])
					ck.loads++
					// Stochastic hooking: lower u's parent's value.
					fu := atomicx.LoadUint32(&f[u])
					ck.loads++
					ck.cas += 2
					ck.branches += 2
					if atomicx.MinUint32(&f[fu], gpv) {
						ck.stores++
						local++
					}
					// Aggressive hooking: lower u's own value.
					if atomicx.MinUint32(&f[u], gpv) {
						ck.stores++
						local++
					}
				}
			}
			ck.flush(cfg.Ctr, tid)
			atomicx.AddInt64(&changed, local)
		})
		// Shortcutting.
		parallel.For(pool, n, 2048, func(tid, lo, hi int) {
			var local int64
			var ck chunkCounts
			for u := lo; u < hi; u++ {
				ck.visits++
				ck.cas++
				ck.branches++
				if atomicx.MinUint32(&f[u], atomicx.LoadUint32(&gp[u])) {
					ck.stores++
					local++
				}
			}
			ck.flush(cfg.Ctr, tid)
			atomicx.AddInt64(&changed, local)
		})
		// Recompute grandparents for the next iteration.
		parallel.For(pool, n, 2048, func(tid, lo, hi int) {
			var ck chunkCounts
			for u := lo; u < hi; u++ {
				gp[u] = f[f[u]] //thrifty:benign-race workers own disjoint vertex ranges of gp; stale f reads are FastSV-tolerated
				ck.loads += 2
				ck.stores++
			}
			ck.flush(cfg.Ctr, tid)
		})
		res.Iterations++
		// Cancellation before convergence: a cancelled hook sweep reports a
		// changed count of 0 that means "aborted", not "fixed point".
		if cfg.cancelPoint(&res, PhaseHook) {
			break
		}
		if changed == 0 {
			break
		}
	}
	// f now maps every vertex to its tree value; flatten to roots so labels
	// are canonical per component. Runs even when cancelled: flattening a
	// partial forest is cheap and keeps the labels self-consistent.
	parallel.For(pool, n, 2048, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for {
				fu := atomicx.LoadUint32(&f[u])
				ffu := atomicx.LoadUint32(&f[fu])
				if fu == ffu {
					break
				}
				atomicx.StoreUint32(&f[u], ffu)
			}
		}
	})
	res.Labels = f
	res.Sched = sch.stealStats()
	return res
}
