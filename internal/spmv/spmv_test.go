package spmv

import (
	"testing"
	"testing/quick"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/core"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// bfsOracle computes hop distances sequentially.
func bfsOracle(g *graph.Graph, root uint32) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[root] = 0
	queue := []uint32{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == Unreached {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func testGraphs() map[string]*graph.Graph {
	// loophub: the max-degree vertex's only edge is a self-loop, so the
	// initial push activates nothing — regression fixture for the
	// do-while guarantee (at least one full sweep must still run).
	loopHub, err := graph.BuildUndirected(
		[]graph.Edge{{U: 0, V: 0}, {U: 1, V: 2}}, graph.WithNumVertices(4))
	if err != nil {
		panic(err)
	}
	return map[string]*graph.Graph{
		"rmat":    mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 4))),
		"path":    mustGraph(gen.Path(700)),
		"star":    mustGraph(gen.Star(500)),
		"cliques": mustGraph(gen.Components(4, 7)),
		"web":     mustGraph(gen.Web(gen.WebConfig{CoreScale: 8, CoreEdgeFactor: 6, NumChains: 6, ChainLength: 48, Seed: 2})),
		"grid":    mustGraph(gen.Grid(gen.GridConfig{Rows: 30, Cols: 30})),
		"loophub": loopHub,
	}
}

func TestCCMatchesOracleBothModes(t *testing.T) {
	for name, g := range testGraphs() {
		oracle := core.SeqCC(g)
		for _, async := range []bool{false, true} {
			res := CC(g, async)
			if !core.Equivalent(res.Values, oracle) {
				t.Fatalf("%s async=%v: wrong partition", name, async)
			}
		}
	}
}

func TestCCMatchesThriftyLabels(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 8, 9)))
	engine := CC(g, true)
	hand := core.Thrifty(g, core.Config{})
	// Not just the same partition — the same label values (0 on the hub's
	// component, min+1 elsewhere).
	for v := range engine.Values {
		if engine.Values[v] != hand.Labels[v] {
			t.Fatalf("vertex %d: engine %d vs thrifty %d", v, engine.Values[v], hand.Labels[v])
		}
	}
}

func TestHopDistanceMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		if g.NumVertices() == 0 {
			continue
		}
		root := g.MaxDegreeVertex()
		want := bfsOracle(g, root)
		for _, async := range []bool{false, true} {
			res := HopDistance(g, root, async)
			for v := range want {
				if res.Values[v] != want[v] {
					t.Fatalf("%s async=%v: dist[%d] = %d, want %d",
						name, async, v, res.Values[v], want[v])
				}
			}
		}
	}
}

// TestAsyncNeverMoreIterations: the unified-array (asynchronous) engine
// must never need more iterations than the synchronous one — the §VII
// correspondence made checkable.
func TestAsyncNeverMoreIterations(t *testing.T) {
	for name, g := range testGraphs() {
		sync := CC(g, false)
		async := CC(g, true)
		if async.Iterations > sync.Iterations {
			t.Fatalf("%s: async CC took %d iterations vs sync %d", name, async.Iterations, sync.Iterations)
		}
		if g.NumVertices() == 0 {
			continue
		}
		root := g.MaxDegreeVertex()
		sd := HopDistance(g, root, false)
		ad := HopDistance(g, root, true)
		if ad.Iterations > sd.Iterations {
			t.Fatalf("%s: async BFS took %d iterations vs sync %d", name, ad.Iterations, sd.Iterations)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(gen.Empty(0))
	res := CC(g, true)
	if len(res.Values) != 0 || res.Iterations != 0 {
		t.Fatalf("empty: %+v", res)
	}
}

func TestSeedsAndFloorSemantics(t *testing.T) {
	// A path seeded at one end: floor convergence applies only to value 0.
	g := mustGraph(gen.Path(10))
	res := Run(g, Program{
		Init: func(v uint32) uint32 { return Unreached },
		EdgeFn: func(x uint32) uint32 {
			if x == Unreached {
				return Unreached
			}
			return x + 1
		},
		Floor:       0,
		Seeds:       []Seed{{Vertex: 9, Value: 0}},
		InitialPush: true,
		Async:       true,
	})
	for v := 0; v < 10; v++ {
		if res.Values[v] != uint32(9-v) {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Values[v], 9-v)
		}
	}
}

// TestQuickEngineAgreesWithOracles hammers both programs on random graphs.
func TestQuickEngineAgreesWithOracles(t *testing.T) {
	f := func(raw []byte, async bool) bool {
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{U: uint32(raw[i] % 96), V: uint32(raw[i+1] % 96)})
		}
		g, err := graph.BuildUndirected(edges, graph.WithNumVertices(96))
		if err != nil {
			return false
		}
		if !core.Equivalent(CC(g, async).Values, core.SeqCC(g)) {
			return false
		}
		root := g.MaxDegreeVertex()
		want := bfsOracle(g, root)
		got := HopDistance(g, root, async).Values
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
