package harness

import (
	"strconv"
	"strings"
	"testing"
)

// These tests pin the paper's qualitative *shapes* at small scale so a
// regression that silently broke a mechanism (zero convergence stops
// skipping edges, planting lands off the giant component, ...) fails CI
// even though all correctness tests still pass.

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing cell %q: %v", s, err)
	}
	return v
}

// TestShapeTable1: every power-law dataset keeps >= 90% of its vertices in
// the hub's component (paper: >= 94.5% at full scale).
func TestShapeTable1(t *testing.T) {
	tab, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] != "Yes" {
			continue
		}
		if pct := cellFloat(t, row[3]); pct < 90 {
			t.Errorf("%s: hub component holds only %.1f%%", row[0], pct)
		}
	}
}

// TestShapeTable5: Thrifty never needs more iterations than DO-LP, and at
// least one dataset shows a real reduction.
func TestShapeTable5(t *testing.T) {
	tab, err := Table5(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	anyBelow := false
	for _, row := range tab.Rows {
		ratio := cellFloat(t, row[3])
		if ratio > 1.0001 {
			t.Errorf("%s: iteration ratio %.2f > 1", row[0], ratio)
		}
		if ratio < 0.95 {
			anyBelow = true
		}
	}
	if !anyBelow {
		t.Error("no dataset shows an iteration reduction")
	}
}

// TestShapeFig5: Thrifty's processed edges stay well below |E| on skewed
// graphs while DO-LP processes each edge multiple times.
func TestShapeFig5(t *testing.T) {
	tab, err := Fig5(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		dolpX := cellFloat(t, row[2])
		thriftyPct := cellFloat(t, row[3])
		if dolpX < 1.5 {
			t.Errorf("%s: DO-LP processed only %.1fx|E| — trace accounting broken?", row[0], dolpX)
		}
		if thriftyPct > 60 {
			t.Errorf("%s: Thrifty processed %.1f%% of |E| — zero convergence not effective", row[0], thriftyPct)
		}
	}
}

// TestShapeFig6: every counter proxy shows at least a 50% geomean
// reduction at small scale (paper: >= 80% at full scale).
func TestShapeFig6(t *testing.T) {
	tab, err := Fig6(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("fig6 has %d metric rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if red := cellFloat(t, row[1]); red < 50 {
			t.Errorf("%s: reduction only %.1f%%", row[0], red)
		}
	}
}

// TestShapeTable6: the initial push + first pull beat DO-LP's first full
// pull. Individual iterations last only ~100µs at test scale, so a single
// scheduler or GC hiccup can flip one measurement — take the best of three
// runs per dataset before judging.
func TestShapeTable6(t *testing.T) {
	best := map[string]float64{}
	for attempt := 0; attempt < 3; attempt++ {
		tab, err := Table6(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if sp := cellFloat(t, row[4]); sp > best[row[0]] {
				best[row[0]] = sp
			}
		}
	}
	for name, sp := range best {
		if sp < 1 {
			t.Errorf("%s: best first-iteration speedup %.1fx < 1", name, sp)
		}
	}
}

// TestShapeFig7: Thrifty's first pull converges the large majority of
// vertices (paper: 88.3%).
func TestShapeFig7(t *testing.T) {
	tab, err := Fig7(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("fig7 too short")
	}
	// Row 1 is iteration 1 (the first pull); column 2 is Thrifty.
	if conv := cellFloat(t, tab.Rows[1][2]); conv < 70 {
		t.Errorf("Thrifty converged only %.1f%% after its first pull", conv)
	}
}
