package harness

import (
	"path/filepath"
	"testing"
)

// TestShardRegressionSmall runs the sharded-exchange gate end to end at the
// small scale: every fixture × shard count yields a record whose compaction
// invariant held (ShardRegression errors otherwise), the unsharded
// denominator and per-round breakdowns are populated, the streamed
// generator's memory accounting is attached, and the report survives a JSON
// round trip.
func TestShardRegressionSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded regression fixtures are slow in -short mode")
	}
	rep, err := ShardRegression(RunConfig{Scale: ScaleSmall, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ShardSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ShardSchema)
	}
	fixtures := ShardFixtures(ScaleSmall)
	if want := len(fixtures) * len(shardBenchCounts); len(rep.Records) != want {
		t.Fatalf("got %d records, want %d", len(rep.Records), want)
	}
	for i, rec := range rep.Records {
		if rec.Vertices <= 0 || rec.Edges <= 0 || rec.Shards < 2 || rec.Rounds <= 0 {
			t.Errorf("record %d: degenerate shape: %+v", i, rec)
		}
		if rec.ExchangedBytes >= rec.NaiveBytes {
			t.Errorf("record %d: compaction inversion escaped the gate: %+v", i, rec)
		}
		if rec.Suppressed <= 0 {
			t.Errorf("record %d: no suppression on a hub-heavy fixture: %+v", i, rec)
		}
		if rec.CompactionRatio <= 1 {
			t.Errorf("record %d: compaction ratio %v", i, rec.CompactionRatio)
		}
		if rec.NsPerRun <= 0 || rec.UnshardedNs <= 0 || rec.Overhead <= 0 {
			t.Errorf("record %d: timing fields not populated: %+v", i, rec)
		}
		if len(rec.PerRound) != rec.Rounds {
			t.Errorf("record %d: %d per-round entries for %d rounds", i, len(rec.PerRound), rec.Rounds)
		}
		var sumB, sumN int64
		for _, rr := range rec.PerRound {
			sumB += rr.Bytes
			sumN += rr.NaiveBytes
		}
		if sumB != rec.ExchangedBytes || sumN != rec.NaiveBytes {
			t.Errorf("record %d: per-round traffic does not sum to totals", i)
		}
	}
	if rep.Stream == nil {
		t.Fatal("report missing streamed-generator accounting")
	}
	if rep.Stream.PeakBytes <= 0 || rep.Stream.PeakBytes >= rep.Stream.EdgeListBytes || rep.Stream.Ratio <= 1 {
		t.Errorf("streamed accounting not credible: %+v", rep.Stream)
	}

	path := filepath.Join(t.TempDir(), "BENCH_shard.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShardReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Records) != len(rep.Records) {
		t.Fatalf("JSON round trip changed the report: %+v", back)
	}
	if back.Records[0].ExchangedBytes != rep.Records[0].ExchangedBytes ||
		back.Records[0].Dataset != rep.Records[0].Dataset {
		t.Errorf("record drifted through JSON: %+v vs %+v", back.Records[0], rep.Records[0])
	}
	if back.Stream == nil || *back.Stream != *rep.Stream {
		t.Errorf("stream record drifted through JSON")
	}
	if ms := back.HostMismatch(rep); len(ms) != 0 {
		t.Errorf("self host-mismatch: %v", ms)
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}
