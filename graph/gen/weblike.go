package gen

import (
	"fmt"

	"thriftylp/graph"
)

// WebConfig parameterizes the web-graph analog: a skewed RMAT core with
// pendant paths ("crawl tendrils") attached to random core vertices. Real
// web crawls (WebBase-2001, UK-Union in Table II) combine a hub-dominated
// core with long chains of pages reachable only through each other, giving
// them a much larger effective diameter than social networks — which is why
// the paper reports 70+ push iterations on them (§IV-E) and why they are
// where Unified Labels' iteration reduction is largest (−89% on WebBase,
// Table V).
type WebConfig struct {
	// CoreScale and CoreEdgeFactor parameterize the RMAT core.
	CoreScale      int
	CoreEdgeFactor int
	// NumChains pendant paths of ChainLength vertices each are attached to
	// uniformly random core vertices.
	NumChains   int
	ChainLength int
	Seed        uint64
}

// DefaultWeb returns a web-graph analog configuration: chains totalling
// roughly a sixth of the vertices (tendrils are a minority of real crawls,
// Table I shows >=94.5% of vertices in the giant component), each long
// enough to force dozens of sparse push iterations.
func DefaultWeb(scale int, seed uint64) WebConfig {
	n := 1 << scale
	return WebConfig{
		CoreScale:      scale,
		CoreEdgeFactor: 12,
		NumChains:      n / 512,
		ChainLength:    96,
		Seed:           seed,
	}
}

// Web generates the web-graph analog. Chain vertices are numbered after the
// core block, so the core's skew dominates low vertex ids just as crawl
// order does in real web datasets.
func Web(cfg WebConfig) (*graph.Graph, error) {
	if cfg.NumChains < 0 || cfg.ChainLength < 0 {
		return nil, fmt.Errorf("gen: negative chain parameters %d×%d", cfg.NumChains, cfg.ChainLength)
	}
	coreEdges, err := RMATEdges(DefaultRMAT(cfg.CoreScale, cfg.CoreEdgeFactor, cfg.Seed))
	if err != nil {
		return nil, err
	}
	coreN := 1 << cfg.CoreScale
	n := coreN + cfg.NumChains*cfg.ChainLength
	if n > 1<<31 {
		return nil, fmt.Errorf("gen: web graph of %d vertices exceeds uint32 ids", n)
	}
	edges := coreEdges
	r := newRNG(cfg.Seed ^ 0x77eb77eb77eb77eb)
	next := uint32(coreN)
	const segment = 16
	for c := 0; c < cfg.NumChains; c++ {
		// Degree-biased anchor: an endpoint of a uniformly random core edge
		// is degree-proportional, so chains hang off the well-connected
		// part of the core — almost surely the giant component, keeping its
		// vertex share in the >=94% regime of Table I. (Crawl tendrils are
		// reached *from* the crawl's core, so this is also the realistic
		// attachment model.)
		anchor := coreEdges[r.uint32n(uint32(len(coreEdges)))].U
		if r.next()&1 == 0 {
			anchor = coreEdges[r.uint32n(uint32(len(coreEdges)))].V
		}
		// Chain vertex ids are assigned in segments of 16 whose order is
		// the *reverse* of hop order: pages within one crawl wave get
		// consecutive ids, but waves land in the id space far from their
		// hop-predecessors. Consequently an in-id-order label sweep drains
		// exactly one segment per iteration instead of the whole chain
		// (ids fully aligned with hops) or one vertex (ids fully opposed),
		// reproducing the intermediate regime of real crawls: dozens of
		// cheap sparse push iterations (70+ on WebBase/UK-Union, §IV-E)
		// instead of hundreds of dense ones.
		ids := make([]uint32, cfg.ChainLength)
		segs := (cfg.ChainLength + segment - 1) / segment
		pos := 0
		for si := segs - 1; si >= 0; si-- {
			lo := si * segment
			hi := lo + segment
			if hi > cfg.ChainLength {
				hi = cfg.ChainLength
			}
			for i := lo; i < hi; i++ {
				ids[pos] = next + uint32(i)
				pos++
			}
		}
		prev := anchor
		for _, id := range ids {
			edges = append(edges, graph.Edge{U: prev, V: id})
			prev = id
		}
		next += uint32(cfg.ChainLength)
	}
	g, err := build(edges, n)
	if err != nil {
		return nil, err
	}
	g, _ = graph.RemoveIsolated(g)
	return g, nil
}
