package cc

import (
	"fmt"

	"thriftylp/internal/parallel"
)

// CanceledError reports that a run was cancelled by its context before
// converging, with partial-progress diagnostics. The Result returned
// alongside it holds the algorithm's intermediate state at the point of
// cancellation: for the label-propagation family a refinement en route to
// the final partition, for union-find algorithms a partially built forest.
//
// errors.Is(err, context.Canceled) and errors.Is(err, context.
// DeadlineExceeded) match through Unwrap, so callers can distinguish
// explicit cancellation from a deadline.
type CanceledError struct {
	// Algorithm is the algorithm that was cancelled.
	Algorithm Algorithm
	// Iterations is the number of iterations completed before the stop
	// was honoured.
	Iterations int
	// Phase names the phase the run was in when cancelled ("pull", "push",
	// "hook", ...); empty when the context was already dead at entry.
	Phase string
	// Err is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Err error
}

func (e *CanceledError) Error() string {
	if e.Phase == "" {
		return fmt.Sprintf("cc: %s cancelled before starting: %v", e.Algorithm, e.Err)
	}
	return fmt.Sprintf("cc: %s cancelled after %d iterations in %s phase: %v",
		e.Algorithm, e.Iterations, e.Phase, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// RunPanicError reports a panic recovered at the Run/RunContext boundary:
// the algorithm (or one of its pool workers) panicked, and the panic was
// converted to an error instead of unwinding into the caller.
type RunPanicError struct {
	// Algorithm is the algorithm that panicked.
	Algorithm Algorithm
	// Value is the recovered panic value. Panics raised on pool workers
	// arrive as *parallel.PanicError, which carries the worker's stack.
	Value any
}

func newRunPanicError(a Algorithm, v any) *RunPanicError {
	return &RunPanicError{Algorithm: a, Value: v}
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("cc: %s panicked: %v", e.Algorithm, e.Value)
}

// Unwrap exposes the panic value when it is itself an error — in
// particular *parallel.PanicError from a pool worker — so errors.As can
// reach it.
func (e *RunPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// WorkerStack returns the worker goroutine's stack when the panic
// originated on a pool worker, nil otherwise.
func (e *RunPanicError) WorkerStack() []byte {
	if pe, ok := e.Value.(*parallel.PanicError); ok {
		return pe.Stack
	}
	return nil
}
