package harness

import (
	"context"
	"math"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/internal/obs"
)

// RunConfig carries experiment-wide settings.
type RunConfig struct {
	// Scale selects dataset sizes (default ScaleMedium).
	Scale Scale
	// Reps is the number of timed repetitions per measurement; the minimum
	// is reported, the paper's convention for eliminating scheduler noise.
	// Default 3.
	Reps int
	// Threads sizes the worker pool; 0 = GOMAXPROCS.
	Threads int
	// Ctx, when non-nil, bounds every run: cancellation (SIGINT, -timeout)
	// aborts the experiment at the next algorithm iteration boundary
	// instead of leaving a long benchmark unkillable. nil means
	// context.Background().
	Ctx context.Context
	// Trace, when non-nil, receives per-iteration JSONL records from one
	// extra instrumented run per regression cell. The traced run is separate
	// from the timed repetitions so tracing never perturbs the reported
	// fast-path numbers.
	Trace *obs.TraceWriter
	// Algos, when non-empty, restricts BenchRegression to these algorithms
	// (ccbench -algo). Empty keeps the default regression set.
	Algos []cc.Algorithm
}

func (c RunConfig) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c RunConfig) scale() Scale {
	if c.Scale == "" {
		return ScaleMedium
	}
	return c.Scale
}

func (c RunConfig) reps() int {
	if c.Reps <= 0 {
		return 3
	}
	return c.Reps
}

func (c RunConfig) opts(extra ...cc.Option) []cc.Option {
	var opts []cc.Option
	if c.Threads > 0 {
		opts = append(opts, cc.WithThreads(c.Threads))
	}
	return append(opts, extra...)
}

// TimeAlgorithm measures algorithm a on g: one warmup run, then reps timed
// runs, returning the minimum wall time and the last result.
func TimeAlgorithm(a cc.Algorithm, g *graph.Graph, cfg RunConfig, extra ...cc.Option) (time.Duration, cc.Result, error) {
	opts := cfg.opts(extra...)
	ctx := cfg.ctx()
	res, err := cc.RunContext(ctx, a, g, opts...)
	if err != nil {
		return 0, cc.Result{}, err
	}
	best := time.Duration(math.MaxInt64)
	for i := 0; i < cfg.reps(); i++ {
		start := time.Now()
		res, err = cc.RunContext(ctx, a, g, opts...)
		if err != nil {
			return 0, cc.Result{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, res, nil
}

// Millis renders a duration as fractional milliseconds, the paper's unit.
func Millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Geomean returns the geometric mean of vs (ignoring non-positive entries,
// which would otherwise poison the logarithm).
func Geomean(vs []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
