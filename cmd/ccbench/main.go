// Command ccbench regenerates the tables and figures of the Thrifty Label
// Propagation paper's evaluation section on the synthetic analog suite.
//
// Usage:
//
//	ccbench -exp table4                 # one experiment
//	ccbench -exp all -scale small       # everything, quickly
//	ccbench -exp fig5 -scale large -reps 5 -csv out.csv
//
// Experiment ids follow the paper's numbering: table1, table2, table4,
// table5, table6, table7, fig1, fig2, fig3, fig5, fig6, fig7, fig9.
//
// With -json, ccbench instead runs the perf-regression suite (uninstrumented
// fast-path timings of every label-propagation kernel on the fixed
// medium-scale fixtures) and writes machine-readable results to the given
// file — `make bench-json` uses this to refresh BENCH_thrifty.json:
//
//	ccbench -json BENCH_thrifty.json -reps 5
//	ccbench -json auto.json -algo auto      # only the selector; records carry "selected"
//
// With -ingest-json, ccbench additionally (or alone) runs the ingestion
// regression suite — text edge-list parse+build and binary CSR load, frozen
// sequential baseline vs the parallel zero-copy pipeline — and writes
// machine-readable results to the given file — `make bench-json` uses this
// to refresh BENCH_ingest.json:
//
//	ccbench -ingest-json BENCH_ingest.json -reps 5
//
// With -serve-json, ccbench runs the serving load test — a real thriftyd
// query server (internal/serve) on a loopback listener, driven by concurrent
// clients across all four query endpoints — and writes per-endpoint QPS and
// latency percentiles to the given file — `make bench-json` uses this to
// refresh BENCH_serve.json:
//
//	ccbench -serve-json BENCH_serve.json -reps 5
//
// With -shard-json, ccbench runs the sharded-exchange regression gate — the
// out-of-core pipeline (cc.AlgoShard) on hub-heavy fixtures at several shard
// counts, with unsharded Thrifty as the denominator and the streamed
// sharded generator's memory accounting attached. The run FAILS if the
// compacted exchange does not beat the naive flat encoding — `make
// bench-json` uses this to refresh BENCH_shard.json:
//
//	ccbench -shard-json BENCH_shard.json -reps 5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"slices"
	"strings"
	"time"

	"thriftylp/cc"
	"thriftylp/internal/harness"
	"thriftylp/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see package doc) or 'all'")
		scale   = flag.String("scale", "medium", "dataset scale: small, medium, large")
		reps    = flag.Int("reps", 3, "timed repetitions per measurement (min is reported)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		csvPath = flag.String("csv", "", "also append results as CSV to this file")
		jsonOut = flag.String("json", "", "run the perf-regression suite and write JSON results to this file")
		algoSel = flag.String("algo", "", "with -json: comma-separated algorithms to time (e.g. 'auto' or 'thrifty,auto'); empty = default regression set")
		ingOut  = flag.String("ingest-json", "", "run the ingestion regression suite and write JSON results to this file")
		srvOut  = flag.String("serve-json", "", "run the serving load test and write JSON results to this file")
		shdOut  = flag.String("shard-json", "", "run the sharded-exchange regression gate and write JSON results to this file")
		list    = flag.Bool("list", false, "list available experiments and exit")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		trace   = flag.String("trace", "", "with -json: write per-iteration trace records of one instrumented run per cell to this JSONL file")
		httpAd  = flag.String("http", "", "serve /metrics, expvar and /debug/pprof on this address while the suite runs")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Experiments(), "\n"))
		return
	}

	// SIGINT or -timeout cancels cooperatively: the in-flight algorithm
	// stops at its next iteration boundary and ccbench exits non-zero,
	// instead of leaving a multi-hour benchmark unkillable except by
	// SIGKILL. A second SIGINT kills immediately.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	cfg := harness.RunConfig{
		Scale:   harness.Scale(*scale),
		Reps:    *reps,
		Threads: *threads,
		Ctx:     ctx,
	}

	if *trace != "" && *jsonOut == "" {
		fatalf("-trace requires -json (tracing instruments the regression suite cells)")
	}
	if *algoSel != "" {
		if *jsonOut == "" {
			fatalf("-algo requires -json (it restricts the regression suite; experiments fix their own algorithms)")
		}
		for _, name := range strings.Split(*algoSel, ",") {
			a := cc.Algorithm(strings.TrimSpace(name))
			if !slices.Contains(cc.Algorithms(), a) {
				fatalf("unknown algorithm %q (known: %v)", a, cc.Algorithms())
			}
			cfg.Algos = append(cfg.Algos, a)
		}
	}
	if *httpAd != "" {
		srv, err := obs.Serve(*httpAd, obs.NewRegistry(), nil)
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Printf("debug server listening on %s\n", srv.URL())
	}

	if *ingOut != "" {
		prev, prevErr := harness.ReadIngestReport(*ingOut)
		start := time.Now()
		rep, err := harness.IngestRegression(cfg)
		if err != nil {
			fatalf("ingest regression: %v", err)
		}
		if err := rep.WriteJSON(*ingOut); err != nil {
			fatalf("writing %s: %v", *ingOut, err)
		}
		if prevErr == nil {
			for _, line := range rep.HostMismatch(prev) {
				fmt.Fprintf(os.Stderr, "ccbench: warning: host mismatch vs previous %s: %s\n", *ingOut, line)
			}
		}
		fmt.Print(rep.Render())
		fmt.Printf("(ingestion suite completed in %v, wrote %s)\n",
			time.Since(start).Round(time.Millisecond), *ingOut)
		if *jsonOut == "" && *srvOut == "" && *shdOut == "" {
			return
		}
	}

	if *srvOut != "" {
		prev, prevErr := harness.ReadServeReport(*srvOut)
		start := time.Now()
		rep, err := harness.ServeRegression(cfg)
		if err != nil {
			fatalf("serve load test: %v", err)
		}
		if err := rep.WriteJSON(*srvOut); err != nil {
			fatalf("writing %s: %v", *srvOut, err)
		}
		if prevErr == nil {
			for _, line := range rep.HostMismatch(prev) {
				fmt.Fprintf(os.Stderr, "ccbench: warning: host mismatch vs previous %s: %s\n", *srvOut, line)
			}
		}
		fmt.Print(rep.Render())
		fmt.Printf("(serving load test completed in %v, wrote %s)\n",
			time.Since(start).Round(time.Millisecond), *srvOut)
		if *jsonOut == "" && *shdOut == "" {
			return
		}
	}

	if *shdOut != "" {
		prev, prevErr := harness.ReadShardReport(*shdOut)
		start := time.Now()
		rep, err := harness.ShardRegression(cfg)
		if err != nil {
			fatalf("shard regression: %v", err)
		}
		if err := rep.WriteJSON(*shdOut); err != nil {
			fatalf("writing %s: %v", *shdOut, err)
		}
		if prevErr == nil {
			for _, line := range rep.HostMismatch(prev) {
				fmt.Fprintf(os.Stderr, "ccbench: warning: host mismatch vs previous %s: %s\n", *shdOut, line)
			}
		}
		fmt.Print(rep.Render())
		fmt.Printf("(sharded regression gate completed in %v, wrote %s)\n",
			time.Since(start).Round(time.Millisecond), *shdOut)
		if *jsonOut == "" {
			return
		}
	}

	if *jsonOut != "" {
		if *trace != "" {
			tw, err := obs.CreateTrace(*trace)
			if err != nil {
				fatalf("%v", err)
			}
			defer func() {
				if err := tw.Close(); err != nil {
					fatalf("closing trace: %v", err)
				}
			}()
			cfg.Trace = tw
		}
		// The previous report (if any) is read before it is overwritten, so
		// a host change between the two measurements can be flagged: a delta
		// across differing hosts is not a code regression signal.
		prev, prevErr := harness.ReadBenchReport(*jsonOut)

		start := time.Now()
		rep, err := harness.BenchRegression(cfg)
		if err != nil {
			fatalf("perf regression: %v", err)
		}
		if err := rep.WriteJSON(*jsonOut); err != nil {
			fatalf("writing %s: %v", *jsonOut, err)
		}
		if prevErr == nil {
			for _, line := range rep.HostMismatch(prev) {
				fmt.Fprintf(os.Stderr, "ccbench: warning: host mismatch vs previous %s: %s\n", *jsonOut, line)
			}
		}
		fmt.Print(rep.Render())
		fmt.Printf("(regression suite completed in %v, wrote %s)\n",
			time.Since(start).Round(time.Millisecond), *jsonOut)
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.Experiments()
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatalf("opening %s: %v", *csvPath, err)
		}
		defer f.Close()
		csv = f
	}

	for _, id := range ids {
		start := time.Now()
		t, err := harness.RunExperiment(id, cfg)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fatalf("experiment %s: timeout after %v", id, *timeout)
			}
			if errors.Is(err, context.Canceled) {
				fatalf("experiment %s: interrupted", id)
			}
			fatalf("experiment %s: %v", id, err)
		}
		fmt.Println(t.Render())
		fmt.Printf("(%s completed in %v at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), cfg.Scale)
		if csv != nil {
			fmt.Fprintf(csv, "# %s\n%s\n", id, t.CSV())
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ccbench: "+format+"\n", args...)
	os.Exit(1)
}
