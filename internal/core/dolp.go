package core

import (
	"time"

	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/bitmap"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// frontierState tracks the active-vertex bitmap and the vertex/edge counts
// that drive the push/pull direction decision of Algorithm 1 (line 7:
// density = (|F.V| + |F.E|) / |E|). Edge counts use directed adjacency
// slots in both numerator and denominator so the ratio is representation
// independent.
type frontierState struct {
	bm      *bitmap.Bitmap
	activeV int64
	activeE int64
}

// recount recomputes the active vertex and edge totals from the bitmap.
// The scan is word-at-a-time (TrailingZeros64 drain): after the first few
// iterations the frontier is sparse, so most 64-bit words are zero and cost
// one load instead of 64 per-bit probes.
func (f *frontierState) recount(pool *parallel.Pool, g *graph.Graph) {
	n := g.NumVertices()
	offs := g.Offsets()
	var av, ae int64
	parallel.For(pool, n, 4096, func(_, lo, hi int) {
		var v, e int64
		f.bm.ForEachRange(lo, hi, func(i int) {
			v++
			e += offs[i+1] - offs[i]
		})
		atomicx.AddInt64(&av, v)
		atomicx.AddInt64(&ae, e)
	})
	f.activeV, f.activeE = av, ae
}

// density returns (|F.V|+|F.E|)/|E| over directed slots.
func (f *frontierState) density(g *graph.Graph) float64 {
	m := g.NumDirectedEdges()
	if m == 0 {
		return 0
	}
	return float64(f.activeV+f.activeE) / float64(m)
}

// extract gathers the set bits into a vertex list (dense→sparse frontier
// conversion before a push iteration), word-at-a-time via AppendRange: a
// push iteration only runs when the frontier is below the density threshold,
// which is exactly when most bitmap words are zero and the drain loop skips
// them in one branch each.
func (f *frontierState) extract(pool *parallel.Pool) []uint32 {
	threads := pool.Threads()
	partial := make([][]uint32, threads)
	n := f.bm.Len()
	parallel.For(pool, n, 8192, func(tid, lo, hi int) {
		partial[tid] = f.bm.AppendRange(partial[tid], lo, hi) //thrifty:benign-race per-thread collection buffer indexed by tid
	})
	out := make([]uint32, 0, f.activeV)
	for _, p := range partial {
		out = append(out, p...)
	}
	return out
}

// DOLP is Direction-Optimizing Label Propagation, a faithful implementation
// of Algorithm 1 of the paper: two labels arrays (old/new), a frontier of
// vertices whose label changed, push traversal with atomic-min when the
// frontier is sparse, pull traversal over all vertices when dense, and an
// end-of-iteration labels-array synchronization pass. This is the paper's
// primary baseline (its column in Table IV, Fig 5-8, and the reference
// against which Thrifty's 25.2× average speedup is quoted).
func DOLP(g *graph.Graph, cfg Config) Result {
	switch {
	case cfg.Faults != nil:
		return dolpRun(g, cfg, newChaos(cfg))
	case !cfg.fastInstr():
		return dolpRun(g, cfg, newCounting(cfg))
	default:
		return dolpRun(g, cfg, noInstr{})
	}
}

func dolpRun[I instr[I]](g *graph.Graph, cfg Config, proto I) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	threshold := cfg.threshold(DefaultDOLPThreshold)
	oldLbs := cfg.Arena.Uint32s(n)
	newLbs := cfg.Arena.Uint32s(n)

	// Initial label assignment (lines 2-4): both arrays get the vertex id,
	// and every vertex starts active.
	parallel.Fill(pool, oldLbs, func(i int) uint32 { return uint32(i) })
	parallel.Copy(pool, newLbs, oldLbs)
	oldFr := frontierState{bm: cfg.Arena.Bitmap(n)}
	newFr := frontierState{bm: cfg.Arena.Bitmap(n)}
	oldFr.bm.SetAll()
	oldFr.activeV = int64(n)
	oldFr.activeE = g.NumDirectedEdges()
	sch := newScheduler(g, cfg, pool)

	res := Result{}
	maxIters := cfg.maxIters(n)
	phases := make(map[string]time.Duration, 2)
	phase := string(counters.KindPull)
	for oldFr.activeV > 0 && res.Iterations < maxIters {
		start := time.Now()
		ctrBefore := cfg.Ctr.Total(counters.EdgesProcessed)
		density := oldFr.density(g)
		activeAtStart, activeEAtStart := oldFr.activeV, oldFr.activeE
		var changed int64
		var kind counters.IterKind

		if density < threshold {
			// Push traversal (lines 9-12).
			kind = counters.KindPush
			phase = string(kind)
			res.PushIterations++
			changed = dolpPush(g, pool, oldLbs, newLbs, &oldFr, &newFr, cfg.Stop, proto)
		} else {
			// Pull traversal (lines 13-20): all vertices, ignoring frontier
			// membership of neighbours.
			kind = counters.KindPull
			phase = string(kind)
			res.PullIterations++
			changed = dolpPull(g, sch, oldLbs, newLbs, &newFr, cfg.Stop, proto)
		}

		// Synchronize labels arrays (lines 21-22) and swap frontiers. The
		// sync pass streams both arrays through the cache hierarchy — 2n
		// label accesses and 2·⌈n/16⌉ cache lines per iteration — which is
		// precisely the traffic Thrifty's Unified Labels Array removes, so
		// the instrumentation must charge it.
		parallel.Copy(pool, oldLbs, newLbs)
		if cfg.Ctr != nil {
			cfg.Ctr.Add(0, counters.LabelLoads, int64(n))
			cfg.Ctr.Add(0, counters.LabelStores, int64(n))
			cfg.Ctr.Add(0, counters.CacheLines, 2*int64((n+15)/16))
		}
		newFr.recount(pool, g)
		oldFr, newFr = newFr, oldFr
		newFr.bm.Reset()
		newFr.activeV, newFr.activeE = 0, 0
		cfg.Lines.FlushIteration(cfg.Ctr, 0)

		res.Iterations++
		dur := time.Since(start)
		phases[string(kind)] += dur
		if cfg.Trace.Enabled() {
			cfg.Trace.Record(counters.IterRecord{
				Index:       res.Iterations - 1,
				Kind:        kind,
				Active:      activeAtStart,
				ActiveEdges: activeEAtStart,
				Changed:     changed,
				Zero:        0,
				Edges:       cfg.Ctr.Total(counters.EdgesProcessed) - ctrBefore,
				Density:     density,
				Threshold:   threshold,
				Duration:    dur,
			}, oldLbs)
		}
		// Cancellation before the loop condition re-evaluates: a cancelled
		// sweep skips partitions, and the resulting empty frontier means
		// "aborted", not "converged".
		if cfg.cancelPoint(&res, phase) {
			break
		}
	}
	res.Labels = newLbs
	res.Sched = sch.stealStats()
	res.PhaseDurations = phases
	return res
}

// dolpPush runs one DO-LP push iteration over the extracted sparse frontier:
// each active vertex propagates its old label to its neighbours' new labels
// with atomic-min, marking lowered neighbours in the new frontier bitmap.
// Returns the number of newly activated vertices.
func dolpPush[I instr[I]](g *graph.Graph, pool *parallel.Pool, oldLbs, newLbs []uint32, oldFr, newFr *frontierState, stop *Stop, proto I) int64 {
	offs, adj := g.Offsets(), g.Adjacency()
	active := oldFr.extract(pool)
	var changed int64
	parallel.For(pool, len(active), 512, func(tid, lo, hi int) {
		ins := proto.Fresh()
		if stop.Requested() {
			return // cancellation poll at chunk entry
		}
		var local int64
		for _, v := range active[lo:hi] {
			iVisit(ins)
			lv := oldLbs[v]
			iLoad(ins)
			for _, u := range adj[offs[v]:offs[v+1]] {
				iEdge(ins)
				iLoad(ins)
				iCAS(ins)
				iBranch(ins)
				iTouch(ins, u)
				if atomicx.MinUint32(&newLbs[u], lv) {
					iStore(ins)
					if newFr.bm.SetAtomic(int(u)) {
						local++
					}
				}
			}
		}
		iFlush(ins, tid)
		atomicx.AddInt64(&changed, local)
	})
	return changed
}

// dolpPull runs one DO-LP pull iteration: every vertex takes the minimum of
// its neighbours' old labels into its new label, marking changed vertices in
// the new frontier bitmap. Returns the number of changed vertices.
func dolpPull[I instr[I]](g *graph.Graph, sch *scheduler, oldLbs, newLbs []uint32, newFr *frontierState, stop *Stop, proto I) int64 {
	offs, adj := g.Offsets(), g.Adjacency()
	var changed int64
	sch.sweep(func(tid, lo, hi int) {
		ins := proto.Fresh()
		if stop.Requested() {
			return // cancellation poll at partition entry
		}
		var local int64
		for v := lo; v < hi; v++ {
			iVisit(ins)
			newLabel := oldLbs[v]
			iLoad(ins)
			iTouch(ins, uint32(v))
			for _, u := range adj[offs[v]:offs[v+1]] {
				iEdge(ins)
				iLoad(ins)
				iBranch(ins)
				iTouch(ins, u)
				if l := oldLbs[u]; l < newLabel {
					newLabel = l
				}
			}
			iBranch(ins)
			if newLabel < oldLbs[v] {
				newLbs[v] = newLabel
				iStore(ins)
				newFr.bm.SetAtomic(v) // chunks share words at their edges
				local++
			}
		}
		iFlush(ins, tid)
		atomicx.AddInt64(&changed, local)
	})
	return changed
}
