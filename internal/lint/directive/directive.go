// Package directive parses the //thrifty: comment grammar the thriftyvet
// analyzers enforce (DESIGN.md §12):
//
//	//thrifty:hotpath
//	//thrifty:benign-race <reason>
//	//thrifty:padded
//	//thrifty:nocancel
//	//thrifty:goroutine <reason>
//
// A directive is a single line comment whose text starts exactly with
// "thrifty:" (no space after //, like //go: directives, so gofmt leaves it
// alone). hotpath and padded annotate declarations through their doc
// comments; benign-race annotates either a whole function (doc comment) or
// an individual statement (a comment on the statement's line or the line
// directly above it) and requires a non-empty reason.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the comment marker introducing every thrifty directive.
const prefix = "//thrifty:"

// The recognized directive names. Nocancel exempts a kernel from the
// cancelpoint check; Goroutine documents the lifecycle of a go statement
// outside internal/parallel (goroleak).
const (
	Hotpath    = "hotpath"
	BenignRace = "benign-race"
	Padded     = "padded"
	Nocancel   = "nocancel"
	Goroutine  = "goroutine"
)

// parse splits one comment into (directive name, argument). ok is false for
// ordinary comments.
func parse(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	name, arg, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(arg), name != ""
}

// FromDoc reports whether the doc comment group carries the named directive,
// returning its argument.
func FromDoc(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if n, a, isDir := parse(c.Text); isDir && n == name {
			return a, true
		}
	}
	return "", false
}

// A Line is one directive occurrence resolved to a file position.
type Line struct {
	Name string
	Arg  string
	Pos  token.Pos
	// Line is the source line the comment starts on.
	Line int
}

// FileLines collects every thrifty directive in the file, keyed by nothing —
// callers filter by Name and match lines. The returned slice is in source
// order.
func FileLines(fset *token.FileSet, f *ast.File) []Line {
	var out []Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if n, a, ok := parse(c.Text); ok {
				out = append(out, Line{
					Name: n,
					Arg:  a,
					Pos:  c.Pos(),
					Line: fset.Position(c.Pos()).Line,
				})
			}
		}
	}
	return out
}

// Covers reports whether a directive named name with a non-empty-or-not
// argument (per requireArg) covers source line targetLine: the directive
// sits on the same line (trailing comment) or on the line immediately above.
func Covers(lines []Line, name string, targetLine int, requireArg bool) bool {
	for _, l := range lines {
		if l.Name != name {
			continue
		}
		if requireArg && l.Arg == "" {
			continue
		}
		if l.Line == targetLine || l.Line == targetLine-1 {
			return true
		}
	}
	return false
}
