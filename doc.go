// Package thriftylp is a Go reproduction of "Thrifty Label Propagation:
// Fast Connected Components for Skewed-Degree Graphs" (Koohi Esfahani,
// Kilpatrick & Vandierendonck, IEEE CLUSTER 2021).
//
// The public API lives in the subpackages:
//
//   - graph     — CSR graph representation, builders and I/O
//   - graph/gen — synthetic dataset generators (RMAT, road grids, web-like…)
//   - cc        — Thrifty and every baseline CC algorithm behind one API
//
// The benchmark harness regenerating the paper's tables and figures is in
// bench_test.go (go test -bench=.) and cmd/ccbench; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured-vs-paper results.
package thriftylp
