// Package dist simulates distributed-memory connected components, the
// paper's §VII future-work direction and the argument behind its framing:
// "Disjoint Set algorithms ... do not scale to distributed memory systems
// [while] the SpMV model of the Label Propagation algorithm allows
// successful scaling in distributed systems" (§V-B).
//
// The simulation is a BSP (Pregel-style) cluster: each worker goroutine
// owns a contiguous, edge-balanced vertex partition with a private label
// array. Within a superstep a worker applies label updates along its local
// edges directly and turns updates along cut edges into messages, combined
// per destination vertex with MIN (the standard combiner). A barrier
// delivers messages, targets apply them, and changed vertices form the next
// superstep's active set. No shared mutable state crosses partitions except
// the message channels — exactly the constraint a real distributed memory
// system imposes, which is what makes per-superstep message counts an
// honest network-traffic proxy.
//
// Two modes reproduce the paper's comparison on this substrate:
//
//   - plain LP: unique initial labels, every vertex initially active;
//   - Thrifty mode: Zero Planting on the max-degree vertex, the Initial
//     Push as superstep 0, and Zero Convergence (converged owners neither
//     scan nor transmit).
package dist

import (
	"fmt"
	"sync"

	"thriftylp/graph"
	"thriftylp/internal/parallel"
)

// Config parameterizes a simulated cluster run.
type Config struct {
	// Workers is the number of simulated machines (default 4).
	Workers int
	// Thrifty enables Zero Planting + Initial Push + Zero Convergence.
	Thrifty bool
	// KLevels is the KLA asynchrony depth (Harshvardhan et al.; the model
	// the paper's §VII plans to port Thrifty to): within one superstep each
	// worker chases its own updates for up to K local rounds before the
	// global exchange. 0 or 1 is plain BSP; larger K trades local work for
	// fewer supersteps (i.e., fewer global synchronizations — the
	// distributed latency driver).
	KLevels int
	// MaxSupersteps is a safety cap; 0 means 2·|V|+16.
	MaxSupersteps int
}

// Result reports the outcome and the distributed cost model.
type Result struct {
	// Labels is the final component labelling (same semantics as the
	// shared-memory algorithms: Thrifty mode converges the giant component
	// to 0, plain mode to minimum vertex id).
	Labels []uint32
	// Supersteps is the number of BSP supersteps executed.
	Supersteps int
	// MessagesSent counts combined (destination, label) messages that
	// crossed partition boundaries — the network traffic proxy.
	MessagesSent int64
	// EdgeScans counts local adjacency traversals — the compute proxy.
	EdgeScans int64
}

// message is one combined cross-partition label update.
type message struct {
	dst   uint32
	label uint32
}

// worker is one simulated machine.
type worker struct {
	id       int
	lo, hi   uint32 // owned vertex range [lo, hi)
	labels   []uint32
	active   []uint32 // owned vertices active this superstep
	inbox    []message
	outboxes []map[uint32]uint32 // per-destination-worker min-combiner
}

// Run executes the simulated cluster CC on g.
func Run(g *graph.Graph, cfg Config) Result {
	n := g.NumVertices()
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Workers > n && n > 0 {
		cfg.Workers = n
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps == 0 {
		maxSteps = 2*n + 16
	}
	res := Result{Labels: make([]uint32, n)}
	if n == 0 {
		return res
	}

	parts := parallel.PartitionEdges(g.Offsets(), cfg.Workers)
	owner := make([]int, n)
	workers := make([]*worker, cfg.Workers)
	for w := range workers {
		lo, hi := parts[w].Lo, parts[w].Hi
		wk := &worker{id: w, lo: lo, hi: hi, labels: make([]uint32, hi-lo)}
		for v := lo; v < hi; v++ {
			owner[v] = w
			if cfg.Thrifty {
				wk.labels[v-lo] = v + 1
			} else {
				wk.labels[v-lo] = v
			}
		}
		workers[w] = wk
	}

	// Initial activity: Zero Planting + Initial Push seed only the hub in
	// Thrifty mode; plain LP activates everyone.
	if cfg.Thrifty {
		hub := g.MaxDegreeVertex()
		hw := workers[owner[hub]]
		hw.labels[hub-hw.lo] = 0
		hw.active = append(hw.active, hub)
	} else {
		for _, wk := range workers {
			for v := wk.lo; v < wk.hi; v++ {
				wk.active = append(wk.active, v)
			}
		}
	}

	var wg sync.WaitGroup
	for steps := 0; steps < maxSteps; steps++ {
		anyActive := false
		for _, wk := range workers {
			if len(wk.active) > 0 || len(wk.inbox) > 0 {
				anyActive = true
				break
			}
		}
		// Thrifty mode must reach the bootstrap superstep even when the
		// hub's push activated nothing (e.g. a self-loop-only hub) — the
		// same do-while guarantee as the shared-memory algorithm.
		if !anyActive && !(cfg.Thrifty && res.Supersteps < 2) {
			break
		}
		res.Supersteps++

		// Thrifty's bootstrap: superstep 0 pushed the planted 0 from the
		// hub only; superstep 1 activates every vertex once — the BSP
		// equivalent of Algorithm 2's mandatory first pull, which is what
		// guarantees vertices in components other than the giant are
		// compared with their neighbours at least once.
		if cfg.Thrifty && res.Supersteps == 2 {
			for _, wk := range workers {
				wk.active = wk.active[:0]
				for v := wk.lo; v < wk.hi; v++ {
					wk.active = append(wk.active, v)
				}
			}
		}

		// Compute phase: all workers in parallel, no shared writes.
		for _, wk := range workers {
			wk.outboxes = wk.outboxes[:0]
			for range workers {
				wk.outboxes = append(wk.outboxes, nil)
			}
		}
		var scans, msgs int64
		var mu sync.Mutex
		for _, wk := range workers {
			wg.Add(1)
			go func(wk *worker) {
				defer wg.Done()
				s, m := wk.superstep(g, owner, cfg)
				mu.Lock()
				scans += s
				msgs += m
				mu.Unlock()
			}(wk)
		}
		wg.Wait()
		res.EdgeScans += scans
		res.MessagesSent += msgs

		// Communication phase: deliver combined outboxes into inboxes.
		for _, dst := range workers {
			dst.inbox = dst.inbox[:0]
			for _, src := range workers {
				for v, l := range src.outboxes[dst.id] {
					dst.inbox = append(dst.inbox, message{dst: v, label: l})
				}
			}
		}
	}

	for _, wk := range workers {
		copy(res.Labels[wk.lo:wk.hi], wk.labels)
	}
	return res
}

// superstep runs one worker's compute phase: apply inbox, then propagate
// from active vertices for up to KLevels local rounds (KLA) before the
// global exchange. Returns (edge scans, combined messages emitted).
func (wk *worker) superstep(g *graph.Graph, owner []int, cfg Config) (int64, int64) {
	thrifty := cfg.Thrifty
	kLevels := cfg.KLevels
	if kLevels < 1 {
		kLevels = 1
	}

	// Apply incoming messages; lowered targets join the active set.
	newActive := wk.active[:0]
	seen := make(map[uint32]bool, len(wk.inbox)+len(wk.active))
	for _, v := range wk.active {
		if !seen[v] {
			seen[v] = true
			newActive = append(newActive, v)
		}
	}
	for _, m := range wk.inbox {
		i := m.dst - wk.lo
		if m.label < wk.labels[i] {
			wk.labels[i] = m.label
			if !seen[m.dst] {
				seen[m.dst] = true
				newActive = append(newActive, m.dst)
			}
		}
	}

	var scans, msgs int64
	send := func(dst uint32, label uint32) {
		w := owner[dst]
		if wk.outboxes[w] == nil {
			wk.outboxes[w] = make(map[uint32]uint32)
		}
		if cur, ok := wk.outboxes[w][dst]; !ok || label < cur {
			wk.outboxes[w][dst] = label
		}
	}

	// KLA rounds: round 0 processes the superstep's active set; each
	// further round chases the locally-lowered vertices without waiting for
	// the global barrier. Remote updates always go through the combiner.
	frontier := newActive
	var next []uint32
	for round := 0; round < kLevels && len(frontier) > 0; round++ {
		next = next[:0]
		nextSeen := make(map[uint32]bool, len(frontier))
		for _, v := range frontier {
			lv := wk.labels[v-wk.lo]
			for _, u := range g.Neighbors(v) {
				scans++
				if owner[u] == wk.id {
					i := u - wk.lo
					// Zero Convergence: a converged local target needs no work.
					if thrifty && wk.labels[i] == 0 && lv != 0 {
						continue
					}
					if lv < wk.labels[i] {
						wk.labels[i] = lv
						if !nextSeen[u] {
							nextSeen[u] = true
							next = append(next, u)
						}
					}
				} else {
					// Remote target: the combiner dedups per (worker, vertex).
					send(u, lv)
				}
			}
		}
		frontier, next = next, frontier
	}
	for _, ob := range wk.outboxes {
		msgs += int64(len(ob))
	}
	// Whatever the last round activated carries into the next superstep.
	wk.active = append(wk.active[:0], frontier...)
	wk.inbox = wk.inbox[:0]
	return scans, msgs
}

// Validate sanity-checks a Config.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("dist: negative worker count %d", c.Workers)
	}
	if c.MaxSupersteps < 0 {
		return fmt.Errorf("dist: negative superstep cap %d", c.MaxSupersteps)
	}
	return nil
}
