// Fixture for the errfreeze analyzer. The package is named graph so the
// package-path gate applies; frozen strings come from the real Frozen list.
package graph

import (
	"errors"
	"fmt"
)

var errMmap = errors.New("graph: mmap unavailable")

func frozenOK(x uint64) error {
	return fmt.Errorf("graph: bad magic %#x", x)
}

func drifted() error {
	return errors.New("graph: a message nobody froze") // want `is not in the frozen list`
}

func driftedf(v int) error {
	return fmt.Errorf("graph: surprise condition %d", v) // want `is not in the frozen list`
}

// wrapped strings built at run time are invisible to the syntactic scan;
// the analyzer only freezes literals.
func dynamic(prefix string) error {
	return errors.New(prefix + ": built at run time")
}
