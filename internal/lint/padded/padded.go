// Package padded implements the thriftyvet analyzer for cache-line padding
// invariants.
//
// The per-thread slots of the scheduler and worklists (parallel.stealSlot,
// parallel.workerSlot, worklist.cursorPad) are padded so that concurrent
// flushes from different workers never false-share a cache line — the
// boundary-only telemetry design (DESIGN.md §10) depends on it. A refactor
// that adds a field and silently grows a slot past its padding reintroduces
// false sharing with no functional symptom, only a perf cliff.
//
// Structs annotated //thrifty:padded must therefore satisfy, under the gc
// size model for the target GOARCH:
//
//   - total size is a non-zero multiple of 64 bytes (consecutive elements of
//     a []T start on distinct cache lines), and
//   - every named (hot) field lies entirely within one 64-byte line — the
//     padding, by convention a trailing blank field, absorbs the remainder.
package padded

import (
	"go/ast"
	"go/types"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/directive"
	"thriftylp/internal/lint/lintutil"
)

// cacheLine is the assumed cache-line size, matching the padding applied in
// internal/parallel and internal/worklist.
const cacheLine = 64

// Analyzer is the padded analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "padded",
	Doc:  "check that //thrifty:padded structs are cache-line padded (size % 64 == 0, no field straddles a line)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, onSpec := directive.FromDoc(ts.Doc, directive.Padded)
				_, onDecl := directive.FromDoc(gd.Doc, directive.Padded)
				if !onSpec && !onDecl {
					continue
				}
				check(pass, ts)
			}
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, ts *ast.TypeSpec) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "//thrifty:padded on %s, which is not a struct type", ts.Name.Name)
		return
	}
	size := pass.TypesSizes.Sizeof(st)
	if size == 0 || size%cacheLine != 0 {
		pass.Reportf(ts.Pos(), "//thrifty:padded struct %s is %d bytes, not a non-zero multiple of %d: adjacent slots will share a cache line", ts.Name.Name, size, cacheLine)
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := pass.TypesSizes.Offsetsof(fields)
	for i, fld := range fields {
		if fld.Name() == "_" {
			continue // the padding field may span lines by design
		}
		fsize := pass.TypesSizes.Sizeof(fld.Type())
		if fsize == 0 {
			continue
		}
		start, end := offsets[i], offsets[i]+fsize-1
		if start/cacheLine != end/cacheLine {
			pass.Reportf(ts.Pos(), "//thrifty:padded struct %s: field %s spans cache lines (offset %d, size %d)", ts.Name.Name, fld.Name(), start, fsize)
		}
	}
}
