package harness

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"thriftylp/internal/obs"
)

func TestHostMismatch(t *testing.T) {
	base := BenchReport{
		Schema: BenchSchema,
		HostStamp: HostStamp{GoMaxProcs: 8, NumCPU: 8,
			GoVersion: runtime.Version(), GOOS: "linux", GOARCH: "amd64", Threads: 0},
	}
	if lines := base.HostMismatch(base); len(lines) != 0 {
		t.Errorf("identical hosts flagged: %v", lines)
	}

	other := base
	other.GoMaxProcs = 4
	other.GoVersion = "go1.0"
	lines := base.HostMismatch(other)
	if len(lines) != 2 {
		t.Fatalf("got %d mismatch lines %v, want 2", len(lines), lines)
	}
	joined := strings.Join(lines, "; ")
	for _, want := range []string{"gomaxprocs", "go version"} {
		if !strings.Contains(joined, want) {
			t.Errorf("mismatch lines %v missing %q", lines, want)
		}
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep := BenchReport{
		Schema: BenchSchema,
		HostStamp: HostStamp{GoMaxProcs: 2, NumCPU: 4,
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64"},
		Records: []BenchRecord{{
			Algorithm: "thrifty", Dataset: "rmat-medium", Vertices: 10, Edges: 20,
			Iterations: 3, NsPerRun: 1000, EdgesPerSec: 2e7, Reps: 3,
			PushIterations: 1, PullIterations: 2,
			PhaseNs: map[string]int64{"pull": 700, "push": 300},
		}},
	}
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema || got.NumCPU != 4 || len(got.Records) != 1 {
		t.Errorf("round trip lost header fields: %+v", got)
	}
	if got.Records[0].PhaseNs["pull"] != 700 || got.Records[0].PullIterations != 2 {
		t.Errorf("round trip lost record fields: %+v", got.Records[0])
	}

	if _, err := ReadBenchReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Errorf("reading absent report succeeded")
	}
}

// TestBenchRegressionStampsAndTraces runs the real suite on tiny fixture
// overrides — not possible without exported seams — so instead it checks the
// cheapest real invocation: the report carries the host stamp and, with a
// trace writer configured, one instrumented trace per (algorithm, fixture)
// cell lands in the JSONL file.
func TestBenchRegressionStampsAndTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("regression fixtures are medium-scale")
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tw, err := obs.CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BenchRegression(RunConfig{Reps: 1, Trace: tw})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	if rep.Schema != BenchSchema {
		t.Errorf("Schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.NumCPU != runtime.NumCPU() || rep.GoVersion != runtime.Version() ||
		rep.GOOS != runtime.GOOS || rep.GOARCH != runtime.GOARCH {
		t.Errorf("host stamp wrong: %+v", rep)
	}
	for _, rec := range rep.Records {
		if rec.PushIterations+rec.PullIterations == 0 {
			t.Errorf("%s/%s: no direction decomposition", rec.Algorithm, rec.Dataset)
		}
		if len(rec.PhaseNs) == 0 {
			t.Errorf("%s/%s: no phase breakdown", rec.Algorithm, rec.Dataset)
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]bool{}
	for _, rec := range recs {
		cells[rec.Algo+"/"+rec.Dataset] = true
	}
	if want := len(rep.Records); len(cells) != want {
		t.Errorf("trace covers %d cells %v, want %d", len(cells), cells, want)
	}
}
