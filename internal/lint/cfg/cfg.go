// Package cfg builds an intraprocedural control-flow graph over a function
// body's syntax tree, mirroring the semantics of golang.org/x/tools/go/cfg
// (which the dependency-free go.mod cannot import).
//
// The graph is a set of basic blocks holding the body's statements (and, for
// branch blocks, the condition expression as the block's last node). Edges
// follow the evaluation order the spec defines:
//
//   - An if/for condition is the last node of its block; Succs[0] is the
//     true edge and Succs[1] the false edge.
//   - Every return statement edges to the distinguished Exit block, as does
//     falling off the end of the body — so dataflow analyzers can read off
//     "state at normal function exit" at one place.
//   - A call statement that cannot return (panic, or any call the caller's
//     mayReturn callback rejects, e.g. os.Exit or log.Fatalf) terminates its
//     block with no successors: paths through it never reach Exit, which is
//     exactly the panic/return distinction resource-lifetime checks need.
//   - Defer statements are ordinary nodes; analyzers interested in deferred
//     release semantics interpret them in their own transfer functions.
//
// The builder is purely syntactic: it needs no type information, so it also
// works on fixtures and on files that fail to type-check.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block, indexed by Block.Index. Blocks[0] is the
	// entry block and Blocks[1] the exit block; blocks made unreachable by
	// jumps are retained (harmlessly — analyzers walk from Entry).
	Blocks []*Block
	// Entry is where control enters the body.
	Entry *Block
	// Exit is where every return statement and the fall-off-the-end path
	// lead. It has no nodes and no successors.
	Exit *Block
}

// A Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	// Index is the position in CFG.Blocks.
	Index int32
	// Kind labels the block's role ("entry", "if.then", "for.body", ...)
	// for debugging and golden tests; analyzers should not switch on it.
	Kind string
	// Nodes are the block's statements and condition expressions, in
	// evaluation order. For two-successor blocks the condition is last.
	Nodes []ast.Node
	// Succs are the successor blocks. Conditional blocks order them
	// [true, false].
	Succs []*Block
}

// Return returns the return statement terminating the block, if any.
func (b *Block) Return() *ast.ReturnStmt {
	if len(b.Nodes) == 0 {
		return nil
	}
	r, _ := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return r
}

// New builds the CFG of body. mayReturn, when non-nil, reports whether a
// call expression can return to its caller; calls it rejects terminate
// their block (panic is always treated as non-returning, even with a nil
// callback).
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *CFG {
	b := &builder{
		cfg:       &CFG{},
		mayReturn: mayReturn,
		lblocks:   map[string]*lblock{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.current = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.edge(b.cfg.Exit)
	return b.cfg
}

// builder holds the in-progress graph and the break/continue/fallthrough
// target stack.
type builder struct {
	cfg       *CFG
	mayReturn func(*ast.CallExpr) bool
	current   *Block
	targets   *targets
	lblocks   map[string]*lblock
	// pending is the label metadata of an enclosing labeled statement,
	// consumed by the next loop/switch/select the builder enters.
	pending *lblock
}

// targets is one frame of the jump-target stack.
type targets struct {
	tail         *targets
	_break       *Block
	_continue    *Block
	_fallthrough *Block
}

// lblock records the jump targets a label resolves to.
type lblock struct {
	_goto     *Block
	_break    *Block
	_continue *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: int32(len(b.cfg.Blocks)), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds current → target.
func (b *builder) edge(target *Block) {
	b.current.Succs = append(b.current.Succs, target)
}

// jump adds current → target and starts a fresh (unreachable) block, for
// statements that unconditionally transfer control.
func (b *builder) jump(target *Block) {
	if target != nil {
		b.edge(target)
	}
	b.current = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// labeledBlock returns (creating on demand) the lblock for the named label;
// on-demand creation serves goto statements that precede their label.
func (b *builder) labeledBlock(name string) *lblock {
	lb := b.lblocks[name]
	if lb == nil {
		lb = &lblock{_goto: b.newBlock("label." + name)}
		b.lblocks[name] = lb
	}
	return lb
}

// takePending consumes the pending label of a labeled loop/switch/select,
// wiring its break (and, for loops, continue) targets.
func (b *builder) takePending(_break, _continue *Block) {
	if b.pending == nil {
		return
	}
	b.pending._break = _break
	b.pending._continue = _continue
	b.pending = nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.BadStmt, *ast.EmptyStmt:
		// no-op

	case *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.AssignStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && !b.callMayReturn(call) {
			// The call never returns: the block dead-ends here, off the
			// path to Exit.
			b.current = b.newBlock("unreachable.call")
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.LabeledStmt:
		lb := b.labeledBlock(s.Label.Name)
		b.jump(lb._goto)
		b.current = lb._goto
		b.pending = lb
		b.stmt(s.Stmt)
		b.pending = nil

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	default:
		panic(fmt.Sprintf("cfg: unexpected statement %T", s))
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lb := b.lblocks[s.Label.Name]; lb != nil {
				target = lb._break
			}
		} else {
			for t := b.targets; t != nil; t = t.tail {
				if t._break != nil {
					target = t._break
					break
				}
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			if lb := b.lblocks[s.Label.Name]; lb != nil {
				target = lb._continue
			}
		} else {
			for t := b.targets; t != nil; t = t.tail {
				if t._continue != nil {
					target = t._continue
					break
				}
			}
		}
	case token.FALLTHROUGH:
		for t := b.targets; t != nil; t = t.tail {
			if t._fallthrough != nil {
				target = t._fallthrough
				break
			}
		}
	case token.GOTO:
		if s.Label != nil {
			target = b.labeledBlock(s.Label.Name)._goto
		}
	}
	// A nil target means ill-formed input; terminating the block keeps the
	// builder total.
	b.jump(target)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	els := done
	if s.Else != nil {
		els = b.newBlock("if.else")
	}
	b.add(s.Cond)
	b.edge(then)
	b.edge(els)

	b.current = then
	b.stmt(s.Body)
	b.edge(done)

	if s.Else != nil {
		b.current = els
		b.stmt(s.Else)
		b.edge(done)
	}
	b.current = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	loop := b.newBlock("for.loop")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := loop
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edge(loop)

	b.current = loop
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(body)
		b.edge(done)
	} else {
		b.edge(body)
	}

	b.takePending(done, post)
	b.targets = &targets{tail: b.targets, _break: done, _continue: post}
	b.current = body
	b.stmt(s.Body)
	b.targets = b.targets.tail
	b.edge(post)

	if s.Post != nil {
		b.current = post
		b.stmt(s.Post)
		b.edge(loop)
	}
	b.current = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	// The range operand is evaluated once, before the loop; the RangeStmt
	// itself is the loop-header "condition" node (per-iteration key/value
	// binding lives there).
	b.add(s.X)
	loop := b.newBlock("range.loop")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(loop)

	b.current = loop
	b.add(s)
	b.edge(body)
	b.edge(done)

	b.takePending(done, loop)
	b.targets = &targets{tail: b.targets, _break: done, _continue: loop}
	b.current = body
	b.stmt(s.Body)
	b.targets = b.targets.tail
	b.edge(loop)

	b.current = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body.List, "switch")
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body.List, "typeswitch")
}

// caseClauses wires a (type) switch: the head block branches to every case
// body (case-expression order is irrelevant to a may-analysis), falls
// through to done when no default exists, and each body's fallthrough
// target is the next body.
func (b *builder) caseClauses(clauses []ast.Stmt, kind string) {
	head := b.current
	done := b.newBlock(kind + ".done")
	b.takePending(done, nil)

	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock(kind + ".body")
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		head.Succs = append(head.Succs, bodies[i])
		b.current = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var ft *Block
		if i+1 < len(clauses) {
			ft = bodies[i+1]
		}
		b.targets = &targets{tail: b.targets, _break: done, _fallthrough: ft}
		b.stmtList(cc.Body)
		b.targets = b.targets.tail
		b.edge(done)
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.current = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.current
	done := b.newBlock("select.done")
	b.takePending(done, nil)

	if len(s.Body.List) == 0 {
		// select{} blocks forever: the head dead-ends.
		b.current = done
		return
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock("select.body")
		head.Succs = append(head.Succs, body)
		b.current = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.targets = &targets{tail: b.targets, _break: done}
		b.stmtList(cc.Body)
		b.targets = b.targets.tail
		b.edge(done)
	}
	b.current = done
}

// callMayReturn reports whether a statement-level call can return. The
// builtin panic never does; everything else defers to the caller's callback.
func (b *builder) callMayReturn(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return false
	}
	if b.mayReturn != nil {
		return b.mayReturn(call)
	}
	return true
}

// Format renders the graph for debugging and golden tests: one paragraph
// per block with its kind, nodes (single-line source), and successor
// indices. Unreachable empty blocks (jump residue) are elided.
func (c *CFG) Format(fset *token.FileSet) string {
	preds := map[int32]bool{}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = true
		}
	}
	var buf bytes.Buffer
	for _, blk := range c.Blocks {
		if len(blk.Nodes) == 0 && len(blk.Succs) == 0 &&
			!preds[blk.Index] && blk != c.Entry && blk != c.Exit {
			continue
		}
		fmt.Fprintf(&buf, ".%d: # %s\n", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&buf, "\t%s\n", formatNode(fset, n))
		}
		if len(blk.Succs) > 0 {
			var ids []string
			for _, s := range blk.Succs {
				ids = append(ids, fmt.Sprintf(".%d", s.Index))
			}
			fmt.Fprintf(&buf, "\tsuccs: %s\n", strings.Join(ids, " "))
		}
	}
	return buf.String()
}

// formatNode renders one node as collapsed single-line source.
func formatNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	return strings.Join(strings.Fields(buf.String()), " ")
}
