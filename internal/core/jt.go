package core

import (
	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/parallel"
)

// JayantiTarjan is the concurrent union-find CC of Jayanti & Tarjan
// (baseline "JT" in Table IV): a single pass over the edges performing
// randomized linking — each vertex carries a random priority, and a union
// hooks the lower-priority root under the higher-priority one with CAS —
// with path-splitting finds. Random priorities bound the expected tree
// height logarithmically, so, unlike SV, one edge pass suffices: the paper
// highlights that JT "processes each edge just once".
//
// Only the u<v direction of each CSR slot pair is processed, matching the
// paper's note that JT operates correctly on a coordinate representation
// where each edge appears precisely once.
func JayantiTarjan(g *graph.Graph, cfg Config) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	parent := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, parent, func(i int) uint32 { return uint32(i) })
	if n == 0 {
		return Result{Labels: parent}
	}

	// Deterministic pseudo-random priorities (splitmix-style hash of the
	// vertex id). Ties break by id so distinct roots always compare
	// strictly, keeping the linking order acyclic.
	prio := make([]uint64, n)
	parallel.For(pool, n, 4096, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			z := uint64(v) + 0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			prio[v] = z ^ (z >> 31) //thrifty:benign-race workers own disjoint vertex ranges of prio
		}
	})
	higher := func(a, b uint32) bool {
		if prio[a] != prio[b] {
			return prio[a] > prio[b]
		}
		return a > b
	}

	// find with path splitting: each step swings x's parent pointer up to
	// its grandparent. Safe under concurrency because parent priorities
	// strictly increase along any chain.
	find := func(x uint32, ck *chunkCounts) uint32 {
		for {
			p := atomicx.LoadUint32(&parent[x])
			ck.loads++
			if p == x {
				return x
			}
			gp := atomicx.LoadUint32(&parent[p])
			ck.loads++
			if gp != p {
				ck.cas++
				if atomicx.CASUint32(&parent[x], p, gp) {
					ck.stores++
				}
			}
			x = p
		}
	}

	res := Result{Iterations: 1}

	// Single edge pass: union the endpoints of every undirected edge.
	newScheduler(g, cfg, pool).sweep(func(tid, lo, hi int) {
		if cfg.Stop.Requested() {
			return // cancellation poll at partition entry
		}
		var ck chunkCounts
		for v := lo; v < hi; v++ {
			ck.visits++
			for _, u := range g.Neighbors(uint32(v)) {
				ck.branches++
				if u < uint32(v) {
					continue // each undirected edge once
				}
				ck.edges++
				a, b := uint32(v), u
				for {
					ra, rb := find(a, &ck), find(b, &ck)
					if ra == rb {
						break
					}
					// Hook the lower-priority root under the higher one.
					if higher(ra, rb) {
						ra, rb = rb, ra
					}
					ck.cas++
					if atomicx.CASUint32(&parent[ra], ra, rb) {
						ck.stores++
						break
					}
					// CAS lost: ra is no longer a root; retry the union.
				}
			}
		}
		ck.flush(cfg.Ctr, tid)
	})
	cfg.cancelPoint(&res, PhaseEdgePass)

	// Flatten to component labels. Runs even when cancelled: a partial
	// forest is still a valid union-find state, and flattening makes the
	// returned labels root ids.
	parallel.For(pool, n, 2048, func(tid, lo, hi int) {
		var ck chunkCounts
		for v := lo; v < hi; v++ {
			atomicx.StoreUint32(&parent[v], find(uint32(v), &ck))
		}
		ck.flush(cfg.Ctr, tid)
	})
	res.Labels = parent
	return res
}
