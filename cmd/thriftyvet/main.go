// Command thriftyvet is the repository's custom vet multichecker: ten
// go/analysis-style analyzers that mechanically enforce invariants DESIGN.md
// could previously only state in prose (§12, §17):
//
//	hotpath      //thrifty:hotpath kernels stay allocation-free
//	benignrace   plain shared writes in workers carry //thrifty:benign-race;
//	             atomics route through internal/atomicx
//	padded       //thrifty:padded structs stay cache-line padded
//	errfreeze    graph/serve/shard/dist error strings match the frozen lists
//	metricfreeze obs/serve metric names match the frozen list
//	cancelpoint  exported kernels thread and reach Config.cancelPoint
//	reflease     snapshot references from Acquire are released on every path
//	mmapsafe     no use of mmap-backed memory or its aliases after Close
//	goroleak     go statements outside internal/parallel name a shutdown path
//	dirhygiene   //thrifty: directives are known, placed, reasoned, and live
//
// reflease and mmapsafe are path-sensitive: they walk the control-flow
// graphs built by internal/lint/cfg and read analyzer facts (exported by
// the graph and serve packages, carried across package boundaries by the
// driver in both modes below) to recognise acquire and mmap constructors
// they cannot see the bodies of. See DESIGN.md §17.
//
// It speaks two protocols:
//
//	go vet -vettool=$(go env GOBIN)/thriftyvet ./...   # unitchecker mode
//	thriftyvet ./...                                   # standalone mode
//
// `make lint` builds it and runs the vettool form over the module. Exit
// status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/benignrace"
	"thriftylp/internal/lint/cancelpoint"
	"thriftylp/internal/lint/dirhygiene"
	"thriftylp/internal/lint/driver"
	"thriftylp/internal/lint/errfreeze"
	"thriftylp/internal/lint/goroleak"
	"thriftylp/internal/lint/hotpath"
	"thriftylp/internal/lint/metricfreeze"
	"thriftylp/internal/lint/mmapsafe"
	"thriftylp/internal/lint/padded"
	"thriftylp/internal/lint/reflease"
)

// suite is the full analyzer set, in the order diagnostics are attributed.
var suite = []*analysis.Analyzer{
	hotpath.Analyzer,
	benignrace.Analyzer,
	padded.Analyzer,
	errfreeze.Analyzer,
	metricfreeze.Analyzer,
	cancelpoint.Analyzer,
	reflease.Analyzer,
	mmapsafe.Analyzer,
	goroleak.Analyzer,
	dirhygiene.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("thriftyvet", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full)")
	flagsFlag := fs.Bool("flags", false, "print flag descriptions in JSON and exit")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (and any others explicitly enabled)")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		if err := driver.PrintVersion(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *flagsFlag:
		driver.PrintFlags(os.Stdout, suite)
		return 0
	}

	analyzers := selected(fs, enabled)
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		// go vet -vettool protocol: analyze the one package the config
		// describes.
		return driver.RunUnitchecker(rest[0], analyzers)
	}

	// Standalone mode over package patterns. Load returns the pattern
	// packages plus their in-module dependencies in dependency order; one
	// shared fact store carries analyzer facts from each package to its
	// dependents, and dependency-only packages report no diagnostics.
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	pkgs, err := driver.Load(rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	facts := driver.NewFactStore(analyzers)
	exit := 0
	for _, pkg := range pkgs {
		diags, err := driver.Analyze(pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if pkg.DepOnly {
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}

// selected applies the x/tools multichecker convention: naming any analyzer
// flag runs only the named ones; otherwise the whole suite runs.
func selected(fs *flag.FlagSet, enabled map[string]*bool) []*analysis.Analyzer {
	any := false
	for _, v := range enabled {
		if *v {
			any = true
			break
		}
	}
	if !any {
		return suite
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
