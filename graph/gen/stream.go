package gen

// Streamed generation: RMAT as a deterministic, replayable chunk stream
// instead of a materialized edge list. The in-memory path (RMATEdges →
// BuildUndirected) holds 8 bytes per generated edge plus the full CSR at
// once; a consumer of RMATStream can instead replay the stream as many
// times as it needs (count degrees, then fill one shard at a time — see
// shard.StreamWrite), holding only per-vertex arrays. That is what makes a
// graph whose edge list exceeds RAM generatable on one box.
//
// The trick is that RMAT edges are regenerated, not stored: generation is
// deterministic per fixed-size chunk (chunkRNG), so every replay of a chunk
// yields the same edges in the same order, and chunks are independent so
// replays parallelize. Generation is cheap relative to I/O, so k-fold
// regeneration buys the memory bound at small time cost.
//
// Unlike RMAT/RMATCompact, the stream reports duplicate edges and
// self-loops as generated (streaming dedup would need edge-list-sized state
// — the thing being avoided); consumers drop loops and keep duplicates,
// which are harmless to connected components and to the CSR invariants.

// RMATStream is the deterministic chunked edge stream of an RMAT
// configuration. It satisfies shard.EdgeStream: Chunk(ci) replays chunk ci's
// edges identically on every call, already passed through the same
// seed-derived vertex permutation as RMATEdges, so the stream and the
// in-memory generator name the same graph.
type RMATStream struct {
	cfg   RMATConfig
	n, m  int
	chunk int
	perm  func(uint32) uint32
}

// NewRMATStream validates cfg and returns its edge stream.
func NewRMATStream(cfg RMATConfig) (*RMATStream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &RMATStream{
		cfg:   cfg,
		n:     1 << cfg.Scale,
		m:     (1 << cfg.Scale) * cfg.EdgeFactor,
		chunk: 1 << 14,
		perm:  rmatPerm(cfg),
	}, nil
}

// Vertices returns the stream's vertex-id space size.
func (s *RMATStream) Vertices() int { return s.n }

// Edges returns the total generated edge count (self-loops and duplicates
// included), summed over all chunks.
func (s *RMATStream) Edges() int64 { return int64(s.m) }

// Chunks returns the replayable chunk count.
func (s *RMATStream) Chunks() int { return (s.m + s.chunk - 1) / s.chunk }

// Chunk replays chunk ci, calling emit for each generated edge. Replays are
// bit-identical; distinct chunks may run concurrently.
func (s *RMATStream) Chunk(ci int, emit func(u, v uint32)) {
	r := chunkRNG(s.cfg.Seed, ci)
	lo, hi := ci*s.chunk, (ci+1)*s.chunk
	if hi > s.m {
		hi = s.m
	}
	for i := lo; i < hi; i++ {
		e := rmatEdge(r, s.cfg)
		emit(s.perm(e.U), s.perm(e.V))
	}
}

// rmatPerm returns the seed-derived vertex-id bijection of cfg (identity
// when Permute is off), shared by the in-memory and streamed generators so
// both name the same graph.
func rmatPerm(cfg RMATConfig) func(uint32) uint32 {
	n := 1 << cfg.Scale
	mask, mult := uint32(0), uint32(1)
	if cfg.Permute && cfg.Scale > 0 {
		pr := newRNG(cfg.Seed ^ 0x5ca1ab1e5ca1ab1e)
		mask = uint32(pr.next()) & uint32(n-1)
		mult = uint32(pr.next()) | 1 // odd ⇒ invertible mod 2^scale
	}
	return func(v uint32) uint32 {
		return ((v ^ mask) * mult) & uint32(n-1)
	}
}
