# Convenience targets for the thriftylp repository.

GO ?= go

.PHONY: all build test lint check race cover bench bench-json verify experiments clean

all: check

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Run the thriftyvet analyzer suite — hotpath, benignrace, padded,
# errfreeze, metricfreeze, cancelpoint, plus the CFG/facts-based reflease,
# mmapsafe, goroleak and dirhygiene — over the whole module through the go
# vet driver; see DESIGN.md §12 for the annotation grammar and §17 for the
# dataflow engine.
lint:
	$(GO) build -o bin/thriftyvet ./cmd/thriftyvet
	$(GO) vet -vettool=$(CURDIR)/bin/thriftyvet ./...

check: build test lint

race:
	GOMAXPROCS=4 $(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One Benchmark family per paper table/figure; see bench_test.go.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the machine-readable perf-regression records: kernel timings
# (uninstrumented fast path, fixed medium-scale fixtures, min of 5 reps) in
# BENCH_thrifty.json, ingestion timings (parallel zero-copy pipeline vs the
# frozen sequential baseline) in BENCH_ingest.json, serving QPS/latency
# (thriftyd query stack under concurrent load) in BENCH_serve.json, and the
# sharded-exchange gate (compacted vs naive boundary exchange, suppression
# counts, unsharded denominator; fails on a compaction inversion) in
# BENCH_shard.json.
bench-json:
	$(GO) run ./cmd/ccbench -ingest-json BENCH_ingest.json -serve-json BENCH_serve.json -shard-json BENCH_shard.json -json BENCH_thrifty.json -reps 5

# Cross-validate every algorithm against the sequential oracle.
verify:
	$(GO) run ./cmd/ccverify

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ccbench -exp all -scale medium

clean:
	$(GO) clean ./...
	rm -rf bin datasets
