package graph

import (
	"path/filepath"
	"sync"
	"testing"
)

// mappedTestGraph saves testGraph to a temp file and loads it back through
// LoadBinary, so on capable hosts the result owns a real memory mapping.
func mappedTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestGraphCloseConcurrent hammers Close from many goroutines: exactly one
// performs the munmap and none may error or double-unmap (the race detector
// and the kernel both police the latter).
func TestGraphCloseConcurrent(t *testing.T) {
	for rep := 0; rep < 50; rep++ {
		g := mappedTestGraph(t)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := g.Close(); err != nil {
					t.Errorf("concurrent Close: %v", err)
				}
			}()
		}
		close(start)
		wg.Wait()
		if g.Mapped() {
			t.Fatal("graph still mapped after concurrent Close")
		}
	}
}

// TestGraphUseAfterCloseDetection pins the detection contract: Validate on a
// closed mapped graph returns the frozen error (in every build), and the
// accessor-side check — compiled into the hot accessors only under the
// thriftydebug tag — panics with the same error value.
func TestGraphUseAfterCloseDetection(t *testing.T) {
	g := mappedTestGraph(t)
	if !g.Mapped() {
		// Portable fallback hosts keep heap arrays valid after Close; the
		// detection contract only exists for mappings.
		t.Skip("no mmap on this host")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate before Close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	err := g.Validate()
	if err == nil {
		t.Fatal("Validate on a closed mapped graph succeeded")
	}
	if !ErrUseAfterClose(err) {
		t.Fatalf("Validate error = %v, want the use-after-close error", err)
	}
	if got := err.Error(); got != "graph: use of mmap-backed graph after Close" {
		t.Fatalf("use-after-close text drifted (errfreeze contract): %q", got)
	}

	// The debug accessor check panics with the same error value. mustUsable
	// is exercised directly so the regression holds in untagged test runs
	// too; under -tags thriftydebug, Degree/Neighbors/Offsets/Adjacency call
	// the identical code.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("mustUsable did not panic on a closed mapped graph")
			}
			perr, ok := r.(error)
			if !ok || !ErrUseAfterClose(perr) {
				t.Fatalf("mustUsable panicked with %v, want the use-after-close error", r)
			}
		}()
		g.mustUsable()
	}()

	// Heap graphs never trip the check: their storage outlives Close.
	h := testGraph(t)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.usableErr(); err != nil {
		t.Fatalf("heap graph flagged as unusable after Close: %v", err)
	}
	if h.NumVertices() == 0 {
		t.Fatal("heap graph lost its arrays on Close")
	}
}
