// Fixture for errfreeze over the serve package: the package name matches
// the frozen path thriftylp/internal/serve, so FrozenServe applies.
package serve

import (
	"errors"
	"fmt"
)

var errReload = errors.New("serve: reload already in progress")

func frozenOK(path string, err error) error {
	return fmt.Errorf("serve: ingest %s: %w", path, err)
}

func drifted(path string) error {
	return fmt.Errorf("serve: mystery failure on %s", path) // want `is not in the frozen list`
}
