package parallel

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStealerStatsAccounting checks the scheduling counters' core invariant:
// every partition is claimed exactly once, either as owned or as stolen, so
// Owned+Stolen equals the partition count per sweep. Thread 0 is made
// artificially slow so the other threads drain their own blocks and are
// forced to steal from it.
func TestStealerStatsAccounting(t *testing.T) {
	const threads, nparts, sweeps = 4, 64, 2

	pool := NewPool(threads)
	defer pool.Close()

	parts := make([]Range, nparts)
	for i := range parts {
		parts[i] = Range{Lo: uint32(i), Hi: uint32(i + 1)}
	}
	s := NewStealer(parts, threads)

	hits := make([]int64, nparts)
	for sweep := 0; sweep < sweeps; sweep++ {
		s.Run(pool, func(tid int, p Range) {
			if tid == 0 {
				time.Sleep(2 * time.Millisecond) // slow owner: its block gets raided
			}
			atomic.AddInt64(&hits[p.Lo], 1)
		})
	}

	for i, h := range hits {
		if h != sweeps {
			t.Errorf("partition %d processed %d times, want %d", i, h, sweeps)
		}
	}

	st := s.Stats()
	if got, want := st.Owned+st.Stolen, int64(sweeps*nparts); got != want {
		t.Errorf("Owned+Stolen = %d+%d = %d, want %d (counts accumulate across sweeps)",
			st.Owned, st.Stolen, got, want)
	}
	if st.Stolen == 0 {
		t.Errorf("Stolen = 0: fast threads never stole from the slow owner's block")
	}
	if st.FailedSteals < 0 {
		t.Errorf("FailedSteals = %d, want >= 0", st.FailedSteals)
	}
}

// TestStealerStatsSingleThread: with one thread everything is owned and
// nothing can be stolen.
func TestStealerStatsSingleThread(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	parts := []Range{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}}
	s := NewStealer(parts, 1)
	s.Run(pool, func(tid int, p Range) {})

	st := s.Stats()
	if st.Owned != int64(len(parts)) || st.Stolen != 0 || st.FailedSteals != 0 {
		t.Errorf("Stats() = %+v, want Owned=%d Stolen=0 FailedSteals=0", st, len(parts))
	}
}

// TestPoolStatsDelta checks the before/after snapshot discipline cc uses for
// per-run pool attribution: JobsRun grows by exactly threads per Run call.
func TestPoolStatsDelta(t *testing.T) {
	const threads = 3
	pool := NewPool(threads)
	defer pool.Close()

	before := pool.Stats()
	pool.MustRun(func(tid int) {})
	pool.MustRun(func(tid int) {})
	d := pool.Stats().Sub(before)
	if d.JobsRun != 2*threads {
		t.Errorf("JobsRun delta = %d, want %d", d.JobsRun, 2*threads)
	}
	if d.Idle < 0 {
		t.Errorf("Idle delta = %v, want >= 0", d.Idle)
	}
}
