// Package snap mimics the internal/serve snapshot refcount protocol for
// the reflease fixtures: a Source hands out *Snapshot references via an
// Acquire-shaped method, tryRef conditionally takes a reference, Release
// drops one.
package snap

// Snapshot is a refcounted resource.
type Snapshot struct {
	refs int
	id   int
}

// ID is a harmless accessor: reading through a reference is not a use the
// analyzer cares about.
func (s *Snapshot) ID() int { return s.id }

func (s *Snapshot) tryRef() bool {
	if s.refs <= 0 {
		return false
	}
	s.refs++
	return true
}

// Release drops one reference.
func (s *Snapshot) Release() { s.refs-- }

// Source publishes snapshots.
type Source struct {
	cur *Snapshot
}

// Acquire is seeded by signature shape: niladic, single releasable-pointer
// result. Inside its body the tryRef branch transfers ownership out via
// return, so the body itself is clean.
func (s *Source) Acquire() *Snapshot { // wantfact "Acquire: acquires"
	for {
		sn := s.cur
		if sn == nil {
			return nil
		}
		if sn.tryRef() {
			return sn
		}
	}
}

// MustAcquire is not Acquire-shaped by name alone on the caller's side of
// the fact store: it earns its fact by returning an acquired reference.
func (s *Source) MustAcquire() *Snapshot { // wantfact "MustAcquire: acquires"
	sn := s.Acquire()
	if sn == nil {
		panic("snap: no snapshot")
	}
	return sn
}

// leakTry takes a reference on the true branch and never releases it.
func leakTry(sn *Snapshot) {
	if sn.tryRef() { // want "result of tryRef is not released on every path \\(reference leak\\)"
		_ = sn.ID()
	}
}

// okTry releases on exactly the branch that took the reference.
func okTry(sn *Snapshot) int {
	if sn.tryRef() {
		defer sn.Release()
		return sn.ID()
	}
	return -1
}
