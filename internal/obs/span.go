package obs

import (
	"time"

	"thriftylp/internal/atomicx"
)

// This file is the request-scoped span layer of the serving telemetry:
// every thriftyd request gets an ID and a RequestSpan that records where
// its time went (queue wait, snapshot acquire, handler, encode) with one
// clock read per phase boundary, and a SlowLog that turns the spans worth
// keeping — the slow ones, rate-capped — into thriftylp/trace/v1 JSONL
// records an operator can tail. The fast path deliberately does no I/O, no
// formatting, and no locking: a span is five time reads and a handful of
// subtractions; whether it becomes a log record is decided by two atomic
// compares after the response has already been written.

// reqID hands out process-unique request ids.
var reqID atomicx.Int64

// NextRequestID returns a process-unique request id (monotone from 1).
func NextRequestID() uint64 { return uint64(reqID.Add(1)) }

// RequestSpan records the phase boundaries of one served request. Create
// with StartSpan at arrival, call the End* methods at each boundary in
// order (each is one time read; missed boundaries stay zero), and Finish
// once the response is written. A span is owned by its request goroutine —
// no method is safe for concurrent use.
type RequestSpan struct {
	ID       uint64
	Endpoint string
	Start    time.Time
	// Status is the HTTP status the request was answered with.
	Status int
	// Phase durations, in nanoseconds. Zero means the phase was never
	// reached (a shed request has only QueueNs) or took under a nanosecond.
	QueueNs   int64 // admission: arrival → slot granted (or shed)
	AcquireNs int64 // snapshot acquire: slot → reference held
	HandlerNs int64 // handler: reference → response body produced
	EncodeNs  int64 // encode: body produced → bytes written
	// TotalNs is arrival → Finish, set by Finish.
	TotalNs int64

	last        int64 // ns since Start at the previous boundary
	handlerDone bool
	encodeDone  bool
}

// StartSpan begins a span for one request against endpoint: one clock read.
func StartSpan(endpoint string) RequestSpan {
	return RequestSpan{ID: NextRequestID(), Endpoint: endpoint, Start: time.Now()}
}

// mark returns the nanoseconds since the previous boundary and advances it.
func (sp *RequestSpan) mark() int64 {
	t := time.Since(sp.Start).Nanoseconds()
	d := t - sp.last
	sp.last = t
	return d
}

// EndQueue closes the admission phase (slot granted, or the request shed).
func (sp *RequestSpan) EndQueue() { sp.QueueNs = sp.mark() }

// EndAcquire closes the snapshot-acquire phase.
func (sp *RequestSpan) EndAcquire() { sp.AcquireNs = sp.mark() }

// EndHandler closes the handler phase. Idempotent: the encoder calls it
// before writing (so encode time is not charged to the handler) and the
// serving envelope calls it again after the handler returns, which is a
// no-op when the encoder already did.
func (sp *RequestSpan) EndHandler() {
	if sp.handlerDone {
		return
	}
	sp.handlerDone = true
	sp.HandlerNs = sp.mark()
}

// EndEncode closes the encode phase. Idempotent like EndHandler; requests
// answered without a JSON body (errors, sheds) simply never reach it.
func (sp *RequestSpan) EndEncode() {
	if sp.encodeDone {
		return
	}
	sp.encodeDone = true
	sp.EncodeNs = sp.mark()
}

// Finish stamps the status and total duration. The total is one fresh
// clock read, so it covers trailing work after the last phase boundary.
func (sp *RequestSpan) Finish(status int) {
	sp.Status = status
	sp.TotalNs = time.Since(sp.Start).Nanoseconds()
}

// record converts the span to its stable external trace form.
func (sp *RequestSpan) record() TraceRecord {
	return TraceRecord{
		Schema:     TraceSchema,
		Kind:       KindRequest,
		ReqID:      sp.ID,
		Endpoint:   sp.Endpoint,
		Status:     sp.Status,
		QueueNs:    sp.QueueNs,
		AcquireNs:  sp.AcquireNs,
		HandlerNs:  sp.HandlerNs,
		EncodeNs:   sp.EncodeNs,
		DurationNs: sp.TotalNs,
	}
}

// SlowLog is the sampled slow-query JSONL log: spans whose total latency
// reaches Threshold are written as Kind "request" trace records, but never
// more often than one per MinGap — a full-tilt overload cannot turn the
// trace file into a second overload. Observe is cheap for the fast path
// (one int compare) and lock-free for the slow one (a CAS on the last-emit
// clock); only the winning record pays the JSON encode.
type SlowLog struct {
	w *TraceWriter
	// threshold is the minimum TotalNs a span must reach to be logged.
	threshold int64
	// minGap is the minimum nanosecond spacing between logged records.
	minGap int64

	lastEmit atomicx.Int64 // unix ns of the last logged record
	logged   atomicx.Int64
	dropped  atomicx.Int64
}

// NewSlowLog builds a slow-query log writing to w. Spans at or above
// threshold are logged, rate-capped at maxPerSec records per second
// (maxPerSec <= 0 means uncapped). threshold <= 0 logs every finished
// request the rate cap admits — useful in tests and smoke jobs.
func NewSlowLog(w *TraceWriter, threshold time.Duration, maxPerSec int) *SlowLog {
	l := &SlowLog{w: w, threshold: threshold.Nanoseconds()}
	if maxPerSec > 0 {
		l.minGap = int64(time.Second) / int64(maxPerSec)
	}
	return l
}

// Observe offers a finished span to the log. It returns true when the span
// was written (tests and diagnostics; production callers ignore it).
func (l *SlowLog) Observe(sp *RequestSpan) bool {
	if sp.TotalNs < l.threshold {
		return false
	}
	if l.minGap > 0 {
		now := time.Now().UnixNano()
		last := l.lastEmit.Load()
		if now-last < l.minGap || !l.lastEmit.CompareAndSwap(last, now) {
			// Inside the gap, or lost the slot to a concurrent slow span:
			// count the drop so the scrape can report sampling pressure.
			l.dropped.Add(1)
			return false
		}
	}
	if err := l.w.Write(sp.record()); err != nil {
		l.dropped.Add(1)
		return false
	}
	l.logged.Add(1)
	return true
}

// WriteRecord writes one non-request record (reload and ingest spans)
// through the log's writer, bypassing threshold and rate gates — those
// events are rare and always worth keeping.
func (l *SlowLog) WriteRecord(rec TraceRecord) error { return l.w.Write(rec) }

// Logged returns the number of records written.
func (l *SlowLog) Logged() int64 { return l.logged.Load() }

// Dropped returns the number of spans that crossed the threshold but were
// suppressed by the rate cap (or lost to a write error).
func (l *SlowLog) Dropped() int64 { return l.dropped.Load() }

// Flush forces buffered records to the underlying file. The serving drain
// path calls it so a SIGTERM cannot truncate the final records.
func (l *SlowLog) Flush() error { return l.w.Flush() }

// Close flushes and closes the underlying writer.
func (l *SlowLog) Close() error { return l.w.Close() }
