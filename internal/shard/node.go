package shard

import (
	"sort"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/parallel"
)

// Node is the per-shard state machine of the out-of-core solver. Its life
// has two phases:
//
//  1. Solve (NewNode): the shard's interior subgraph — both endpoints inside
//     [Lo, Hi) — is built and solved with the shared-memory Thrifty kernel,
//     collapsing the shard to its interior components. Boundary edges are
//     extracted into per-component, per-destination target lists, after
//     which the shard's adjacency is never touched again and its mapping can
//     be released.
//  2. Exchange (Apply/Emit rounds, driven by internal/dist): components
//     exchange labels along boundary edges to global convergence. Each
//     component starts labelled min-global-id+1 — except the component
//     holding the global hub, which starts at 0 (Zero Planting carried
//     across the shard cut) — and MIN-combines incoming labels, so the
//     fixpoint labels each global component with the minimum over its
//     interior components' seeds: 0 for the hub's component, distinct
//     min-id+1 values elsewhere. That is exactly Thrifty's label value
//     space, which is what makes the sharded result bijective with the
//     unsharded one.
//
// Compaction in Emit (delta-only emission, zero-convergence suppression,
// MIN-dedup, varint deltas) is documented on Emit.
type Node struct {
	// ID is the shard index; Lo, Hi its owned global vertex range.
	ID     int
	Lo, Hi uint32

	// rep[v-Lo] is v's interior component representative: the smallest local
	// id in the component. Representatives double as indices into the
	// per-component arrays below (only rep-valued slots are meaningful).
	rep []uint32
	// label[r] is component r's current global label.
	label []uint32
	// suppressed[r] is set once component r has converged to label 0 and
	// shipped its final 0-emission: it is dropped from every future exchange
	// (its targets freed) — the cross-shard form of Zero Convergence.
	suppressed []bool
	// out[r] lists component r's boundary targets per destination shard;
	// freed on suppression.
	out [][]destTargets
	// knownZero marks remote vertices this node has shipped a 0 to: their
	// labels are final, so any further entry targeting them is dead and is
	// dropped (and counted) instead of emitted.
	knownZero map[uint32]bool
	// changed lists representatives whose label dropped since the last Emit;
	// isChanged dedups it.
	changed   []uint32
	isChanged []bool
	// ranges is the full set's shard ranges: Emit encodes each batch's
	// vertex deltas against the destination's Lo.
	ranges []parallel.Range

	// LocalIterations is the interior Thrifty solve's iteration count.
	LocalIterations int
	// BoundaryEntries is the node's total (component, target) entry count
	// after construction-time dedup — its share of the naive exchange.
	BoundaryEntries int64
	// Suppressed counts exchange entries dropped by zero-convergence
	// suppression: dead-target emissions skipped plus incoming pairs for
	// already-suppressed components.
	Suppressed int64
}

// destTargets is one component's boundary targets inside one destination
// shard, sorted ascending.
type destTargets struct {
	dest    int
	targets []uint32
}

// NewNode builds shard id from slice s: solves the interior subgraph with
// core.Thrifty under cfg (Pool/Stop/Faults are honoured; instrumentation
// must not be set — nodes run concurrently with shared sinks otherwise) and
// extracts the boundary lists. ranges must be the full set's ranges and hub
// the global max-degree vertex. canceled reports that cfg.Stop fired before
// the interior solve converged; the node is then unusable.
func NewNode(id int, s *graph.CSRSlice, ranges []parallel.Range, hub uint32, cfg core.Config) (n *Node, canceled bool, err error) {
	lo, hi := s.Lo, s.Hi
	local := s.NumLocal()
	n = &Node{ID: id, Lo: lo, Hi: hi, ranges: ranges, knownZero: make(map[uint32]bool)}
	if local == 0 {
		return n, false, nil
	}

	// Interior subgraph: both endpoints in [lo, hi), ids rebased to local.
	// Symmetric by construction — the global CSR is symmetric and the filter
	// keeps an edge iff it keeps its mirror.
	offsets := make([]int64, local+1)
	for v := 0; v < local; v++ {
		row := s.Adj[s.Offsets[v]:s.Offsets[v+1]]
		deg := int64(0)
		for _, u := range row {
			if u >= lo && u < hi {
				deg++
			}
		}
		offsets[v+1] = offsets[v] + deg
	}
	if err := graph.CheckOffsets64(offsets, offsets[local]); err != nil {
		return nil, false, err
	}
	adj := make([]uint32, offsets[local])
	w := 0
	for v := 0; v < local; v++ {
		row := s.Adj[s.Offsets[v]:s.Offsets[v+1]]
		for _, u := range row {
			if u >= lo && u < hi {
				adj[w] = u - lo
				w++
			}
		}
	}
	ig, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, false, err
	}
	res := core.Thrifty(ig, cfg)
	if res.Canceled {
		return nil, true, nil
	}
	n.LocalIterations = res.Iterations
	n.rep = core.Normalize(res.Labels)

	// Seed the component labels: min global id + 1, hub's component 0.
	n.label = make([]uint32, local)
	n.suppressed = make([]bool, local)
	n.isChanged = make([]bool, local)
	for v := 0; v < local; v++ {
		r := n.rep[v]
		if uint32(v) == r {
			n.label[r] = lo + r + 1
		}
	}
	if hub >= lo && hub < hi {
		n.label[n.rep[hub-lo]] = 0
	}

	n.buildBoundary(s, ranges)
	return n, false, nil
}

// boundaryEntry is a construction-time triple, sorted to group and dedup.
type boundaryEntry struct {
	rep    uint32
	dest   int32
	target uint32
}

// buildBoundary extracts the shard's cut edges into per-component,
// per-destination sorted target lists, deduplicating parallel entries (two
// interior vertices of one component adjacent to the same remote vertex
// produce one entry — they could only ever ship the same label).
func (n *Node) buildBoundary(s *graph.CSRSlice, ranges []parallel.Range) {
	var entries []boundaryEntry
	for v := 0; v < s.NumLocal(); v++ {
		row := s.Adj[s.Offsets[v]:s.Offsets[v+1]]
		r := n.rep[v]
		for _, u := range row {
			if u < n.Lo || u >= n.Hi {
				entries = append(entries, boundaryEntry{rep: r, dest: int32(OwnerOf(ranges, u)), target: u})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.rep != b.rep {
			return a.rep < b.rep
		}
		if a.dest != b.dest {
			return a.dest < b.dest
		}
		return a.target < b.target
	})
	n.out = make([][]destTargets, s.NumLocal())
	for i := 0; i < len(entries); {
		j := i
		for j < len(entries) && entries[j].rep == entries[i].rep && entries[j].dest == entries[i].dest {
			j++
		}
		targets := make([]uint32, 0, j-i)
		for k := i; k < j; k++ {
			if len(targets) == 0 || targets[len(targets)-1] != entries[k].target {
				targets = append(targets, entries[k].target)
			}
		}
		r := entries[i].rep
		n.out[r] = append(n.out[r], destTargets{dest: int(entries[i].dest), targets: targets})
		n.BoundaryEntries += int64(len(targets))
		i = j
	}
}

// Bootstrap marks every component with boundary targets as changed, so the
// first Emit ships the initial labels — the cross-shard analogue of
// Thrifty's Initial Push (the planted 0 leaves the hub's shard in round 0).
func (n *Node) Bootstrap() {
	for r, dts := range n.out {
		if len(dts) > 0 {
			n.markChanged(uint32(r))
		}
	}
}

// Apply MIN-combines one incoming batch into the node's component labels.
// Pairs addressing suppressed (label-0) components are counted and skipped:
// nothing can improve on 0. This is the inbox side of every exchange round;
// the per-pair callback stays on slices only (markChanged owns the one
// append, outside the annotation's reach).
//
//thrifty:hotpath
func (n *Node) Apply(data []byte) error {
	return DecodePairs(data, n.Lo, n.Hi, func(v, label uint32) {
		r := n.rep[v-n.Lo]
		if n.suppressed[r] {
			n.Suppressed++
			return
		}
		if label < n.label[r] {
			n.label[r] = label
			n.markChanged(r)
		}
	})
}

func (n *Node) markChanged(r uint32) {
	if !n.isChanged[r] {
		n.isChanged[r] = true
		n.changed = append(n.changed, r)
	}
}

// Emit encodes the round's outgoing batches, one per destination shard
// (nil for destinations with nothing to say), and returns them with the
// number of pairs shipped. Compaction, in the order applied:
//
//   - delta-only emission: only components whose label changed since the
//     last Emit appear at all;
//   - zero-convergence suppression: a component that changed to 0 ships that
//     final 0 once, marks each target as known-zero, and frees its lists;
//     entries from any component targeting a known-zero vertex are dropped
//     (the target's label is already the global minimum) and counted in
//     Suppressed;
//   - MIN-dedup and varint delta-encoding inside AppendPairs.
func (n *Node) Emit(numShards int) (batches [][]byte, pairs int64) {
	if len(n.changed) == 0 {
		return nil, 0
	}
	perDest := make([][]Pair, numShards)
	for _, r := range n.changed {
		n.isChanged[r] = false
		if n.suppressed[r] {
			continue
		}
		lab := n.label[r]
		for _, dt := range n.out[r] {
			for _, t := range dt.targets {
				if n.knownZero[t] {
					n.Suppressed++
					continue
				}
				perDest[dt.dest] = append(perDest[dt.dest], Pair{V: t, L: lab})
				if lab == 0 {
					n.knownZero[t] = true
				}
			}
		}
		if lab == 0 {
			n.suppressed[r] = true
			n.out[r] = nil
		}
	}
	n.changed = n.changed[:0]

	batches = make([][]byte, numShards)
	for d, ps := range perDest {
		if len(ps) == 0 {
			continue
		}
		batches[d] = AppendPairs(nil, n.ranges[d].Lo, ps)
		pairs += int64(len(ps))
	}
	return batches, pairs
}

// Labels writes the node's final per-vertex labels into the global array.
//
//thrifty:hotpath
func (n *Node) Labels(global []uint32) {
	for v := 0; v < len(n.rep); v++ {
		global[int(n.Lo)+v] = n.label[n.rep[v]]
	}
}
