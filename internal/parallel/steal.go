package parallel

import "thriftylp/internal/atomicx"

// StealStats aggregates a Stealer's partition-scheduling activity: how many
// partitions each thread ran from its own block versus took from another
// thread's, and how many steal-scan claim attempts lost the race. Counts
// accumulate across Reset/Run cycles for the life of the Stealer, so for a
// per-run Stealer they describe that whole run. The owned/stolen split is the
// load-balance signal the paper's §V-A discipline is designed around: a
// healthy skewed-graph run steals a small but non-zero fraction.
type StealStats struct {
	// Owned counts partitions a thread claimed from its own block.
	Owned int64
	// Stolen counts partitions a thread claimed from another thread's block.
	Stolen int64
	// FailedSteals counts claim attempts during steal scans that found the
	// partition already taken (including losing the CAS itself).
	FailedSteals int64
}

// stealSlot is one thread's stats block, padded to its own cache line so
// flushes from different workers do not false-share.
//
//thrifty:padded
type stealSlot struct {
	owned, stolen, failed int64
	_                     [5]int64
}

// Stealer schedules a fixed slice of partitions over the threads of a Pool
// with the paper's stealing discipline (§V-A): thread t owns the contiguous
// block of partitions [m·t, m·(t+1)) where m = len(parts)/threads; it
// processes its own block in ascending order to preserve locality across
// consecutive partitions, and once exhausted it steals from other threads'
// blocks in descending order (so steals collide with the victim's own
// ascending scan as late as possible).
//
// Claiming is a per-partition CAS, which makes double-execution impossible
// regardless of how owner and thief scans interleave.
type Stealer struct {
	parts   []Range
	claimed []int32
	threads int
	stats   []stealSlot
}

// NewStealer prepares a scheduling of parts over the given thread count.
func NewStealer(parts []Range, threads int) *Stealer {
	if threads <= 0 {
		threads = 1
	}
	return &Stealer{
		parts:   parts,
		claimed: make([]int32, len(parts)),
		threads: threads,
		stats:   make([]stealSlot, threads),
	}
}

// Stats returns the accumulated scheduling counters summed over all threads.
// Counters are flushed once per Work call (a partition boundary, never
// per-edge), so Stats read concurrently with a running sweep may miss the
// in-flight Work calls' contributions; after Run returns it is exact.
func (s *Stealer) Stats() StealStats {
	var st StealStats
	for i := range s.stats {
		st.Owned += atomicx.LoadInt64(&s.stats[i].owned)
		st.Stolen += atomicx.LoadInt64(&s.stats[i].stolen)
		st.FailedSteals += atomicx.LoadInt64(&s.stats[i].failed)
	}
	return st
}

// Reset makes all partitions claimable again, allowing the Stealer to be
// reused across iterations without reallocating.
func (s *Stealer) Reset() {
	for i := range s.claimed {
		atomicx.StoreInt32(&s.claimed[i], 0)
	}
}

// block returns the half-open partition-index block owned by thread t.
func (s *Stealer) block(t int) (lo, hi int) {
	n := len(s.parts)
	lo = n * t / s.threads
	hi = n * (t + 1) / s.threads
	return
}

func (s *Stealer) tryClaim(i int) bool {
	return atomicx.LoadInt32(&s.claimed[i]) == 0 &&
		atomicx.CASInt32(&s.claimed[i], 0, 1)
}

// Work runs fn over partitions on behalf of thread tid until no unclaimed
// partition remains: first the thread's own block ascending, then the other
// threads' blocks (in ring order starting after tid) descending.
func (s *Stealer) Work(tid int, fn func(p Range)) {
	// Scheduling counters accumulate in locals and flush once at the end of
	// the Work call: zero per-edge work, one counter block write per sweep.
	var owned, stolen, failed int64
	lo, hi := s.block(tid)
	for i := lo; i < hi; i++ {
		if s.tryClaim(i) {
			owned++
			fn(s.parts[i])
		}
	}
	// Steal: visit victims round-robin starting from the next thread, and
	// scan each victim's block in descending order.
	for d := 1; d < s.threads; d++ {
		v := (tid + d) % s.threads
		vlo, vhi := s.block(v)
		for i := vhi - 1; i >= vlo; i-- {
			if s.tryClaim(i) {
				stolen++
				fn(s.parts[i])
			} else {
				failed++
			}
		}
	}
	if owned|stolen|failed != 0 {
		st := &s.stats[tid%len(s.stats)]
		atomicx.AddInt64(&st.owned, owned)
		atomicx.AddInt64(&st.stolen, stolen)
		atomicx.AddInt64(&st.failed, failed)
	}
}

// Run partitions-over-pool convenience: schedules parts on pool with work
// stealing and blocks until every partition has been processed exactly once.
// A panic in fn surfaces as a *PanicError panic on the calling goroutine
// (see the package comment's failure contract).
func (s *Stealer) Run(pool *Pool, fn func(tid int, p Range)) {
	s.Reset()
	pool.MustRun(func(tid int) {
		s.Work(tid, func(p Range) { fn(tid, p) })
	})
}
