// Package parallel is a fixture stand-in for thriftylp/internal/parallel:
// same shapes, sequential execution. The benignrace analyzer recognizes it
// by package name.
package parallel

type Pool struct{ threads int }

func Default() *Pool { return &Pool{threads: 4} }

func (p *Pool) Threads() int { return p.threads }

func (p *Pool) MustRun(body func(tid int)) {
	for t := 0; t < p.threads; t++ {
		body(t)
	}
}

func For(pool *Pool, n, grain int, body func(tid, lo, hi int)) {
	body(0, 0, n)
}
