package harness

import (
	"strings"
	"testing"

	"thriftylp/cc"
)

func smallCfg() RunConfig {
	return RunConfig{Scale: ScaleSmall, Reps: 1}
}

// TestEveryExperimentRuns is the harness integration test: each registered
// experiment must produce a non-empty, well-formed table at small scale.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := RunExperiment(id, smallCfg())
			if err != nil {
				t.Fatalf("RunExperiment(%s): %v", id, err)
			}
			if tab.ID != id {
				t.Fatalf("table id %q != %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
				}
			}
			out := tab.Render()
			if !strings.Contains(out, tab.Title) {
				t.Fatal("render lost the title")
			}
		})
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("table99", smallCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSuiteStructure(t *testing.T) {
	suite := Suite(ScaleSmall)
	if len(suite) < 8 {
		t.Fatalf("suite has %d datasets", len(suite))
	}
	names := map[string]bool{}
	roads, skewed := 0, 0
	for _, d := range suite {
		if names[d.Name] {
			t.Fatalf("duplicate dataset name %s", d.Name)
		}
		names[d.Name] = true
		if d.Kind == "road" {
			roads++
		}
		if d.PowerLaw {
			skewed++
		}
	}
	if roads < 2 {
		t.Fatalf("suite has %d road networks, want >= 2 (GB+US analogs)", roads)
	}
	if skewed < 5 {
		t.Fatalf("suite has %d power-law datasets", skewed)
	}
	if len(SkewedSuite(ScaleSmall)) != skewed {
		t.Fatal("SkewedSuite filter mismatch")
	}
}

// TestSuiteDatasetsBuildAndMatchDeclaredSkew builds every dataset at small
// scale and checks its declared power-law classification against reality.
func TestSuiteDatasetsBuildAndMatchDeclaredSkew(t *testing.T) {
	for _, d := range Suite(ScaleSmall) {
		g, err := BuildCached(ScaleSmall, d)
		if err != nil {
			t.Fatalf("building %s: %v", d.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s is degenerate: %v", d.Name, g)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		maxDeg := float64(g.Degree(g.MaxDegreeVertex()))
		mean := float64(g.NumDirectedEdges()) / float64(g.NumVertices())
		// Skew grows with graph size; at the tiny test scale a 10x
		// max/mean ratio already separates the families cleanly (roads
		// measure ~1x, RMAT/BA >= ~15x).
		isSkewed := maxDeg >= 10*mean
		if d.Kind != "control" && isSkewed != d.PowerLaw {
			t.Fatalf("%s declared PowerLaw=%v but measured max/mean=%.1f", d.Name, d.PowerLaw, maxDeg/mean)
		}
	}
}

func TestBuildCachedMemoizes(t *testing.T) {
	d := Suite(ScaleSmall)[0]
	g1, err := BuildCached(ScaleSmall, d)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildCached(ScaleSmall, d)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("BuildCached did not memoize")
	}
}

func TestFindDataset(t *testing.T) {
	if _, err := FindDataset(ScaleSmall, "social-twitter"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDataset(ScaleSmall, "no-such"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "Demo",
		Columns: []string{"A", "LongColumn"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 3.14159)
	tab.AddRow(42, "y")
	out := tab.Render()
	for _, want := range []string{"Demo", "LongColumn", "3.14", "42", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "A,LongColumn\n") || !strings.Contains(csv, "x,3.14") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		12.34:   "12.3",
		1.234:   "1.23",
		0.0001:  "0.0001",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("Geomean = %v", g)
	}
	if g := Geomean([]float64{0, -1}); g != 0 {
		t.Fatalf("Geomean of non-positives = %v", g)
	}
}

func TestTimeAlgorithm(t *testing.T) {
	d, err := FindDataset(ScaleSmall, "social-pokec")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildCached(ScaleSmall, d)
	if err != nil {
		t.Fatal(err)
	}
	dur, res, err := TimeAlgorithm(cc.AlgoThrifty, g, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatalf("non-positive duration %v", dur)
	}
	if !cc.Verify(g, res.Labels) {
		t.Fatal("timed run produced bad labels")
	}
}
