package parallel

import (
	"sync/atomic"
	"testing"
)

func BenchmarkPoolRunOverhead(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(int) {})
	}
}

func BenchmarkForSum(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	const n = 1 << 20
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		For(p, n, 0, func(_, lo, hi int) {
			var s int64
			for j := lo; j < hi; j++ {
				s += data[j]
			}
			atomic.AddInt64(&total, s)
		})
	}
}

func BenchmarkStealerSweep(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	const n = 1 << 18
	index := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		index[v] = index[v-1] + int64(v%37) // lumpy degrees
	}
	parts := PartitionEdges(index, PartitionsPerThread*p.Threads())
	s := NewStealer(parts, p.Threads())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		s.Run(p, func(_ int, r Range) {
			atomic.AddInt64(&total, int64(r.Len()))
		})
		if total != n {
			b.Fatalf("covered %d", total)
		}
	}
}

func BenchmarkPartitionEdges(b *testing.B) {
	const n = 1 << 20
	index := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		index[v] = index[v-1] + int64(v%61)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(PartitionEdges(index, 256)) != 256 {
			b.Fatal("partition count")
		}
	}
}

func BenchmarkMaxIndex(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	const n = 1 << 20
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 2654435761) % 1000003)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxIndex(p, n, func(i int) int64 { return vals[i] })
	}
}
