// Package spmv generalizes Thrifty's optimizations beyond connected
// components — the direction the paper's §VII sets out: "we will
// investigate how these can be generalized to other algorithms expressed in
// the SpMV model ... in particular the connection between the unified
// arrays optimization and asynchronous execution".
//
// The engine iterates a monotone min-propagation
//
//	x_v ← min(x_v, min_{u∈N(v)} EdgeFn(x_u))
//
// to a fixed point, with the paper's machinery made generic:
//
//   - direction optimization: push over a sparse frontier, pull when dense;
//   - Sync mode (two value arrays, DO-LP-style) vs Async mode (one unified
//     array, Thrifty-style) — making the unified-arrays ⇔ asynchronous
//     execution correspondence measurable (compare Result.Iterations);
//   - seed planting (Zero Planting generalized: seeds carry the smallest
//     values, placed wherever the caller's structural knowledge says);
//   - an optional initial push from the seeds (Initial Push generalized);
//   - floor convergence (Zero Convergence generalized): a vertex whose
//     value equals Floor can never improve and is skipped, and pull scans
//     abort when the candidate reaches Floor.
//
// Connected components and BFS hop distances are provided as instances; any
// other (min, monotone-EdgeFn) propagation fits the same engine.
package spmv

import (
	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/parallel"
	"thriftylp/internal/worklist"
)

// Unreached is the neutral initial value for programs whose vertices start
// with "no value" (e.g. BFS distance).
const Unreached = ^uint32(0)

// Program specifies one min-propagation computation.
type Program struct {
	// Init supplies vertex v's initial value. Required.
	Init func(v uint32) uint32
	// EdgeFn transforms a value as it crosses an edge. It must be monotone
	// non-decreasing (x <= y ⇒ EdgeFn(x) <= EdgeFn(y)) and satisfy
	// EdgeFn(x) >= min-value-reachable so the fixed point exists. Identity
	// for CC; saturating +1 for hop distance. Required.
	EdgeFn func(x uint32) uint32
	// Floor is the smallest value any vertex can hold; a vertex at Floor is
	// converged (skipped in pulls), and a pull scan short-circuits when its
	// candidate hits Floor AND EdgeFn(Floor) == Floor (otherwise only the
	// skip applies). 0 for CC-with-planting; 0 works for BFS too (only the
	// root holds it).
	Floor uint32
	// Seeds are (vertex, value) overrides applied after Init — the
	// generalized planting.
	Seeds []Seed
	// InitialPush runs one push iteration from the seed set before the
	// first pull — the generalized Initial Push. If false, every vertex is
	// initially active (DO-LP-style bootstrap).
	InitialPush bool
	// Async selects the unified (single-array) engine; false selects the
	// synchronous two-array engine.
	Async bool
	// Threshold is the push/pull density threshold (0 → 0.01).
	Threshold float64
}

// Seed plants a value on a vertex before iteration starts.
type Seed struct {
	Vertex uint32
	Value  uint32
}

// Result carries the fixed point and iteration telemetry.
type Result struct {
	Values     []uint32
	Iterations int
	PushIters  int
	PullIters  int
}

// Run executes the program on g using the default worker pool.
func Run(g *graph.Graph, p Program) Result {
	return RunOn(g, p, parallel.Default())
}

// RunOn executes the program on g with an explicit pool.
func RunOn(g *graph.Graph, p Program, pool *parallel.Pool) Result {
	n := g.NumVertices()
	res := Result{Values: make([]uint32, n)}
	if n == 0 {
		return res
	}
	threshold := p.Threshold
	if threshold <= 0 {
		threshold = 0.01
	}
	m := g.NumDirectedEdges()
	if m == 0 {
		m = 1
	}
	values := res.Values
	parallel.Fill(pool, values, func(i int) uint32 { return p.Init(uint32(i)) })
	for _, s := range p.Seeds {
		values[s.Vertex] = s.Value
	}

	// shadow is the previous-iteration array for Sync mode.
	var shadow []uint32
	if !p.Async {
		shadow = make([]uint32, n)
		parallel.Copy(pool, shadow, values)
	}

	threads := pool.Threads()
	cur := worklist.New(n, threads)
	next := worklist.New(n, threads)
	floorShortcut := p.EdgeFn(p.Floor) == p.Floor

	var activeV, activeE int64
	haveFrontier := false
	didFullSweep := false

	if p.InitialPush {
		for _, s := range p.Seeds {
			cur.Add(0, s.Vertex)
		}
		activeV, activeE = pushIter(g, p, pool, values, cur, next)
		cur, next = next, cur
		next.Reset()
		res.Iterations++
		res.PushIters++
		haveFrontier = true
		if !p.Async {
			parallel.Copy(pool, shadow, values)
		}
	} else {
		activeV, activeE = int64(n), m
	}

	maxIters := 2*n + 16
	// do-while semantics: at least one full sweep runs even if the initial
	// push changed nothing (a seed whose edges are all self-loops), so
	// every vertex is compared with its neighbours at least once.
	for (activeV > 0 || !didFullSweep) && res.Iterations < maxIters {
		density := float64(activeV+activeE) / float64(m)
		switch {
		case didFullSweep && density < threshold && haveFrontier:
			activeV, activeE = pushIter(g, p, pool, values, cur, next)
			cur, next = next, cur
			next.Reset()
			res.PushIters++
		case didFullSweep && density < threshold && !haveFrontier:
			cur.Reset()
			activeV, activeE = pullIter(g, p, pool, values, shadow, floorShortcut, cur, true)
			haveFrontier = true
			res.PullIters++
		default:
			activeV, activeE = pullIter(g, p, pool, values, shadow, floorShortcut, nil, false)
			haveFrontier = false
			didFullSweep = true
			res.PullIters++
		}
		res.Iterations++
		if !p.Async {
			parallel.Copy(pool, shadow, values)
		}
	}
	return res
}

// pushIter propagates values from the frontier with atomic-min. In Sync
// mode pushes read the shadow (previous-iteration) value of the source, so
// a value cannot travel multiple hops within one iteration.
func pushIter(g *graph.Graph, p Program, pool *parallel.Pool, values []uint32, cur, next *worklist.Set) (int64, int64) {
	var av, ae int64
	pool.MustRun(func(tid int) {
		var lv, le int64
		cur.Drain(tid, func(v uint32) {
			x := atomicx.LoadUint32(&values[v])
			out := p.EdgeFn(x)
			for _, u := range g.Neighbors(v) {
				if atomicx.MinUint32(&values[u], out) {
					wasNew := !next.Contains(u)
					next.Add(tid, u)
					if wasNew {
						lv++
						le += int64(g.Degree(u))
					}
				}
			}
		})
		atomicx.AddInt64(&av, lv)
		atomicx.AddInt64(&ae, le)
	})
	return av, ae
}

// pullIter runs one pull sweep. In Async mode neighbour values are read
// from the live array; in Sync mode from the shadow array. Floor-converged
// vertices are skipped, and the scan aborts early when the candidate
// reaches the floor (if the floor is a fixed point of EdgeFn).
func pullIter(g *graph.Graph, p Program, pool *parallel.Pool, values, shadow []uint32, floorShortcut bool, fr *worklist.Set, record bool) (int64, int64) {
	n := g.NumVertices()
	read := values
	if shadow != nil {
		read = shadow
	}
	var av, ae int64
	parallel.For(pool, n, 2048, func(tid, lo, hi int) {
		var lv, le int64
		for v := lo; v < hi; v++ {
			own := atomicx.LoadUint32(&values[v])
			if own == p.Floor {
				continue
			}
			cand := own
			for _, u := range g.Neighbors(uint32(v)) {
				var x uint32
				if shadow != nil {
					x = read[u]
				} else {
					x = atomicx.LoadUint32(&values[u])
				}
				if y := p.EdgeFn(x); y < cand {
					cand = y
					if floorShortcut && cand == p.Floor {
						break
					}
				}
			}
			if cand < own {
				atomicx.StoreUint32(&values[v], cand)
				lv++
				le += int64(g.Degree(uint32(v)))
				if record {
					fr.Add(tid, uint32(v))
				}
			}
		}
		atomicx.AddInt64(&av, lv)
		atomicx.AddInt64(&ae, le)
	})
	return av, ae
}
