package harness

import (
	"fmt"

	"thriftylp/cc"
	"thriftylp/internal/dist"
	"thriftylp/internal/spmv"
)

// The experiments in this file go beyond the paper's evaluation section:
// finer-grained ablations of Thrifty's design choices (DESIGN.md §4 calls
// these out), the §VII future-work direction (distributed processing), and
// a thread-scaling sweep replacing the paper's two-architecture comparison.

// ExpAblations decomposes Thrifty's techniques one switch at a time, an
// extension of Fig 9/10's two-way split: full Thrifty vs no-initial-push vs
// structure-oblivious planting (vertex 0) vs eager frontier bookkeeping vs
// the DO-LP endpoints.
func ExpAblations(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "ablations",
		Title:   "Per-technique ablation of Thrifty (ms; extension experiment)",
		Columns: []string{"Dataset", "Thrifty", "no-initial-push", "plant-at-v0", "eager-frontier", "dynamic-sched", "DO-LP+Unified", "DO-LP"},
		Notes: []string{
			"Each column disables exactly one design choice; DO-LP+Unified and DO-LP are the Fig 9/10 endpoints.",
		},
	}
	type variant struct {
		algo cc.Algorithm
		opts []cc.Option
	}
	variants := []variant{
		{cc.AlgoThrifty, nil},
		{cc.AlgoThrifty, []cc.Option{cc.WithoutInitialPush()}},
		{cc.AlgoThrifty, []cc.Option{cc.WithPlantVertex(0)}},
		{cc.AlgoThrifty, []cc.Option{cc.WithEagerPullFrontier()}},
		{cc.AlgoThrifty, []cc.Option{cc.WithDynamicScheduling()}},
		{cc.AlgoDOLPUnified, nil},
		{cc.AlgoDOLP, nil},
	}
	for _, d := range SkewedSuite(cfg.scale()) {
		g, err := BuildCached(cfg.scale(), d)
		if err != nil {
			return nil, err
		}
		row := []interface{}{d.Name}
		for _, v := range variants {
			dur, _, err := TimeAlgorithm(v.algo, g, cfg, v.opts...)
			if err != nil {
				return nil, err
			}
			row = append(row, Millis(dur))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExpDistributed measures the sharded out-of-core pipeline (internal/dist
// driving internal/shard): exchange rounds and compacted vs naive boundary
// traffic across shard counts, on a hub-heavy and a high-diameter dataset.
func ExpDistributed(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "dist",
		Title:   "Sharded out-of-core CC: compacted boundary exchange vs naive (extension experiment)",
		Columns: []string{"Dataset", "Shards", "Rounds", "Boundary", "Exchanged B", "Naive B", "Suppressed"},
		Notes: []string{
			"Per-shard interior Thrifty solves, then compacted boundary-label exchange (delta-only emission, zero-convergence suppression, varint deltas); Naive is the same boundary at 8 flat bytes per entry every round.",
		},
	}
	for _, name := range []string{"social-twitter", "web-uk"} {
		d, err := FindDataset(cfg.scale(), name)
		if err != nil {
			return nil, err
		}
		g, err := BuildCached(cfg.scale(), d)
		if err != nil {
			return nil, err
		}
		oracle := cc.Sequential(g)
		for _, shards := range []int{2, 4, 8, 16} {
			res, err := dist.Run(g, dist.Config{Shards: shards})
			if err != nil {
				return nil, err
			}
			if !cc.Equivalent(res.Labels, oracle) {
				return nil, fmt.Errorf("dist run shards=%d wrong partition", shards)
			}
			t.AddRow(d.Name, shards, res.Rounds, res.BoundaryEntries,
				res.ExchangedBytes, res.NaiveBytes, res.SuppressedVertices)
		}
	}
	return t, nil
}

// ExpConnectIt fills the comparison the paper could not run (§VI: "We
// attempted to evaluate ConnectIt but its code repository ... could not be
// compiled"): Afforest vs two ConnectIt framework points vs Thrifty.
func ExpConnectIt(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "connectit",
		Title:   "ConnectIt-style sampling variants vs Afforest vs Thrifty (ms; extension)",
		Columns: []string{"Dataset", "Afforest", "ConnectIt-kout", "ConnectIt-BFS", "Thrifty"},
		Notes: []string{
			"k-out and BFS sampling are two points of the ConnectIt framework; all union-find columns share the Afforest-style skip-the-giant finish.",
		},
	}
	algos := []cc.Algorithm{cc.AlgoAfforest, cc.AlgoConnectItKOut, cc.AlgoConnectItBFS, cc.AlgoThrifty}
	for _, d := range SkewedSuite(cfg.scale()) {
		g, err := BuildCached(cfg.scale(), d)
		if err != nil {
			return nil, err
		}
		row := []interface{}{d.Name}
		for _, a := range algos {
			dur, _, err := TimeAlgorithm(a, g, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, Millis(dur))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExpAsync measures the §VII correspondence between the Unified Labels
// Array and asynchronous execution on the generic SpMV engine
// (internal/spmv): iterations of the synchronous (two-array) vs
// asynchronous (unified-array) engine for CC and for BFS hop distance.
func ExpAsync(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "async",
		Title:   "Sync vs async min-propagation on the generic SpMV engine (iterations; extension)",
		Columns: []string{"Dataset", "CC sync", "CC async", "BFS sync", "BFS async"},
		Notes: []string{
			"Async (unified array) lets values travel multiple hops per sweep; the iteration gap is the paper's unified-arrays ⇔ asynchronous-execution link (§VII).",
		},
	}
	for _, d := range Suite(cfg.scale()) {
		g, err := BuildCached(cfg.scale(), d)
		if err != nil {
			return nil, err
		}
		ccSync := spmv.CC(g, false)
		ccAsync := spmv.CC(g, true)
		root := g.MaxDegreeVertex()
		bfsSync := spmv.HopDistance(g, root, false)
		bfsAsync := spmv.HopDistance(g, root, true)
		t.AddRow(d.Name, ccSync.Iterations, ccAsync.Iterations, bfsSync.Iterations, bfsAsync.Iterations)
	}
	return t, nil
}

// ExpScaling sweeps worker-pool sizes, the stand-in for the paper's
// SkylakeX-vs-Epyc dimension: on a multicore host it shows each algorithm's
// scalability; on a single-core host it shows the (small) overhead of
// spawning idle workers.
func ExpScaling(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "scaling",
		Title:   "Thread scaling (ms; extension experiment replacing the 2-architecture comparison)",
		Columns: []string{"Dataset", "Algorithm", "1 thread", "2", "4", "8"},
		Notes: []string{
			"The paper's cross-architecture claim is ranking stability; rankings here are work-driven and thread-count independent.",
		},
	}
	threadCounts := []int{1, 2, 4, 8}
	for _, name := range []string{"social-twitter", "road-gb"} {
		d, err := FindDataset(cfg.scale(), name)
		if err != nil {
			return nil, err
		}
		g, err := BuildCached(cfg.scale(), d)
		if err != nil {
			return nil, err
		}
		for _, a := range []cc.Algorithm{cc.AlgoThrifty, cc.AlgoAfforest, cc.AlgoDOLP} {
			row := []interface{}{name, string(a)}
			for _, tc := range threadCounts {
				c2 := cfg
				c2.Threads = tc
				dur, _, err := TimeAlgorithm(a, g, c2)
				if err != nil {
					return nil, err
				}
				row = append(row, Millis(dur))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
