// Package counters provides the software event instrumentation that stands
// in for the paper's PAPI hardware counters (Fig 6) and per-iteration
// telemetry (Fig 3, Fig 7/8, Tables V-VII). Counts are kept per thread in
// cache-line-padded slots and aggregated on demand, so instrumented runs
// perturb timing as little as possible; algorithms accumulate per-chunk
// subtotals locally and flush once per chunk.
//
// Substitution note (see DESIGN.md §5): hardware LLC misses, memory
// accesses, branch mispredictions and retired instructions are replaced by
// software counts of the same logical events — distinct labels-array cache
// lines touched, label loads+stores, data-dependent branch evaluations, and
// edge traversals + vertex visits respectively. The paper's Fig 6 claim is a
// ≥80% reduction in each, which is a statement about eliminated work, and
// work elimination is exactly what these software counts measure.
package counters

import "thriftylp/internal/atomicx"

// Event identifies one counted event class.
type Event int

const (
	// EdgesProcessed counts edge traversals: each time an algorithm reads
	// one neighbour of one vertex. This is the paper's "processed edges"
	// metric (Fig 5) and, together with VertexVisits, the instruction proxy.
	EdgesProcessed Event = iota
	// VertexVisits counts vertices examined (frontier pops and pull-loop
	// vertex visits).
	VertexVisits
	// LabelLoads counts reads of the labels array(s) — the dominant memory
	// traffic of label propagation.
	LabelLoads
	// LabelStores counts writes to the labels array(s), including failed
	// atomic-min attempts' CAS writes.
	LabelStores
	// CASOps counts compare-and-swap attempts (successful or not).
	CASOps
	// BranchChecks counts data-dependent branch evaluations (frontier
	// membership tests, label comparisons, convergence checks) — the branch
	// misprediction proxy.
	BranchChecks
	// CacheLines counts distinct labels-array cache lines touched, summed
	// over iterations — the LLC miss proxy. Maintained via LineTracker.
	CacheLines

	numEvents
)

// String returns a short human-readable event name.
func (e Event) String() string {
	switch e {
	case EdgesProcessed:
		return "edges"
	case VertexVisits:
		return "vertex-visits"
	case LabelLoads:
		return "label-loads"
	case LabelStores:
		return "label-stores"
	case CASOps:
		return "cas-ops"
	case BranchChecks:
		return "branch-checks"
	case CacheLines:
		return "cache-lines"
	}
	return "unknown"
}

// Events lists all event classes in declaration order.
func Events() []Event {
	evs := make([]Event, numEvents)
	for i := range evs {
		evs[i] = Event(i)
	}
	return evs
}

// slot is one thread's counter block, padded to its own cache lines.
type slot struct {
	v [numEvents]int64
	_ [8]int64
}

// Counters accumulates event counts per thread. A nil *Counters is valid and
// all methods are no-ops on it, so algorithms can carry an optional counter
// without branching at call sites.
type Counters struct {
	slots []slot
}

// New creates a Counters with the given number of thread slots.
func New(threads int) *Counters {
	if threads <= 0 {
		threads = 1
	}
	return &Counters{slots: make([]slot, threads)}
}

// Enabled reports whether c collects counts (i.e., is non-nil).
func (c *Counters) Enabled() bool { return c != nil }

// Add adds n occurrences of event e on behalf of thread tid. A tid beyond
// the slot count folds into an existing slot (atomically, so sharing stays
// correct): totals are exact either way, the fold only costs contention, so
// a Counters sized for fewer threads than the executing pool degrades
// gracefully instead of failing.
func (c *Counters) Add(tid int, e Event, n int64) {
	if c == nil {
		return
	}
	if tid >= len(c.slots) || tid < 0 {
		tid = 0
	}
	atomicx.AddInt64(&c.slots[tid].v[e], n)
}

// Total returns the sum of event e across all threads.
func (c *Counters) Total(e Event) int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.slots {
		t += atomicx.LoadInt64(&c.slots[i].v[e])
	}
	return t
}

// Snapshot returns totals for all events.
func (c *Counters) Snapshot() map[Event]int64 {
	m := make(map[Event]int64, numEvents)
	if c == nil {
		return m
	}
	for _, e := range Events() {
		m[e] = c.Total(e)
	}
	return m
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	for i := range c.slots {
		for e := range c.slots[i].v {
			atomicx.StoreInt64(&c.slots[i].v[e], 0)
		}
	}
}

// Threads returns the number of thread slots (0 for nil).
func (c *Counters) Threads() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}
