package stats

import (
	"math"
	"testing"
	"time"

	"thriftylp/graph/gen"
)

func TestProbeEmptyGraph(t *testing.T) {
	p := ProbeGraph(mustGraph(gen.Empty(0)), ProbeOptions{})
	if p.Vertices != 0 || p.SampleSize != 0 {
		t.Fatalf("empty probe: %+v", p)
	}
	if math.IsNaN(p.SkewRatio) || math.IsNaN(p.MeanDegree) {
		t.Fatalf("empty probe produced NaN: %+v", p)
	}
}

func TestProbeExactFieldsOnStar(t *testing.T) {
	// Star(1001): hub degree 1000, 2000 directed slots. The hub holds half
	// of all slots — the signature the selector uses to spot star-like
	// graphs.
	p := ProbeGraph(mustGraph(gen.Star(1001)), ProbeOptions{})
	if p.MaxDegree != 1000 {
		t.Fatalf("MaxDegree = %d", p.MaxDegree)
	}
	if math.Abs(p.HubEdgeFraction-0.5) > 1e-9 {
		t.Fatalf("HubEdgeFraction = %v, want 0.5", p.HubEdgeFraction)
	}
	if p.SkewRatio < 100 {
		t.Fatalf("SkewRatio = %v, want extreme", p.SkewRatio)
	}
}

func TestProbeExhaustiveOnSmallGraph(t *testing.T) {
	// Graphs no bigger than the sample budget are probed exhaustively, so
	// sampled estimates equal the exact full-scan statistics.
	g := mustGraph(gen.Grid(gen.GridConfig{Rows: 20, Cols: 20}))
	p := ProbeGraph(g, ProbeOptions{})
	full := Degrees(g)
	if p.SampleSize != 400 || p.SampleCoverage != 1 {
		t.Fatalf("coverage: %+v", p)
	}
	if math.Abs(p.SampleMeanDegree-full.Mean) > 1e-9 {
		t.Fatalf("sampled mean %v != exact %v", p.SampleMeanDegree, full.Mean)
	}
	if p.SampleP99 != full.P99 {
		t.Fatalf("sampled p99 %d != exact %d", p.SampleP99, full.P99)
	}
	// A connected grid's k-out hint must report one dominant cluster.
	if p.LargestSampleComponent < 0.9 {
		t.Fatalf("grid LargestSampleComponent = %v, want ~1", p.LargestSampleComponent)
	}
}

func TestProbeConnectivityHintFragmented(t *testing.T) {
	// 7 disjoint 13-cliques: the k-out hint must see 7 equal clusters.
	p := ProbeGraph(mustGraph(gen.Components(7, 13)), ProbeOptions{})
	if p.SampleCoverage < 0.5 {
		t.Fatalf("fixture unexpectedly larger than sample budget: %+v", p)
	}
	want := 13.0 / 91.0
	if math.Abs(p.LargestSampleComponent-want) > 1e-9 {
		t.Fatalf("LargestSampleComponent = %v, want %v", p.LargestSampleComponent, want)
	}
}

func TestProbeSkipsConnectivityHintOnLargeGraphs(t *testing.T) {
	// A sparse sample of a large graph is vacuously fragmented; the hint
	// must be absent (0) rather than misleading.
	g := mustGraph(gen.ErdosRenyi(1<<15, 1<<17, 9))
	p := ProbeGraph(g, ProbeOptions{})
	if p.SampleCoverage >= 0.5 {
		t.Fatalf("coverage = %v, want sparse", p.SampleCoverage)
	}
	if p.LargestSampleComponent != 0 || p.EdgeSamples != 0 {
		t.Fatalf("hint populated on sparse sample: %+v", p)
	}
}

func TestProbeDeterministic(t *testing.T) {
	g := mustGraph(gen.RMATCompact(gen.DefaultRMAT(14, 8, 5)))
	a := ProbeGraph(g, ProbeOptions{})
	b := ProbeGraph(g, ProbeOptions{})
	a.Cost, b.Cost = 0, 0
	if a != b {
		t.Fatalf("probe not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestProbeSkewAgreesWithFullScan(t *testing.T) {
	// The probe's O(1) skew classification must agree with the full-scan
	// IsSkewed split on the suite's canonical families.
	rmat := mustGraph(gen.RMATCompact(gen.DefaultRMAT(14, 16, 21)))
	if p := ProbeGraph(rmat, ProbeOptions{}); p.SkewRatio < 20 {
		t.Fatalf("rmat probe skew = %v, want >= 20", p.SkewRatio)
	}
	road := mustGraph(gen.Road(100000, 21))
	if p := ProbeGraph(road, ProbeOptions{}); p.SkewRatio >= 20 {
		t.Fatalf("road probe skew = %v, want < 20", p.SkewRatio)
	}
}

func TestProbeIsCheap(t *testing.T) {
	// The whole point: probing a medium graph must cost microseconds, not a
	// traversal. Allow a generous bound to stay robust on loaded CI boxes.
	g := mustGraph(gen.RMATCompact(gen.DefaultRMAT(16, 16, 42)))
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 5; i++ {
		p := ProbeGraph(g, ProbeOptions{})
		if p.Cost < best {
			best = p.Cost
		}
	}
	if best > 5*time.Millisecond {
		t.Fatalf("probe cost %v, want well under 5ms", best)
	}
}
