package spmv

import "thriftylp/graph"

// CC instantiates Thrifty-style connected components on the generic engine:
// Init v+1, the 0 label planted on the hub, identity EdgeFn, floor 0, an
// initial push, and async (unified-array) execution. Its partition matches
// internal/core.Thrifty exactly; it exists to validate the engine and to
// measure the generalized optimizations against the hand-written kernel.
func CC(g *graph.Graph, async bool) Result {
	if g.NumVertices() == 0 {
		return Result{Values: []uint32{}}
	}
	hub := g.MaxDegreeVertex()
	return Run(g, Program{
		Init:        func(v uint32) uint32 { return v + 1 },
		EdgeFn:      func(x uint32) uint32 { return x },
		Floor:       0,
		Seeds:       []Seed{{Vertex: hub, Value: 0}},
		InitialPush: true,
		Async:       async,
	})
}

// HopDistance computes BFS hop distances from root on the same engine:
// Init Unreached, the root seeded at 0, saturating-increment EdgeFn.
// Unreachable vertices keep Unreached. Async mode lets a distance travel
// multiple hops within one sweep — the asynchronous-execution effect the
// paper's future work asks about; compare Iterations against sync mode.
func HopDistance(g *graph.Graph, root uint32, async bool) Result {
	return Run(g, Program{
		Init: func(v uint32) uint32 { return Unreached },
		EdgeFn: func(x uint32) uint32 {
			if x == Unreached {
				return Unreached
			}
			return x + 1
		},
		Floor:       0,
		Seeds:       []Seed{{Vertex: root, Value: 0}},
		InitialPush: true,
		Async:       async,
	})
}
