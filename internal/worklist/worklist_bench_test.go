package worklist

import (
	"sync"
	"testing"
)

func BenchmarkAddDedup(b *testing.B) {
	s := New(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(0, uint32(i&(1<<20-1)))
	}
}

func BenchmarkDrainOwn(b *testing.B) {
	const items = 1 << 16
	s := New(items, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.Reset()
		for v := 0; v < items; v++ {
			s.Add(0, uint32(v))
		}
		b.StartTimer()
		n := 0
		s.Drain(0, func(uint32) { n++ })
		if n != items {
			b.Fatalf("drained %d", n)
		}
	}
}

// BenchmarkDrainStealing measures cross-thread consumption: one producer
// list drained by 4 concurrent consumers.
func BenchmarkDrainStealing(b *testing.B) {
	const items = 1 << 16
	s := New(items, 4)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.Reset()
		for v := 0; v < items; v++ {
			s.Add(0, uint32(v))
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for tid := 0; tid < 4; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				s.Drain(tid, func(uint32) {})
			}(tid)
		}
		wg.Wait()
	}
}
