//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly || solaris)

package graph

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapBytes(b []byte) error { return nil }
