package clitest

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"thriftylp/internal/obs"
)

// TestThriftyccTrace checks the -trace JSONL artifact: one record per
// iteration with monotone iteration ids, matching the iteration count the
// run reported on stdout.
func TestThriftyccTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := run(t, "thriftycc", "-gen", "rmat:12:8", "-algo", "thrifty", "-trace", tracePath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}

	m := regexp.MustCompile(`(\d+) iterations`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no iteration count on stdout:\n%s", out)
	}
	iterations, _ := strconv.Atoi(m[1])

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != iterations {
		t.Fatalf("trace has %d records, stdout reported %d iterations", len(recs), iterations)
	}
	for i, rec := range recs {
		if rec.Iter != i {
			t.Errorf("record %d has iter %d, want monotone ids", i, rec.Iter)
		}
		if rec.Schema != obs.TraceSchema {
			t.Errorf("record %d schema = %q", i, rec.Schema)
		}
		if rec.Algo != "thrifty" || rec.Dataset != "rmat:12:8" || rec.Run != 0 {
			t.Errorf("record %d identity = %q/%q/%d", i, rec.Algo, rec.Dataset, rec.Run)
		}
		if rec.Kind == "" || rec.DurationNs <= 0 {
			t.Errorf("record %d missing kind/duration: %+v", i, rec)
		}
	}
	// The first iteration is Thrifty's initial push from the max-degree hub.
	if recs[0].Kind != "initial-push" || recs[0].Active != 1 {
		t.Errorf("first record = %+v, want initial-push from one vertex", recs[0])
	}
}

// TestThriftyccTraceMultiRep: every repetition is traced, stamped with its
// run index.
func TestThriftyccTraceMultiRep(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := run(t, "thriftycc", "-gen", "er:400:800", "-algo", "thrifty", "-reps", "3", "-trace", tracePath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	runs := map[int]int{}
	for _, rec := range recs {
		runs[rec.Run]++
	}
	if len(runs) != 3 {
		t.Fatalf("trace covers runs %v, want 3 distinct run ids", runs)
	}
	if runs[0] != runs[1] || runs[1] != runs[2] {
		t.Errorf("deterministic reruns should trace identical iteration counts, got %v", runs)
	}
}

// TestThriftyccHTTPMetrics runs thriftycc with -http and -hold, scrapes
// /metrics while the process holds, and checks the exported event counter
// matches the instrumented event total printed on stdout.
func TestThriftyccHTTPMetrics(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "thriftycc"),
		"-gen", "rmat:12:8", "-algo", "thrifty", "-instrument",
		"-http", "127.0.0.1:0", "-hold")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // interleave; we only parse known stdout lines
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGINT)
		cmd.Wait()
	}()

	// Parse stdout until the run has finished (the "holding" line) — by then
	// the URL and the instrumented event totals have been printed.
	var url string
	var wantEdges int64 = -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if m := regexp.MustCompile(`debug server listening on (\S+)`).FindStringSubmatch(line); m != nil {
			url = m[1]
		}
		if m := regexp.MustCompile(`events: edges=(\d+)`).FindStringSubmatch(line); m != nil {
			wantEdges, _ = strconv.ParseInt(m[1], 10, 64)
		}
		if strings.Contains(line, "holding for debug server") {
			break
		}
	}
	if url == "" || wantEdges < 0 {
		t.Fatalf("stdout missing listen URL (%q) or events line (edges=%d)", url, wantEdges)
	}

	body := curl(t, url+"/metrics")
	gotEdges, ok := scrapeMetric(body, "thriftylp_events_edges_total")
	if !ok {
		t.Fatalf("thriftylp_events_edges_total missing from /metrics:\n%s", body)
	}
	if gotEdges != wantEdges {
		t.Errorf("/metrics edges = %d, stdout events line says %d", gotEdges, wantEdges)
	}
	if runs, ok := scrapeMetric(body, "thriftylp_runs_total"); !ok || runs != 1 {
		t.Errorf("thriftylp_runs_total = %d (present=%v), want 1", runs, ok)
	}
	if owned, ok := scrapeMetric(body, "thriftylp_sched_partitions_owned_total"); !ok || owned <= 0 {
		t.Errorf("thriftylp_sched_partitions_owned_total = %d (present=%v), want > 0", owned, ok)
	}

	// pprof must be live on the same mux.
	resp, err := http.Get(url + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	// SIGINT must release the hold and exit zero.
	cmd.Process.Signal(syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("exit after SIGINT: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Errorf("process did not exit after SIGINT")
	}
}

func curl(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// scrapeMetric pulls one un-labelled counter value out of Prometheus text.
func scrapeMetric(body, name string) (int64, bool) {
	for _, line := range strings.Split(body, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v, true
		}
	}
	return 0, false
}

// TestCcbenchTraceRequiresJSON: -trace is only meaningful for the regression
// suite, so bare usage must fail fast.
func TestCcbenchTraceRequiresJSON(t *testing.T) {
	out, err := run(t, "ccbench", "-trace", "t.jsonl", "-exp", "table1")
	if err == nil {
		t.Fatalf("-trace without -json accepted:\n%s", out)
	}
	if !strings.Contains(out, "requires -json") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}

// TestGraphgenSummary: generation prints the degree-skew summary.
func TestGraphgenSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.bin")
	out, err := run(t, "graphgen", "-gen", "ba:2000:4", "-o", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"vertices", "edges", "max degree", "skew", "power-law"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
