//go:build !linux

package graph

// ResidentBytes reports mmap residency on platforms with mincore support;
// this stub reports "unmeasurable" everywhere else so callers degrade to
// publishing only the mapping size.
func (g *Graph) ResidentBytes() (int64, bool) { return 0, false }
