// Package dirty exercises dirhygiene: every directive below is either
// fine where it is or flagged for being unknown, misplaced, reasonless,
// or stale.
package dirty

// Padded on a struct type's doc: fine.
//
//thrifty:padded
type Slot struct {
	n   int64
	pad [56]byte
}

/* want "misplaced //thrifty:padded: it only works in a struct type's doc comment" */ //thrifty:padded
func notAType() {}

// Hotpath in a function's doc: fine.
//
//thrifty:hotpath
func kernel(dst, src []uint32) {
	copy(dst, src)
}

/* want "unknown directive //thrifty:hotpth" */ //thrifty:hotpth
func typo() {}

func stray() {
	/* want "misplaced //thrifty:hotpath: it only works in a function's doc comment" */ //thrifty:hotpath
	_ = 1
}

//thrifty:goroutine serves until process exit
func spawns(ch chan int) {
	go func() { ch <- 1 }()
}

/* want "stale //thrifty:goroutine: spawnless contains no go statement" */ //thrifty:goroutine nothing spawns here
func spawnless() {}

func lineLevel(ch chan int) {
	//thrifty:goroutine drains one value then exits
	go func() { ch <- 1 }()

	/* want "stale //thrifty:goroutine: no go statement on this line or the next" */ //thrifty:goroutine no spawn follows
	_ = 2
}

func reasonless(ch chan int) {
	/* want "//thrifty:goroutine needs a reason: without one the goroleak check ignores it" */ //thrifty:goroutine
	go func() { ch <- 1 }()
}

var counter int64

func racy() {
	counter++ //thrifty:benign-race monotonic telemetry counter, torn reads acceptable
}

/* want "//thrifty:benign-race needs a reason: without one the benignrace check ignores it" */ //thrifty:benign-race
var floating int64

/* want "stale //thrifty:benign-race: not in a function's doc comment or body" */ //thrifty:benign-race this annotates nothing
var alsoFloating int64
