package graph

import (
	"fmt"
	"slices"
	"thriftylp/internal/atomicx"

	"thriftylp/internal/parallel"
)

// maxVertexID is the reserved top of the uint32 id space. Ids must stay
// strictly below it: several consumers compute id+1 — Thrifty's planted
// labels (v+1) and the degree-count indexing below (deg[e.U+1]) — and a
// vertex numbered MaxUint32 would silently wrap those to 0.
const maxVertexID = ^uint32(0)

// BuildOption configures BuildUndirected.
type BuildOption func(*buildConfig)

type buildConfig struct {
	numVertices int
	dedup       bool
	dropLoops   bool
	sortAdj     bool
	legacyBuild bool
	pool        *parallel.Pool
}

// WithNumVertices fixes the vertex count instead of inferring max-id+1.
// Ids in edges must be < n.
func WithNumVertices(n int) BuildOption {
	return func(c *buildConfig) { c.numVertices = n }
}

// WithDedup removes duplicate edges (parallel edges collapse to one). It
// implies sorted adjacency lists.
func WithDedup() BuildOption {
	return func(c *buildConfig) { c.dedup = true; c.sortAdj = true }
}

// WithoutSelfLoops drops self-loop edges during construction.
func WithoutSelfLoops() BuildOption {
	return func(c *buildConfig) { c.dropLoops = true }
}

// WithSortedAdjacency sorts each vertex's neighbour list ascending.
func WithSortedAdjacency() BuildOption {
	return func(c *buildConfig) { c.sortAdj = true }
}

// WithLegacyBuild forces the original atomic-cursor construction strategy.
// It needs no per-thread histograms, so it is the memory-frugal fallback for
// extreme vertex-to-edge ratios, and it serves as the frozen denominator in
// the ingestion benchmark suite (internal/harness measures the atomic-free
// pipeline against it).
func WithLegacyBuild() BuildOption {
	return func(c *buildConfig) { c.legacyBuild = true }
}

// WithBuildPool runs construction on the given worker pool instead of the
// process-wide default. The caller keeps ownership of the pool.
func WithBuildPool(p *parallel.Pool) BuildOption {
	return func(c *buildConfig) { c.pool = p }
}

// parallelBuildCutoff is the edge count below which the sequential counting
// sort wins over any parallel strategy (fork/join overhead dominates).
const parallelBuildCutoff = 1 << 15

// BuildUndirected constructs a CSR graph from an edge list. Each edge {U,V}
// with U≠V occupies two adjacency slots (U→V and V→U); a self-loop occupies
// one.
//
// Construction is parallel and atomic-free on the hot path: each worker
// counts degrees of a contiguous edge shard into a private histogram, the
// histograms are merged per vertex range into exclusive per-thread write
// cursors, the offsets array is produced by a parallel blocked prefix sum,
// and each worker scatters its own shard through its private cursors. The
// resulting adjacency layout is deterministic — identical to a sequential
// counting sort of the edge list — regardless of thread count. When the
// histograms would not pay for themselves (tiny inputs, single-thread pools,
// or pathological vertex-to-edge ratios) construction falls back to a
// sequential counting sort or to the legacy atomic-cursor strategy.
func BuildUndirected(edges []Edge, opts ...BuildOption) (*Graph, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	pool := cfg.pool
	if pool == nil {
		pool = parallel.Default()
	}

	n, err := resolveVertexCount(edges, &cfg, pool)
	if err != nil {
		return nil, err
	}

	var offsets []int64
	var adj []uint32
	switch {
	case cfg.legacyBuild:
		offsets, adj = buildCSRAtomic(edges, n, cfg.dropLoops, pool)
	case pool.Threads() == 1 || len(edges) < parallelBuildCutoff:
		offsets, adj = buildCSRSerial(edges, n, cfg.dropLoops)
	case !histogramFits(pool.Threads(), n, len(edges)):
		offsets, adj = buildCSRAtomic(edges, n, cfg.dropLoops, pool)
	default:
		offsets, adj = buildCSRHistogram(edges, n, cfg.dropLoops, pool)
	}

	g := &Graph{offsets: offsets, adj: adj}
	if cfg.sortAdj || cfg.dedup {
		sortAdjacency(g, pool)
	}
	if cfg.dedup {
		g = dedupCSR(g, pool)
	}
	if g.NumVertices() > 0 {
		g.computeMaxDegree(pool)
	}
	return g, nil
}

// resolveVertexCount returns the vertex count for the edge list: the
// configured count (validating every edge against it) or the inferred
// max-id+1.
func resolveVertexCount(edges []Edge, cfg *buildConfig, pool *parallel.Pool) (int, error) {
	n := cfg.numVertices
	if n == 0 {
		var maxID int64 = -1
		parallel.For(pool, len(edges), 1<<16, func(_, lo, hi int) {
			local := int64(-1)
			for _, e := range edges[lo:hi] {
				if int64(e.U) > local {
					local = int64(e.U)
				}
				if int64(e.V) > local {
					local = int64(e.V)
				}
			}
			for {
				cur := atomicx.LoadInt64(&maxID)
				if cur >= local || atomicx.CASInt64(&maxID, cur, local) {
					break
				}
			}
		})
		if maxID >= int64(maxVertexID) {
			return 0, fmt.Errorf("graph: vertex id %d is reserved (id space is [0,%d))", maxID, maxVertexID)
		}
		return int(maxID + 1), nil
	}
	if int64(n) > int64(maxVertexID) {
		return 0, fmt.Errorf("graph: %d vertices exceeds the id space [0,%d)", n, maxVertexID)
	}
	if i := firstViolation(pool, len(edges), func(i int) bool {
		return int(edges[i].U) >= n || int(edges[i].V) >= n
	}); i >= 0 {
		return 0, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", edges[i].U, edges[i].V, n)
	}
	return n, nil
}

// histogramFits reports whether the per-thread histogram strategy is safe
// and worthwhile: per-vertex cursors must fit int32 (guaranteed when the
// total directed slot count stays below 2^31), and threads×n histogram
// memory must stay within a small multiple of the edge array itself.
func histogramFits(threads, n, m int) bool {
	if int64(m) >= 1<<30 {
		return false
	}
	return int64(threads)*int64(n) <= 8*int64(m)+(1<<20)
}

// buildCSRSerial is a plain sequential counting sort — the layout reference
// for the deterministic parallel strategy, and the fastest path for small
// inputs.
func buildCSRSerial(edges []Edge, n int, dropLoops bool) ([]int64, []uint32) {
	offsets := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			if !dropLoops {
				offsets[e.U+1]++
			}
			continue
		}
		offsets[e.U+1]++
		offsets[e.V+1]++
	}
	for v := 1; v <= n; v++ {
		offsets[v] += offsets[v-1]
	}
	adj := make([]uint32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		if e.U == e.V {
			if !dropLoops {
				adj[cursor[e.U]] = e.V
				cursor[e.U]++
			}
			continue
		}
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	return offsets, adj
}

// buildCSRHistogram is the atomic-free parallel strategy. Edge shards are
// static and contiguous, so thread t's writes into any vertex's slot list
// come after all writes from threads < t and preserve shard-internal edge
// order — the layout is bit-identical to buildCSRSerial.
func buildCSRHistogram(edges []Edge, n int, dropLoops bool, pool *parallel.Pool) ([]int64, []uint32) {
	threads := pool.Threads()
	parts := parallel.PartitionVertices(len(edges), threads)
	hist := make([][]int32, threads)

	// Pass 1: private degree histograms, one contiguous edge shard each.
	pool.MustRun(func(tid int) {
		h := make([]int32, n)
		for _, e := range edges[parts[tid].Lo:parts[tid].Hi] {
			if e.U == e.V {
				if !dropLoops {
					h[e.U]++
				}
				continue
			}
			h[e.U]++
			h[e.V]++
		}
		hist[tid] = h //thrifty:benign-race per-thread histogram slot indexed by tid
	})

	// Merge by vertex range: hist[t][v] becomes thread t's exclusive write
	// cursor within v's slot list, offsets[v+1] the total degree.
	offsets := make([]int64, n+1)
	parallel.For(pool, n, 1<<14, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			var run int32
			for t := 0; t < threads; t++ {
				c := hist[t][v]
				hist[t][v] = run //thrifty:benign-race workers own disjoint vertex ranges of every hist row
				run += c
			}
			offsets[v+1] = int64(run) //thrifty:benign-race workers own disjoint vertex ranges of offsets
		}
	})
	parallel.PrefixSum(pool, offsets)

	// Pass 2: scatter through private cursors — no atomics, no sharing.
	adj := make([]uint32, offsets[n])
	pool.MustRun(func(tid int) {
		h := hist[tid]
		for _, e := range edges[parts[tid].Lo:parts[tid].Hi] {
			if e.U == e.V {
				if !dropLoops {
					adj[offsets[e.U]+int64(h[e.U])] = e.V //thrifty:benign-race private per-thread cursors make each adj slot exclusively owned
					h[e.U]++
				}
				continue
			}
			adj[offsets[e.U]+int64(h[e.U])] = e.V //thrifty:benign-race private per-thread cursors make each adj slot exclusively owned
			h[e.U]++
			adj[offsets[e.V]+int64(h[e.V])] = e.U //thrifty:benign-race private per-thread cursors make each adj slot exclusively owned
			h[e.V]++
		}
	})
	return offsets, adj
}

// buildCSRAtomic is the original strategy: degrees counted with atomic adds
// and slots filled through per-vertex atomic cursors. Slot order within a
// vertex is scheduling-dependent; memory overhead is one int64 cursor per
// vertex regardless of thread count.
func buildCSRAtomic(edges []Edge, n int, dropLoops bool, pool *parallel.Pool) ([]int64, []uint32) {
	deg := make([]int64, n+1) // deg[v+1] accumulates v's slot count
	parallel.For(pool, len(edges), 1<<16, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			if e.U == e.V {
				if !dropLoops {
					atomicx.AddInt64(&deg[e.U+1], 1)
				}
				continue
			}
			atomicx.AddInt64(&deg[e.U+1], 1)
			atomicx.AddInt64(&deg[e.V+1], 1)
		}
	})

	offsets := deg
	parallel.PrefixSum(pool, offsets)
	adj := make([]uint32, offsets[n])

	cursor := make([]int64, n)
	parallel.For(pool, n, 1<<16, func(_, lo, hi int) {
		copy(cursor[lo:hi], offsets[lo:hi])
	})
	parallel.For(pool, len(edges), 1<<16, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			if e.U == e.V {
				if !dropLoops {
					adj[atomicx.AddInt64(&cursor[e.U], 1)-1] = e.V //thrifty:benign-race slot index claimed by atomic fetch-add, so the write is exclusive
				}
				continue
			}
			adj[atomicx.AddInt64(&cursor[e.U], 1)-1] = e.V //thrifty:benign-race slot index claimed by atomic fetch-add, so the write is exclusive
			adj[atomicx.AddInt64(&cursor[e.V], 1)-1] = e.U //thrifty:benign-race slot index claimed by atomic fetch-add, so the write is exclusive
		}
	})
	return offsets, adj
}

// sortAdjacency sorts each vertex's neighbour list ascending, in parallel.
func sortAdjacency(g *Graph, pool *parallel.Pool) {
	parallel.For(pool, g.NumVertices(), 4096, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			slices.Sort(g.adj[g.offsets[v]:g.offsets[v+1]])
		}
	})
}

// dedupCSR rebuilds a graph with duplicate adjacency entries removed.
// Adjacency lists must already be sorted.
func dedupCSR(g *Graph, pool *parallel.Pool) *Graph {
	n := g.NumVertices()
	newOff := make([]int64, n+1)
	parallel.For(pool, n, 1<<14, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			l := g.Neighbors(uint32(v))
			cnt := int64(0)
			for i, u := range l {
				if i == 0 || u != l[i-1] {
					cnt++
				}
			}
			newOff[v+1] = cnt //thrifty:benign-race workers own disjoint vertex ranges of newOff
		}
	})
	parallel.PrefixSum(pool, newOff)
	newAdj := make([]uint32, newOff[n])
	parallel.For(pool, n, 1<<14, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			l := g.Neighbors(uint32(v))
			w := newOff[v]
			for i, u := range l {
				if i == 0 || u != l[i-1] {
					newAdj[w] = u //thrifty:benign-race cursor w walks a per-vertex slice owned by this worker's range
					w++
				}
			}
		}
	})
	return &Graph{offsets: newOff, adj: newAdj}
}

// RemoveIsolated returns a copy of g with zero-degree vertices removed and
// the surviving vertices renumbered densely, plus a mapping from new id to
// original id. The paper removes zero-degree vertices from all datasets
// "because of their destructive effect" on frontier density heuristics
// (§V-A). If g has no isolated vertices it is returned unchanged with an
// identity mapping of nil.
func RemoveIsolated(g *Graph) (*Graph, []uint32) {
	pool := parallel.Default()
	n := g.NumVertices()
	isolated := parallel.SumInt64(pool, n, 1<<16, func(lo, hi int) int64 {
		var c int64
		for v := lo; v < hi; v++ {
			if g.offsets[v+1] == g.offsets[v] {
				c++
			}
		}
		return c
	})
	if isolated == 0 {
		return g, nil
	}

	// Survivor numbering: per-block survivor counts, a sequential exclusive
	// prefix over the (few) blocks, then a parallel fill of both directions
	// of the mapping.
	m := n - int(isolated)
	blocks := parallel.PartitionVertices(n, pool.Threads()*8)
	base := make([]int64, len(blocks)+1)
	parallel.For(pool, len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			var c int64
			for v := blocks[b].Lo; v < blocks[b].Hi; v++ {
				if g.offsets[v+1] > g.offsets[v] {
					c++
				}
			}
			base[b+1] = c //thrifty:benign-race workers own disjoint block slots of base
		}
	})
	for b := 1; b <= len(blocks); b++ {
		base[b] += base[b-1]
	}
	newID := make([]uint32, n)
	origID := make([]uint32, m)
	offsets := make([]int64, m+1)
	parallel.For(pool, len(blocks), 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			next := uint32(base[b])
			for v := blocks[b].Lo; v < blocks[b].Hi; v++ {
				if g.offsets[v+1] > g.offsets[v] {
					newID[v] = next                                 //thrifty:benign-race workers own disjoint vertex blocks
					origID[next] = v                                //thrifty:benign-race next stays inside this block's base range
					offsets[next+1] = g.offsets[v+1] - g.offsets[v] //thrifty:benign-race next stays inside this block's base range
					next++
				}
			}
		}
	})
	parallel.PrefixSum(pool, offsets)

	adj := make([]uint32, offsets[m])
	parallel.For(pool, m, 1<<14, func(_, lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			w := offsets[nv]
			for _, u := range g.Neighbors(origID[nv]) {
				adj[w] = newID[u] //thrifty:benign-race cursor w walks this worker's vertex range of adj
				w++
			}
		}
	})
	ng := &Graph{offsets: offsets, adj: adj}
	if m > 0 {
		ng.computeMaxDegree(pool)
	}
	return ng, origID
}

// firstViolation returns the smallest i in [0, n) with bad(i), or -1. The
// scan is parallel; later chunks bail out once an earlier violation is on
// record, so the common all-good case is a full parallel sweep and the error
// case still reports the deterministic first offender.
func firstViolation(pool *parallel.Pool, n int, bad func(i int) bool) int {
	best := int64(n)
	parallel.For(pool, n, 1<<14, func(_, lo, hi int) {
		if int64(lo) >= atomicx.LoadInt64(&best) {
			return
		}
		for i := lo; i < hi; i++ {
			if bad(i) {
				for {
					cur := atomicx.LoadInt64(&best)
					if int64(i) >= cur || atomicx.CASInt64(&best, cur, int64(i)) {
						return
					}
				}
			}
		}
	})
	if best == int64(n) {
		return -1
	}
	return int(best)
}

// inDegreeHistogram counts, for each vertex, how many adjacency slots
// reference it (the in-degree). All ids in adj must be < n (callers check
// with validateStructure first). Counting is contention-free — per-thread
// int32 histograms over contiguous slot shards, merged per vertex, the same
// strategy as buildCSRHistogram — with the atomic fallback for inputs where
// the histograms would not pay for themselves.
func inDegreeHistogram(pool *parallel.Pool, adj []uint32, n int) []int64 {
	threads := pool.Threads()
	counts := make([]int64, n)
	if threads == 1 || len(adj) < parallelBuildCutoff {
		for _, u := range adj {
			counts[u]++
		}
		return counts
	}
	if !histogramFits(threads, n, len(adj)) {
		parallel.For(pool, len(adj), 1<<16, func(_, lo, hi int) {
			for _, u := range adj[lo:hi] {
				atomicx.AddInt64(&counts[u], 1)
			}
		})
		return counts
	}
	parts := parallel.PartitionVertices(len(adj), threads)
	hist := make([][]int32, threads)
	pool.MustRun(func(tid int) {
		h := make([]int32, n)
		for _, u := range adj[parts[tid].Lo:parts[tid].Hi] {
			h[u]++
		}
		hist[tid] = h //thrifty:benign-race per-thread histogram slot indexed by tid
	})
	parallel.For(pool, n, 1<<14, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			var s int64
			for t := 0; t < threads; t++ {
				s += int64(hist[t][v])
			}
			counts[v] = s //thrifty:benign-race workers own disjoint vertex ranges of counts
		}
	})
	return counts
}
