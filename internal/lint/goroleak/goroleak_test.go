package goroleak_test

import (
	"testing"

	"thriftylp/internal/lint/goroleak"
	"thriftylp/internal/lint/linttest"
)

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, linttest.TestData(), goroleak.Analyzer, "spawn", "parallel")
}
