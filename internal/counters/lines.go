package counters

import (
	"math/bits"
	"thriftylp/internal/atomicx"
)

// labelsPerLine is how many 4-byte labels fit a 64-byte cache line; vertex v
// maps to labels-array cache line v/16.
const labelsPerLine = 16

// LineTracker approximates last-level-cache traffic of the labels array by
// recording which distinct cache lines are touched within an iteration.
// Each iteration's distinct-line count is accumulated into the CacheLines
// event; the per-iteration reset models the (pessimistic) assumption that an
// iteration-sized working set does not survive in LLC between iterations —
// appropriate for the multi-gigabyte graphs the paper measures, and
// order-preserving for our scaled analogs.
//
// A nil *LineTracker is valid and all methods no-op, so the tracker can ride
// along the same optional-instrumentation path as Counters.
type LineTracker struct {
	words []uint64
}

// NewLineTracker creates a tracker for a labels array of n entries.
func NewLineTracker(n int) *LineTracker {
	lines := (n + labelsPerLine - 1) / labelsPerLine
	return &LineTracker{words: make([]uint64, (lines+63)/64)}
}

// Touch records that vertex v's label cache line was accessed. Safe for
// concurrent use.
func (lt *LineTracker) Touch(v uint32) {
	if lt == nil {
		return
	}
	line := int(v) / labelsPerLine
	w := &lt.words[line/64]
	mask := uint64(1) << (uint(line) % 64)
	// A plain atomic OR via load-check-CAS; the check skips the CAS on the
	// overwhelmingly common already-set path.
	if atomicx.LoadUint64(w)&mask != 0 {
		return
	}
	for {
		old := atomicx.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomicx.CASUint64(w, old, old|mask) {
			return
		}
	}
}

// FlushIteration counts the distinct lines touched since the last flush,
// adds them to c's CacheLines event under thread tid, and resets the
// tracker for the next iteration.
func (lt *LineTracker) FlushIteration(c *Counters, tid int) {
	if lt == nil {
		return
	}
	var n int64
	for i := range lt.words {
		w := atomicx.LoadUint64(&lt.words[i])
		if w != 0 {
			n += int64(bits.OnesCount64(w))
			atomicx.StoreUint64(&lt.words[i], 0)
		}
	}
	c.Add(tid, CacheLines, n)
}
