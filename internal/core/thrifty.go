package core

import (
	"time"

	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
	"thriftylp/internal/worklist"
)

// Thrifty is the paper's contribution (Algorithm 2): Label Propagation CC
// with four structure-aware optimizations for skewed-degree graphs.
//
//  1. Unified Labels Array — one labels array; updates are visible within
//     the iteration that computes them, and the per-iteration labels
//     synchronization pass of DO-LP disappears (§IV-A).
//  2. Zero Convergence — labels only move downward and 0 is the global
//     minimum, so a vertex holding 0 has converged: pull skips it, and the
//     neighbour scan aborts the moment it sees a 0 (§IV-B).
//  3. Zero Planting — labels are v+1 and the reserved label 0 is planted on
//     the maximum-degree vertex, which in a skewed graph is almost surely a
//     hub of the giant component (§IV-C).
//  4. Initial Push — iteration 0 pushes the planted 0 one hop from the hub
//     instead of running a full pull over all edges (§IV-D).
//
// Implementation details follow §IV-E: a 1% push/pull density threshold;
// pull iterations that only count active vertices; one Pull-Frontier
// iteration to materialize a detailed frontier when switching to push; and
// sparse frontiers held in per-thread worklists with a shared mark array
// and chunked work stealing.
//
// The traversal kernels are generic over the instrumentation policy (see
// instr.go): plain runs take the monomorphized fast path, runs with
// counters/trace/lines enabled take the counting path with identical
// traversal structure.
func Thrifty(g *graph.Graph, cfg Config) Result {
	switch {
	case cfg.Faults != nil:
		return thriftyRun(g, cfg, newChaos(cfg))
	case !cfg.fastInstr():
		return thriftyRun(g, cfg, newCounting(cfg))
	default:
		return thriftyRun(g, cfg, noInstr{})
	}
}

func thriftyRun[I instr[I]](g *graph.Graph, cfg Config, proto I) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	if n == 0 {
		return Result{Labels: []uint32{}}
	}
	threshold := cfg.threshold(DefaultThriftyThreshold)
	m := g.NumDirectedEdges()
	if m == 0 {
		m = 1 // keep the density ratio finite on edgeless graphs
	}
	labels := cfg.Arena.Uint32s(n)

	// --- Zero Planting (Algorithm 2 lines 2-9) ---
	// labels[v] = v+1, then the max-degree vertex — memoized in the CSR at
	// construction, so no per-run reduction is paid — receives the reserved
	// label 0.
	parallel.Fill(pool, labels, func(i int) uint32 { return uint32(i) + 1 })
	maxV := g.MaxDegreeVertex()
	if cfg.PlantVertexSet {
		// Ablation/override: plant at a caller-chosen vertex instead of
		// the max-degree heuristic.
		maxV = cfg.PlantVertex
	}
	labels[maxV] = 0

	threads := pool.Threads()
	cur := cfg.Arena.Worklist(n, threads)
	next := cfg.Arena.Worklist(n, threads)
	sch := newScheduler(g, cfg, pool)

	res := Result{}
	maxIters := cfg.maxIters(n)

	// phases accumulates per-kind wall time at iteration boundaries — one
	// map update per iteration, paid on every path including noInstr.
	phases := make(map[string]time.Duration, 4)

	// record wraps trace emission; zero counting is only paid when tracing.
	record := func(dur time.Duration, kind counters.IterKind, active, activeE, changed, edges int64, density float64) {
		if !cfg.Trace.Enabled() {
			return
		}
		cfg.Trace.Record(counters.IterRecord{
			Index:       res.Iterations - 1,
			Kind:        kind,
			Active:      active,
			ActiveEdges: activeE,
			Changed:     changed,
			Zero:        countZeros(pool, labels),
			Edges:       edges,
			Density:     density,
			Threshold:   threshold,
			Duration:    dur,
		}, labels)
	}

	// --- Initial Push (Algorithm 2 lines 11-12) ---
	// One push iteration propagating the planted 0 from the hub to its
	// neighbours. This is iteration 0 and is counted as an iteration (§V-C);
	// it is the same kernel as every later push, over a one-vertex frontier.
	var activeV, activeE int64
	if cfg.NoInitialPush {
		// Ablation: start the way DO-LP does — everything active, forcing
		// a full first pull (Table VI measures what this costs).
		activeV, activeE = int64(n), m
	} else {
		start := time.Now()
		ebefore := cfg.Ctr.Total(counters.EdgesProcessed)
		cur.AddUnchecked(0, maxV)
		activeV, activeE = thriftyPush(g, pool, labels, cur, next, 1+int64(g.Degree(maxV)), cfg.Stop, proto)
		cur, next = next, cur
		next.Reset()
		cfg.Lines.FlushIteration(cfg.Ctr, 0)
		res.Iterations++
		res.PushIterations++
		dur := time.Since(start)
		phases[string(counters.KindInitialPush)] += dur
		record(dur, counters.KindInitialPush, 1, int64(g.Degree(maxV)), activeV, cfg.Ctr.Total(counters.EdgesProcessed)-ebefore, 0)
	}

	// cur now holds the detailed frontier produced by the initial push
	// (unless the ablation skipped it).
	haveFrontier := !cfg.NoInitialPush
	// Iteration 1 is always a full pull with Zero Convergence (§IV-D,
	// Table VI): besides being the efficient choice after one hop of zero
	// propagation, the first pull is what guarantees every vertex —
	// including those in components other than the giant — is compared
	// with its neighbours at least once, which push-only propagation from
	// the planted hub would not do.
	didPull := false

	// The loop is the paper's do-while (Algorithm 2 runs at least one
	// iteration after the initial push): even if the push changed nothing —
	// e.g. the planted hub's only edges are self-loops — the first pull
	// must still run, or vertices in other components would never be
	// compared with their neighbours.
	//
	// phase tracks the most recent iteration kind for cancellation
	// diagnostics; the cancelPoint check at the bottom of the loop body makes
	// a cancelled run exit at the iteration boundary (a partition-boundary
	// Stopped poll inside the traversal has already cut the in-flight
	// iteration short). The check must precede the loop condition: a
	// cancelled sweep's empty frontier means "aborted", not "converged".
	phase := string(counters.KindInitialPush)
	if cfg.cancelPoint(&res, phase) {
		res.Labels = labels
		return res
	}
	for (activeV > 0 || !didPull) && res.Iterations < maxIters {
		start := time.Now()
		ebefore := cfg.Ctr.Total(counters.EdgesProcessed)
		density := float64(activeV+activeE) / float64(m)
		activeAtStart, activeEAtStart := activeV, activeE
		var kind counters.IterKind

		switch {
		case didPull && density < threshold && haveFrontier:
			// --- Push traversal over the detailed sparse frontier ---
			kind = counters.KindPush
			activeV, activeE = thriftyPush(g, pool, labels, cur, next, activeV+activeE, cfg.Stop, proto)
			cur, next = next, cur
			next.Reset()
			res.PushIterations++

		case didPull && density < threshold && !haveFrontier:
			// --- Pull-Frontier: the bridge iteration (§IV-E) --- the last
			// dense-style pull, which additionally records which vertices
			// became active so the following push iterations have a
			// worklist to consume.
			kind = counters.KindPullFrontier
			cur.Reset()
			activeV, activeE = thriftyPull(g, sch, labels, cur, true, cfg.Stop, proto)
			haveFrontier = true
			res.PullIterations++

		default:
			// --- Pull traversal with Zero Convergence, counting only ---
			// (under the EagerFrontier ablation every pull also records the
			// detailed frontier, paying the insertion cost the paper's
			// counting-only design avoids).
			kind = counters.KindPull
			if cfg.EagerFrontier {
				cur.Reset()
				activeV, activeE = thriftyPull(g, sch, labels, cur, true, cfg.Stop, proto)
				haveFrontier = true
			} else {
				activeV, activeE = thriftyPull(g, sch, labels, nil, false, cfg.Stop, proto)
				haveFrontier = false
			}
			didPull = true
			res.PullIterations++
		}
		phase = string(kind)
		res.Iterations++
		cfg.Lines.FlushIteration(cfg.Ctr, 0)
		dur := time.Since(start)
		phases[phase] += dur
		record(dur, kind, activeAtStart, activeEAtStart, activeV, cfg.Ctr.Total(counters.EdgesProcessed)-ebefore, density)
		if cfg.cancelPoint(&res, phase) {
			break
		}
	}

	res.Labels = labels
	res.Sched = sch.stealStats()
	res.PhaseDurations = phases
	return res
}

// pushSeqCutoff is the |F.V|+|F.E| estimate below which a push iteration
// runs on the calling thread instead of waking the pool: parking/unparking
// the workers costs more than traversing a few thousand edges, and web-like
// graphs spend dozens of iterations on chain frontiers this small.
const pushSeqCutoff = 4096

// Software-prefetch tuning for the thrifty traversal kernels. Go exposes no
// portable prefetch intrinsic, so on long adjacency lists the kernels issue
// an early demand load of the label prefetchDist edges ahead of the scan
// cursor and fold it into a live sink: neighbour label accesses are the
// kernels' cache-miss source (adjacency order is uncorrelated with label
// layout), and issuing the load early lets the out-of-order core overlap the
// miss with the comparisons on the intervening neighbours. prefetchDist=8
// (two miss latencies' worth of ~4-cycle compare iterations) measured best
// among 4/8/16 on this package's benchmarks; lists shorter than
// prefetchMinDeg skip the peeled loop, where the extra bounds check costs
// more than a same-cache-line "miss" would.
const (
	prefetchDist   = 8
	prefetchMinDeg = 64
)

// prefetchSink receives each worker's accumulated prefetch loads so the
// compiler cannot discard them as dead. Written once per partition/drain
// with an atomic store (the value itself is meaningless and never read).
var prefetchSink uint32

// thriftyPush runs one push iteration: each frontier vertex propagates its
// current label to its neighbours with atomic-min, collecting lowered
// neighbours into next. work is the caller's |F.V|+|F.E| estimate for cur
// (negative = unknown); frontiers under pushSeqCutoff are drained
// sequentially. Returns the new frontier's vertex count and degree
// sum. Frontier consumption uses chunked work stealing (own list first,
// then other threads' lists), and a racing duplicate insertion — permitted
// by the mark array's non-CAS discipline — at worst processes a vertex
// twice, which is harmless because labels only decrease.
//
//thrifty:hotpath
func thriftyPush[I instr[I]](g *graph.Graph, pool *parallel.Pool, labels []uint32, cur, next *worklist.Set, work int64, stop *Stop, proto I) (int64, int64) {
	offs, adj := g.Offsets(), g.Adjacency()
	var av, ae int64
	body := func(tid int) {
		ins := proto.Fresh()
		var localV, localE int64
		var seen, pf uint32
		stopped := false
		cur.Drain(tid, func(v uint32) {
			// Amortized cancellation poll: chain frontiers drain thousands
			// of degree-2 vertices, where even an uncontended flag load per
			// vertex is measurable, so the shared flag is read every 256
			// vertices and latched into a local. Cancellation latency stays
			// bounded by 256 adjacency scans per worker.
			if stopped {
				return
			}
			seen++
			if seen&255 == 0 && stop.Requested() {
				stopped = true
				return
			}
			iVisit(ins)
			lv := atomicx.LoadUint32(&labels[v])
			iLoad(ins)
			nb := adj[offs[v]:offs[v+1]]
			if len(nb) >= prefetchMinDeg {
				// Long list (the initial push from the planted hub is the
				// extreme case): touch the label prefetchDist edges ahead so
				// its line is in flight when MinUint32 reaches it. The touch
				// is not an algorithmic label access, so it is not charged to
				// the instrumentation counters.
				for i := 0; i < len(nb); i++ {
					if i+prefetchDist < len(nb) {
						pf ^= atomicx.LoadUint32(&labels[nb[i+prefetchDist]])
					}
					u := nb[i]
					iEdge(ins)
					iCAS(ins)
					iBranch(ins)
					iTouch(ins, u)
					if atomicx.MinUint32(&labels[u], lv) {
						iStore(ins)
						if next.AddIfAbsent(tid, u) {
							localV++
							localE += offs[u+1] - offs[u]
						}
					}
				}
				return
			}
			for _, u := range nb {
				iEdge(ins)
				iCAS(ins)
				iBranch(ins)
				iTouch(ins, u)
				if atomicx.MinUint32(&labels[u], lv) {
					iStore(ins)
					if next.AddIfAbsent(tid, u) {
						localV++
						localE += offs[u+1] - offs[u]
					}
				}
			}
		})
		iFlush(ins, tid)
		atomicx.StoreUint32(&prefetchSink, pf)
		atomicx.AddInt64(&av, localV)
		atomicx.AddInt64(&ae, localE)
	}
	if work >= 0 && work < pushSeqCutoff {
		body(0)
	} else {
		pool.MustRun(body)
	}
	return av, ae
}

// thriftyPull runs one pull iteration with Zero Convergence (Algorithm 2
// lines 22-34): converged (label 0) vertices are skipped outright, and a
// neighbour scan stops the instant it observes a 0, since no smaller label
// exists. When recordFrontier is set (the Pull-Frontier bridge iteration),
// changed vertices are also inserted into fr. Returns the changed-vertex
// count and degree sum, which drive the next direction decision.
//
//thrifty:hotpath
func thriftyPull[I instr[I]](g *graph.Graph, sch *scheduler, labels []uint32, fr *worklist.Set, recordFrontier bool, stop *Stop, proto I) (int64, int64) {
	offs, adj := g.Offsets(), g.Adjacency()
	var av, ae int64
	sch.sweep(func(tid, lo, hi int) {
		ins := proto.Fresh()
		// Cancellation poll at partition entry: remaining partitions are
		// claimed and skipped, so the sweep drains promptly.
		if stop.Requested() {
			return
		}
		var localV, localE int64
		var pf uint32
		for v := lo; v < hi; v++ {
			iVisit(ins)
			iBranch(ins)
			own := atomicx.LoadUint32(&labels[v])
			iLoad(ins)
			iTouch(ins, uint32(v))
			if own == 0 {
				continue // Zero Convergence: v has converged (line 24)
			}
			newLabel := own
			nb := adj[offs[v]:offs[v+1]]
			if len(nb) >= prefetchMinDeg {
				// Long list: touch the label prefetchDist edges ahead so its
				// line is in flight when the comparison reaches it (see the
				// prefetchDist comment). Not charged to the counters — the
				// touch is not an algorithmic label access.
				for i := 0; i < len(nb); i++ {
					if i+prefetchDist < len(nb) {
						pf ^= atomicx.LoadUint32(&labels[nb[i+prefetchDist]])
					}
					u := nb[i]
					iEdge(ins)
					iLoad(ins)
					iBranch(ins)
					iTouch(ins, u)
					if l := atomicx.LoadUint32(&labels[u]); l < newLabel {
						newLabel = l
						iBranch(ins)
						if newLabel == 0 {
							break // Zero Convergence: nothing smaller exists (line 31)
						}
					}
				}
			} else {
				for _, u := range nb {
					iEdge(ins)
					iLoad(ins)
					iBranch(ins)
					iTouch(ins, u)
					if l := atomicx.LoadUint32(&labels[u]); l < newLabel {
						newLabel = l
						iBranch(ins)
						if newLabel == 0 {
							break // Zero Convergence: nothing smaller exists (line 31)
						}
					}
				}
			}
			iBranch(ins)
			if newLabel < own {
				atomicx.StoreUint32(&labels[uint32(v)], newLabel)
				iStore(ins)
				localV++
				localE += offs[v+1] - offs[v]
				if recordFrontier {
					fr.Add(tid, uint32(v))
				}
			}
		}
		atomicx.StoreUint32(&prefetchSink, pf)
		iFlush(ins, tid)
		atomicx.AddInt64(&av, localV)
		atomicx.AddInt64(&ae, localE)
	})
	return av, ae
}
