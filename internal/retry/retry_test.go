package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelaySchedule pins the un-jittered schedule: exponential growth from
// Initial, capped at Max.
func TestDelaySchedule(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for n, w := range want {
		if got := p.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

// TestDelayJitterBounds: with jitter fraction j, every delay stays within
// base×(1±j), and the cap bounds the base (so nothing exceeds 2×Max even at
// full jitter).
func TestDelayJitterBounds(t *testing.T) {
	seq := []float64{0, 0.25, 0.5, 0.75, 0.999}
	i := 0
	p := Policy{
		Initial: 100 * time.Millisecond, Max: 400 * time.Millisecond, Jitter: 0.5,
		randFloat: func() float64 { v := seq[i%len(seq)]; i++; return v },
	}
	for n := 0; n < 8; n++ {
		base := 100 * time.Millisecond
		for k := 0; k < n && base < 400*time.Millisecond; k++ {
			base *= 2
		}
		if base > 400*time.Millisecond {
			base = 400 * time.Millisecond
		}
		d := p.Delay(n)
		lo, hi := base/2, base+base/2
		if d < lo || d > hi {
			t.Errorf("Delay(%d) = %v outside jitter bounds [%v,%v]", n, d, lo, hi)
		}
	}
}

// TestDelayJitterVaries: the default source actually perturbs delays (all
// equal would mean jitter is silently off).
func TestDelayJitterVaries(t *testing.T) {
	p := Policy{Initial: time.Second, Max: time.Second}
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[p.Delay(0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 jittered delays produced %d distinct values", len(seen))
	}
}

// TestDoAttemptsExhausted: Do stops after Attempts runs and returns the
// last operation error, not a context error.
func TestDoAttemptsExhausted(t *testing.T) {
	boom := errors.New("boom")
	runs := 0
	p := Policy{Initial: time.Microsecond, Max: time.Microsecond, Attempts: 3, Jitter: -1}
	err := Do(context.Background(), p, func(context.Context) error {
		runs++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the op error", err)
	}
	if runs != 3 {
		t.Fatalf("op ran %d times, want 3", runs)
	}
}

// TestDoEventualSuccess: failures back off, success stops the loop.
func TestDoEventualSuccess(t *testing.T) {
	runs := 0
	p := Policy{Initial: time.Microsecond, Max: time.Microsecond, Jitter: -1}
	err := Do(context.Background(), p, func(context.Context) error {
		runs++
		if runs < 4 {
			return errors.New("not yet")
		}
		return nil
	})
	if err != nil || runs != 4 {
		t.Fatalf("err=%v runs=%d, want nil/4", err, runs)
	}
}

// TestDoCancellation: a context cancelled mid-backoff ends the loop
// promptly with the context error, without waiting out the delay.
func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Initial: time.Hour, Max: time.Hour, Jitter: -1}
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- Do(ctx, p, func(context.Context) error {
			close(started)
			return errors.New("fail into the hour-long backoff")
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
}

// TestDoPreCancelled: an already-dead context never runs the op.
func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, Policy{}, func(context.Context) error {
		t.Fatal("op ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
