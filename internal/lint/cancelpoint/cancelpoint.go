// Package cancelpoint implements the thriftyvet analyzer that keeps every
// kernel cancellable.
//
// The hardened execution layer (DESIGN.md §9) threads a cooperative Stop
// flag through every connected-components kernel: cc.RunContext arms it from
// a context, and the kernel polls Config.cancelPoint at iteration
// boundaries so a cancelled run returns a partial Result instead of spinning
// to convergence. A new kernel that forgets the call compiles, passes its
// correctness tests, and silently breaks RunContext's latency contract.
//
// The analyzer therefore requires: every exported function in internal/core
// that takes a Config parameter (the kernel-entry signature) must reach a
// call to Config.cancelPoint through the package-local static call graph —
// directly, or via unexported helpers such as generic kernel bodies.
// Placement at iteration boundaries (rather than per edge) is a performance
// property the benchmarks guard; reachability is the correctness property
// this check mechanizes.
package cancelpoint

import (
	"go/ast"
	"go/types"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/directive"
	"thriftylp/internal/lint/lintutil"
)

// corePath is the kernel package the invariant applies to.
const corePath = "thriftylp/internal/core"

// cancelFunc is the method every kernel entry must reach.
const cancelFunc = "cancelPoint"

// Analyzer is the cancelpoint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cancelpoint",
	Doc:  "require exported kernels taking a core.Config to reach a Config.cancelPoint call",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgPathMatches(pass.Pkg.Path(), corePath) {
		return nil, nil
	}

	// Map every package-level function object to its declaration, then walk
	// the static, package-local call graph from each kernel entry.
	decls := map[types.Object]*ast.FuncDecl{}
	var kernels []*ast.FuncDecl
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if fd.Name.IsExported() && !lintutil.IsTestFile(pass.Fset, fd.Pos()) &&
				fd.Recv == nil && takesConfig(pass, fd) {
				kernels = append(kernels, fd)
			}
		}
	}

	for _, k := range kernels {
		if _, exempt := directive.FromDoc(k.Doc, directive.Nocancel); exempt {
			continue
		}
		if !reaches(pass, decls, k, map[*ast.FuncDecl]bool{}) {
			pass.Reportf(k.Pos(), "exported kernel %s takes a Config but never reaches cfg.cancelPoint: cancellation via cc.RunContext would hang until convergence", k.Name.Name)
		}
	}
	return nil, nil
}

// takesConfig reports whether the function has a parameter whose type is the
// package's Config struct (the kernel-entry signature).
func takesConfig(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if named.Obj().Name() == "Config" && named.Obj().Pkg() == pass.Pkg {
				return true
			}
		}
	}
	return false
}

// reaches reports whether fd's body — or the body of any same-package
// function it statically calls — contains a call to the cancelPoint method.
func reaches(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, fd *ast.FuncDecl, seen map[*ast.FuncDecl]bool) bool {
	if seen[fd] {
		return false
	}
	seen[fd] = true
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if fn.Name() == cancelFunc && fn.Pkg() == pass.Pkg {
			found = true
			return false
		}
		if fn.Pkg() == pass.Pkg {
			if callee, ok := decls[fn.Origin()]; ok && reaches(pass, decls, callee, seen) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
