package cc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// Result is the outcome of a connected-components run.
type Result struct {
	// Labels assigns every vertex its component label. Label value spaces
	// differ per algorithm; use Normalize or Equivalent for comparisons.
	Labels []uint32
	// Iterations is the number of iterations (graph passes for union-find
	// algorithms, BFS levels for BFS-CC; Thrifty counts the initial push).
	Iterations int
	// PushIterations and PullIterations decompose label-propagation runs.
	PushIterations, PullIterations int
	// Stats carries the run's always-on telemetry: wall time, per-phase
	// durations, and scheduler activity — all collected at iteration and
	// partition boundaries, so it is populated even on the uninstrumented
	// fast path. Nil only on hand-constructed Results.
	Stats *RunStats

	// census lazily caches the component count. A pointer rather than an
	// embedded sync.Once so Result stays copyable (vet copylocks) and all
	// copies of one run's Result share the cache.
	census *resultCensus
}

// resultCensus is the shared, race-free NumComponents cache.
type resultCensus struct {
	once sync.Once
	num  int
}

// NumComponents returns the number of connected components, computed on
// first call and cached. Safe for concurrent use: parallel callers (e.g. a
// benchmark harness reading results from several goroutines) observe one
// consistent count computed exactly once.
func (r *Result) NumComponents() int {
	if r.census == nil {
		// Hand-constructed Result (every Result produced by Run carries a
		// census): compute without caching rather than racing to install one.
		return countComponents(r.Labels)
	}
	r.census.once.Do(func() { r.census.num = countComponents(r.Labels) })
	return r.census.num
}

func countComponents(labels []uint32) int {
	if len(labels) == 0 {
		return 0
	}
	seen := make(map[uint32]struct{}, 64)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// ComponentOf returns v's component label.
func (r *Result) ComponentOf(v uint32) uint32 { return r.Labels[v] }

// SameComponent reports whether u and v are connected.
func (r *Result) SameComponent(u, v uint32) bool { return r.Labels[u] == r.Labels[v] }

// ComponentSizes returns a map from component label to vertex count.
func (r *Result) ComponentSizes() map[uint32]int64 {
	sizes := make(map[uint32]int64, 64)
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// LargestComponent returns the label and size of the largest component.
// On an empty graph it returns (0, 0).
func (r *Result) LargestComponent() (label uint32, size int64) {
	for l, s := range r.ComponentSizes() {
		if s > size || (s == size && l < label) {
			label, size = l, s
		}
	}
	return
}

// run dispatches to the internal implementation.
func run(a Algorithm, g *graph.Graph, o *options) (core.Result, error) {
	switch a {
	case AlgoThrifty:
		return core.Thrifty(g, o.cfg), nil
	case AlgoDOLP:
		return core.DOLP(g, o.cfg), nil
	case AlgoDOLPUnified:
		return core.DOLPUnified(g, o.cfg), nil
	case AlgoLP:
		return core.LP(g, o.cfg), nil
	case AlgoSV:
		return core.ShiloachVishkin(g, o.cfg), nil
	case AlgoAfforest:
		return core.Afforest(g, o.cfg), nil
	case AlgoJayantiT:
		return core.JayantiTarjan(g, o.cfg), nil
	case AlgoBFSCC:
		return core.BFSCC(g, o.cfg), nil
	case AlgoFastSV:
		return core.FastSV(g, o.cfg), nil
	case AlgoConnectItKOut:
		return core.ConnectItKOut(g, o.cfg), nil
	case AlgoConnectItBFS:
		return core.ConnectItBFS(g, o.cfg), nil
	case AlgoShard:
		return runShard(g, o)
	default:
		return core.Result{}, fmt.Errorf("cc: unknown algorithm %q", a)
	}
}

// Run executes algorithm a on g and returns its Result. It is
// RunContext with a background context: no cancellation, no deadline.
func Run(a Algorithm, g *graph.Graph, opts ...Option) (Result, error) {
	return RunContext(context.Background(), a, g, opts...)
}

// RunContext executes algorithm a on g under ctx.
//
// Cancellation is cooperative: when ctx is cancelled or its deadline
// expires, the run stops at the next iteration or partition boundary —
// typically well under one iteration's latency — and RunContext returns a
// *CanceledError carrying partial-progress diagnostics (errors.Is matches
// ctx.Err()). A context that can never be cancelled costs nothing: the
// kernels then run the identical zero-instrumentation fast path as Run.
//
// Panic isolation: a panic inside the algorithm — on the calling goroutine
// or any pool worker (surfaced as *parallel.PanicError) — is recovered at
// this boundary and returned as a *RunPanicError rather than crashing the
// caller. The worker pool remains usable afterwards.
func RunContext(ctx context.Context, a Algorithm, g *graph.Graph, opts ...Option) (_ Result, err error) {
	o := &options{}
	for _, opt := range opts {
		opt(o)
	}
	if o.pool != nil {
		o.cfg.Pool = o.pool
		defer func() {
			if o.ownPool {
				o.pool.Close()
			}
		}()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, &CanceledError{Algorithm: a, Err: err}
	}
	if done := ctx.Done(); done != nil {
		// Arm the cooperative stop flag from the context. AfterFunc avoids
		// a watcher goroutine per run; the returned stop func detaches the
		// callback so a later cancellation of a long-lived ctx doesn't
		// write to a flag owned by a finished run.
		stop := &core.Stop{}
		o.cfg.Stop = stop
		detach := context.AfterFunc(ctx, stop.Request)
		defer detach()
	}
	if o.inst != nil {
		pool := o.cfg.Pool
		if pool == nil {
			pool = parallel.Default()
		}
		o.cfg.Ctr = counters.New(pool.Threads())
		o.cfg.Lines = counters.NewLineTracker(g.NumVertices())
		tr := &counters.Trace{}
		if o.inst.OnIteration != nil {
			cb := o.inst.OnIteration
			tr.OnIteration = func(rec counters.IterRecord, labels []uint32) {
				cb(toIterStats(rec), labels)
			}
		}
		o.cfg.Trace = tr
	}

	// Panic isolation boundary: algorithm or pool-worker panics become
	// errors here instead of unwinding into the caller.
	defer func() {
		if r := recover(); r != nil {
			err = newRunPanicError(a, r)
		}
	}()

	// Always-on run telemetry: the pool snapshot delta and the wall clock
	// bracket the run; everything else rides out of core.Result bookkeeping
	// that the kernels maintain at iteration/partition boundaries.
	statsPool := o.cfg.Pool
	if statsPool == nil {
		statsPool = parallel.Default()
	}
	poolBefore := statsPool.Stats()
	start := time.Now()

	// AlgoAuto resolves to a concrete algorithm here, after the clock
	// starts, so Duration honestly includes the probe the selector paid.
	selected := a
	var probe *ProbeStats
	if a == AlgoAuto {
		selected, probe = autoSelect(g, o)
	}
	o.cfg.Arena.BeginRun()

	cres, err := run(selected, g, o)
	if err != nil {
		return Result{}, err
	}

	stats := &RunStats{
		Algorithm:      a,
		Duration:       time.Since(start),
		PhaseDurations: cres.PhaseDurations,
		Ingest:         o.ingest,
	}
	if a == AlgoAuto {
		stats.Selected = selected
		stats.Probe = probe
	}
	stats.Shard = o.shardStats
	poolDelta := statsPool.Stats().Sub(poolBefore)
	stats.Sched = SchedStats{
		PartitionsOwned:  cres.Sched.Owned,
		PartitionsStolen: cres.Sched.Stolen,
		FailedSteals:     cres.Sched.FailedSteals,
		PoolJobs:         poolDelta.JobsRun,
		PoolIdle:         poolDelta.Idle,
	}

	if o.inst != nil {
		o.inst.Events = make(map[string]int64)
		for _, e := range counters.Events() {
			o.inst.Events[e.String()] = o.cfg.Ctr.Total(e)
		}
		o.inst.Iterations = o.inst.Iterations[:0]
		for _, rec := range o.cfg.Trace.Iters {
			o.inst.Iterations = append(o.inst.Iterations, toIterStats(rec))
		}
		stats.Events = o.inst.Events
	}

	res := Result{
		Labels:         cres.Labels,
		Iterations:     cres.Iterations,
		PushIterations: cres.PushIterations,
		PullIterations: cres.PullIterations,
		Stats:          stats,
		census:         &resultCensus{},
	}
	if cres.Canceled {
		return res, &CanceledError{
			Algorithm:  a,
			Iterations: cres.Iterations,
			Phase:      cres.Phase,
			Err:        ctx.Err(),
		}
	}
	return res, nil
}

func toIterStats(rec counters.IterRecord) IterationStats {
	return IterationStats{
		Index:         rec.Index,
		Kind:          string(rec.Kind),
		Active:        rec.Active,
		ActiveEdges:   rec.ActiveEdges,
		Changed:       rec.Changed,
		ConvergedZero: rec.Zero,
		Edges:         rec.Edges,
		Density:       rec.Density,
		Threshold:     rec.Threshold,
		Duration:      rec.Duration,
	}
}

// Thrifty runs Thrifty Label Propagation (the paper's Algorithm 2).
func Thrifty(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoThrifty, g, opts) }

// DOLP runs Direction-Optimizing Label Propagation (Algorithm 1).
func DOLP(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoDOLP, g, opts) }

// DOLPUnified runs the DO-LP + Unified Labels Array ablation variant.
func DOLPUnified(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoDOLPUnified, g, opts) }

// LP runs textbook synchronous Label Propagation.
func LP(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoLP, g, opts) }

// ShiloachVishkin runs the Shiloach-Vishkin CC algorithm.
func ShiloachVishkin(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoSV, g, opts) }

// Afforest runs the sampling-based Afforest CC algorithm.
func Afforest(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoAfforest, g, opts) }

// JayantiTarjan runs the Jayanti-Tarjan concurrent union-find CC.
func JayantiTarjan(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoJayantiT, g, opts) }

// BFSCC runs direction-optimizing BFS-based CC.
func BFSCC(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoBFSCC, g, opts) }

// FastSV runs the FastSV min-hooking CC algorithm.
func FastSV(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoFastSV, g, opts) }

// ConnectItKOut runs the ConnectIt-style k-out-sampling + union-find CC.
func ConnectItKOut(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoConnectItKOut, g, opts) }

// ConnectItBFS runs the ConnectIt-style BFS-sampling + union-find CC.
func ConnectItBFS(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoConnectItBFS, g, opts) }

func mustRun(a Algorithm, g *graph.Graph, opts []Option) Result {
	r, err := Run(a, g, opts...)
	if err != nil {
		// a is always a known constant here and the context is background,
		// so the only reachable error is a recovered algorithm panic —
		// which the panicking convenience API re-raises.
		panic(err)
	}
	return r
}
