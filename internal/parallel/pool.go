// Package parallel is the shared-memory runtime underneath every algorithm
// in this repository. It reproduces the execution model of the Thrifty paper
// (§V-A): a master-worker pool of persistent threads, edge-balanced
// partitioning of the vertex set into 32×#threads partitions, and a
// work-stealing discipline where each thread processes its own partitions in
// ascending order and steals partitions from other threads in descending
// order.
//
// The paper's runtime is pthreads + futex; here the persistent workers are
// goroutines parked on a condition variable, which is the closest Go
// equivalent (goroutine park/unpark is futex-based on Linux).
//
// # Ownership and failure contract
//
// A Pool owns its worker goroutines. Callers that create a pool with NewPool
// should Close it when done; a pool that becomes unreachable without Close
// is shut down by a finalizer at the next garbage collection, so abandoned
// pools do not leak goroutines permanently — but relying on the finalizer
// delays reclamation by a GC cycle, so explicit Close remains the contract
// for anything long-lived. Closing is idempotent.
//
// A panic inside a job does not crash the process and does not wedge the
// pool: the worker recovers it, the remaining workers drain normally, and
// Run returns the first recovered panic as a *PanicError. The pool stays
// usable for subsequent Run calls. Run on a closed pool returns ErrClosed
// instead of deadlocking. The derived helpers (For, Fill, Copy, SumInt64,
// MaxIndex, Stealer.Run) re-panic the *PanicError on the calling goroutine,
// since their signatures carry results rather than errors; the public cc
// API recovers it at its boundary and surfaces it as an error.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"thriftylp/internal/atomicx"
	"time"
)

// ErrClosed is returned by Run when the pool has been closed.
var ErrClosed = errors.New("parallel: pool is closed")

// PanicError wraps a panic recovered from a pool job, preserving the
// panicking value and the worker's stack trace at the point of the panic.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking worker goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job panicked: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes a wrapped error value so errors.Is/As reach panics that
// carried an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// PoolStats aggregates worker activity over a pool's lifetime. For per-run
// numbers on a shared pool, snapshot before and after the run and Sub the
// two (cc.RunContext does exactly this).
type PoolStats struct {
	// JobsRun counts job invocations summed over all workers (one Run call
	// on an N-thread pool contributes N).
	JobsRun int64
	// Idle is the summed wall time workers spent parked waiting for the
	// next job — the load-imbalance + scheduling-gap signal. It is measured
	// at job boundaries only and excludes workers currently parked (their
	// in-flight wait is charged when they wake).
	Idle time.Duration
}

// Sub returns the component-wise difference s - prev, for per-run deltas.
func (s PoolStats) Sub(prev PoolStats) PoolStats {
	return PoolStats{JobsRun: s.JobsRun - prev.JobsRun, Idle: s.Idle - prev.Idle}
}

// workerSlot is one worker's stats block, padded to its own cache line.
//
//thrifty:padded
type workerSlot struct {
	jobs, idleNanos int64
	_               [6]int64
}

// poolState is the shared master/worker state. It is split from Pool so the
// worker goroutines hold only the inner state: a finalizer on the outer Pool
// handle can then run once the handle is unreachable (the workers would
// otherwise keep the handle alive forever and the finalizer would never
// fire), closing abandoned pools instead of leaking their goroutines.
type poolState struct {
	mu      sync.Mutex
	work    *sync.Cond // workers wait here for a new job generation
	done    *sync.Cond // master waits here for job completion
	threads int
	job     func(tid int)
	gen     uint64 // increments per submitted job
	active  int    // workers still running the current job
	closed  bool
	pnc     *PanicError // first panic recovered during the current job
	wstats  []workerSlot
}

// Pool is a master-worker pool of persistent goroutines. A Pool is created
// once and reused across all parallel regions of an algorithm run, so that
// iteration loops do not pay goroutine spawn costs per iteration — mirroring
// the paper's persistent pthread workers synchronized with futexes.
type Pool struct {
	s *poolState
}

// NewPool creates a pool with the given number of worker goroutines.
// threads <= 0 selects runtime.GOMAXPROCS(0). See the package comment for
// the ownership contract: Close the pool when done with it.
func NewPool(threads int) *Pool {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	s := &poolState{threads: threads, wstats: make([]workerSlot, threads)}
	s.work = sync.NewCond(&s.mu)
	s.done = sync.NewCond(&s.mu)
	for t := 0; t < threads; t++ {
		go s.worker(t)
	}
	p := &Pool{s: s}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// Threads returns the number of workers in the pool.
func (p *Pool) Threads() int { return p.s.threads }

// recoverPanic converts a recovered value into a *PanicError with the
// current goroutine's stack.
func recoverPanic(r any) *PanicError {
	buf := make([]byte, 16<<10)
	return &PanicError{Value: r, Stack: buf[:runtime.Stack(buf, false)]}
}

// runJob invokes job(tid), converting a panic into a *PanicError instead of
// letting it kill the goroutine (an unrecovered panic in any goroutine
// terminates the whole process).
func runJob(job func(tid int), tid int) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = recoverPanic(r)
		}
	}()
	job(tid)
	return nil
}

func (s *poolState) worker(tid int) {
	var seen uint64
	for {
		s.mu.Lock()
		// Idle accounting happens at the job boundary only: one timestamp
		// before parking and one after waking, never inside a job.
		var idleStart time.Time
		for s.gen == seen && !s.closed {
			if idleStart.IsZero() {
				idleStart = time.Now()
			}
			s.work.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		seen = s.gen
		job := s.job
		s.mu.Unlock()
		ws := &s.wstats[tid]
		if !idleStart.IsZero() {
			atomicx.AddInt64(&ws.idleNanos, int64(time.Since(idleStart)))
		}
		atomicx.AddInt64(&ws.jobs, 1)

		pe := runJob(job, tid)

		s.mu.Lock()
		if pe != nil && s.pnc == nil {
			s.pnc = pe
		}
		s.active--
		if s.active == 0 {
			s.done.Broadcast()
		}
		s.mu.Unlock()
	}
}

// Run executes job(tid) on every worker concurrently and returns when all
// workers have finished. Run must not be called concurrently with itself or
// Close; algorithms call it from a single master goroutine.
//
// If any worker's job panics, the panic is recovered, the remaining workers
// finish their invocations normally, and Run returns the first panic as a
// *PanicError; the pool remains usable. Run on a closed pool returns
// ErrClosed.
//
// A single-thread pool runs the job inline on the calling goroutine: the
// semantics (one invocation with tid 0, Run returns when it finishes) are
// identical, and iteration loops skip two goroutine handoffs per region —
// a fixed cost that dominates sparse-frontier iterations.
func (p *Pool) Run(job func(tid int)) error {
	s := p.s
	if s.threads == 1 {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return ErrClosed
		}
		atomicx.AddInt64(&s.wstats[0].jobs, 1)
		if pe := runJob(job, 0); pe != nil {
			return pe
		}
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.job = job
	s.gen++
	s.active = s.threads
	s.pnc = nil
	gen := s.gen
	s.work.Broadcast()
	for s.active > 0 && s.gen == gen {
		s.done.Wait()
	}
	pe := s.pnc
	s.pnc = nil
	s.mu.Unlock()
	if pe != nil {
		return pe
	}
	return nil
}

// MustRun is Run for callers whose control flow cannot carry an error: a
// recovered job panic is re-panicked on the calling goroutine as the
// *PanicError (preserving the worker's stack in the message), to be caught
// at an API boundary such as cc.RunContext. Run-after-Close also panics.
func (p *Pool) MustRun(job func(tid int)) {
	if err := p.Run(job); err != nil {
		panic(err)
	}
}

// Stats returns the pool's accumulated worker counters. It reads atomically
// and may be called at any time, including while a job is in flight; counts
// update at job boundaries only.
func (p *Pool) Stats() PoolStats {
	var st PoolStats
	var idle int64
	for i := range p.s.wstats {
		st.JobsRun += atomicx.LoadInt64(&p.s.wstats[i].jobs)
		idle += atomicx.LoadInt64(&p.s.wstats[i].idleNanos)
	}
	st.Idle = time.Duration(idle)
	return st
}

// Close shuts the worker goroutines down. The pool must be idle (no Run in
// flight). Close is idempotent and remains safe after a job panic; a closed
// pool rejects further Run calls with ErrClosed.
func (p *Pool) Close() {
	runtime.SetFinalizer(p, nil)
	s := p.s
	s.mu.Lock()
	s.closed = true
	s.work.Broadcast()
	s.mu.Unlock()
}

var (
	defaultPoolMu sync.Mutex
	defaultPool   *Pool
)

// Default returns a process-wide pool sized to GOMAXPROCS, creating it on
// first use. Algorithms that are not handed an explicit pool use this one.
func Default() *Pool {
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	if defaultPool == nil || defaultPool.Threads() != runtime.GOMAXPROCS(0) {
		if defaultPool != nil {
			defaultPool.Close()
		}
		defaultPool = NewPool(0)
	}
	return defaultPool
}
