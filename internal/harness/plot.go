package harness

import (
	"fmt"
	"strings"
)

// Series is one named line of a text chart.
type Series struct {
	Name   string
	Values []float64
}

// AsciiChart renders one or more series as horizontal bar rows — enough to
// eyeball the *shape* of a figure (convergence curves, activity profiles)
// straight from a terminal, next to the exact numbers in the table.
// Values are scaled to max; each row shows index, bars per series, and the
// numeric values.
func AsciiChart(title string, xLabel string, series ...Series) string {
	const width = 40
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)

	rows := 0
	maxVal := 0.0
	for _, s := range series {
		if len(s.Values) > rows {
			rows = len(s.Values)
		}
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}

	glyphs := []byte{'#', '*', '+', '~'}
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%4s %-3d ", xLabel, i)
		nums := make([]string, 0, len(series))
		for si, s := range series {
			if i >= len(s.Values) {
				nums = append(nums, "-")
				continue
			}
			v := s.Values[i]
			bar := int(v / maxVal * width)
			if bar == 0 && v > 0 {
				bar = 1
			}
			fmt.Fprintf(&sb, "|%s%s", strings.Repeat(string(glyphs[si%len(glyphs)]), bar), strings.Repeat(" ", width-bar))
			nums = append(nums, formatFloat(v))
		}
		fmt.Fprintf(&sb, "| %s\n", strings.Join(nums, " / "))
	}
	return sb.String()
}
