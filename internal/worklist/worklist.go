// Package worklist implements the sparse frontier data structure of the
// Thrifty paper (§IV-E): per-thread local worklists that collect active
// vertices during push iterations, a shared mark array that best-effort
// deduplicates insertions, and chunked work stealing for consumption.
//
// The paper uses a plain (non-atomic) shared byte array and tolerates the
// resulting race: a vertex may be inserted into two threads' worklists and
// processed twice in the next iteration, which does not affect correctness.
// Go's memory model does not permit plain racy accesses, so the mark array
// here is a []uint32 accessed with individual atomic loads and stores —
// deliberately NOT a compare-and-swap — which preserves the paper's
// semantics exactly: the load→store window still allows occasional duplicate
// insertion, but the program stays data-race-free.
package worklist

import "thriftylp/internal/atomicx"

// stealChunk is the number of vertices a consumer claims from a list per
// cursor bump. Chunking amortizes the atomic fetch-add and keeps stolen work
// contiguous for locality.
const stealChunk = 64

// Set is a frontier of active vertices with per-thread insertion lists.
// A Set is written during one iteration (via Add) and consumed during the
// next (via Drain); Reset prepares it for reuse.
type Set struct {
	marked  []uint32   // shared mark array; atomic load/store, no CAS
	lists   [][]uint32 // one local worklist per thread
	cursors []cursorPad
	threads int
}

//thrifty:padded
type cursorPad struct {
	c int64
	_ [7]int64 // pad to a cache line so steal cursors do not false-share
}

// New creates a Set for vertex ids [0, n) and the given thread count.
func New(n, threads int) *Set {
	if threads <= 0 {
		threads = 1
	}
	return &Set{
		marked:  make([]uint32, n),
		lists:   make([][]uint32, threads),
		cursors: make([]cursorPad, threads),
		threads: threads,
	}
}

// Add inserts vertex v into thread tid's local worklist unless the shared
// mark array already shows it present. The check-then-mark is intentionally
// not atomic as a unit (see package comment); duplicates are possible and
// benign.
func (s *Set) Add(tid int, v uint32) {
	if atomicx.LoadUint32(&s.marked[v]) != 0 {
		return
	}
	atomicx.StoreUint32(&s.marked[v], 1)
	s.lists[tid] = append(s.lists[tid], v)
}

// AddIfAbsent inserts v into thread tid's local worklist unless the shared
// mark array already shows it present, and reports whether v was inserted.
// It folds the Contains+Add pair the push kernels used into a single atomic
// load (plus the store on the absent path). As with Add, the check-then-mark
// is intentionally not atomic as a unit: two racing callers may both observe
// "absent", both insert, and both return true — the benign duplicate the
// package comment describes.
func (s *Set) AddIfAbsent(tid int, v uint32) bool {
	if atomicx.LoadUint32(&s.marked[v]) != 0 {
		return false
	}
	atomicx.StoreUint32(&s.marked[v], 1)
	s.lists[tid] = append(s.lists[tid], v)
	return true
}

// AddUnchecked appends v to tid's list and marks it, skipping the duplicate
// check. Used when the caller already knows v is absent (e.g., seeding the
// initial-push frontier with the single planted vertex).
func (s *Set) AddUnchecked(tid int, v uint32) {
	atomicx.StoreUint32(&s.marked[v], 1)
	s.lists[tid] = append(s.lists[tid], v)
}

// Contains reports whether v is marked present.
//
//thrifty:hotpath
func (s *Set) Contains(v uint32) bool {
	return atomicx.LoadUint32(&s.marked[v]) != 0
}

// Len returns the total number of queued vertices across all lists,
// counting duplicates. Single-threaded; call between iterations.
func (s *Set) Len() int {
	n := 0
	for _, l := range s.lists {
		n += len(l)
	}
	return n
}

// Empty reports whether no vertex is queued.
func (s *Set) Empty() bool { return s.Len() == 0 }

// Drain consumes the Set on behalf of thread tid: first chunks of tid's own
// list, then chunks stolen from the other threads' lists in ring order.
// Drain is called concurrently by all threads; each queued vertex is
// delivered to exactly one caller (though the same vertex id may have been
// queued twice by racing Adds).
//
//thrifty:hotpath
func (s *Set) Drain(tid int, fn func(v uint32)) {
	for d := 0; d < s.threads; d++ {
		li := (tid + d) % s.threads
		list := s.lists[li]
		cur := &s.cursors[li].c
		for {
			lo := int(atomicx.AddInt64(cur, stealChunk)) - stealChunk
			if lo >= len(list) {
				break
			}
			hi := lo + stealChunk
			if hi > len(list) {
				hi = len(list)
			}
			for _, v := range list[lo:hi] {
				fn(v)
			}
		}
	}
}

// ForEach visits every queued vertex single-threadedly (duplicates
// included), without consuming cursors. Used by tests and by dense→sparse
// frontier conversions.
func (s *Set) ForEach(fn func(v uint32)) {
	for _, l := range s.lists {
		for _, v := range l {
			fn(v)
		}
	}
}

// Reset clears the Set for reuse: unmarks exactly the queued vertices
// (cost proportional to the frontier, not the graph), truncates the lists,
// and rewinds the steal cursors.
func (s *Set) Reset() {
	for t, l := range s.lists {
		for _, v := range l {
			atomicx.StoreUint32(&s.marked[v], 0)
		}
		s.lists[t] = l[:0]
		atomicx.StoreInt64(&s.cursors[t].c, 0)
	}
}

// ResetFull restores the Set to its freshly constructed state: every mark
// cleared (a full memclr of the mark array, NOT just the queued vertices),
// lists truncated, cursors rewound. Reset is the cheap per-iteration path;
// ResetFull is for recycling a Set whose mark/list relationship is unknown —
// e.g. an arena handing a previous run's frontier to a new run, where a
// stale detailed frontier from a bygone push phase may hold marks its
// (already truncated) lists no longer account for.
func (s *Set) ResetFull() {
	clear(s.marked)
	for t := range s.lists {
		s.lists[t] = s.lists[t][:0]
		s.cursors[t].c = 0
	}
}

// Cap returns the vertex-id capacity the Set was constructed for.
func (s *Set) Cap() int { return len(s.marked) }

// Threads returns the number of per-thread lists.
func (s *Set) Threads() int { return s.threads }
