module thriftylp

go 1.22
