package core

import "thriftylp/internal/atomicx"

// Stop is a cooperative cancellation flag shared between a run's master
// goroutine and its workers. The caller (cc.RunContext) arms it from a
// context; the kernels poll it at iteration boundaries (driver loops) and at
// partition boundaries (inside parallel sweeps, as an explicit nil-safe
// parameter — deliberately outside the instrumentation seam, see instr.go),
// so a cancelled run returns within one iteration boundary without any
// per-edge cost on the fast path.
//
// Stop is write-once: Request is idempotent and there is no reset. A nil
// *Stop is valid and never reports a request, so kernels can poll
// unconditionally.
type Stop struct {
	f uint32
}

// Request asks the run to stop at its next cancellation point.
func (s *Stop) Request() { atomicx.StoreUint32(&s.f, 1) }

// Requested reports whether Request has been called. Safe on a nil receiver.
func (s *Stop) Requested() bool { return s != nil && atomicx.LoadUint32(&s.f) != 0 }

// Phase names for Result.Phase diagnostics of the non-LP kernels. The LP
// kernels reuse the counters.IterKind strings ("initial-push", "pull",
// "push", "pull-frontier").
const (
	PhaseHook     = "hook"      // SV/FastSV hooking pass
	PhaseShortcut = "shortcut"  // SV/FastSV pointer-jumping pass
	PhaseSample   = "sample"    // Afforest/ConnectIt sampling rounds
	PhaseFinish   = "finish"    // Afforest/ConnectIt finish pass
	PhaseBFS      = "bfs"       // BFS-CC / ConnectIt-BFS level loop
	PhaseEdgePass = "edge-pass" // Jayanti-Tarjan single edge pass
)

// cancelPoint is the driver-loop cancellation check: it records the phase
// the run was in and reports whether the kernel should abandon the loop.
// Kernels call it at iteration boundaries only, never per edge.
func (c Config) cancelPoint(res *Result, phase string) bool {
	if !c.Stop.Requested() {
		return false
	}
	res.Canceled = true
	res.Phase = phase
	return true
}
