package core

import (
	"fmt"
	"testing"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// The instrumentation-policy split (instr.go) must be invisible to results:
// the monomorphized fast path and the counting path are the same kernel, so
// they must produce identical labels, and the counting path must report the
// same counter totals as the pre-split implementation did.

// instrFixtures are small deterministic graphs exercising every traversal
// regime: hub push, long sparse chains, multiple components, and RMAT /
// web-analog skew.
func instrFixtures(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	for name, build := range map[string]func() (*graph.Graph, error){
		"figure2":        gen.PaperFigure2,
		"star-64":        func() (*graph.Graph, error) { return gen.Star(64) },
		"path-100":       func() (*graph.Graph, error) { return gen.Path(100) },
		"components-4x8": func() (*graph.Graph, error) { return gen.Components(4, 8) },
		"rmat-small":     func() (*graph.Graph, error) { return gen.RMATCompact(gen.DefaultRMAT(12, 8, 7)) },
		"weblike-small":  func() (*graph.Graph, error) { return gen.Web(gen.DefaultWeb(10, 7)) },
	} {
		g, err := build()
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out[name] = g
	}
	return out
}

var instrAlgos = map[string]func(*graph.Graph, Config) Result{
	"thrifty":      Thrifty,
	"dolp":         DOLP,
	"dolp-unified": DOLPUnified,
	"lp":           LP,
}

// TestFastPathMatchesInstrumented asserts the noInstr and counting kernel
// instantiations compute identical results. Both runs share a 1-thread pool:
// the label fixed point is unique per algorithm regardless of scheduling,
// but iteration counts are timing-sensitive on the unified labels array
// (in-iteration visibility depends on interleaving), and the policy-
// equivalence claim is about traversal structure, not scheduling luck.
func TestFastPathMatchesInstrumented(t *testing.T) {
	pool := parallel.NewPool(1)
	defer pool.Close()
	for name, g := range instrFixtures(t) {
		for algo, run := range instrAlgos {
			t.Run(fmt.Sprintf("%s/%s", name, algo), func(t *testing.T) {
				fastCfg := Config{Pool: pool}
				if !fastCfg.fastInstr() {
					t.Fatal("counter-free Config should select the fast path")
				}
				fast := run(g, fastCfg)

				instCfg := Config{
					Pool:  pool,
					Ctr:   counters.New(1),
					Lines: counters.NewLineTracker(g.NumVertices()),
					Trace: &counters.Trace{},
				}
				if instCfg.fastInstr() {
					t.Fatal("instrumented Config must not select the fast path")
				}
				inst := run(g, instCfg)

				if fast.Iterations != inst.Iterations {
					t.Errorf("iterations diverge: fast %d, instrumented %d", fast.Iterations, inst.Iterations)
				}
				for v := range fast.Labels {
					if fast.Labels[v] != inst.Labels[v] {
						t.Fatalf("label diverges at vertex %d: fast %d, instrumented %d",
							v, fast.Labels[v], inst.Labels[v])
					}
				}
				if instCfg.Ctr.Total(counters.EdgesProcessed) == 0 && g.NumDirectedEdges() > 0 {
					t.Error("instrumented run recorded no edge traversals")
				}
			})
		}
	}
}

// seedCounterGoldens pins the instrumented counter totals measured on the
// pre-policy (seed) implementation with a single-thread pool, where
// traversal order — and therefore every counter — is deterministic. The
// policy split must not change what the counting path counts.
var seedCounterGoldens = []struct {
	fixture                                            string
	algo                                               string
	edges, visits, loads, stores, cas, branches, lines int64
}{
	{"figure2", "thrifty", 8, 22, 26, 6, 4, 35, 4},
	{"figure2", "dolp", 80, 35, 150, 52, 0, 115, 15},
	{"figure2", "dolp-unified", 32, 14, 46, 6, 0, 46, 2},
	{"figure2", "lp", 80, 35, 115, 17, 0, 115, 0},
	{"star-64", "thrifty", 63, 65, 65, 63, 63, 127, 8},
	{"star-64", "dolp", 252, 128, 508, 191, 0, 380, 24},
	{"star-64", "dolp-unified", 252, 128, 380, 63, 0, 380, 8},
	{"star-64", "lp", 252, 128, 380, 63, 0, 380, 0},
	{"path-100", "thrifty", 99, 201, 298, 99, 2, 493, 15},
	{"path-100", "dolp", 19215, 9706, 38921, 14950, 9, 28915, 2082},
	{"path-100", "dolp-unified", 396, 200, 596, 99, 0, 596, 14},
	{"path-100", "lp", 19800, 10000, 29800, 4950, 0, 29800, 0},
	{"components-4x8", "thrifty", 343, 65, 401, 28, 7, 476, 5},
	{"components-4x8", "dolp", 448, 64, 576, 92, 0, 512, 12},
	{"components-4x8", "dolp-unified", 448, 64, 512, 28, 0, 512, 4},
	{"components-4x8", "lp", 448, 64, 512, 28, 0, 512, 0},
}

func TestInstrumentedCountersMatchSeed(t *testing.T) {
	fixtures := instrFixtures(t)
	pool := parallel.NewPool(1)
	defer pool.Close()
	for _, gold := range seedCounterGoldens {
		t.Run(fmt.Sprintf("%s/%s", gold.fixture, gold.algo), func(t *testing.T) {
			g := fixtures[gold.fixture]
			cfg := Config{
				Pool:  pool,
				Ctr:   counters.New(1),
				Lines: counters.NewLineTracker(g.NumVertices()),
				Trace: &counters.Trace{},
			}
			instrAlgos[gold.algo](g, cfg)
			got := map[string]int64{
				"edges":         cfg.Ctr.Total(counters.EdgesProcessed),
				"vertex-visits": cfg.Ctr.Total(counters.VertexVisits),
				"label-loads":   cfg.Ctr.Total(counters.LabelLoads),
				"label-stores":  cfg.Ctr.Total(counters.LabelStores),
				"cas-ops":       cfg.Ctr.Total(counters.CASOps),
				"branch-checks": cfg.Ctr.Total(counters.BranchChecks),
				"cache-lines":   cfg.Ctr.Total(counters.CacheLines),
			}
			want := map[string]int64{
				"edges":         gold.edges,
				"vertex-visits": gold.visits,
				"label-loads":   gold.loads,
				"label-stores":  gold.stores,
				"cas-ops":       gold.cas,
				"branch-checks": gold.branches,
				"cache-lines":   gold.lines,
			}
			for k, w := range want {
				if got[k] != w {
					t.Errorf("%s: got %d, seed value %d", k, got[k], w)
				}
			}
		})
	}
}

// TestFastInstrSelection pins the policy-selection rule: the fast path is
// chosen exactly when counters, line tracking and tracing are all absent.
func TestFastInstrSelection(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		fast bool
	}{
		{"zero-config", Config{}, true},
		{"tuning-only", Config{Threshold: 0.05, NoInitialPush: true, DynamicScheduling: true}, true},
		{"counters", Config{Ctr: counters.New(1)}, false},
		{"lines", Config{Lines: counters.NewLineTracker(16)}, false},
		{"trace", Config{Trace: &counters.Trace{}}, false},
	}
	for _, c := range cases {
		if got := c.cfg.fastInstr(); got != c.fast {
			t.Errorf("%s: fastInstr() = %v, want %v", c.name, got, c.fast)
		}
	}
}
