package gen

import (
	"fmt"

	"thriftylp/graph"
	"thriftylp/internal/parallel"
)

// ErdosRenyiEdges generates m uniform random edges over n vertices (the
// G(n, m) model). Duplicates and self-loops may occur and are removed by
// ErdosRenyi's build step.
func ErdosRenyiEdges(n int, m int, seed uint64) ([]graph.Edge, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n > 0, got %d", n)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("gen: n = %d exceeds uint32 vertex ids", n)
	}
	edges := make([]graph.Edge, m)
	pool := parallel.Default()
	const chunk = 1 << 14
	parallel.For(pool, (m+chunk-1)/chunk, 1, func(_, clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			r := chunkRNG(seed, ci)
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > m {
				hi = m
			}
			for i := lo; i < hi; i++ {
				edges[i] = graph.Edge{U: r.uint32n(uint32(n)), V: r.uint32n(uint32(n))} //thrifty:benign-race workers fill disjoint chunks of edges
			}
		}
	})
	return edges, nil
}

// ErdosRenyi generates a simple undirected G(n, m) graph. With m/n above
// the ~0.5 percolation threshold the graph has a giant component but a flat
// (binomial) degree distribution — a useful contrast to RMAT when isolating
// the effect of degree skew.
func ErdosRenyi(n, m int, seed uint64) (*graph.Graph, error) {
	edges, err := ErdosRenyiEdges(n, m, seed)
	if err != nil {
		return nil, err
	}
	return build(edges, n)
}
