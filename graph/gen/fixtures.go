package gen

import (
	"thriftylp/graph"
)

// This file provides small deterministic graphs used by tests, examples and
// the Fig 2 walkthrough: classic shapes whose component structure is known
// in closed form.

// Path returns the path graph 0-1-2-…-(n-1).
func Path(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: uint32(v - 1), V: uint32(v)})
	}
	return build(edges, n)
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, n)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: uint32(v - 1), V: uint32(v)})
	}
	if n > 2 {
		edges = append(edges, graph.Edge{U: uint32(n - 1), V: 0})
	}
	return build(edges, n)
}

// Star returns the star graph: vertex 0 connected to vertices 1..n-1. This
// is the most extreme skewed-degree graph and the best case for Zero
// Planting (the hub is the max-degree vertex).
func Star(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(v)})
	}
	return build(edges, n)
}

// Complete returns the complete graph K_n.
func Complete(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	return build(edges, n)
}

// Empty returns n isolated vertices.
func Empty(n int) (*graph.Graph, error) {
	return graph.BuildUndirected(nil, graph.WithNumVertices(n))
}

// PaperFigure2 returns a small example graph in the spirit of Figure 2 of
// the Thrifty paper, used to illustrate repeated wavefronts: a fringe path
// A-B-C feeding a dense core around a hub. Vertices are A=0, B=1, C=2, D=3,
// E=4, F=5, G=6; vertex E (the core hub) has the unique highest degree, so
// Zero Planting selects it.
func PaperFigure2() (*graph.Graph, error) {
	edges := []graph.Edge{
		{U: 0, V: 1}, // A-B fringe
		{U: 1, V: 2}, // B-C
		{U: 2, V: 3}, // C-D
		{U: 2, V: 4}, // C-E
		{U: 3, V: 4}, // D-E
		{U: 3, V: 5}, // D-F
		{U: 4, V: 5}, // E-F
		{U: 4, V: 6}, // E-G
	}
	return build(edges, 7)
}

// Components returns a graph of k disjoint cliques of the given size each:
// a fixture with exactly k components (size > 1) for component-census tests.
func Components(k, size int) (*graph.Graph, error) {
	var edges []graph.Edge
	for c := 0; c < k; c++ {
		base := uint32(c * size)
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				edges = append(edges, graph.Edge{U: base + uint32(u), V: base + uint32(v)})
			}
		}
	}
	return build(edges, k*size)
}

// Islands generates k small ER islands of the given vertex count each,
// for composing with DisjointUnion into datasets with a controlled
// component census (like LiveJournal's 4,945 components in Table II).
func Islands(k, size int, seed uint64) (*graph.Graph, error) {
	gs := make([]*graph.Graph, 0, k)
	for c := 0; c < k; c++ {
		// 2×size edges keeps each island connected with high probability.
		g, err := ErdosRenyi(size, 2*size, seed+uint64(c)*7919)
		if err != nil {
			return nil, err
		}
		gs = append(gs, g)
	}
	return DisjointUnion(gs...)
}
