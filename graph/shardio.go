package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"thriftylp/internal/atomicx"
)

// Vertex-range CSR slice format: the on-disk unit of the sharded execution
// path (internal/shard). A slice holds the adjacency rows of one contiguous
// global vertex range [Lo, Hi): offsets are local (slice-relative, starting
// at 0) while neighbour ids stay global, so a slice can be solved against
// the rest of the graph without any id translation table. Each slice is its
// own file with its own memory mapping — the whole point is that no single
// mmap (and no single allocation) ever spans the full graph.

const (
	sliceMagic   = 0x54485348 // "THSH"
	sliceVersion = 1
	// sliceHeaderSize is the fixed slice header: magic, version, global |V|,
	// lo, hi, directed slot count — 8 bytes each. 48 bytes keeps the mapped
	// offsets array 8-byte aligned and the adjacency array 4-byte aligned.
	sliceHeaderSize = 48
)

// CSRSlice is the adjacency of one contiguous vertex range [Lo, Hi) of a
// larger graph. Offsets is local with Offsets[0] == 0 and len Hi-Lo+1; Adj
// holds global neighbour ids (which may point anywhere in [0, GlobalVertices)).
// The zero value is an empty slice of an empty graph.
type CSRSlice struct {
	// GlobalVertices is |V| of the full graph the slice was cut from.
	GlobalVertices int
	// Lo, Hi bound the owned global vertex range [Lo, Hi).
	Lo, Hi uint32
	// Offsets indexes Adj: vertex Lo+i's row is Adj[Offsets[i]:Offsets[i+1]].
	Offsets []int64
	// Adj holds global neighbour ids.
	Adj []uint32

	mapped    []byte // non-nil when Offsets/Adj alias an mmap region
	closeGate atomicx.Int32
}

// NumLocal returns the number of vertices the slice owns (Hi - Lo).
func (s *CSRSlice) NumLocal() int { return int(s.Hi - s.Lo) }

// NumSlots returns the number of directed adjacency slots the slice holds.
func (s *CSRSlice) NumSlots() int64 { return int64(len(s.Adj)) }

// Mapped reports whether the slice's arrays alias a memory-mapped file.
func (s *CSRSlice) Mapped() bool { return s.mapped != nil }

// Row returns the adjacency row of global vertex v, which must lie in
// [Lo, Hi). The returned slice aliases the slice's storage.
func (s *CSRSlice) Row(v uint32) []uint32 {
	i := v - s.Lo
	return s.Adj[s.Offsets[i]:s.Offsets[i+1]]
}

// Close releases the memory mapping backing a loaded slice; it is a no-op
// for heap-backed slices and idempotent under concurrent callers (the same
// contract as Graph.Close). After Close the Offsets/Adj arrays of a mapped
// slice must not be used.
func (s *CSRSlice) Close() error {
	if !s.closeGate.CompareAndSwap(0, 1) {
		return nil
	}
	m := s.mapped
	if m == nil {
		return nil
	}
	s.mapped = nil
	s.Offsets = nil
	s.Adj = nil
	return munmapBytes(m)
}

// CheckOffsets64 is the overflow audit every shard writer runs before
// emitting a CSR slice: offsets must be a monotone int64 prefix-sum starting
// at 0 and ending at slots, with byte sizes that survive the 8x/4x scaling
// to file positions and per-vertex degrees that fit the uint32 counters the
// streamed builders use. It exists because the sharded path does arithmetic
// on rebased offsets (global - base) where a silent int or uint32 narrowing
// past 2^31 edges would corrupt the file without failing; every boundary is
// checked here once instead of trusted at each call site.
func CheckOffsets64(offsets []int64, slots int64) error {
	if len(offsets) == 0 {
		return errors.New("graph: empty offsets array")
	}
	if offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	if slots < 0 {
		return fmt.Errorf("graph: negative slot count %d", slots)
	}
	n := len(offsets) - 1
	for v := 0; v < n; v++ {
		d := offsets[v+1] - offsets[v]
		if d < 0 {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		if d > int64(math.MaxUint32) {
			return fmt.Errorf("graph: vertex %d degree %d exceeds the uint32 range", v, d)
		}
	}
	if offsets[n] != slots {
		return fmt.Errorf("graph: offsets[%d] = %d, want slot count %d", n, offsets[n], slots)
	}
	// The byte positions 8*(n+1) and 4*slots are computed in int64 by the
	// writers; reject inputs where that scaling itself would overflow.
	if int64(len(offsets)) > math.MaxInt64/8 || slots > math.MaxInt64/4-sliceHeaderSize {
		return fmt.Errorf("graph: offsets byte size overflows (%d entries, %d slots)", len(offsets), slots)
	}
	return nil
}

// WriteCSRSlice writes s in the slice binary format. The slice is validated
// (CheckOffsets64 plus range checks) before the first byte is written.
func WriteCSRSlice(w io.Writer, s *CSRSlice) error {
	if err := validateSliceShape(s.GlobalVertices, s.Lo, s.Hi, s.Offsets, int64(len(s.Adj))); err != nil {
		return err
	}
	var hdr [sliceHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], sliceMagic)
	binary.LittleEndian.PutUint64(hdr[8:], sliceVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.GlobalVertices))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(s.Lo))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(s.Hi))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(s.Adj)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt64s(w, s.Offsets); err != nil {
		return err
	}
	return writeUint32s(w, s.Adj)
}

// SaveCSRSlice writes s to the named file.
func SaveCSRSlice(path string, s *CSRSlice) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := WriteCSRSlice(bw, s); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// validateSliceShape checks the structural invariants of a slice's metadata
// and offsets without touching the adjacency payload.
func validateSliceShape(globalV int, lo, hi uint32, offsets []int64, slots int64) error {
	if globalV < 0 || int64(hi) > int64(globalV) || lo > hi {
		return fmt.Errorf("graph: slice range [%d,%d) invalid for %d vertices", lo, hi, globalV)
	}
	if len(offsets) != int(hi-lo)+1 {
		return fmt.Errorf("graph: slice has %d offsets for range [%d,%d)", len(offsets), lo, hi)
	}
	return CheckOffsets64(offsets, slots)
}

// readSliceHeader reads and sanity-checks the fixed slice header.
func readSliceHeader(r io.Reader) (globalV uint64, lo, hi uint32, slots uint64, err error) {
	var raw [sliceHeaderSize]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("graph: reading slice header: %w", err)
	}
	magic := binary.LittleEndian.Uint64(raw[0:])
	version := binary.LittleEndian.Uint64(raw[8:])
	globalV = binary.LittleEndian.Uint64(raw[16:])
	rawLo := binary.LittleEndian.Uint64(raw[24:])
	rawHi := binary.LittleEndian.Uint64(raw[32:])
	slots = binary.LittleEndian.Uint64(raw[40:])
	if magic != sliceMagic {
		return 0, 0, 0, 0, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != sliceVersion {
		return 0, 0, 0, 0, fmt.Errorf("graph: unsupported version %d", version)
	}
	if globalV > uint64(^uint32(0)) {
		return 0, 0, 0, 0, fmt.Errorf("graph: header claims %d vertices, above the uint32 id space", globalV)
	}
	if rawLo > rawHi || rawHi > globalV {
		return 0, 0, 0, 0, fmt.Errorf("graph: slice header range [%d,%d) invalid for %d vertices", rawLo, rawHi, globalV)
	}
	if binPayloadSize(rawHi-rawLo, slots) < 0 {
		return 0, 0, 0, 0, fmt.Errorf("graph: header sizes overflow (%d vertices, %d slots)", rawHi-rawLo, slots)
	}
	return globalV, uint32(rawLo), uint32(rawHi), slots, nil
}

// LoadCSRSlice reads a slice written by WriteCSRSlice. On little-endian
// hosts with mmap support the offsets and adjacency arrays alias the page
// cache (the returned slice owns the mapping; call Close); elsewhere the
// portable chunked-read path runs. Both paths validate the header against
// the file size before allocation and the structural invariants (monotone
// local offsets spanning the adjacency, global-range ids) after.
func LoadCSRSlice(path string) (*CSRSlice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if mmapSupported && hostLittleEndian && st.Mode().IsRegular() && st.Size() >= sliceHeaderSize {
		s, err := loadSliceMmap(f, path, st.Size())
		if err == nil {
			return s, nil
		}
		if !errors.Is(err, errMmapFallback) {
			return nil, err
		}
	}
	globalV, lo, hi, slots, err := readSliceHeader(f)
	if err != nil {
		return nil, err
	}
	if need := binPayloadSize(uint64(hi-lo), slots); st.Mode().IsRegular() && need > st.Size()-sliceHeaderSize {
		return nil, fmt.Errorf(
			"graph: %s: header claims %d vertices and %d slots (%d payload bytes) but file holds %d",
			path, hi-lo, slots, need, st.Size()-sliceHeaderSize)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	offsets, err := readInt64s(br, uint64(hi-lo)+1)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: reading offsets: %w", path, err)
	}
	adj, err := readUint32s(br, slots)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: reading adjacency: %w", path, err)
	}
	s := &CSRSlice{GlobalVertices: int(globalV), Lo: lo, Hi: hi, Offsets: offsets, Adj: adj}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadSliceMmap is the zero-copy LoadCSRSlice path; see loadBinaryMmap for
// the contract. The 48-byte header keeps both aliases aligned.
func loadSliceMmap(f *os.File, path string, size int64) (*CSRSlice, error) {
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, errMmapFallback
	}
	ok := false
	defer func() {
		if !ok {
			munmapBytes(data)
		}
	}()
	globalV, lo, hi, slots, err := readSliceHeader(bytes.NewReader(data[:sliceHeaderSize]))
	if err != nil {
		return nil, err
	}
	need := binPayloadSize(uint64(hi-lo), slots)
	if need > size-sliceHeaderSize {
		return nil, fmt.Errorf(
			"graph: %s: header claims %d vertices and %d slots (%d payload bytes) but file holds %d",
			path, hi-lo, slots, need, size-sliceHeaderSize)
	}
	offEnd := sliceHeaderSize + int64(8*(uint64(hi-lo)+1))
	offsets := int64sFromBytes(data[sliceHeaderSize:offEnd])
	var adj []uint32
	if slots > 0 {
		adj = uint32sFromBytes(data[offEnd : offEnd+int64(4*slots)])
	}
	s := &CSRSlice{GlobalVertices: int(globalV), Lo: lo, Hi: hi, Offsets: offsets, Adj: adj, mapped: data}
	if err := s.validate(); err != nil {
		return nil, err
	}
	ok = true
	return s, nil
}

// validate checks a loaded slice's structural invariants: the offsets audit
// plus global-range neighbour ids. Symmetry cannot be audited locally — a
// slice sees only its own rows — so that remains the shard set loader's
// cross-slice responsibility (internal/shard verifies slot totals against
// the manifest).
func (s *CSRSlice) validate() error {
	if err := validateSliceShape(s.GlobalVertices, s.Lo, s.Hi, s.Offsets, int64(len(s.Adj))); err != nil {
		return err
	}
	n := s.GlobalVertices
	for i, u := range s.Adj {
		if int(u) >= n {
			return fmt.Errorf("graph: adjacency slot %d references vertex %d out of range [0,%d)", i, u, n)
		}
	}
	return nil
}

// SliceFromGraph returns the CSR slice of g covering [lo, hi) as views over
// g's storage — no copying. The returned slice's Offsets alias g's offsets
// array rebased lazily via SliceOffsets, so it allocates only the rebased
// offsets (8 bytes per owned vertex); Adj aliases g's adjacency directly.
func SliceFromGraph(g *Graph, lo, hi uint32) (*CSRSlice, error) {
	n := g.NumVertices()
	if int64(hi) > int64(n) || lo > hi {
		return nil, fmt.Errorf("graph: slice range [%d,%d) invalid for %d vertices", lo, hi, n)
	}
	base := g.offsets[lo]
	offsets := make([]int64, int(hi-lo)+1)
	for i := range offsets {
		offsets[i] = g.offsets[int(lo)+i] - base
	}
	return &CSRSlice{
		GlobalVertices: n,
		Lo:             lo,
		Hi:             hi,
		Offsets:        offsets,
		Adj:            g.adj[base:g.offsets[hi]],
	}, nil
}
