package graph

import (
	"fmt"
	"sort"

	"thriftylp/internal/parallel"
)

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm must
// be a bijection on [0, NumVertices()); this is validated. Relabeling is
// the locality-optimizing graph reordering the paper's introduction lists
// among CC's downstream uses, and the mechanism behind the
// degree-vs-vertex-id experiments.
func Relabel(g *Graph, perm []uint32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d vertices", len(perm), n)
	}
	// Bijection validation stays sequential: it is a data-dependent check
	// (seen[p] races under concurrent writes) and first-error determinism
	// matters more here than the one pass over an O(|V|) array.
	seen := make([]bool, n)
	for v, p := range perm {
		if int(p) >= n {
			return nil, fmt.Errorf("graph: perm[%d] = %d out of range", v, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("graph: perm maps two vertices to %d", p)
		}
		seen[p] = true
	}

	// Degrees of the renamed vertices, then prefix-sum. Writes are disjoint
	// (perm is a bijection), so both the scatter of degrees and the segment
	// copies below parallelize without synchronization.
	pool := parallel.Default()
	offsets := make([]int64, n+1)
	parallel.For(pool, n, 1<<15, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			offsets[perm[v]+1] = int64(g.Degree(uint32(v))) //thrifty:benign-race perm is a bijection, so scattered writes are disjoint
		}
	})
	parallel.PrefixSum(pool, offsets)
	adj := make([]uint32, len(g.adj))
	parallel.For(pool, n, 1<<13, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			w := offsets[perm[v]]
			for _, u := range g.Neighbors(uint32(v)) {
				adj[w] = perm[u] //thrifty:benign-race perm is a bijection, so each segment copy is exclusive
				w++
			}
		}
	})
	ng := &Graph{offsets: offsets, adj: adj}
	if n > 0 {
		ng.computeMaxDegree(pool)
	}
	return ng, nil
}

// DegreeDescendingPermutation returns the permutation that renames vertices
// in order of decreasing degree (ties by ascending original id), i.e.
// perm[v] is v's rank. Applying it with Relabel yields a hub-first layout,
// the common "degree sorting" locality optimization for skewed graphs.
func DegreeDescendingPermutation(g *Graph) []uint32 {
	n := g.NumVertices()
	order := make([]uint32, n)
	for v := range order {
		order[v] = uint32(v)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	perm := make([]uint32, n)
	for rank, v := range order {
		perm[v] = uint32(rank)
	}
	return perm
}

// RelabelByDegree is Relabel(g, DegreeDescendingPermutation(g)).
func RelabelByDegree(g *Graph) (*Graph, []uint32, error) {
	perm := DegreeDescendingPermutation(g)
	ng, err := Relabel(g, perm)
	return ng, perm, err
}
