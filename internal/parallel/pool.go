// Package parallel is the shared-memory runtime underneath every algorithm
// in this repository. It reproduces the execution model of the Thrifty paper
// (§V-A): a master-worker pool of persistent threads, edge-balanced
// partitioning of the vertex set into 32×#threads partitions, and a
// work-stealing discipline where each thread processes its own partitions in
// ascending order and steals partitions from other threads in descending
// order.
//
// The paper's runtime is pthreads + futex; here the persistent workers are
// goroutines parked on a condition variable, which is the closest Go
// equivalent (goroutine park/unpark is futex-based on Linux).
package parallel

import (
	"runtime"
	"sync"
)

// Pool is a master-worker pool of persistent goroutines. A Pool is created
// once and reused across all parallel regions of an algorithm run, so that
// iteration loops do not pay goroutine spawn costs per iteration — mirroring
// the paper's persistent pthread workers synchronized with futexes.
type Pool struct {
	mu      sync.Mutex
	work    *sync.Cond // workers wait here for a new job generation
	done    *sync.Cond // master waits here for job completion
	threads int
	job     func(tid int)
	gen     uint64 // increments per submitted job
	active  int    // workers still running the current job
	closed  bool
}

// NewPool creates a pool with the given number of worker goroutines.
// threads <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(threads int) *Pool {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	p := &Pool{threads: threads}
	p.work = sync.NewCond(&p.mu)
	p.done = sync.NewCond(&p.mu)
	for t := 0; t < threads; t++ {
		go p.worker(t)
	}
	return p
}

// Threads returns the number of workers in the pool.
func (p *Pool) Threads() int { return p.threads }

func (p *Pool) worker(tid int) {
	var seen uint64
	for {
		p.mu.Lock()
		for p.gen == seen && !p.closed {
			p.work.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		seen = p.gen
		job := p.job
		p.mu.Unlock()

		job(tid)

		p.mu.Lock()
		p.active--
		if p.active == 0 {
			p.done.Broadcast()
		}
		p.mu.Unlock()
	}
}

// Run executes job(tid) on every worker concurrently and returns when all
// workers have finished. Run must not be called concurrently with itself or
// Close; algorithms call it from a single master goroutine.
//
// A single-thread pool runs the job inline on the calling goroutine: the
// semantics (one invocation with tid 0, Run returns when it finishes) are
// identical, and iteration loops skip two goroutine handoffs per region —
// a fixed cost that dominates sparse-frontier iterations.
func (p *Pool) Run(job func(tid int)) {
	if p.threads == 1 {
		job(0)
		return
	}
	p.mu.Lock()
	p.job = job
	p.gen++
	p.active = p.threads
	gen := p.gen
	p.work.Broadcast()
	for p.active > 0 && p.gen == gen {
		p.done.Wait()
	}
	p.mu.Unlock()
}

// Close shuts the worker goroutines down. The pool must be idle.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.work.Broadcast()
	p.mu.Unlock()
}

var (
	defaultPoolMu sync.Mutex
	defaultPool   *Pool
)

// Default returns a process-wide pool sized to GOMAXPROCS, creating it on
// first use. Algorithms that are not handed an explicit pool use this one.
func Default() *Pool {
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	if defaultPool == nil || defaultPool.threads != runtime.GOMAXPROCS(0) {
		if defaultPool != nil {
			defaultPool.Close()
		}
		defaultPool = NewPool(0)
	}
	return defaultPool
}
