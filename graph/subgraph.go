package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the given vertex set
// (order-insensitive, duplicates rejected), together with the mapping from
// new ids to original ids. Edges with both endpoints in the set survive;
// ids are renumbered densely in ascending original-id order.
//
// This is the downstream operation the paper's introduction motivates CC
// with: after labelling, extract a component (usually the giant) and hand
// it to clustering, reordering or partitioning stages.
func InducedSubgraph(g *Graph, vertices []uint32) (*Graph, []uint32, error) {
	n := g.NumVertices()
	const absent = ^uint32(0)
	newID := make([]uint32, n)
	for i := range newID {
		newID[i] = absent
	}
	for _, v := range vertices {
		if int(v) >= n {
			return nil, nil, fmt.Errorf("graph: subgraph vertex %d out of range [0,%d)", v, n)
		}
		if newID[v] != absent {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in subgraph set", v)
		}
		newID[v] = 0 // mark; final ids assigned below in ascending order
	}
	origID := make([]uint32, 0, len(vertices))
	next := uint32(0)
	for v := 0; v < n; v++ {
		if newID[v] != absent {
			newID[v] = next
			origID = append(origID, uint32(v))
			next++
		}
	}

	m := len(origID)
	offsets := make([]int64, m+1)
	for i, ov := range origID {
		cnt := int64(0)
		for _, u := range g.Neighbors(ov) {
			if newID[u] != absent {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + cnt
	}
	adj := make([]uint32, offsets[m])
	for i, ov := range origID {
		w := offsets[i]
		for _, u := range g.Neighbors(ov) {
			if newID[u] != absent {
				adj[w] = newID[u]
				w++
			}
		}
	}
	sub := &Graph{offsets: offsets, adj: adj}
	if m > 0 {
		sub.computeMaxDegree(nil)
	}
	return sub, origID, nil
}

// ComponentSubgraph extracts the component with the given label from a
// labelling of g (as produced by any cc algorithm), returning the induced
// subgraph and the new→original id mapping.
func ComponentSubgraph(g *Graph, labels []uint32, label uint32) (*Graph, []uint32, error) {
	if len(labels) != g.NumVertices() {
		return nil, nil, fmt.Errorf("graph: labelling has %d entries for %d vertices", len(labels), g.NumVertices())
	}
	var members []uint32
	for v, l := range labels {
		if l == label {
			members = append(members, uint32(v))
		}
	}
	return InducedSubgraph(g, members)
}
