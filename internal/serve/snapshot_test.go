package serve

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/atomicx"
)

// writeTestGraph generates a small deterministic graph and saves it as a
// binary CSR, returning the path. Loading it back through graph.Ingest (or
// LoadBinary) yields a mapped graph on capable hosts — which is the point:
// these tests want real munmap stakes, so a refcount bug is a crash or a
// race report, not a silent pass.
func writeTestGraph(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	g, err := gen.RMATCompact(gen.DefaultRMAT(9, 8, seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".bin")
	if err := graph.SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadMapped loads a binary graph and solves it, returning a fresh
// snapshot holding its owner reference.
func loadMapped(t *testing.T, path string) *Snapshot {
	t.Helper()
	g, err := graph.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoThrifty, g)
	if err != nil {
		t.Fatal(err)
	}
	return NewSnapshot(g, res, path, nil)
}

// TestSnapshotCensus pins the precomputed census against the Result's own
// accounting.
func TestSnapshotCensus(t *testing.T) {
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	sn := loadMapped(t, path)
	defer sn.Release()

	if got, want := sn.NumComponents(), sn.Result.NumComponents(); got != want {
		t.Errorf("NumComponents = %d, want %d", got, want)
	}
	wantLabel, wantSize := sn.Result.LargestComponent()
	gotLabel, gotSize := sn.Largest()
	if gotLabel != wantLabel || gotSize != wantSize {
		t.Errorf("Largest = (%d,%d), want (%d,%d)", gotLabel, gotSize, wantLabel, wantSize)
	}
	var total int64
	for _, l := range sn.Result.Labels {
		if sn.SizeOf(l) <= 0 {
			t.Fatalf("label %d has non-positive size", l)
		}
	}
	for l := range sn.Result.ComponentSizes() {
		total += sn.SizeOf(l)
	}
	if total != int64(sn.NumVertices()) {
		t.Errorf("sizes sum to %d, want %d vertices", total, sn.NumVertices())
	}
}

// TestSourceAcquireRelease pins the single-threaded lifecycle: acquire
// bumps the count, release drops it, retire drops the owner reference, and
// the mapped graph closes exactly when the last reference goes.
func TestSourceAcquireRelease(t *testing.T) {
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	sn := loadMapped(t, path)
	mapped := sn.Graph.Mapped()

	var src Source
	if got := src.Acquire(); got != nil {
		t.Fatal("Acquire on empty source returned a snapshot")
	}
	src.Publish(sn)
	if sn.Refs() != 1 {
		t.Fatalf("published snapshot refs = %d, want 1 (owner)", sn.Refs())
	}

	a := src.Acquire()
	if a != sn {
		t.Fatal("Acquire returned a different snapshot")
	}
	if sn.Refs() != 2 {
		t.Fatalf("refs after acquire = %d, want 2", sn.Refs())
	}

	src.Retire()
	if got := src.Acquire(); got != nil {
		t.Fatal("Acquire after Retire returned a snapshot")
	}
	// The reader still holds the last reference: the graph must be alive.
	if mapped {
		if err := sn.Graph.Validate(); err != nil {
			t.Fatalf("graph invalid while a reference is held: %v", err)
		}
	}
	a.Release()
	if sn.Refs() != 0 {
		t.Fatalf("refs after final release = %d, want 0", sn.Refs())
	}
	if mapped {
		if err := sn.Graph.Validate(); !graph.ErrUseAfterClose(err) {
			t.Fatalf("graph not closed after last release: Validate = %v", err)
		}
	}
}

// TestSnapshotOverReleasePanics: a release beyond the acquire count is a
// caller bug and must fail loudly, not corrupt the count.
func TestSnapshotOverReleasePanics(t *testing.T) {
	path := writeTestGraph(t, t.TempDir(), "g", 42)
	sn := loadMapped(t, path)
	sn.Release() // owner reference: refs now 0, graph closed
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	sn.Release()
}

// TestSnapshotLifecycleProperty is the refcount property test: readers
// acquire and release at random while a swapper publishes fresh mapped
// snapshots; afterwards, for every snapshot ever published, release-count
// must equal acquire-count (a release never exceeds the acquires that
// justified it — over-release would have panicked mid-run), every count
// must be at zero, and every mapped graph must be closed.
func TestSnapshotLifecycleProperty(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeTestGraph(t, dir, "a", 42),
		writeTestGraph(t, dir, "b", 43),
	}

	var src Source
	var acquires, releases atomicx.Int64
	published := make([]*Snapshot, 0, 32)

	first := loadMapped(t, paths[0])
	published = append(published, first)
	src.Publish(first)

	const readers = 8
	const swaps = 24
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]*Snapshot, 0, 4)
			defer func() {
				for _, sn := range held {
					sn.Release()
					releases.Add(1)
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if len(held) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(held))
					held[i].Release()
					releases.Add(1)
					held = append(held[:i], held[i+1:]...)
					continue
				}
				sn := src.Acquire()
				if sn == nil {
					continue
				}
				acquires.Add(1)
				// Touch the mapped arrays while holding the reference: if
				// a swap's munmap could fire under us, this faults (and
				// the racing Close write is a -race report).
				v := uint32(rng.Intn(sn.NumVertices()))
				_ = sn.ComponentOf(v)
				_ = sn.Graph.Neighbors(v)
				_ = sn.Graph.Mapped()
				if rng.Intn(2) == 0 {
					sn.Release()
					releases.Add(1)
				} else {
					held = append(held, sn)
				}
			}
		}(int64(i))
	}

	for k := 0; k < swaps; k++ {
		sn := loadMapped(t, paths[k%len(paths)])
		published = append(published, sn)
		src.Publish(sn)
	}
	src.Retire()
	close(stop)
	wg.Wait()

	if a, r := acquires.Load(), releases.Load(); a != r {
		t.Fatalf("acquires = %d, releases = %d; counts must match after drain", a, r)
	}
	for i, sn := range published {
		if refs := sn.Refs(); refs != 0 {
			t.Errorf("snapshot %d final refs = %d, want 0", i, refs)
		}
		if sn.Graph.Mapped() {
			t.Errorf("snapshot %d still mapped after final release", i)
		}
	}
}

// TestChaosSwapAcquireRace hammers the acquire-vs-swap window specifically:
// single-use readers against a tight swap loop, so the race detector gets
// maximal overlap between tryRef CAS loops and Publish's owner release. Run
// under -race this is the "munmap never races an in-flight query" proof.
func TestChaosSwapAcquireRace(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeTestGraph(t, dir, "a", 7),
		writeTestGraph(t, dir, "b", 8),
	}
	var src Source
	src.Publish(loadMapped(t, paths[0]))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := src.Acquire()
				if sn == nil {
					return
				}
				_ = sn.ComponentOf(0)
				_ = sn.Graph.Degree(0)
				sn.Release()
			}
		}()
	}
	for k := 0; k < 40; k++ {
		src.Publish(loadMapped(t, paths[k%2]))
	}
	src.Retire()
	close(stop)
	wg.Wait()
}
