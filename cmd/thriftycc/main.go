// Command thriftycc runs a connected-components algorithm on a graph and
// reports the component census and timing.
//
// The graph comes either from a file (-in, text edge list or .bin binary
// CSR produced by graphgen), from a sharded CSR set directory (-in pointed
// at a directory graphgen -shards produced — solved out-of-core, one shard
// resident at a time), or from an inline generator spec (-gen):
//
//	thriftycc -gen rmat:20:16 -algo thrifty
//	thriftycc -gen road:1000000 -algo afforest -verify
//	thriftycc -in graph.bin -algo all -reps 3
//	thriftycc -in shards-dir/ -verify -labels out.labels
//	thriftycc -gen web:16 -algo shard -shards 8
//
// Generator specs: rmat:<scale>[:<edgefactor>], road:<vertices>,
// er:<vertices>[:<edges>], web:<scale>, ba:<vertices>[:<m>],
// star:<vertices>, path:<vertices>.
//
// -shards sets the shard count for -algo shard runs; -labels writes the
// computed per-vertex labels (one decimal per line, vertex order) so
// results can be diffed across paths.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/core"
	"thriftylp/internal/dist"
	"thriftylp/internal/obs"
	"thriftylp/internal/parallel"
	"thriftylp/internal/shard"
	"thriftylp/internal/stats"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph file (edge list, or .bin/.csr binary CSR)")
		genSpec = flag.String("gen", "", "generator spec (see package doc) used when -in is empty")
		algo    = flag.String("algo", "thrifty", "algorithm: "+algoNames()+", or 'all'")
		reps    = flag.Int("reps", 1, "timed repetitions (min reported)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		verify  = flag.Bool("verify", false, "validate the result against the sequential oracle")
		stat    = flag.Bool("stats", false, "print degree-distribution and census statistics")
		inst    = flag.Bool("instrument", false, "print software event counters and per-iteration trace")
		timeout = flag.Duration("timeout", 0, "abort runs after this duration (0 = no limit)")
		trace   = flag.String("trace", "", "write per-iteration trace records to this JSONL file")
		httpAd  = flag.String("http", "", "serve /metrics, expvar and /debug/pprof on this address (e.g. :6060 or :0)")
		hold    = flag.Bool("hold", false, "with -http: keep the debug server alive after the runs until SIGINT")
		logLvl  = flag.String("log", "", "structured run logging to stderr: info or debug (default off)")
		shards  = flag.Int("shards", 0, "shard count for -algo shard (0 = default)")
		labels  = flag.String("labels", "", "write the computed per-vertex labels to this file (one per line)")
	)
	flag.Parse()

	// SIGINT cancels the runs cooperatively: the current algorithm stops at
	// its next iteration boundary and the process exits non-zero, instead of
	// dying mid-write or needing SIGKILL. A second SIGINT kills immediately
	// (signal.NotifyContext restores default handling after the first).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	env := &runEnv{log: obs.NopLogger(), dataset: datasetName(*in, *genSpec)}
	switch *logLvl {
	case "":
	case "info":
		env.log = obs.NewLogger(os.Stderr, slog.LevelInfo, false)
	case "debug":
		env.log = obs.NewLogger(os.Stderr, slog.LevelDebug, false)
	default:
		fatalf("-log must be info or debug, got %q", *logLvl)
	}
	if *httpAd != "" {
		env.reg = obs.NewRegistry()
		srv, err := obs.Serve(*httpAd, env.reg, env.log)
		if err != nil {
			fatalf("%v", err)
		}
		// Graceful teardown: an in-flight scrape (a -hold session usually has
		// one) gets 2s to finish; held sockets past that are aborted by
		// Shutdown's internal Close fallback.
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			srv.Shutdown(sctx)
		}()
		// Printed on stdout so scripts (and the CI smoke job) can discover
		// the resolved port when -http :0 is used.
		fmt.Printf("debug server listening on %s\n", srv.URL())
	}
	if *trace != "" {
		tw, err := obs.CreateTrace(*trace)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := tw.Close(); err != nil {
				fatalf("closing trace: %v", err)
			}
		}()
		env.trace = tw
	}

	// A directory input is a sharded CSR set: solve it out-of-core (one
	// shard's adjacency resident at a time) instead of loading a graph.
	if *in != "" && shard.IsSetDir(*in) {
		if err := runShardDir(ctx, *in, *reps, *threads, *verify, *labels); err != nil {
			fatalf("%v", err)
		}
		return
	}

	g, ist, err := loadGraph(*in, *genSpec, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("graph: %d vertices, %d edges (max degree %d)\n",
		g.NumVertices(), g.NumEdges(), g.Degree(g.MaxDegreeVertex()))
	if ist != nil {
		fmt.Printf("ingest: %s, %.1f MB in %.3f ms (load %.3f + build %.3f)\n",
			ist.Format, float64(ist.Bytes)/1e6,
			float64(ist.Total().Nanoseconds())/1e6,
			float64(ist.LoadDuration.Nanoseconds())/1e6,
			float64(ist.BuildDuration.Nanoseconds())/1e6)
		if env.trace != nil {
			if err := env.trace.WriteIngest(env.dataset,
				ist.LoadDuration.Nanoseconds(), ist.BuildDuration.Nanoseconds()); err != nil {
				fatalf("writing trace: %v", err)
			}
		}
	}

	if *stat {
		printStats(g)
	}

	algos := []cc.Algorithm{cc.Algorithm(*algo)}
	if *algo == "all" {
		algos = cc.Algorithms()
	}

	for _, a := range algos {
		if err := runOne(ctx, a, g, ist, *reps, *threads, *shards, *verify, *inst, *labels, env); err != nil {
			var ce *cc.CanceledError
			if errors.As(err, &ce) {
				if errors.Is(err, context.DeadlineExceeded) {
					fatalf("%s: timeout after %v (%d iterations completed)", a, *timeout, ce.Iterations)
				}
				fatalf("%s: interrupted (%d iterations completed)", a, ce.Iterations)
			}
			fatalf("%s: %v", a, err)
		}
	}

	if *hold && *httpAd != "" {
		fmt.Println("holding for debug server; interrupt (Ctrl-C) to exit")
		<-ctx.Done()
	}
}

// runEnv carries the observability sinks shared by all runs of an invocation.
type runEnv struct {
	trace   *obs.TraceWriter
	reg     *obs.Registry
	log     *slog.Logger
	dataset string
}

// datasetName labels trace records with the graph's provenance.
func datasetName(in, spec string) string {
	if in != "" {
		return in
	}
	return spec
}

func algoNames() string {
	names := make([]string, 0, len(cc.Algorithms()))
	for _, a := range cc.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

func runOne(ctx context.Context, a cc.Algorithm, g *graph.Graph, ist *graph.IngestStats, reps, threads, shards int, verify, instrument bool, labelsOut string, env *runEnv) error {
	var opts []cc.Option
	if threads > 0 {
		opts = append(opts, cc.WithThreads(threads))
	}
	if shards > 0 {
		opts = append(opts, cc.WithShards(shards))
	}
	if ist != nil {
		opts = append(opts, cc.WithIngestStats(*ist))
	}
	var instData *cc.Instrumentation
	// Tracing needs the per-iteration record stream, which only the
	// instrumented (counting) path produces.
	if instrument || env.trace != nil {
		instData = &cc.Instrumentation{}
		opts = append(opts, cc.WithInstrumentation(instData))
	}
	rlog := obs.RunLogger{Log: env.log}
	nthreads := threads
	if nthreads == 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	rlog.Start(a, g.NumVertices(), g.NumEdges(), nthreads)

	best := time.Duration(1<<63 - 1)
	var res cc.Result
	var err error
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err = cc.RunContext(ctx, a, g, opts...)
		if err != nil {
			var ce *cc.CanceledError
			if errors.As(err, &ce) {
				rlog.Canceled(ce)
			}
			return err
		}
		if env.trace != nil {
			// Auto runs emit their selection record first (no-op otherwise),
			// so the trace explains the iterations that follow.
			if terr := env.trace.WriteSelector(env.dataset, i, res.Stats); terr != nil {
				return fmt.Errorf("writing trace: %w", terr)
			}
			if terr := env.trace.WriteRun(string(a), env.dataset, i, instData.Iterations); terr != nil {
				return fmt.Errorf("writing trace: %w", terr)
			}
		}
		if env.reg != nil {
			env.reg.ObserveRun(&res)
		}
		if instData != nil {
			rlog.Iterations(a, instData.Iterations)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	rlog.Done(&res)
	fmt.Printf("%-14s %10.3f ms   %d components, %d iterations (%d push, %d pull)\n",
		a, float64(best.Nanoseconds())/1e6, res.NumComponents(), res.Iterations,
		res.PushIterations, res.PullIterations)
	if res.Stats != nil && res.Stats.Probe != nil {
		p := res.Stats.Probe
		fmt.Printf("  auto: selected %s (%s) skew=%.1f hub-frac=%.3f mean-deg=%.2f coverage=%.2f probe-cost=%v\n",
			res.Stats.Selected, p.Reason, p.SkewRatio, p.HubEdgeFraction,
			p.MeanDegree, p.SampleCoverage, p.Cost.Round(time.Microsecond))
	}
	if res.Stats != nil && res.Stats.Shard != nil {
		printShardStats(res.Stats.Shard)
	}
	if labelsOut != "" {
		if err := writeLabels(labelsOut, res.Labels); err != nil {
			return fmt.Errorf("writing %s: %w", labelsOut, err)
		}
		fmt.Printf("  labels: wrote %d to %s\n", len(res.Labels), labelsOut)
	}

	if instrument {
		fmt.Printf("  events: ")
		for _, k := range []string{"edges", "vertex-visits", "label-loads", "label-stores", "cas-ops", "branch-checks", "cache-lines"} {
			fmt.Printf("%s=%d ", k, instData.Events[k])
		}
		fmt.Println()
		for _, it := range instData.Iterations {
			fmt.Printf("  iter %3d %-13s active=%-10d changed=%-10d zero=%-10d edges=%-12d density=%.4f%% time=%v\n",
				it.Index, it.Kind, it.Active, it.Changed, it.ConvergedZero, it.Edges, it.Density*100, it.Duration.Round(time.Microsecond))
		}
	}

	if verify {
		if cc.Verify(g, res.Labels) {
			fmt.Printf("  verify: OK (matches sequential oracle)\n")
		} else {
			return fmt.Errorf("verification FAILED")
		}
	}
	return nil
}

// runShardDir solves an on-disk shard set out-of-core: one shard's adjacency
// resident at a time, boundary labels exchanged between rounds. -verify
// re-walks every shard checking edge consistency and label canonicality
// instead of consulting the whole-graph oracle, which would require loading
// the graph this path exists to avoid loading.
func runShardDir(ctx context.Context, dir string, reps, threads int, verify bool, labelsOut string) error {
	set, err := shard.Open(dir)
	if err != nil {
		return err
	}
	m := set.Manifest
	var slots int64
	for _, info := range m.Shards {
		slots += info.Slots
	}
	fmt.Printf("shard set: %d vertices, %d shards, %d directed slots, hub %d\n",
		m.Vertices, set.Shards(), slots, m.Hub)

	cfg := dist.Config{}
	if threads > 0 {
		pool := parallel.NewPool(threads)
		defer pool.Close()
		cfg.Pool = pool
	}
	if ctx.Done() != nil {
		stop := &core.Stop{}
		cfg.Stop = stop
		defer context.AfterFunc(ctx, stop.Request)()
	}

	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<63 - 1)
	var res dist.Result
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err = dist.RunSource(set, cfg)
		if err != nil {
			return err
		}
		if res.Canceled {
			return fmt.Errorf("interrupted after %d exchange rounds", res.Rounds)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}

	census := stats.Census(res.Labels)
	fmt.Printf("%-14s %10.3f ms   %d components, %d rounds, %d local iterations\n",
		"shard(disk)", float64(best.Nanoseconds())/1e6,
		census.NumComponents, res.Rounds, res.LocalIterations)
	printShardStats(&cc.ShardStats{
		Shards:             set.Shards(),
		Rounds:             res.Rounds,
		LocalIterations:    res.LocalIterations,
		BoundaryEntries:    res.BoundaryEntries,
		ExchangedBytes:     res.ExchangedBytes,
		NaiveBytes:         res.NaiveBytes,
		Pairs:              res.Pairs,
		SuppressedVertices: res.SuppressedVertices,
	})
	if labelsOut != "" {
		if err := writeLabels(labelsOut, res.Labels); err != nil {
			return fmt.Errorf("writing %s: %w", labelsOut, err)
		}
		fmt.Printf("  labels: wrote %d to %s\n", len(res.Labels), labelsOut)
	}
	if verify {
		if err := verifyShardLabels(set, res.Labels); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Printf("  verify: OK (edge-consistent, canonical labels across all shards)\n")
	}
	return nil
}

// printShardStats reports the exchange cost model of a sharded run.
func printShardStats(st *cc.ShardStats) {
	ratio := 0.0
	if st.ExchangedBytes > 0 {
		ratio = float64(st.NaiveBytes) / float64(st.ExchangedBytes)
	}
	fmt.Printf("  shard: %d shards, %d rounds, boundary=%d exchanged=%dB naive=%dB (%.2fx) pairs=%d suppressed=%d\n",
		st.Shards, st.Rounds, st.BoundaryEntries, st.ExchangedBytes, st.NaiveBytes,
		ratio, st.Pairs, st.SuppressedVertices)
}

// verifyShardLabels checks the labelling without materialising the graph:
// every nonzero label must name its component's minimum vertex (which carries
// that label itself, at an id no larger than any member), and a re-walk of
// every shard must find both endpoints of every edge agreeing.
func verifyShardLabels(set *shard.Set, labels []uint32) error {
	for v, l := range labels {
		if l == 0 {
			continue
		}
		if int(l-1) > v || labels[l-1] != l {
			return fmt.Errorf("vertex %d: label %d is not canonical", v, l)
		}
	}
	for i := 0; i < set.Shards(); i++ {
		sl, err := set.Slice(i)
		if err != nil {
			return err
		}
		for v := sl.Lo; v < sl.Hi; v++ {
			for _, w := range sl.Row(v) {
				if labels[v] != labels[w] {
					set.Release(sl)
					return fmt.Errorf("edge (%d,%d): labels %d vs %d", v, w, labels[v], labels[w])
				}
			}
		}
		if err := set.Release(sl); err != nil {
			return err
		}
	}
	return nil
}

// writeLabels writes one decimal label per line, in vertex order.
func writeLabels(path string, labels []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	buf := make([]byte, 0, 12)
	for _, l := range labels {
		buf = strconv.AppendUint(buf[:0], uint64(l), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printStats(g *graph.Graph) {
	ds := stats.Degrees(g)
	fmt.Printf("degrees: min=%d max=%d mean=%.2f median=%d p99=%d skew=%.1f alpha=%.2f power-law=%v\n",
		ds.Min, ds.Max, ds.Mean, ds.Median, ds.P99, ds.SkewRatio, ds.Alpha, stats.IsSkewed(ds))
	census := stats.Census(cc.Sequential(g))
	fmt.Printf("components: %d total, largest holds %.1f%% of vertices\n",
		census.NumComponents, 100*census.LargestFraction)
}

// loadGraph resolves -in/-gen to a graph. File inputs go through the
// measured ingestion pipeline and return its stats; generated graphs have no
// ingestion phase and return nil stats.
func loadGraph(in, spec string, seed uint64) (*graph.Graph, *graph.IngestStats, error) {
	if in != "" {
		g, st, err := graph.Ingest(in)
		if err != nil {
			return nil, nil, err
		}
		return g, &st, nil
	}
	g, err := genGraph(spec, seed)
	return g, nil, err
}

func genGraph(spec string, seed uint64) (*graph.Graph, error) {
	if spec == "" {
		return nil, fmt.Errorf("need -in or -gen")
	}
	parts := strings.Split(spec, ":")
	argInt := func(i, def int) (int, error) {
		if len(parts) <= i || parts[i] == "" {
			return def, nil
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "rmat":
		scale, err := argInt(1, 18)
		if err != nil {
			return nil, err
		}
		ef, err := argInt(2, 16)
		if err != nil {
			return nil, err
		}
		return gen.RMATCompact(gen.DefaultRMAT(scale, ef, seed))
	case "road":
		n, err := argInt(1, 1<<20)
		if err != nil {
			return nil, err
		}
		return gen.Road(n, seed)
	case "er":
		n, err := argInt(1, 1<<18)
		if err != nil {
			return nil, err
		}
		m, err := argInt(2, 8*n)
		if err != nil {
			return nil, err
		}
		return gen.ErdosRenyi(n, m, seed)
	case "web":
		scale, err := argInt(1, 16)
		if err != nil {
			return nil, err
		}
		return gen.Web(gen.DefaultWeb(scale, seed))
	case "ba":
		n, err := argInt(1, 1<<18)
		if err != nil {
			return nil, err
		}
		m, err := argInt(2, 8)
		if err != nil {
			return nil, err
		}
		return gen.BarabasiAlbert(n, m, seed)
	case "star":
		n, err := argInt(1, 1<<20)
		if err != nil {
			return nil, err
		}
		return gen.Star(n)
	case "path":
		n, err := argInt(1, 1<<20)
		if err != nil {
			return nil, err
		}
		return gen.Path(n)
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "thriftycc: "+format+"\n", args...)
	os.Exit(1)
}
