package core

import (
	"unsafe"

	"thriftylp/internal/counters"
)

// This file defines the compile-time instrumentation policy the traversal
// kernels are generic over. Every kernel (Thrifty push/pull/initial-push,
// DO-LP push/pull, unified DO-LP push/pull, plain LP, and the sweeps they
// run under) is written once, parameterized by a policy type; the run's
// Config selects the policy once, so hot loops never branch on "is
// instrumentation on?" per edge.
//
//   - noInstr is the fast path: every hook is an empty method on a
//     zero-size value. Go monomorphizes generic functions per concrete
//     value shape, so the noInstr instantiation compiles to the bare
//     traversal loop with zero instrumentation residue — no counter
//     accumulation, no line tracking, no nil checks.
//   - counting is the instrumented path: hooks accumulate into a
//     per-worker chunkCounts block (registers/stack, flushed once per
//     chunk) and feed the LineTracker, exactly as the pre-policy kernels
//     did, so counter totals are bit-identical to historical runs.
//
// The self-referential constraint (instr[I any] with Fresh() I) lets Fresh
// return the policy's own concrete type without boxing: each worker calls
// Fresh once to get a private instance with its own counter block, keeping
// the hot loop free of cross-thread sharing.
type instr[I any] interface {
	// Fresh returns a per-worker/per-chunk instance owning a private
	// counter block. Hooks must only be invoked on instances returned by
	// Fresh.
	Fresh() I
	// Visit, Edge, Load, Store, CAS and Branch record one occurrence of
	// the corresponding counters.Event.
	Visit()
	Edge()
	Load()
	Store()
	CAS()
	Branch()
	// Touch records an access to v's labels-array cache line.
	Touch(v uint32)
	// Flush folds the accumulated counts into the shared sink under tid.
	Flush(tid int)
}

// Cancellation is deliberately NOT part of the policy interface. A policy
// carrying a *Stop would be non-zero-size, and a non-zero policy loses the
// dead-code folding below: every per-edge hook becomes a live
// dictionary-dispatched call, which measures 3-6x slower than the bare loop.
// Since the CLIs always arm a signal context, that would tax every real run.
// Instead the kernels receive the stop flag as an explicit parameter and poll
// it at partition boundaries only (sweep-chunk entry, frontier-vertex
// granularity in pushes) — a nil-safe flag read whose cost is one predictable
// branch per partition, independent of the policy instantiation.

// noInstr is the zero-cost policy selected when counters, line tracking and
// tracing are all disabled. All hooks compile to nothing.
type noInstr struct{}

func (noInstr) Fresh() noInstr { return noInstr{} }
func (noInstr) Visit()         {}
func (noInstr) Edge()          {}
func (noInstr) Load()          {}
func (noInstr) Store()         {}
func (noInstr) CAS()           {}
func (noInstr) Branch()        {}
func (noInstr) Touch(uint32)   {}
func (noInstr) Flush(int)      {}

// counting is the instrumented policy: per-chunk local accumulation into
// chunkCounts (mutated through the pointer field so the policy itself can
// stay a value type and monomorphize), flushed to the shared Counters once
// per chunk, plus cache-line tracking.
type counting struct {
	ck    *chunkCounts
	ctr   *counters.Counters
	lines *counters.LineTracker
}

// newCounting returns the instrumented-policy prototype for one run. The
// prototype has no counter block; workers obtain usable instances via Fresh.
func newCounting(cfg Config) counting {
	return counting{ctr: cfg.Ctr, lines: cfg.Lines}
}

func (c counting) Fresh() counting {
	return counting{ck: new(chunkCounts), ctr: c.ctr, lines: c.lines}
}
func (c counting) Visit()         { c.ck.visits++ }
func (c counting) Edge()          { c.ck.edges++ }
func (c counting) Load()          { c.ck.loads++ }
func (c counting) Store()         { c.ck.stores++ }
func (c counting) CAS()           { c.ck.cas++ }
func (c counting) Branch()        { c.ck.branches++ }
func (c counting) Touch(v uint32) { c.lines.Touch(v) }
func (c counting) Flush(tid int)  { c.ck.flush(c.ctr, tid) }

// fastInstr reports whether the run can take the fully uninstrumented fast
// path: no event counters, no cache-line tracking, and no per-iteration
// trace (trace records derive their edge totals from the counters).
func (c Config) fastInstr() bool {
	return c.Ctr == nil && c.Lines == nil && !c.Trace.Enabled()
}

// The hook gates below are what make the fast path truly zero-cost. Go
// compiles generic functions per gc-shape and dispatches type-parameter
// method calls through a runtime dictionary — an indirect call per hook,
// which in a per-edge loop costs more than the counters it replaces. Each
// gate checks unsafe.Sizeof(ins), a compile-time constant per
// instantiation: for the zero-size noInstr policy the condition folds to
// false and the gate — dictionary call included — is eliminated as dead
// code, leaving the bare traversal loop. The gates are small enough that
// the inliner always folds them into the kernels' worker closures.

func iVisit[I instr[I]](ins I) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Visit()
	}
}

func iEdge[I instr[I]](ins I) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Edge()
	}
}

func iLoad[I instr[I]](ins I) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Load()
	}
}

func iStore[I instr[I]](ins I) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Store()
	}
}

func iCAS[I instr[I]](ins I) {
	if unsafe.Sizeof(ins) != 0 {
		ins.CAS()
	}
}

func iBranch[I instr[I]](ins I) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Branch()
	}
}

func iTouch[I instr[I]](ins I, v uint32) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Touch(v)
	}
}

func iFlush[I instr[I]](ins I, tid int) {
	if unsafe.Sizeof(ins) != 0 {
		ins.Flush(tid)
	}
}
