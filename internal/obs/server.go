package obs

import (
	"context"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar name: expvar.Publish panics
// on duplicates, and tests may start several servers in one process.
var publishOnce sync.Once

// Server is the optional debug HTTP server behind the CLIs' -http flag. It
// serves:
//
//	/metrics            Prometheus text format, fed from the run Registry
//	/debug/vars         expvar JSON (includes the registry as "thriftylp")
//	/debug/pprof/*      the standard runtime profiles
//	/                   a plain-text index of the endpoints
//
// The server runs on its own goroutine and its own mux, so importing
// net/http/pprof here does not expose profiles on any application mux.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
}

// Serve binds addr (host:port; ":0" picks a free port) and starts the debug
// server. It returns once the listener is bound, so Addr/URL are immediately
// valid. log, when non-nil, receives a startup event and any serve error.
func Serve(addr string, reg *Registry, log *slog.Logger) (*Server, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	publishOnce.Do(func() {
		expvar.Publish("thriftylp", expvar.Func(func() any { return reg.Snapshot() }))
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "thriftylp debug server")
		fmt.Fprintln(w, "  /metrics        Prometheus text metrics")
		fmt.Fprintln(w, "  /debug/vars     expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/   runtime profiles")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, reg: reg}
	//thrifty:goroutine Serve returns ErrServerClosed when Server.Close shuts the listener
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed && log != nil {
			log.Error("debug server stopped", "err", err)
		}
	}()
	if log != nil {
		log.Info("debug server listening", "url", s.URL())
	}
	return s, nil
}

// Addr returns the bound listen address (resolved, so ":0" shows the port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Registry returns the registry the server publishes.
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the server immediately (in-flight requests are aborted; the
// debug server has no graceful-drain requirement).
func (s *Server) Close() error {
	err := s.srv.Close()
	// The listener is closed directly as well: Serve runs on its own
	// goroutine, so a teardown racing startup can find the listener not yet
	// tracked by the http.Server — its close must not depend on that.
	s.ln.Close()
	return err
}

// Shutdown drains the server gracefully: the listener closes immediately (no
// new scrapes), idle keep-alive connections are torn down, and in-flight
// requests get until ctx's deadline to finish. Held sockets — a client that
// opened a connection and never completed a request, or a scrape that won't
// finish — cannot hold Shutdown past the deadline: it returns ctx.Err() and
// the caller falls back to Close. Shutdown then Close is the teardown
// sequence thriftycc's -hold uses, and thriftyd mirrors it for its own
// debug server during drain.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with connections still open: abort them so the
		// sockets release now rather than at process exit.
		s.srv.Close()
	}
	// See Close for why the listener is closed directly too.
	s.ln.Close()
	return err
}
