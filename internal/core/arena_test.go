package core

import (
	"testing"

	"thriftylp/graph/gen"
)

// TestArenaReuseKeepsResultsCorrect runs every arena-wired kernel twice on
// the same arena and checks both results against the sequential oracle: the
// second run's recycled buffers must not leak state from the first.
func TestArenaReuseKeepsResultsCorrect(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 3)))
	oracle := SeqCC(g)
	algos := map[string]func(cfg Config) Result{
		"thrifty":       func(cfg Config) Result { return Thrifty(g, cfg) },
		"dolp":          func(cfg Config) Result { return DOLP(g, cfg) },
		"dolp-unified":  func(cfg Config) Result { return DOLPUnified(g, cfg) },
		"lp":            func(cfg Config) Result { return LP(g, cfg) },
		"sv":            func(cfg Config) Result { return ShiloachVishkin(g, cfg) },
		"afforest":      func(cfg Config) Result { return Afforest(g, cfg) },
		"jt":            func(cfg Config) Result { return JayantiTarjan(g, cfg) },
		"bfs":           func(cfg Config) Result { return BFSCC(g, cfg) },
		"fastsv":        func(cfg Config) Result { return FastSV(g, cfg) },
		"connectit-bfs": func(cfg Config) Result { return ConnectItBFS(g, cfg) },
	}
	for name, run := range algos {
		t.Run(name, func(t *testing.T) {
			a := &Arena{}
			for rep := 0; rep < 3; rep++ {
				a.BeginRun()
				res := run(Config{Arena: a})
				if !Equivalent(res.Labels, oracle) {
					t.Fatalf("rep %d: labels disagree with oracle", rep)
				}
			}
		})
	}
}

// TestArenaRecyclesBuffers: the second run on the same-size graph must get
// the same backing array back, and a size change must not (silently) hand
// out a short buffer.
func TestArenaRecyclesBuffers(t *testing.T) {
	a := &Arena{}
	a.BeginRun()
	b1 := a.Uint32s(1000)
	a.BeginRun()
	b2 := a.Uint32s(1000)
	if &b1[0] != &b2[0] {
		t.Fatal("same-size reacquisition did not recycle the buffer")
	}
	a.BeginRun()
	b3 := a.Uint32s(2000)
	if len(b3) != 2000 {
		t.Fatalf("len = %d, want 2000", len(b3))
	}
	// Shrinking reuses the larger backing array.
	a.BeginRun()
	b4 := a.Uint32s(500)
	if len(b4) != 500 {
		t.Fatalf("len = %d, want 500", len(b4))
	}
	if &b3[0] != &b4[0] {
		t.Fatal("shrunk reacquisition did not recycle the grown buffer")
	}
}

// TestArenaWorklistResetsStaleMarks: recycle a worklist whose mark array
// holds marks its truncated lists no longer account for (the stale detailed
// frontier of a bygone run) and check the next run sees a clean set.
func TestArenaWorklistResetsStaleMarks(t *testing.T) {
	a := &Arena{}
	a.BeginRun()
	s := a.Worklist(64, 2)
	s.AddUnchecked(0, 7)
	s.AddUnchecked(1, 33)
	s.Reset() // per-iteration reset: unmarks only the queued vertices
	s.AddUnchecked(0, 12)
	// 12 is marked but its list entry is abandoned without Reset — the
	// stale state an arena hand-off must clear.
	a.BeginRun()
	s2 := a.Worklist(64, 2)
	if s2 != s {
		t.Fatal("matching worklist was not recycled")
	}
	for v := 0; v < 64; v++ {
		if s2.Contains(uint32(v)) {
			t.Fatalf("recycled worklist still marks vertex %d", v)
		}
	}
	if !s2.Empty() {
		t.Fatal("recycled worklist not empty")
	}
	// Mismatched shape (thread count) replaces rather than recycles.
	a.BeginRun()
	s3 := a.Worklist(64, 4)
	if s3 == s2 {
		t.Fatal("worklist with different thread count was recycled")
	}
	if s3.Cap() != 64 || s3.Threads() != 4 {
		t.Fatalf("replacement worklist cap=%d threads=%d", s3.Cap(), s3.Threads())
	}
}

// TestArenaBitmapCleared: a recycled bitmap must come back with no bits set.
func TestArenaBitmapCleared(t *testing.T) {
	a := &Arena{}
	a.BeginRun()
	b := a.Bitmap(256)
	b.Set(3)
	b.Set(200)
	a.BeginRun()
	b2 := a.Bitmap(256)
	if b2 != b {
		t.Fatal("matching bitmap was not recycled")
	}
	if b2.Any() {
		t.Fatal("recycled bitmap has surviving bits")
	}
	a.BeginRun()
	if b3 := a.Bitmap(300); b3 == b2 {
		t.Fatal("bitmap of different size was recycled")
	}
}

// TestArenaNilFallsBack: a nil arena must behave exactly like plain
// allocation.
func TestArenaNilFallsBack(t *testing.T) {
	var a *Arena
	a.BeginRun() // must not panic
	if got := a.Uint32s(10); len(got) != 10 {
		t.Fatalf("nil arena Uint32s len = %d", len(got))
	}
	if s := a.Worklist(10, 2); s.Cap() != 10 || s.Threads() != 2 {
		t.Fatal("nil arena Worklist wrong shape")
	}
	if b := a.Bitmap(10); b.Len() != 10 {
		t.Fatal("nil arena Bitmap wrong size")
	}
}

// BenchmarkThriftyArenaReuse measures steady-state allocation of repeated
// Thrifty runs with a shared arena versus fresh allocation per run; the
// allocs/op gap is the arena's whole point.
func BenchmarkThriftyArenaReuse(b *testing.B) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(14, 8, 3)))
	b.Run("arena", func(b *testing.B) {
		a := &Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.BeginRun()
			res := Thrifty(g, Config{Arena: a})
			if len(res.Labels) != g.NumVertices() {
				b.Fatal("bad result")
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := Thrifty(g, Config{})
			if len(res.Labels) != g.NumVertices() {
				b.Fatal("bad result")
			}
		}
	})
}
