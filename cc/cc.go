// Package cc is the public connected-components API of this repository. It
// exposes the Thrifty Label Propagation algorithm of Koohi Esfahani,
// Kilpatrick & Vandierendonck (CLUSTER 2021) together with the baselines the
// paper evaluates against, behind one uniform interface:
//
//	g, _ := gen.RMAT(gen.DefaultRMAT(20, 16, 42))
//	res, _ := cc.Run(cc.AlgoThrifty, g)
//	fmt.Println(res.NumComponents(), res.Iterations)
//
// All algorithms accept the same options and produce a Result whose labels
// can be compared across algorithms with Equivalent (labels are canonical
// per algorithm, not across algorithms: Thrifty's giant component converges
// to label 0, union-find labels are root vertex ids).
package cc

import (
	"time"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/parallel"
)

// Algorithm names a connected-components algorithm.
type Algorithm string

// The implemented algorithms. AlgoThrifty is the paper's contribution; the
// rest are the evaluation baselines of Table IV plus the DO-LP+Unified
// ablation variant of Fig 9/10 and the FastSV extension baseline (§VI).
// AlgoShard (declared in shard.go) is the sharded out-of-core Thrifty
// pipeline; AlgoAuto (auto.go) is the probe-driven selector.
const (
	AlgoThrifty       Algorithm = "thrifty"
	AlgoDOLP          Algorithm = "dolp"
	AlgoDOLPUnified   Algorithm = "dolp-unified"
	AlgoLP            Algorithm = "lp"
	AlgoSV            Algorithm = "sv"
	AlgoAfforest      Algorithm = "afforest"
	AlgoJayantiT      Algorithm = "jt"
	AlgoBFSCC         Algorithm = "bfs"
	AlgoFastSV        Algorithm = "fastsv"
	AlgoConnectItKOut Algorithm = "connectit-kout"
	AlgoConnectItBFS  Algorithm = "connectit-bfs"
)

// Algorithms returns every implemented algorithm in a stable order,
// including the AlgoAuto selector (last).
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoThrifty, AlgoDOLP, AlgoDOLPUnified, AlgoLP,
		AlgoSV, AlgoAfforest, AlgoJayantiT, AlgoBFSCC, AlgoFastSV,
		AlgoConnectItKOut, AlgoConnectItBFS, AlgoShard, AlgoAuto,
	}
}

// IterationStats is per-iteration telemetry of a label-propagation run,
// populated when WithInstrumentation is supplied.
type IterationStats struct {
	// Index is the iteration number; Thrifty counts its initial push as
	// iteration 0.
	Index int
	// Kind is "pull", "push", "pull-frontier" or "initial-push".
	Kind string
	// Active is the frontier size at iteration start.
	Active int64
	// ActiveEdges is the summed degree of the frontier at iteration start
	// (the |F.E| term of the density ratio).
	ActiveEdges int64
	// Changed is the number of vertices whose label changed.
	Changed int64
	// ConvergedZero is the number of vertices holding label 0 at iteration
	// end (meaningful for Thrifty's Zero Convergence).
	ConvergedZero int64
	// Edges is the number of edge traversals performed this iteration.
	Edges int64
	// Density is the frontier density that drove the direction decision.
	Density float64
	// Threshold is the push/pull density threshold the direction decision
	// compared Density against; together they carry the *why* of the choice.
	Threshold float64
	// Duration is the iteration's wall time.
	Duration time.Duration
}

// Instrumentation collects software event counts (the paper's Fig 5/6
// hardware-counter substitutes) and per-iteration telemetry.
type Instrumentation struct {
	// Events maps event name → count. Names: "edges", "vertex-visits",
	// "label-loads", "label-stores", "cas-ops", "branch-checks",
	// "cache-lines".
	Events map[string]int64
	// Iterations holds per-iteration telemetry in execution order.
	Iterations []IterationStats
	// OnIteration, if set before the run, is invoked at the end of every
	// iteration with that iteration's stats and a read-only view of the
	// labels array at that moment. Used to measure convergence against an
	// oracle (Fig 3/7). The callback must not retain or mutate labels.
	OnIteration func(it IterationStats, labels []uint32)
}

type options struct {
	cfg     core.Config
	inst    *Instrumentation
	pool    *parallel.Pool
	ownPool bool
	ingest  *graph.IngestStats
	// shards and memBudget configure/steer the sharded pipeline (shard.go);
	// shardStats is runShard's output channel to RunContext.
	shards     int
	memBudget  int64
	shardStats *ShardStats
}

// Option configures a run.
type Option func(*options)

// WithThreshold overrides the push/pull density threshold (Table VII
// studies 1% vs 5%). Zero keeps the algorithm default: 1% for Thrifty,
// 5% for DO-LP.
func WithThreshold(t float64) Option {
	return func(o *options) { o.cfg.Threshold = t }
}

// WithThreads runs the algorithm on a dedicated pool of the given size
// instead of the shared GOMAXPROCS-sized pool.
func WithThreads(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.pool = parallel.NewPool(n)
			o.ownPool = true
		}
	}
}

// WithMaxIterations caps the iteration count (a safety net for adversarial
// inputs; correct runs never hit it).
func WithMaxIterations(n int) Option {
	return func(o *options) { o.cfg.MaxIterations = n }
}

// WithInstrumentation enables event counting and per-iteration telemetry,
// filling inst when the run completes. Instrumented runs are slower; do not
// combine with wall-time measurements you intend to report.
func WithInstrumentation(inst *Instrumentation) Option {
	return func(o *options) { o.inst = inst }
}

// WithIngestStats attaches ingestion-phase timings (as reported by
// graph.Ingest) to the run's RunStats, so one record carries the full
// load→build→solve story. The stats are carried through verbatim; the run
// itself is unaffected.
func WithIngestStats(st graph.IngestStats) Option {
	return func(o *options) { o.ingest = &st }
}

// WithPlantVertex overrides Thrifty's Zero Planting heuristic: the 0 label
// is planted at v instead of the maximum-degree vertex. Useful when the
// caller knows a central vertex, and as the structure-oblivious-planting
// ablation (plant at vertex 0). Ignored by other algorithms.
func WithPlantVertex(v uint32) Option {
	return func(o *options) { o.cfg.PlantVertex = v; o.cfg.PlantVertexSet = true }
}

// WithoutInitialPush is the Initial Push ablation: Thrifty starts with a
// full pull iteration the way DO-LP does, quantifying what the one-hop hub
// push saves (Table VI). Ignored by other algorithms.
func WithoutInitialPush() Option {
	return func(o *options) { o.cfg.NoInitialPush = true }
}

// WithEagerPullFrontier is the frontier-bookkeeping ablation: every Thrifty
// pull iteration records a detailed frontier instead of only counting
// active vertices and materializing one Pull-Frontier bridge iteration
// (§IV-E). Ignored by other algorithms.
func WithEagerPullFrontier() Option {
	return func(o *options) { o.cfg.EagerFrontier = true }
}

// WithDynamicScheduling is the runtime ablation: vertex sweeps use uniform
// dynamic chunking instead of the paper's 32×threads edge-balanced
// partitions with work stealing (§V-A). Applies to every algorithm's
// edge-scanning sweeps.
func WithDynamicScheduling() Option {
	return func(o *options) { o.cfg.DynamicScheduling = true }
}
