package harness

import (
	"fmt"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// This file is the auto-selector validation matrix: every generator family
// the repository models, timed under cc.AlgoAuto AND under each candidate
// algorithm the decision policy chooses among, so "auto is within tolerance
// of the per-input best" is a measured claim rather than an assumption.

// SelectorFixture is one generator family of the selector matrix, with the
// golden algorithm the decision policy is expected to pick for it.
type SelectorFixture struct {
	Name   string
	Expect cc.Algorithm
	Build  func() (*graph.Graph, error)
}

// SelectorFixtures covers every gen family: power-law social (RMAT both
// layouts), web crawl, road-like grid, uniform random, preferential
// attachment, star, chain, fragmented cliques, and dense clique. Sizes are
// chosen so the full timed matrix stays a CI smoke job (seconds, not
// minutes) while each family still exhibits the structure the probe keys on.
func SelectorFixtures() []SelectorFixture {
	return []SelectorFixture{
		{"rmat", cc.AlgoThrifty, func() (*graph.Graph, error) {
			return gen.RMAT(gen.DefaultRMAT(15, 8, 42))
		}},
		{"rmat-compact", cc.AlgoThrifty, func() (*graph.Graph, error) {
			return gen.RMATCompact(gen.DefaultRMAT(15, 8, 42))
		}},
		{"web", cc.AlgoThrifty, func() (*graph.Graph, error) {
			return gen.Web(gen.DefaultWeb(14, 42))
		}},
		{"road", cc.AlgoBFSCC, func() (*graph.Graph, error) {
			return gen.Grid(gen.GridConfig{Rows: 512, Cols: 512, DropFraction: 0.05, Seed: 42})
		}},
		{"er", cc.AlgoBFSCC, func() (*graph.Graph, error) {
			return gen.ErdosRenyi(1<<16, 1<<18, 42)
		}},
		{"ba", cc.AlgoThrifty, func() (*graph.Graph, error) {
			return gen.BarabasiAlbert(100_000, 3, 42)
		}},
		{"star", cc.AlgoBFSCC, func() (*graph.Graph, error) {
			return gen.Star(200_000)
		}},
		{"path", cc.AlgoThrifty, func() (*graph.Graph, error) {
			return gen.Path(200_000)
		}},
		{"cliques", cc.AlgoAfforest, func() (*graph.Graph, error) {
			return gen.Components(40, 50)
		}},
		{"complete", cc.AlgoBFSCC, func() (*graph.Graph, error) {
			return gen.Complete(500)
		}},
	}
}

// SelectorCandidates are the concrete algorithms the decision policy
// chooses among; the matrix times each so "best" is measured per input.
// FastSV is included precisely because the policy never picks it — the
// matrix documents by measurement that this is right.
func SelectorCandidates() []cc.Algorithm {
	return []cc.Algorithm{cc.AlgoThrifty, cc.AlgoAfforest, cc.AlgoBFSCC, cc.AlgoFastSV}
}

// SelectorCell is one family's measurement: what auto chose and cost,
// against every candidate's time.
type SelectorCell struct {
	Dataset   string
	Vertices  int
	Edges     int64
	Selected  cc.Algorithm
	Reason    string
	ProbeCost time.Duration
	// AutoNs is the full auto run (probe + selected algorithm), minimum over
	// reps; BestAlgo/BestNs is the fastest candidate measured directly.
	AutoNs      int64
	BestAlgo    cc.Algorithm
	BestNs      int64
	CandidateNs map[cc.Algorithm]int64
}

// Regret returns how far auto landed from the measured per-input best, as a
// ratio (1.0 = matched the best exactly; 1.05 = 5% slower).
func (c SelectorCell) Regret() float64 {
	if c.BestNs == 0 {
		return 1
	}
	return float64(c.AutoNs) / float64(c.BestNs)
}

// SelectorMatrix times cc.AlgoAuto and every candidate on every selector
// fixture. Timing follows the TimeAlgorithm discipline (warmup + reps,
// minimum reported).
func SelectorMatrix(cfg RunConfig) ([]SelectorCell, error) {
	var cells []SelectorCell
	for _, f := range SelectorFixtures() {
		g, err := f.Build()
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", f.Name, err)
		}
		autoBest, res, err := TimeAlgorithm(cc.AlgoAuto, g, cfg)
		if err != nil {
			return nil, fmt.Errorf("auto on %s: %w", f.Name, err)
		}
		cell := SelectorCell{
			Dataset:     f.Name,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			AutoNs:      autoBest.Nanoseconds(),
			CandidateNs: make(map[cc.Algorithm]int64, 4),
		}
		if res.Stats != nil {
			cell.Selected = res.Stats.Selected
			if res.Stats.Probe != nil {
				cell.Reason = res.Stats.Probe.Reason
				cell.ProbeCost = res.Stats.Probe.Cost
			}
		}
		for _, a := range SelectorCandidates() {
			best, _, err := TimeAlgorithm(a, g, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a, f.Name, err)
			}
			cell.CandidateNs[a] = best.Nanoseconds()
			if cell.BestNs == 0 || best.Nanoseconds() < cell.BestNs {
				cell.BestAlgo, cell.BestNs = a, best.Nanoseconds()
			}
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RenderSelectorCells formats the matrix as an aligned console table.
func RenderSelectorCells(cells []SelectorCell) string {
	out := fmt.Sprintf("%-14s %-14s %-14s %10s %10s %-10s %8s %10s\n",
		"dataset", "selected", "reason", "auto ms", "best ms", "best algo", "regret", "probe µs")
	for _, c := range cells {
		out += fmt.Sprintf("%-14s %-14s %-14s %10.3f %10.3f %-10s %7.2fx %10.1f\n",
			c.Dataset, c.Selected, c.Reason,
			float64(c.AutoNs)/1e6, float64(c.BestNs)/1e6, c.BestAlgo,
			c.Regret(), float64(c.ProbeCost.Nanoseconds())/1e3)
	}
	return out
}
