package driver

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"thriftylp/internal/lint/analysis"
)

// testFact is a representative pointer-to-struct fact.
type testFact struct {
	Tag string
}

func (*testFact) AFact()           {}
func (f *testFact) String() string { return "tag=" + f.Tag }

var factAnalyzer = &analysis.Analyzer{
	Name:      "factprobe",
	Doc:       "test analyzer",
	Run:       func(*analysis.Pass) (any, error) { return nil, nil },
	FactTypes: []analysis.Fact{new(testFact)},
}

// checkSrc type-checks one in-memory package and returns it with its fset.
func checkSrc(t *testing.T, path, src string) (*types.Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, fset
}

const factSrc = `package p

type Res struct{}

func (r *Res) Release() {}

func Acquire() *Res { return nil }
`

func TestFactRoundTrip(t *testing.T) {
	pkg, _ := checkSrc(t, "example.com/p", factSrc)
	acquire := pkg.Scope().Lookup("Acquire")
	release, _, _ := types.LookupFieldOrMethod(pkg.Scope().Lookup("Res").Type(), true, pkg, "Release")
	if acquire == nil || release == nil {
		t.Fatal("objects not found")
	}

	src := NewFactStore([]*analysis.Analyzer{factAnalyzer})
	src.ExportObjectFact(factAnalyzer, acquire, &testFact{Tag: "fn"})
	src.ExportObjectFact(factAnalyzer, release, &testFact{Tag: "method"})
	src.ExportPackageFact(factAnalyzer, pkg, &testFact{Tag: "pkg"})

	data, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Decode into a fresh store and resolve against a fresh type-check of
	// the same package: distinct types.Object identities, same paths —
	// exactly the source-vs-export-data situation the string keys exist
	// for.
	dst := NewFactStore([]*analysis.Analyzer{factAnalyzer})
	if err := dst.Decode(data); err != nil {
		t.Fatal(err)
	}
	pkg2, _ := checkSrc(t, "example.com/p", factSrc)
	acquire2 := pkg2.Scope().Lookup("Acquire")
	release2, _, _ := types.LookupFieldOrMethod(pkg2.Scope().Lookup("Res").Type(), true, pkg2, "Release")

	var got testFact
	if !dst.ImportObjectFact(factAnalyzer, acquire2, &got) || got.Tag != "fn" {
		t.Errorf("Acquire fact: got %+v, want Tag=fn", got)
	}
	if !dst.ImportObjectFact(factAnalyzer, release2, &got) || got.Tag != "method" {
		t.Errorf("Release method fact: got %+v, want Tag=method", got)
	}
	if !dst.ImportPackageFact(factAnalyzer, pkg2, &got) || got.Tag != "pkg" {
		t.Errorf("package fact: got %+v, want Tag=pkg", got)
	}

	// A different analyzer's view is empty: facts are namespaced.
	other := &analysis.Analyzer{Name: "other", FactTypes: []analysis.Fact{new(testFact)}}
	if dst.ImportObjectFact(other, acquire2, &got) {
		t.Error("fact leaked across analyzer namespace")
	}
}

func TestFactStoreEmptyDecode(t *testing.T) {
	s := NewFactStore([]*analysis.Analyzer{factAnalyzer})
	if err := s.Decode(nil); err != nil {
		t.Fatalf("empty fact file must decode cleanly: %v", err)
	}
	if err := s.Decode([]byte{}); err != nil {
		t.Fatalf("empty fact file must decode cleanly: %v", err)
	}
}

func TestFactTransitiveReencode(t *testing.T) {
	pkg, _ := checkSrc(t, "example.com/p", factSrc)
	acquire := pkg.Scope().Lookup("Acquire")

	a := NewFactStore([]*analysis.Analyzer{factAnalyzer})
	a.ExportObjectFact(factAnalyzer, acquire, &testFact{Tag: "deep"})
	data1, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Middle package: decodes the dep's facts, exports nothing of its own,
	// re-encodes — the dep's facts must survive for the next hop.
	b := NewFactStore([]*analysis.Analyzer{factAnalyzer})
	if err := b.Decode(data1); err != nil {
		t.Fatal(err)
	}
	data2, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}

	c := NewFactStore([]*analysis.Analyzer{factAnalyzer})
	if err := c.Decode(data2); err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !c.ImportObjectFact(factAnalyzer, acquire, &got) || got.Tag != "deep" {
		t.Errorf("fact lost across re-encode hop: got %+v", got)
	}
}

func TestObjPathShapes(t *testing.T) {
	pkg, _ := checkSrc(t, "example.com/p", factSrc)
	res := pkg.Scope().Lookup("Res")
	if p, ok := objPath(res); !ok || p != "Res" {
		t.Errorf("type path = %q, %v", p, ok)
	}
	release, _, _ := types.LookupFieldOrMethod(res.Type(), true, pkg, "Release")
	if p, ok := objPath(release); !ok || p != "Res.Release" {
		t.Errorf("method path = %q, %v", p, ok)
	}
}
