package errfreeze

// Packages maps each frozen package's import path to the checked-in set of
// error format strings it is allowed to construct (the first argument of
// its fmt.Errorf / errors.New calls). Error text in these packages is part
// of the module's contract: hardening tests, CLI snapshot tests, the serve
// HTTP surface and operators' runbooks all match on it, so a refactor that
// rewords a message is an API change, not a cleanup.
//
// To change an error string deliberately: update the call site AND the
// matching list here in the same commit. The errfreeze analyzer fails when
// a live string is missing from its package's list; TestFrozenRoundTrip
// fails when an entry here no longer exists in the live package, so the
// two can never drift apart silently.
var Packages = map[string]map[string]bool{
	"thriftylp/graph":          FrozenGraph,
	"thriftylp/internal/serve": FrozenServe,
	"thriftylp/internal/shard": FrozenShard,
	"thriftylp/internal/dist":  FrozenDist,
}

// FrozenGraph freezes the untrusted-input boundary: loader and validator
// messages the hardening tests match on.
var FrozenGraph = map[string]bool{
	"element %d of %d: %w":                           true,
	"graph: %d vertices exceeds the id space [0,%d)": true,
	"graph: %s: header claims %d vertices and %d slots (%d payload bytes) but file holds %d": true,
	"graph: %s: reading adjacency: %w":                                     true,
	"graph: %s: reading offsets: %w":                                       true,
	"graph: adjacency slot %d references vertex %d out of range [0,%d)":    true,
	"graph: adjacency without offsets":                                     true,
	"graph: bad magic %#x":                                                 true,
	"graph: duplicate vertex %d in subgraph set":                           true,
	"graph: edge {%d,%d} out of range [0,%d)":                              true,
	"graph: empty offsets array":                                           true,
	"graph: header claims %d vertices, above the uint32 id space":          true,
	"graph: header sizes overflow (%d vertices, %d slots)":                 true,
	"graph: labelling has %d entries for %d vertices":                      true,
	"graph: line %d: %s":                                                   true,
	"graph: mmap unavailable":                                              true,
	"graph: negative slot count %d":                                        true,
	"graph: offsets byte size overflows (%d entries, %d slots)":            true,
	"graph: offsets not monotone at vertex %d":                             true,
	"graph: offsets[%d] = %d, want len(adj) = %d":                          true,
	"graph: offsets[%d] = %d, want slot count %d":                          true,
	"graph: offsets[0] = %d, want 0":                                       true,
	"graph: perm maps two vertices to %d":                                  true,
	"graph: perm[%d] = %d out of range":                                    true,
	"graph: permutation has %d entries for %d vertices":                    true,
	"graph: reading adjacency: %w":                                         true,
	"graph: reading binary header: %w":                                     true,
	"graph: reading offsets: %w":                                           true,
	"graph: reading slice header: %w":                                      true,
	"graph: slice has %d offsets for range [%d,%d)":                        true,
	"graph: slice header range [%d,%d) invalid for %d vertices":            true,
	"graph: slice range [%d,%d) invalid for %d vertices":                   true,
	"graph: subgraph vertex %d out of range [0,%d)":                        true,
	"graph: unsupported version %d":                                        true,
	"graph: use of mmap-backed graph after Close":                          true,
	"graph: vertex %d degree %d exceeds the uint32 range":                  true,
	"graph: vertex %d has out-degree %d but in-degree %d (asymmetric CSR)": true,
	"graph: vertex id %d is reserved (id space is [0,%d))":                 true,
}

// FrozenServe freezes the query server's load-pipeline and reload errors:
// thriftyd relays them over HTTP and the smoke tests match on the phases.
var FrozenServe = map[string]bool{
	"serve: ingest %s: %w":              true,
	"serve: validate %s: %w":            true,
	"serve: solve %s: %w":               true,
	"serve: reload already in progress": true,
}

// FrozenShard freezes the out-of-core manifest, slice-header, exchange
// codec and streaming errors: corrupt-shard tests and operators match on
// them when a shard set goes bad on disk.
var FrozenShard = map[string]bool{
	"shard: manifest schema %q, want %q":                                               true,
	"shard: manifest has %d vertices across %d shards":                                 true,
	"shard: manifest hub %d out of range [0,%d)":                                       true,
	"shard: shard %d covers [%d,%d), want lo %d":                                       true,
	"shard: shard %d has negative slot count %d":                                       true,
	"shard: shards cover [0,%d), want [0,%d)":                                          true,
	"shard: shard slot counts sum to %d, manifest claims %d":                           true,
	"shard: parsing manifest: %w":                                                      true,
	"shard: %s header {%d [%d,%d) %d slots} disagrees with manifest {%d [%d,%d) %d slots}": true,
	"shard: corrupt exchange batch header":                                             true,
	"shard: exchange batch truncated at pair %d of %d":                                 true,
	"shard: exchange pair (%d,%d) outside shard range [%d,%d)":                         true,
	"shard: %d trailing bytes after exchange batch":                                    true,
	"shard: stream has %d vertices":                                                    true,
	"shard: streamed degree count %d does not match %d directed slots (degree overflow?)": true,
}

// FrozenDist freezes the distributed-simulation config validation errors.
var FrozenDist = map[string]bool{
	"dist: negative shard count %d": true,
	"dist: negative round cap %d":   true,
}
