package obs

import (
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"strconv"
	"unsafe"

	"thriftylp/internal/atomicx"
)

// This file is the serving layer's latency instrument: a lock-free
// log-linear histogram with a fixed bucket layout, sharded across padded
// per-thread counter blocks so concurrent recorders never contend on a
// cache line, merged only at scrape time. The record path is atomicx-only —
// one bucket-index computation (shift/mask arithmetic), one shard pick, two
// atomic adds — and is annotated //thrifty:hotpath so thriftyvet keeps it
// allocation- and boxing-free. Everything expensive (merging shards,
// quantile extraction, Prometheus text rendering) happens on the scrape
// path, which runs a few times a minute, not a few thousand times a second.
//
// Bucket layout (DESIGN.md §15): values 0..histSub-1 get exact unit-wide
// buckets; above that, each power-of-two octave [2^e, 2^(e+1)) is split into
// histSub equal linear sub-buckets, so the relative quantization error is
// bounded by 1/histSub = 6.25% everywhere. With histMaxExp = 42 the layout
// spans [0, ~73min] in nanoseconds — far past any per-request deadline —
// and values beyond it clamp into the last bucket rather than wrapping.
// The layout is a compile-time constant: snapshots from different processes
// or different scrape times are always bucket-compatible.

const (
	// histSubBits is log2 of the linear sub-buckets per octave.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histMaxExp is the first exponent outside the layout: values >=
	// 2^histMaxExp clamp into the final bucket.
	histMaxExp = 42
	// histBuckets is the total bucket count: histSub exact unit buckets
	// plus histSub linear sub-buckets for each octave in
	// [histSubBits, histMaxExp).
	histBuckets = histSub + (histMaxExp-histSubBits)*histSub
	// histMaxShards bounds per-histogram memory (shards × ~5KB); eight
	// shards already make recorder collisions rare at serving concurrency.
	histMaxShards = 8
)

// histShard is one recorder lane: a full bucket array plus the exact sum,
// sized to a whole number of cache lines so adjacent shards in the shards
// slice never false-share. (It is not //thrifty:padded-annotated because
// that invariant is "no named field straddles a line", which a 4992-byte
// bucket array intentionally violates; the trailing pad keeps the
// whole-struct multiple-of-64 property the analyzer would otherwise check.)
type histShard struct {
	buckets [histBuckets]atomicx.Int64
	sum     atomicx.Int64
	_       [7]int64
}

// Histogram is a fixed-layout log-linear histogram of int64 samples
// (conventionally nanoseconds). The zero value is not ready; create through
// Registry.Histogram or NewHistogram. All methods are safe for concurrent
// use; Record is lock-free and wait-free apart from the two atomic adds.
type Histogram struct {
	shards []histShard
}

// NewHistogram returns an empty histogram with one shard per processor
// (capped at histMaxShards, rounded up to a power of two for mask-cheap
// shard selection).
func NewHistogram() *Histogram {
	n := runtime.GOMAXPROCS(0)
	if n > histMaxShards {
		n = histMaxShards
	}
	// Round up to a power of two so the shard pick is a mask, not a mod.
	p := 1
	for p < n {
		p <<= 1
	}
	return &Histogram{shards: make([]histShard, p)}
}

// bucketIndex maps a sample to its bucket. Negative samples (a clock that
// stepped backwards) count in bucket 0 rather than corrupting the layout.
func bucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(v>>(exp-histSubBits)) & (histSub - 1)
	return histSub + (exp-histSubBits)*histSub + sub
}

// BucketUpper returns the inclusive upper bound of bucket i, i.e. the
// largest sample the bucket can hold. Exact for the unit buckets, the top
// of the linear sub-range otherwise.
func BucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	j := i - histSub
	exp := histSubBits + j/histSub
	sub := int64(j % histSub)
	width := int64(1) << (exp - histSubBits)
	return int64(1)<<exp + (sub+1)*width - 1
}

// shardHint picks the recorder's shard from its goroutine's stack address.
// Distinct goroutines run on distinct stacks, so concurrent recorders land
// on different shards with high probability; the same goroutine stays on
// one shard for the life of a stack segment, which is exactly the locality
// the padding buys. The >>9 skips the low bits shared by every frame slot;
// the multiply scrambles allocation-order correlation between stacks.
func shardHint() uint64 {
	var b byte
	p := uint64(uintptr(unsafe.Pointer(&b)))
	return (p >> 9) * 0x9E3779B97F4A7C15
}

// Record folds one sample into the histogram.
//
//thrifty:hotpath
func (h *Histogram) Record(v int64) {
	s := &h.shards[shardHint()&uint64(len(h.shards)-1)]
	s.buckets[bucketIndex(v)].Add(1)
	s.sum.Add(v)
}

// HistogramSnapshot is one merged, self-consistent view of a histogram:
// the per-bucket counts with Count derived from them (so Count always
// equals the sum of Counts, even for snapshots taken mid-record) and the
// exact sample sum.
type HistogramSnapshot struct {
	Counts [histBuckets]int64
	Count  int64
	Sum    int64
}

// Snapshot merges the shards with atomic loads. It is safe while recorders
// are running; a concurrent Record may or may not be included, but the
// Count-equals-sum-of-Counts invariant always holds because Count is
// derived, never separately maintained.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := 0; b < histBuckets; b++ {
			if n := s.buckets[b].Load(); n != 0 {
				out.Counts[b] += n
				out.Count += n
			}
		}
		out.Sum += s.sum.Load()
	}
	return out
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() int64 { return h.Snapshot().Count }

// Sum returns the exact sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	var sum int64
	for i := range h.shards {
		sum += h.shards[i].sum.Load()
	}
	return sum
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded samples as
// the upper bound of the bucket holding the target rank — a conservative
// (never understated) estimate with relative error bounded by 1/histSub.
// It returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Quantile is Histogram.Quantile over an already-merged snapshot, so one
// scrape can extract several quantiles from one merge.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += s.Counts[b]
		if cum >= rank {
			return BucketUpper(b)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// histQuantiles are the quantiles every scrape publishes as plain gauges
// next to the bucket series, so shell-grade consumers (the CI smoke job,
// curl|grep) get percentiles without client-side bucket math.
var histQuantiles = []struct {
	suffix string
	q      float64
}{
	{"_p50", 0.50},
	{"_p90", 0.90},
	{"_p99", 0.99},
	{"_p999", 0.999},
}

// writePrometheus renders the histogram in the Prometheus text exposition
// format under name: the cumulative _bucket series (only boundaries whose
// bucket is occupied, plus +Inf — a sparse rendering is valid and keeps
// scrapes proportional to occupied buckets, not layout size), _sum and
// _count, the derived quantile gauges, and a <name>_total counter carrying
// the exact sample sum under the legacy cumulative-counter name.
func (h *Histogram) writePrometheus(w io.Writer, name string) error {
	s := h.Snapshot()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		if s.Counts[b] == 0 {
			continue
		}
		cum += s.Counts[b]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, s.Count, name, s.Sum, name, s.Count); err != nil {
		return err
	}
	for _, hq := range histQuantiles {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %d\n",
			name, hq.suffix, name, hq.suffix, s.Quantile(hq.q)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, s.Sum)
	return err
}

// histogramDerived appends the histogram's derived scalar metrics to an
// expvar-style snapshot map under name.
func (s *HistogramSnapshot) derived(name string, m map[string]any) {
	m[name+"_count"] = s.Count
	m[name+"_total"] = s.Sum
	for _, hq := range histQuantiles {
		m[name+hq.suffix] = s.Quantile(hq.q)
	}
}

// counterSuffixTotal is the compat-name suffix under which a histogram's
// exact sample sum is also published as a counter (the pre-histogram
// cumulative latency counters were <name>_total).
const counterSuffixTotal = "_total"

func init() {
	// The layout must end exactly at the clamp exponent; a drift here
	// would silently misplace every sample above the unit buckets.
	if BucketUpper(histBuckets-1) != int64(1)<<histMaxExp-1 {
		panic(fmt.Sprintf("obs: histogram layout inconsistent: last bucket tops at %d", BucketUpper(histBuckets-1)))
	}
	if strconv.IntSize != 64 {
		panic("obs: histogram requires a 64-bit platform")
	}
}
