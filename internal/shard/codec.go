package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Boundary-exchange wire format. A message from one shard to another is a
// batch of (vertex, label) pairs: "vertex v of yours is adjacent to one of
// my components whose label is now l". Batches are sorted by vertex and
// encoded as
//
//	uvarint count
//	count × { uvarint vertexDelta, uvarint label }
//
// where the first vertexDelta is relative to the destination shard's Lo and
// each subsequent one to the previous vertex. Sorted ids make the deltas
// small; hub-component labels are literally 0, so the common suppressing
// message costs two bytes. NaivePairBytes is the flat encoding a
// no-compaction exchange would use — the denominator the BENCH_shard gate
// compares against.

// Pair is one decoded exchange message: global vertex V receives label L.
type Pair struct {
	V, L uint32
}

// NaivePairBytes is the per-pair cost of a naive fixed-width boundary
// exchange: a 4-byte vertex id plus a 4-byte label, shipped every round for
// every boundary entry whether or not anything changed.
const NaivePairBytes = 8

// AppendPairs encodes pairs into buf and returns the extended buffer. Pairs
// are sorted in place by vertex and deduplicated keeping the minimum label
// per vertex (the MIN combiner: only the smallest incoming label can matter).
// base must be the destination shard's Lo and every pair's V at least base.
func AppendPairs(buf []byte, base uint32, pairs []Pair) []byte {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].V != pairs[j].V {
			return pairs[i].V < pairs[j].V
		}
		return pairs[i].L < pairs[j].L
	})
	// Dedup in place: first occurrence per vertex carries the min label.
	w := 0
	for i, p := range pairs {
		if i > 0 && p.V == pairs[w-1].V {
			continue
		}
		pairs[w] = p
		w++
	}
	pairs = pairs[:w]

	// Grow once to the worst case (count header plus two maximal varints per
	// pair) so the encode loop below never reallocates or bounds-checks its
	// way through repeated appends.
	need := binary.MaxVarintLen64 + 2*binary.MaxVarintLen32*len(pairs)
	start := len(buf)
	buf = append(buf, make([]byte, need)...)
	n := encodePairs(buf[start:], base, pairs)
	return buf[:start+n]
}

// encodePairs writes the count header and delta-encoded pairs into dst,
// which must have room for the worst case, and returns the bytes written.
// This is the per-round exchange encode loop; it runs once per outgoing
// batch per round, so it stays free of allocation and formatting.
//
//thrifty:hotpath
func encodePairs(dst []byte, base uint32, pairs []Pair) int {
	n := binary.PutUvarint(dst, uint64(len(pairs)))
	prev := base
	for _, p := range pairs {
		n += binary.PutUvarint(dst[n:], uint64(p.V-prev))
		n += binary.PutUvarint(dst[n:], uint64(p.L))
		prev = p.V
	}
	return n
}

// DecodePairs decodes a batch encoded by AppendPairs, invoking fn for every
// pair in ascending vertex order. hi bounds the vertex ids (the destination
// shard's Hi); a batch decoding outside [base, hi) or truncating mid-pair is
// reported as an error rather than applied. The decode loop is the hot half
// of every exchange round — error construction lives in the cold helpers
// below so the loop itself never touches fmt.
//
//thrifty:hotpath
func DecodePairs(data []byte, base, hi uint32, fn func(v, label uint32)) error {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return errCorruptHeader
	}
	data = data[n:]
	v := uint64(base)
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return errTruncated(i, count)
		}
		data = data[n:]
		label, n := binary.Uvarint(data)
		if n <= 0 {
			return errTruncated(i, count)
		}
		data = data[n:]
		v += delta
		if v >= uint64(hi) || label > uint64(^uint32(0)) {
			return errOutsideRange(v, label, base, hi)
		}
		fn(uint32(v), uint32(label))
	}
	if len(data) != 0 {
		return errTrailing(len(data))
	}
	return nil
}

// Cold error constructors for DecodePairs. The strings are frozen by the
// errfreeze analyzer (internal/lint/errfreeze/frozen.go); change them there
// in the same commit or the lint gate fails.
var errCorruptHeader = errors.New("shard: corrupt exchange batch header")

func errTruncated(i, count uint64) error {
	return fmt.Errorf("shard: exchange batch truncated at pair %d of %d", i, count)
}

func errOutsideRange(v, label uint64, base, hi uint32) error {
	return fmt.Errorf("shard: exchange pair (%d,%d) outside shard range [%d,%d)", v, label, base, hi)
}

func errTrailing(n int) error {
	return fmt.Errorf("shard: %d trailing bytes after exchange batch", n)
}
