package core

import "thriftylp/graph"

// SeqCC is the sequential breadth-first oracle: it labels every vertex with
// the smallest vertex id of its component. It allocates O(|V|) and runs in
// O(|V|+|E|); tests validate every parallel algorithm against it.
func SeqCC(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	const unset = ^uint32(0)
	for i := range labels {
		labels[i] = unset
	}
	queue := make([]uint32, 0, 1024)
	for s := 0; s < n; s++ {
		if labels[s] != unset {
			continue
		}
		// s is the smallest unvisited id, hence the smallest id of its
		// component (all smaller ids are already labelled).
		root := uint32(s)
		labels[s] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] == unset {
					labels[u] = root
					queue = append(queue, u)
				}
			}
		}
	}
	return labels
}

// Normalize rewrites labels into canonical form: every vertex gets the
// smallest vertex id sharing its raw label. Two labellings describe the
// same partition iff their normalized forms are equal, regardless of the
// algorithms' label value spaces (Thrifty's 0-based labels, union-find
// roots, BFS component ids...).
func Normalize(labels []uint32) []uint32 {
	minID := make(map[uint32]uint32, 64)
	for v, l := range labels {
		if cur, ok := minID[l]; !ok || uint32(v) < cur {
			minID[l] = uint32(v)
		}
	}
	norm := make([]uint32, len(labels))
	for v, l := range labels {
		norm[v] = minID[l]
	}
	return norm
}

// Equivalent reports whether two labellings describe the same partition of
// the vertex set.
func Equivalent(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	na, nb := Normalize(a), Normalize(b)
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// VerifyAgainstGraph checks that labels is a correct component labelling of
// g: endpoints of every edge share a label (consistency), and the number of
// distinct labels equals the true component count (completeness — rules out
// over-merging). Returns a descriptive false reason via ok=false.
func VerifyAgainstGraph(g *graph.Graph, labels []uint32) bool {
	if len(labels) != g.NumVertices() {
		return false
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if labels[u] != labels[v] {
				return false
			}
		}
	}
	return Equivalent(labels, SeqCC(g))
}
