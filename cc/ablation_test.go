package cc_test

import (
	"testing"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

// Every ablation variant must still compute the correct partition — the
// switches trade work, never correctness.
func TestAblationVariantsCorrect(t *testing.T) {
	g, err := gen.Web(gen.WebConfig{CoreScale: 10, CoreEdgeFactor: 8, NumChains: 8, ChainLength: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	oracle := cc.Sequential(g)
	variants := map[string][]cc.Option{
		"no-initial-push": {cc.WithoutInitialPush()},
		"plant-at-zero":   {cc.WithPlantVertex(0)},
		"plant-at-hub":    {cc.WithPlantVertex(g.MaxDegreeVertex())},
		"eager-frontier":  {cc.WithEagerPullFrontier()},
		"all-switches":    {cc.WithoutInitialPush(), cc.WithPlantVertex(1), cc.WithEagerPullFrontier()},
	}
	for name, opts := range variants {
		res, err := cc.Run(cc.AlgoThrifty, g, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cc.Equivalent(res.Labels, oracle) {
			t.Fatalf("%s: wrong partition", name)
		}
	}
}

// TestNoInitialPushSkipsPushZero: without the initial push, iteration 0 is
// a pull.
func TestNoInitialPushSkipsPushZero(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 6))
	if err != nil {
		t.Fatal(err)
	}
	inst := &cc.Instrumentation{}
	if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithoutInitialPush(), cc.WithInstrumentation(inst)); err != nil {
		t.Fatal(err)
	}
	if inst.Iterations[0].Kind != "pull" {
		t.Fatalf("iteration 0 kind = %s, want pull", inst.Iterations[0].Kind)
	}
}

// TestPlantVertexControlsZero: the planted vertex's component converges to
// 0 even when it is not the hub's component.
func TestPlantVertexControlsZero(t *testing.T) {
	// Two cliques; the bigger one holds the max-degree vertex, but we
	// plant in the smaller one (vertices 6..9).
	big, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	small, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.DisjointUnion(big, small)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoThrifty, g, cc.WithPlantVertex(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[7] != 0 || res.Labels[6] != 0 || res.Labels[9] != 0 {
		t.Fatalf("planted component labels: %v", res.Labels)
	}
	if res.Labels[0] == 0 {
		t.Fatal("unplanted component converged to 0")
	}
	if !cc.Verify(g, res.Labels) {
		t.Fatal("partition wrong")
	}
}

// TestPlantingAtFringeCostsWork: structure-oblivious planting must process
// at least as many edges as hub planting (the §IV-C argument).
func TestPlantingAtFringeCostsWork(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(13, 16, 17))
	if err != nil {
		t.Fatal(err)
	}
	// Find a degree-1 fringe vertex.
	fringe := uint32(0)
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) == 1 {
			fringe = uint32(v)
			break
		}
	}
	instHub, instFringe := &cc.Instrumentation{}, &cc.Instrumentation{}
	if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(instHub)); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithPlantVertex(fringe), cc.WithInstrumentation(instFringe)); err != nil {
		t.Fatal(err)
	}
	if instFringe.Events["edges"] < instHub.Events["edges"] {
		t.Fatalf("fringe planting processed %d edges < hub planting's %d",
			instFringe.Events["edges"], instHub.Events["edges"])
	}
}
