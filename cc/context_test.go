package cc_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

// TestRunContextDeadCancelsEveryAlgorithm: a context that is already dead at
// entry must fail fast for every algorithm with a CanceledError that
// errors.Is-matches the context's error.
func TestRunContextDeadCancelsEveryAlgorithm(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range cc.Algorithms() {
		_, err := cc.RunContext(ctx, a, g)
		var ce *cc.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *CanceledError", a, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err does not unwrap to context.Canceled", a)
		}
		if ce.Algorithm != a {
			t.Fatalf("%s: CanceledError.Algorithm = %s", a, ce.Algorithm)
		}
	}
}

// TestRunContextExpiredDeadline: an expired deadline is reported as
// context.DeadlineExceeded, distinguishable from explicit cancellation.
func TestRunContextExpiredDeadline(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, rerr := cc.RunContext(ctx, cc.AlgoThrifty, g)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", rerr)
	}
	if errors.Is(rerr, context.Canceled) {
		t.Fatal("deadline expiry matched context.Canceled")
	}
}

// TestRunContextCancelMidRun cancels from the per-iteration callback — which
// runs synchronously inside the driver loop — so the stop lands while the
// algorithm is between iterations: the run must stop at the boundary and
// return diagnostics plus the partial result. A path graph needs ~n
// iterations to converge, so an honoured cancel is unambiguous.
func TestRunContextCancelMidRun(t *testing.T) {
	const n = 4096
	g, err := gen.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inst := &cc.Instrumentation{}
	inst.OnIteration = func(it cc.IterationStats, _ []uint32) {
		if it.Index == 0 {
			cancel()
			// AfterFunc delivers the stop on its own goroutine; block the
			// driver (this callback is synchronous) until it has landed so
			// the boundary check after this iteration must observe it.
			<-ctx.Done()
			time.Sleep(10 * time.Millisecond)
		}
	}
	res, rerr := cc.RunContext(ctx, cc.AlgoDOLP, g, cc.WithInstrumentation(inst))
	var ce *cc.CanceledError
	if !errors.As(rerr, &ce) {
		t.Fatalf("err = %v, want *CanceledError", rerr)
	}
	if ce.Iterations == 0 || ce.Phase == "" {
		t.Fatalf("diagnostics not populated: %+v", ce)
	}
	if ce.Iterations > 4 {
		t.Fatalf("cancelled at iteration 0 but ran %d iterations (convergence takes ~%d)", ce.Iterations, n)
	}
	if len(res.Labels) != g.NumVertices() {
		t.Fatalf("partial result has %d labels, want %d", len(res.Labels), g.NumVertices())
	}
}

// TestRunContextBackgroundMatchesRun: an uncancellable context must be
// indistinguishable from Run — same labels, no error.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	a, err1 := cc.Run(cc.AlgoThrifty, g)
	b, err2 := cc.RunContext(context.Background(), cc.AlgoThrifty, g)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs = %v, %v", err1, err2)
	}
	if !cc.Equivalent(a.Labels, b.Labels) {
		t.Fatal("RunContext(background) labels differ from Run")
	}
}

// TestRunContextRecoversPanic: a panic raised inside the run (here from the
// per-iteration callback, which executes inside the algorithm) surfaces as a
// *RunPanicError instead of crashing the caller, and the shared pool
// remains usable for the next run.
func TestRunContextRecoversPanic(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	inst := &cc.Instrumentation{}
	inst.OnIteration = func(it cc.IterationStats, _ []uint32) {
		panic("callback exploded")
	}
	_, rerr := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst))
	var pe *cc.RunPanicError
	if !errors.As(rerr, &pe) {
		t.Fatalf("err = %v, want *RunPanicError", rerr)
	}
	if pe.Algorithm != cc.AlgoThrifty || pe.Value != "callback exploded" {
		t.Fatalf("panic diagnostics wrong: %+v", pe)
	}
	// The boundary must leave everything reusable.
	if res, err := cc.Run(cc.AlgoThrifty, g); err != nil || res.NumComponents() == 0 {
		t.Fatalf("run after recovered panic: res=%+v err=%v", res, err)
	}
}

// TestNumComponentsConcurrent: the lazily cached component count must be
// safe to read from many goroutines (run with -race in CI).
func TestNumComponentsConcurrent(t *testing.T) {
	g, err := gen.Components(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoThrifty, g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]int, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = res.NumComponents()
		}(i)
	}
	wg.Wait()
	for _, n := range got {
		if n != 8 {
			t.Fatalf("NumComponents = %v, want 8 everywhere", got)
		}
	}
}

// TestNumComponentsHandConstructed: a Result assembled by hand (no census
// cache) still counts correctly, including the empty case.
func TestNumComponentsHandConstructed(t *testing.T) {
	r := &cc.Result{Labels: []uint32{3, 3, 7, 9}}
	if n := r.NumComponents(); n != 3 {
		t.Fatalf("NumComponents = %d, want 3", n)
	}
	empty := &cc.Result{}
	if n := empty.NumComponents(); n != 0 {
		t.Fatalf("empty NumComponents = %d, want 0", n)
	}
}
