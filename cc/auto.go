package cc

import (
	"time"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/stats"
)

// AlgoAuto is not an algorithm but a selector: the run begins with an
// O(sample) structural probe of the input (internal/stats.ProbeGraph) and a
// decision policy maps the probe to the concrete algorithm expected to win
// on inputs shaped like this one. The chosen algorithm, the probe values,
// and the probe's cost are reported through RunStats (Selected, Probe), so
// an auto run is never a black box.
const AlgoAuto Algorithm = "auto"

// ProbeStats is the structural fingerprint an AlgoAuto run measured before
// choosing its algorithm, surfaced on RunStats.Probe. The fields mirror
// internal/stats.Probe; see that type for the estimation details. Cost is
// the probe's own wall time — the overhead the selector added to the run.
type ProbeStats struct {
	// Exact O(1) facts from CSR metadata.
	Vertices        int
	DirectedEdges   int64
	MeanDegree      float64
	MaxDegree       int
	SkewRatio       float64
	HubEdgeFraction float64

	// Sampled degree-distribution estimates.
	SampleSize       int
	SampleCoverage   float64
	SampleMeanDegree float64
	SampleP99        int
	SampleAlpha      float64
	IsolatedFraction float64

	// Connectivity hint (0 unless SampleCoverage >= 0.5).
	LargestSampleComponent float64
	EdgeSamples            int

	// Cost is the probe's wall time; Reason is the decision-policy rule that
	// fired ("skewed", "hub-dominated", "fragmented", "chain-like",
	// "uniform-degree", "trivial").
	Cost   time.Duration
	Reason string
}

func toProbeStats(p stats.Probe, reason string) *ProbeStats {
	return &ProbeStats{
		Vertices:               p.Vertices,
		DirectedEdges:          p.DirectedEdges,
		MeanDegree:             p.MeanDegree,
		MaxDegree:              p.MaxDegree,
		SkewRatio:              p.SkewRatio,
		HubEdgeFraction:        p.HubEdgeFraction,
		SampleSize:             p.SampleSize,
		SampleCoverage:         p.SampleCoverage,
		SampleMeanDegree:       p.SampleMeanDegree,
		SampleP99:              p.SampleP99,
		SampleAlpha:            p.SampleAlpha,
		IsolatedFraction:       p.IsolatedFraction,
		LargestSampleComponent: p.LargestSampleComponent,
		EdgeSamples:            p.EdgeSamples,
		Cost:                   p.Cost,
		Reason:                 reason,
	}
}

// selectAlgorithm is the decision policy: probe in, concrete algorithm and
// the name of the rule that fired out. The rules are ordered most-specific
// first and calibrated by measurement over this repository's generator
// families (see DESIGN.md "Algorithm auto-selection"); the constants are
// deliberately coarse — each rule only has to separate regimes whose best
// algorithms differ by integer factors, not percentages.
//
// Why each rule picks what it picks:
//
//   - hub-dominated: one vertex touches >=40% of all edges (star-like).
//     Thrifty's initial push serializes on the hub's adjacency list while
//     the pull direction has nothing to skip yet; a direction-optimizing
//     BFS claims such graphs in two levels and measured 2x faster than
//     Thrifty on star inputs.
//   - skewed: a max degree 20x the mean is the paper's home turf — zero
//     planting lands on a giant-component hub and Zero Convergence prunes
//     the bulk of edge work (power-law inputs: RMAT, web, Barabasi-Albert).
//   - fragmented: the k-out connectivity hint found no dominant cluster, so
//     the input is thousands of small components. Per-component costs
//     dominate; Afforest's sampling union-find handles them without one
//     BFS launch per component and without LP's per-iteration sweeps.
//   - chain-like: mean degree under ~2.6 means paths/cycles/road-like
//     topology with tiny frontiers. Thrifty's sequential-drain cutoff makes
//     its many short push iterations cheap, and label propagation avoids
//     BFS's level-synchronization overhead on deep, narrow graphs.
//   - uniform-degree: no skew to exploit (Erdos-Renyi, grids, complete
//     graphs): Zero Planting has no special hub to find, so LP family loses
//     its edge; direction-optimizing BFS explores the single giant
//     component with the fewest edge touches.
//
// FastSV is never selected: across every family and thread count measured
// it trailed the winner by 5-25x, matching the paper's observation that
// min-hooking does strictly more work per edge than direction-optimized
// propagation.
//
// One rule precedes all the structural ones: beyond-memory-budget. When the
// caller declared a byte budget (WithMemoryBudget or THRIFTY_MEM_BUDGET)
// and the input's estimated whole-graph working set exceeds it, no
// whole-graph algorithm is admissible regardless of shape, so the selector
// picks the sharded out-of-core pipeline.
func selectAlgorithm(p stats.Probe, budget int64) (Algorithm, string) {
	switch {
	case p.Vertices == 0 || p.DirectedEdges == 0:
		// Empty or edgeless: every algorithm is O(V); Thrifty keeps the
		// labels convention consistent with the package's default.
		return AlgoThrifty, "trivial"
	case budget > 0 && estimateResidentBytes(p) > budget:
		return AlgoShard, "beyond-memory-budget"
	case p.HubEdgeFraction >= 0.4:
		return AlgoBFSCC, "hub-dominated"
	case p.SkewRatio >= 20:
		return AlgoThrifty, "skewed"
	case p.SampleCoverage >= 0.5 && p.LargestSampleComponent < 0.4:
		return AlgoAfforest, "fragmented"
	case p.MeanDegree < 2.6:
		return AlgoThrifty, "chain-like"
	default:
		return AlgoBFSCC, "uniform-degree"
	}
}

// autoSelect probes g and returns the chosen algorithm plus the reported
// probe. Deterministic: the probe uses a fixed sampling seed, so equal
// graphs always select equally (for a fixed budget). When the budget rule
// fires it also sizes the shard count on o, unless the caller pinned one.
func autoSelect(g *graph.Graph, o *options) (Algorithm, *ProbeStats) {
	p := stats.ProbeGraph(g, stats.ProbeOptions{})
	budget := o.memoryBudget()
	algo, reason := selectAlgorithm(p, budget)
	if reason == "beyond-memory-budget" && o.shards == 0 {
		o.shards = budgetShardCount(estimateResidentBytes(p), budget)
	}
	return algo, toProbeStats(p, reason)
}

// Arena is a reusable allocation pool for runs' working buffers (labels,
// frontiers, bitmaps). Passing the same Arena to consecutive runs via
// WithArena makes the second and later runs recycle the previous run's
// buffers instead of allocating fresh ones — the steady-state win for
// serving paths and benchmark loops that solve many graphs of similar size.
//
// Rules: an Arena serves one run at a time (concurrent runs need an Arena
// each), and starting a new run on an Arena invalidates the Labels slice of
// the previous run's Result — retain results across runs by copying.
type Arena struct{ inner core.Arena }

// NewArena returns an empty Arena.
func NewArena() *Arena { return &Arena{} }

// WithArena routes the run's working-buffer acquisitions through a. A nil
// a is ignored (plain allocation).
func WithArena(a *Arena) Option {
	return func(o *options) {
		if a != nil {
			o.cfg.Arena = &a.inner
		}
	}
}

// Auto probes g, picks the algorithm the decision policy expects to win,
// and runs it. The choice is reported in Result.Stats.Selected.
func Auto(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoAuto, g, opts) }
