package cc_test

import (
	"testing"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

func TestRunUnknownAlgorithm(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Run(cc.Algorithm("nope"), g); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestWithThreadsMatchesDefault(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	def := cc.Thrifty(g)
	for _, threads := range []int{1, 2, 4} {
		res, err := cc.Run(cc.AlgoThrifty, g, cc.WithThreads(threads))
		if err != nil {
			t.Fatal(err)
		}
		if !cc.Equivalent(def.Labels, res.Labels) {
			t.Fatalf("threads=%d produced a different partition", threads)
		}
	}
}

func TestWithThresholdChangesSchedule(t *testing.T) {
	g, err := gen.Web(gen.WebConfig{CoreScale: 10, CoreEdgeFactor: 8, NumChains: 16, ChainLength: 64, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	oracle := cc.Sequential(g)
	// Extreme thresholds force all-pull vs nearly-all-push schedules; both
	// must still be correct.
	for _, th := range []float64{1e-9, 0.5, 10} {
		res, err := cc.Run(cc.AlgoThrifty, g, cc.WithThreshold(th))
		if err != nil {
			t.Fatal(err)
		}
		if !cc.Equivalent(res.Labels, oracle) {
			t.Fatalf("threshold=%v broke correctness", th)
		}
	}
	// threshold=10 (always below density) keeps Thrifty pulling: no pushes
	// beyond the mandatory initial push.
	res, err := cc.Run(cc.AlgoThrifty, g, cc.WithThreshold(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	if res.PushIterations != 1 {
		t.Fatalf("threshold ~0 should allow only the initial push, got %d push iterations", res.PushIterations)
	}
}

func TestInstrumentationPopulated(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	inst := &cc.Instrumentation{}
	res, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Events["edges"] <= 0 {
		t.Fatalf("edges event missing: %v", inst.Events)
	}
	if len(inst.Iterations) != res.Iterations {
		t.Fatalf("%d iteration records for %d iterations", len(inst.Iterations), res.Iterations)
	}
	if inst.Iterations[0].Kind != "initial-push" {
		t.Fatalf("iteration 0 kind %q", inst.Iterations[0].Kind)
	}
	var sum int64
	for _, it := range inst.Iterations {
		sum += it.Edges
	}
	if sum != inst.Events["edges"] {
		t.Fatalf("per-iteration edges %d != total %d", sum, inst.Events["edges"])
	}
	// Zero-convergence telemetry: final iteration's zero count equals the
	// giant component size.
	_, giant := res.LargestComponent()
	last := inst.Iterations[len(inst.Iterations)-1]
	if last.ConvergedZero != giant {
		t.Fatalf("final zero count %d != giant size %d", last.ConvergedZero, giant)
	}
}

func TestInstrumentationCallback(t *testing.T) {
	g, err := gen.Star(1000)
	if err != nil {
		t.Fatal(err)
	}
	inst := &cc.Instrumentation{}
	calls := 0
	inst.OnIteration = func(it cc.IterationStats, labels []uint32) {
		calls++
		if len(labels) != 1000 {
			t.Fatalf("callback labels len %d", len(labels))
		}
	}
	res, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst))
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Fatalf("callback fired %d times for %d iterations", calls, res.Iterations)
	}
}

func TestWithMaxIterations(t *testing.T) {
	g, err := gen.Path(10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoDOLP, g, cc.WithMaxIterations(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Fatalf("cap ignored: %d iterations", res.Iterations)
	}
}

func TestResultHelpers(t *testing.T) {
	g, err := gen.Components(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := cc.Afforest(g)
	if res.NumComponents() != 3 {
		t.Fatalf("NumComponents = %d", res.NumComponents())
	}
	sizes := res.ComponentSizes()
	if len(sizes) != 3 {
		t.Fatalf("ComponentSizes = %v", sizes)
	}
	for _, s := range sizes {
		if s != 5 {
			t.Fatalf("component size %d, want 5", s)
		}
	}
	_, largest := res.LargestComponent()
	if largest != 5 {
		t.Fatalf("LargestComponent size = %d", largest)
	}
	if !res.SameComponent(0, 4) || res.SameComponent(0, 5) {
		t.Fatal("SameComponent wrong")
	}
	if res.ComponentOf(6) != res.Labels[6] {
		t.Fatal("ComponentOf wrong")
	}
}

func TestAlgorithmsListStable(t *testing.T) {
	algos := cc.Algorithms()
	if len(algos) != 13 {
		t.Fatalf("Algorithms() has %d entries", len(algos))
	}
	if algos[0] != cc.AlgoThrifty {
		t.Fatal("Thrifty not first")
	}
	if algos[len(algos)-1] != cc.AlgoAuto {
		t.Fatal("auto selector not last")
	}
	seen := map[cc.Algorithm]bool{}
	for _, a := range algos {
		if seen[a] {
			t.Fatalf("duplicate %s", a)
		}
		seen[a] = true
	}
}

func TestEmptyGraphAllAlgorithms(t *testing.T) {
	g, err := gen.Empty(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range cc.Algorithms() {
		res, err := cc.Run(a, g)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(res.Labels) != 0 {
			t.Fatalf("%s returned labels for empty graph", a)
		}
		if res.NumComponents() != 0 {
			t.Fatalf("%s: %d components on empty graph", a, res.NumComponents())
		}
	}
}
