// Package shard partitions a graph into vertex-range CSR shards — each its
// own binary file with its own memory mapping — and provides the per-shard
// building blocks of the out-of-core solver: the on-disk manifest, the
// boundary-exchange codec (codec.go), and the per-shard Node state machine
// (node.go). The scheduler that drives N nodes to global convergence lives
// in internal/dist.
//
// Cut points are chosen by balanced *edge* count (parallel.PartitionEdges),
// not vertex count: on the skewed-degree inputs this repository targets, a
// vertex-balanced cut would hand the hub shard a large majority of the
// adjacency and serialize the whole pipeline behind it.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"thriftylp/graph"
	"thriftylp/internal/parallel"
)

// ManifestSchema identifies the manifest format; bump on breaking change.
const ManifestSchema = "thriftylp/shard-manifest/v1"

// ManifestName is the manifest's file name inside a shard directory. Its
// presence is how loaders distinguish a shard directory from a plain path.
const ManifestName = "manifest.json"

// Info describes one shard file within a set.
type Info struct {
	// File is the shard's file name, relative to the manifest's directory.
	File string `json:"file"`
	// Lo, Hi bound the shard's owned global vertex range [Lo, Hi).
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
	// Slots is the shard's directed adjacency slot count.
	Slots int64 `json:"slots"`
}

// Manifest is the metadata tying a directory of CSR slices back into one
// graph: the global shape plus the contiguous vertex ranges of the slices.
type Manifest struct {
	Schema string `json:"schema"`
	// Vertices is |V| of the full graph.
	Vertices int `json:"vertices"`
	// Slots is the total directed adjacency slot count across shards.
	Slots int64 `json:"slots"`
	// Hub is the global max-degree vertex — where Zero Planting puts label 0.
	Hub uint32 `json:"hub"`
	// Shards lists the slices in vertex order; ranges tile [0, Vertices).
	Shards []Info `json:"shards"`
}

// validate checks that the manifest's ranges tile [0, Vertices) and its
// totals are consistent.
func (m *Manifest) validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("shard: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Vertices < 0 || len(m.Shards) == 0 && m.Vertices != 0 {
		return fmt.Errorf("shard: manifest has %d vertices across %d shards", m.Vertices, len(m.Shards))
	}
	if m.Vertices > 0 && int64(m.Hub) >= int64(m.Vertices) {
		return fmt.Errorf("shard: manifest hub %d out of range [0,%d)", m.Hub, m.Vertices)
	}
	want := uint32(0)
	var slots int64
	for i, s := range m.Shards {
		if s.Lo != want || s.Hi < s.Lo {
			return fmt.Errorf("shard: shard %d covers [%d,%d), want lo %d", i, s.Lo, s.Hi, want)
		}
		if s.Slots < 0 {
			return fmt.Errorf("shard: shard %d has negative slot count %d", i, s.Slots)
		}
		want = s.Hi
		slots += s.Slots
	}
	if int64(want) != int64(m.Vertices) {
		return fmt.Errorf("shard: shards cover [0,%d), want [0,%d)", want, m.Vertices)
	}
	if slots != m.Slots {
		return fmt.Errorf("shard: shard slot counts sum to %d, manifest claims %d", slots, m.Slots)
	}
	return nil
}

// Ranges returns the shards' vertex ranges in order.
func (m *Manifest) Ranges() []parallel.Range {
	rs := make([]parallel.Range, len(m.Shards))
	for i, s := range m.Shards {
		rs[i] = parallel.Range{Lo: s.Lo, Hi: s.Hi}
	}
	return rs
}

// WriteManifest writes m into dir.
func WriteManifest(dir string, m *Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// ReadManifest reads and validates dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// IsSetDir reports whether path is a shard-set directory (a directory
// containing a manifest file). Loaders use it to dispatch between the
// single-CSR and sharded paths.
func IsSetDir(path string) bool {
	st, err := os.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// ShardFileName returns the canonical file name of shard i.
func ShardFileName(i int) string { return fmt.Sprintf("shard-%03d.csr", i) }

// Write partitions g into k edge-balanced vertex-range shards, writes each
// as a CSR slice file in dir (created if needed) plus the manifest, and
// returns the manifest. Every slice's offsets pass graph.CheckOffsets64
// before a byte is written — the sharded path's guard against silent
// narrowing past the 2^31-edge boundary.
func Write(g *graph.Graph, dir string, k int) (*Manifest, error) {
	n := g.NumVertices()
	if k <= 0 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Schema: ManifestSchema, Vertices: n, Slots: g.NumDirectedEdges()}
	if n > 0 {
		m.Hub = g.MaxDegreeVertex()
	}
	parts := parallel.PartitionEdges(g.Offsets(), k)
	if n == 0 {
		parts = nil
	}
	for i, p := range parts {
		s, err := graph.SliceFromGraph(g, p.Lo, p.Hi)
		if err != nil {
			return nil, err
		}
		file := ShardFileName(i)
		if err := graph.SaveCSRSlice(filepath.Join(dir, file), s); err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, Info{File: file, Lo: p.Lo, Hi: p.Hi, Slots: s.NumSlots()})
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Source abstracts where shards come from, so the solver is indifferent to
// on-disk sets (the out-of-core path) versus in-memory views over a loaded
// graph (the cc.AlgoShard path and the equivalence tests). Slice(i) hands
// out shard i's adjacency; Release returns it — for mapped sets that unmaps
// the file, which is what keeps at most one shard's adjacency resident
// during the solve phase.
type Source interface {
	// Vertices returns the global |V|.
	Vertices() int
	// Hub returns the global max-degree vertex; undefined when Vertices()==0.
	Hub() uint32
	// Shards returns the shard count.
	Shards() int
	// Ranges returns the shards' vertex ranges in order, tiling [0, |V|).
	Ranges() []parallel.Range
	// Slice returns shard i's CSR slice.
	Slice(i int) (*graph.CSRSlice, error)
	// Release returns a slice obtained from Slice.
	Release(s *graph.CSRSlice) error
}

// Set is an on-disk shard set: a directory of CSR slice files plus a
// manifest. It implements Source with one independent mmap per Slice call.
type Set struct {
	Dir      string
	Manifest *Manifest
}

// Open opens the shard set in dir, validating the manifest and each shard
// file's header against it (ranges and slot counts — cheap; the per-slice
// structural validation runs at Slice time).
func Open(dir string) (*Set, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	return &Set{Dir: dir, Manifest: m}, nil
}

// Vertices implements Source.
func (s *Set) Vertices() int { return s.Manifest.Vertices }

// Hub implements Source.
func (s *Set) Hub() uint32 { return s.Manifest.Hub }

// Shards implements Source.
func (s *Set) Shards() int { return len(s.Manifest.Shards) }

// Ranges implements Source.
func (s *Set) Ranges() []parallel.Range { return s.Manifest.Ranges() }

// Slice implements Source: it loads (and on capable hosts maps) shard i,
// cross-checking the slice header against the manifest entry.
func (s *Set) Slice(i int) (*graph.CSRSlice, error) {
	info := s.Manifest.Shards[i]
	sl, err := graph.LoadCSRSlice(filepath.Join(s.Dir, info.File))
	if err != nil {
		return nil, err
	}
	if sl.Lo != info.Lo || sl.Hi != info.Hi || sl.NumSlots() != info.Slots ||
		sl.GlobalVertices != s.Manifest.Vertices {
		// Capture the header before Close: afterwards the slice must not
		// be touched (mmapsafe), and on mapped hosts the fields alias the
		// unmapped region.
		gv, lo, hi, slots := sl.GlobalVertices, sl.Lo, sl.Hi, sl.NumSlots()
		sl.Close()
		return nil, fmt.Errorf("shard: %s header {%d [%d,%d) %d slots} disagrees with manifest {%d [%d,%d) %d slots}",
			info.File, gv, lo, hi, slots,
			s.Manifest.Vertices, info.Lo, info.Hi, info.Slots)
	}
	return sl, nil
}

// Release implements Source by unmapping the slice.
func (s *Set) Release(sl *graph.CSRSlice) error { return sl.Close() }

// GraphSource adapts an in-memory graph to Source: slices are views over the
// graph's own CSR arrays, so Slice allocates only the rebased offsets and
// Release is a no-op.
type GraphSource struct {
	g     *graph.Graph
	parts []parallel.Range
}

// NewGraphSource partitions g into k edge-balanced ranges and returns the
// in-memory source over them.
func NewGraphSource(g *graph.Graph, k int) *GraphSource {
	n := g.NumVertices()
	if k <= 0 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	var parts []parallel.Range
	if n > 0 {
		parts = parallel.PartitionEdges(g.Offsets(), k)
	}
	return &GraphSource{g: g, parts: parts}
}

// Vertices implements Source.
func (gs *GraphSource) Vertices() int { return gs.g.NumVertices() }

// Hub implements Source.
func (gs *GraphSource) Hub() uint32 { return gs.g.MaxDegreeVertex() }

// Shards implements Source.
func (gs *GraphSource) Shards() int { return len(gs.parts) }

// Ranges implements Source.
func (gs *GraphSource) Ranges() []parallel.Range {
	return append([]parallel.Range(nil), gs.parts...)
}

// Slice implements Source with a view over the graph's storage.
func (gs *GraphSource) Slice(i int) (*graph.CSRSlice, error) {
	p := gs.parts[i]
	return graph.SliceFromGraph(gs.g, p.Lo, p.Hi)
}

// Release implements Source; views borrow the graph's storage, nothing to do.
func (gs *GraphSource) Release(*graph.CSRSlice) error { return nil }

// OwnerOf returns the index of the range containing global vertex u, by
// binary search over the sorted contiguous ranges.
func OwnerOf(ranges []parallel.Range, u uint32) int {
	return sort.Search(len(ranges), func(i int) bool { return ranges[i].Hi > u })
}
