// Social-network analysis: the workload family the paper's introduction
// motivates. Generates a Twitter-like skewed-degree graph, finds its
// connected components with Thrifty, and reports the structural facts the
// paper builds on — the giant component, the hub membership of the
// max-degree vertex (Table I), and the work Thrifty saves vs DO-LP.
//
//	go run ./examples/socialnetwork [scale]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

func main() {
	scale := 18
	if len(os.Args) > 1 {
		s, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad scale %q: %v", os.Args[1], err)
		}
		scale = s
	}

	fmt.Printf("generating RMAT social-network analog (scale %d)...\n", scale)
	g, err := gen.RMATCompact(gen.DefaultRMAT(scale, 16, 2021))
	if err != nil {
		log.Fatal(err)
	}
	hub := g.MaxDegreeVertex()
	fmt.Printf("graph: %d users, %d friendships; most-followed user %d has %d links\n",
		g.NumVertices(), g.NumEdges(), hub, g.Degree(hub))

	// Components with Thrifty, timed.
	start := time.Now()
	res := cc.Thrifty(g)
	thriftyTime := time.Since(start)
	fmt.Printf("\nThrifty: %d communities-of-anyone (components) in %d iterations, %v\n",
		res.NumComponents(), res.Iterations, thriftyTime.Round(time.Microsecond))

	// Component size distribution: expect one giant plus dust.
	sizes := res.ComponentSizes()
	ordered := make([]int64, 0, len(sizes))
	for _, s := range sizes {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] > ordered[j] })
	fmt.Printf("largest components: ")
	for i, s := range ordered {
		if i == 5 {
			fmt.Printf("... (+%d more)", len(ordered)-5)
			break
		}
		fmt.Printf("%d ", s)
	}
	fmt.Println()
	giantLabel, giantSize := res.LargestComponent()
	fmt.Printf("giant component holds %.2f%% of all users (paper Table I: >94%%)\n",
		100*float64(giantSize)/float64(g.NumVertices()))
	fmt.Printf("max-degree user is in the giant component: %v (Zero Planting's premise)\n",
		res.ComponentOf(hub) == giantLabel)

	// Compare against the DO-LP baseline with instrumentation to show the
	// work reduction of Fig 5.
	instD, instT := &cc.Instrumentation{}, &cc.Instrumentation{}
	start = time.Now()
	if _, err := cc.Run(cc.AlgoDOLP, g, cc.WithInstrumentation(instD)); err != nil {
		log.Fatal(err)
	}
	dolpTime := time.Since(start)
	if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(instT)); err != nil {
		log.Fatal(err)
	}
	m := float64(g.NumDirectedEdges())
	fmt.Printf("\nDO-LP baseline: %v (Thrifty is %.1fx faster)\n",
		dolpTime.Round(time.Microsecond), float64(dolpTime)/float64(thriftyTime))
	fmt.Printf("edge traversals: DO-LP %.1fx|E|, Thrifty %.2f%% of |E| (paper Fig 5: 7.7x vs 1.4%%)\n",
		float64(instD.Events["edges"])/m, 100*float64(instT.Events["edges"])/m)
}
