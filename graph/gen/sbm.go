package gen

import (
	"fmt"

	"thriftylp/graph"
)

// SBMConfig parameterizes a stochastic block model: Blocks communities of
// BlockSize vertices each; within a block each vertex draws IntraDegree
// random intra-block edges, and between each pair of adjacent-in-index
// blocks InterEdges random edges are drawn (0 ⇒ blocks are exact connected
// components). The SBM gives precise control over the component census and
// the community structure the paper's introduction lists among CC's
// downstream applications (graph clustering), making it the fixture of
// choice for census-sensitive tests and for the multi-component regime of
// datasets like Web-CC12 (464 k components).
type SBMConfig struct {
	Blocks      int
	BlockSize   int
	IntraDegree int
	// InterEdges > 0 chains the blocks into a single component via that
	// many random edges between consecutive blocks.
	InterEdges int
	Seed       uint64
}

func (c SBMConfig) validate() error {
	if c.Blocks <= 0 || c.BlockSize <= 0 {
		return fmt.Errorf("gen: SBM needs positive blocks and block size, got %d×%d", c.Blocks, c.BlockSize)
	}
	if c.IntraDegree < 0 || c.InterEdges < 0 {
		return fmt.Errorf("gen: SBM negative degree parameters")
	}
	if int64(c.Blocks)*int64(c.BlockSize) > 1<<31 {
		return fmt.Errorf("gen: SBM of %d vertices exceeds uint32 ids", c.Blocks*c.BlockSize)
	}
	return nil
}

// SBM generates the stochastic block model graph.
func SBM(cfg SBMConfig) (*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Blocks * cfg.BlockSize
	r := newRNG(cfg.Seed)
	edges := make([]graph.Edge, 0, n*cfg.IntraDegree+cfg.Blocks*cfg.InterEdges)
	for b := 0; b < cfg.Blocks; b++ {
		base := uint32(b * cfg.BlockSize)
		size := uint32(cfg.BlockSize)
		// Intra-block: a ring (guarantees each block is connected, so the
		// census is exactly Blocks components when InterEdges == 0) plus
		// random chords up to IntraDegree per vertex.
		if size > 1 {
			for v := uint32(0); v < size; v++ {
				edges = append(edges, graph.Edge{U: base + v, V: base + (v+1)%size})
			}
		}
		for v := uint32(0); v < size; v++ {
			for d := 1; d < cfg.IntraDegree; d++ {
				edges = append(edges, graph.Edge{U: base + v, V: base + r.uint32n(size)})
			}
		}
		// Inter-block bridge edges to the next block.
		if cfg.InterEdges > 0 && b+1 < cfg.Blocks {
			nextBase := base + size
			for e := 0; e < cfg.InterEdges; e++ {
				edges = append(edges, graph.Edge{
					U: base + r.uint32n(size),
					V: nextBase + r.uint32n(size),
				})
			}
		}
	}
	return build(edges, n)
}
