package gen

import (
	"fmt"

	"thriftylp/graph"
)

// BarabasiAlbert generates an n-vertex preferential-attachment graph where
// each arriving vertex attaches m edges to existing vertices chosen with
// probability proportional to their current degree. The result is connected
// by construction and has a power-law degree tail with exponent ≈3 — a
// second, structurally different skewed-degree family to cross-check that
// Thrifty's wins are a property of skew rather than of the RMAT generator.
//
// Generation is inherently sequential (each step depends on the degree
// state); it uses the repeated-endpoints array so a degree-proportional
// draw is a single uniform pick.
func BarabasiAlbert(n, m int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n, m > 0; got n=%d m=%d", n, m)
	}
	if m >= n {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs m < n; got n=%d m=%d", n, m)
	}
	r := newRNG(seed)
	// Seed clique over the first m+1 vertices keeps early degree mass sane.
	edges := make([]graph.Edge, 0, n*m)
	// endpoints holds every edge endpoint; uniform pick == degree-biased pick.
	endpoints := make([]uint32, 0, 2*n*m)
	for u := 1; u <= m; u++ {
		for v := 0; v < u; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
			endpoints = append(endpoints, uint32(u), uint32(v))
		}
	}
	for v := m + 1; v < n; v++ {
		for k := 0; k < m; k++ {
			t := endpoints[r.uint32n(uint32(len(endpoints)))]
			edges = append(edges, graph.Edge{U: uint32(v), V: t})
			endpoints = append(endpoints, uint32(v), t)
		}
	}
	return build(edges, n)
}
