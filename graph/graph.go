// Package graph provides the in-memory graph representation used throughout
// this repository: an undirected graph in Compressed Sparse Row form, the
// representation assumed by the Thrifty paper (§II). Each undirected edge is
// stored twice — once in each endpoint's adjacency list — which permits
// information flow across edges in both directions (required by pull
// traversals) and supports sampling edges incident to specific vertices
// (required by Afforest).
//
// Matching the paper's memory layout, offsets are 8-byte integers
// (|V|+1 of them) and neighbour ids are 4-byte integers (one per directed
// edge); labels elsewhere in the repository are likewise 4 bytes.
package graph

import (
	"errors"
	"fmt"
	"thriftylp/internal/atomicx"

	"thriftylp/internal/parallel"
)

// Edge is one undirected edge between vertices U and V.
type Edge struct {
	U, V uint32
}

// Graph is an immutable undirected graph in CSR form. Vertex ids are dense
// in [0, NumVertices()). The zero value is an empty graph.
type Graph struct {
	offsets []int64  // len NumVertices()+1; offsets[v]..offsets[v+1] index adj
	adj     []uint32 // neighbour ids; len = 2 × undirected edges (minus self-loop doubling)
	maxDeg  uint32   // a vertex with maximum degree (smallest id among ties)
	mapped  []byte   // non-nil when offsets/adj alias an mmap region (see Close)

	// closeGate serializes Close: the first caller to claim it (CAS 0→1)
	// performs the release, every later or concurrent caller is a no-op.
	closeGate atomicx.Int32
	// unmapped is set (before the munmap) once a mapped graph's arrays have
	// been torn down; it backs Validate's use-after-close error and the
	// debug-build accessor checks. Never set for heap-backed graphs, whose
	// storage stays valid after Close.
	unmapped atomicx.Bool
}

// errUseAfterClose reports access to a mapped graph whose pages have been
// released. The string is errfreeze-listed: tests and runbooks match on it.
var errUseAfterClose = errors.New("graph: use of mmap-backed graph after Close")

// ErrUseAfterClose reports whether err is the use-after-close error a mapped
// graph returns (from Validate) or panics with (from the accessors, in
// builds tagged thriftydebug) once Close has released its pages.
func ErrUseAfterClose(err error) bool { return errors.Is(err, errUseAfterClose) }

// Mapped reports whether the graph's CSR arrays alias a memory-mapped file
// (the zero-copy LoadBinary path) rather than the heap.
func (g *Graph) Mapped() bool { return g.mapped != nil }

// MappedBytes returns the size of the memory mapping backing the graph's
// CSR arrays, 0 for heap-backed (or closed) graphs. Like every accessor it
// must only be called while the graph is live — holders of a
// serve.Snapshot reference satisfy that by construction.
func (g *Graph) MappedBytes() int64 { return int64(len(g.mapped)) }

// Close releases the memory mapping backing a zero-copy loaded graph and is
// a no-op for heap-backed graphs. After Close the graph — and every slice
// previously obtained from Offsets, Adjacency, or Neighbors — must not be
// used: the aliased pages are gone and touching them faults. Close is
// idempotent and safe to call from multiple goroutines: exactly one caller
// performs the munmap, the rest return nil. What Close does NOT synchronize
// against is in-flight readers — see the ownership contract in zerocopy.go;
// long-lived servers must layer reference counting (internal/serve.Snapshot)
// so the munmap only fires after the last reader is done. Graphs that are
// never closed keep their mapping until process exit, which is harmless for
// the common load-once-run-forever shape.
func (g *Graph) Close() error {
	if !g.closeGate.CompareAndSwap(0, 1) {
		return nil
	}
	m := g.mapped
	if m == nil {
		return nil
	}
	g.unmapped.Store(true)
	g.mapped = nil
	g.offsets = nil
	g.adj = nil
	return munmapBytes(m)
}

// usableErr returns errUseAfterClose once a mapped graph's pages have been
// released, nil otherwise.
func (g *Graph) usableErr() error {
	if g.unmapped.Load() {
		return errUseAfterClose
	}
	return nil
}

// mustUsable panics with errUseAfterClose on a closed mapped graph. It backs
// the debug-build accessor checks: a deliberate fail-fast panic at the access
// site beats the page fault (or silent garbage) the stale alias would hit.
func (g *Graph) mustUsable() {
	if err := g.usableErr(); err != nil {
		panic(err)
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumDirectedEdges returns the length of the adjacency array, i.e. the
// number of stored (directed) edge slots. For a simple undirected graph this
// is 2·|E|.
func (g *Graph) NumDirectedEdges() int64 { return int64(len(g.adj)) }

// NumEdges returns the undirected edge count |E| (directed slots / 2,
// rounding up so that a lone self-loop still counts as one edge).
func (g *Graph) NumEdges() int64 { return (int64(len(g.adj)) + 1) / 2 }

// Degree returns the number of adjacency slots of v.
//
//thrifty:hotpath
func (g *Graph) Degree(v uint32) int {
	if debugClosedChecks {
		g.mustUsable()
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's adjacency list. The returned slice aliases the
// graph's storage and must not be modified.
//
//thrifty:hotpath
func (g *Graph) Neighbors(v uint32) []uint32 {
	if debugClosedChecks {
		g.mustUsable()
	}
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Offsets returns the CSR offsets array (len NumVertices()+1). The returned
// slice aliases the graph's storage and must not be modified; it is exposed
// for edge-balanced partitioning.
func (g *Graph) Offsets() []int64 {
	if debugClosedChecks {
		g.mustUsable()
	}
	return g.offsets
}

// Adjacency returns the raw neighbour array. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Adjacency() []uint32 {
	if debugClosedChecks {
		g.mustUsable()
	}
	return g.adj
}

// MaxDegreeVertex returns a vertex of maximum degree (the smallest id among
// ties), computed once at construction. This is the vertex Thrifty's Zero
// Planting technique assigns label 0. Panics on an empty graph.
func (g *Graph) MaxDegreeVertex() uint32 {
	if g.NumVertices() == 0 {
		panic("graph: MaxDegreeVertex of empty graph")
	}
	return g.maxDeg
}

// String returns a short summary, e.g. "graph{|V|=21, |E|=40}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d, |E|=%d}", g.NumVertices(), g.NumEdges())
}

// Edges materializes the undirected edge set with U <= V, one entry per
// undirected edge. Self-loops appear once. Intended for tests and small
// graphs; it allocates |E| entries.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) <= u {
				edges = append(edges, Edge{U: uint32(v), V: u})
			}
		}
	}
	return edges
}

// computeMaxDegree sets g.maxDeg by a parallel argmax over the offsets
// array; ties resolve to the smallest id, matching the sequential scan.
func (g *Graph) computeMaxDegree(pool *parallel.Pool) {
	if pool == nil {
		pool = parallel.Default()
	}
	g.maxDeg = uint32(parallel.MaxIndex(pool, g.NumVertices(), func(v int) int64 {
		return g.offsets[v+1] - g.offsets[v]
	}))
}

// Validate checks structural invariants of the CSR arrays: monotone offsets
// spanning the adjacency array, in-range neighbour ids, and symmetry (every
// directed slot (v,u) has a matching (u,v); a self-loop's slot is its own
// match). It is O(|V|+|E|) time and O(|V|) space and is used by tests and by
// loaders of untrusted files.
func (g *Graph) Validate() error {
	if err := g.usableErr(); err != nil {
		return err
	}
	pool := parallel.Default()
	if err := g.validateStructure(pool); err != nil {
		return err
	}
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	// Symmetry: the multiset of (v,u) slots must equal the multiset of
	// (u,v) slots. Count degree-direction balance: for each unordered pair
	// the number of v→u slots must equal u→v slots. A full multiset check
	// is O(E log E); we verify via per-vertex counters over two passes.
	inCount := inDegreeHistogram(pool, g.adj, n)
	if v := firstViolation(pool, n, func(v int) bool {
		return inCount[v] != g.offsets[v+1]-g.offsets[v]
	}); v >= 0 {
		return fmt.Errorf("graph: vertex %d has out-degree %d but in-degree %d (asymmetric CSR)",
			v, g.offsets[v+1]-g.offsets[v], inCount[v])
	}
	return nil
}

// validateStructure checks the invariants memory safety depends on —
// monotone offsets spanning the adjacency array and in-range neighbour ids —
// without the O(|E|) symmetry audit. The adjacency sweep is a direct loop
// with a shared flag; the exact first offending slot is recomputed only on
// the error path, so the all-good case stays branch-cheap.
func (g *Graph) validateStructure(pool *parallel.Pool) error {
	if pool == nil {
		pool = parallel.Default()
	}
	n := g.NumVertices()
	if len(g.offsets) == 0 {
		if len(g.adj) != 0 {
			return fmt.Errorf("graph: adjacency without offsets")
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if v := firstViolation(pool, n, func(v int) bool {
		return g.offsets[v+1] < g.offsets[v]
	}); v >= 0 {
		return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
	}
	if g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[%d] = %d, want len(adj) = %d", n, g.offsets[n], len(g.adj))
	}
	var anyBad atomicx.Bool
	parallel.For(pool, len(g.adj), 1<<16, func(_, lo, hi int) {
		for _, u := range g.adj[lo:hi] {
			if int(u) >= n {
				anyBad.Store(true)
				return
			}
		}
	})
	if anyBad.Load() {
		i := firstViolation(pool, len(g.adj), func(i int) bool {
			return int(g.adj[i]) >= n
		})
		return fmt.Errorf("graph: adjacency slot %d references vertex %d out of range [0,%d)", i, g.adj[i], n)
	}
	return nil
}

// FromCSR constructs a Graph directly from prebuilt CSR arrays, taking
// ownership of the slices. offsets must have length n+1 for an n-vertex
// graph, and the arrays must describe a symmetric adjacency structure; this
// is checked and an error returned otherwise.
func FromCSR(offsets []int64, adj []uint32) (*Graph, error) {
	g := &Graph{offsets: offsets, adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() > 0 {
		g.computeMaxDegree(nil)
	}
	return g, nil
}
