package cc_test

import (
	"testing"
	"testing/quick"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// Cross-feature invariants: the public API pieces (CC, relabeling, subgraph
// extraction) compose the way downstream users chain them.

// TestRelabelInvariance: component structure is invariant under any vertex
// relabeling — run CC, relabel, run CC again, and map the partitions
// through the permutation.
func TestRelabelInvariance(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 14))
	if err != nil {
		t.Fatal(err)
	}
	before := cc.Thrifty(g)

	ng, perm, err := graph.RelabelByDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	after := cc.Thrifty(ng)

	// Pull after's labels back through the permutation and compare
	// partitions in the original id space.
	back := make([]uint32, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		back[v] = after.Labels[perm[v]]
	}
	if !cc.Equivalent(before.Labels, back) {
		t.Fatal("relabeling changed the component structure")
	}
	if before.NumComponents() != after.NumComponents() {
		t.Fatalf("component counts differ: %d vs %d", before.NumComponents(), after.NumComponents())
	}
}

// TestGiantComponentExtractionPipeline: the intro's canonical pipeline —
// find components, extract the giant, process it further. The extracted
// subgraph must be connected and have the right size.
func TestGiantComponentExtractionPipeline(t *testing.T) {
	core, err := gen.RMATCompact(gen.DefaultRMAT(12, 12, 15))
	if err != nil {
		t.Fatal(err)
	}
	islands, err := gen.Islands(10, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.DisjointUnion(core, islands)
	if err != nil {
		t.Fatal(err)
	}

	res := cc.Afforest(g)
	label, size := res.LargestComponent()
	sub, orig, err := graph.ComponentSubgraph(g, res.Labels, label)
	if err != nil {
		t.Fatal(err)
	}
	if int64(sub.NumVertices()) != size {
		t.Fatalf("subgraph has %d vertices, census says %d", sub.NumVertices(), size)
	}
	if len(orig) != sub.NumVertices() {
		t.Fatal("mapping length mismatch")
	}
	// The extracted component is connected: one component in the subgraph.
	subRes := cc.Thrifty(sub)
	if subRes.NumComponents() != 1 {
		t.Fatalf("extracted giant has %d components", subRes.NumComponents())
	}
	// Degrees inside the component are preserved exactly (no edge of a
	// component leaves the component).
	for nv, ov := range orig {
		if sub.Degree(uint32(nv)) != g.Degree(ov) {
			t.Fatalf("degree changed for vertex %d during extraction", ov)
		}
	}
}

// TestQuickRelabelInvariance hammers the invariance on random graphs and
// random permutations.
func TestQuickRelabelInvariance(t *testing.T) {
	f := func(raw []byte, permSeed uint16) bool {
		const n = 48
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{U: uint32(raw[i] % n), V: uint32(raw[i+1] % n)})
		}
		g, err := graph.BuildUndirected(edges, graph.WithNumVertices(n))
		if err != nil {
			return false
		}
		// Fisher-Yates with a toy LCG for a deterministic permutation.
		perm := make([]uint32, n)
		for i := range perm {
			perm[i] = uint32(i)
		}
		state := uint32(permSeed) + 1
		for i := n - 1; i > 0; i-- {
			state = state*1664525 + 1013904223
			j := int(state) % (i + 1)
			if j < 0 {
				j = -j
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		ng, err := graph.Relabel(g, perm)
		if err != nil {
			return false
		}
		before := cc.JayantiTarjan(g)
		after := cc.JayantiTarjan(ng)
		back := make([]uint32, n)
		for v := 0; v < n; v++ {
			back[v] = after.Labels[perm[v]]
		}
		return cc.Equivalent(before.Labels, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSBMCensusThroughCC: the census-controlled generator and the census
// reporting agree end to end.
func TestSBMCensusThroughCC(t *testing.T) {
	g, err := gen.SBM(gen.SBMConfig{Blocks: 23, BlockSize: 11, IntraDegree: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []cc.Algorithm{cc.AlgoThrifty, cc.AlgoAfforest, cc.AlgoBFSCC} {
		res, err := cc.Run(a, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents() != 23 {
			t.Fatalf("%s: %d components, want 23", a, res.NumComponents())
		}
	}
	bridged, err := gen.SBM(gen.SBMConfig{Blocks: 23, BlockSize: 11, IntraDegree: 2, InterEdges: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	res := cc.Thrifty(bridged)
	if res.NumComponents() != 1 {
		t.Fatalf("bridged SBM: %d components, want 1", res.NumComponents())
	}
}
