// Package mmapsafe defines a thriftyvet analyzer enforcing the zero-copy
// ownership contract of graph/zerocopy.go: once Close unmaps an
// mmap-backed value's pages, neither the value nor any slice aliasing its
// arrays may be touched again — the memory is gone, and the fault is a
// SIGSEGV or silent garbage, not a tidy error.
//
// Mapped types are recognized by shape: a named struct with an unexported
// `mapped []byte` field and a Close method (graph.Graph, graph.CSRSlice).
// The defining package exports a MappedTypeFact on the type and a
// MappedCtorFact on every function that reaches the package's mmapFile
// primitive and returns a mapped pointer (LoadBinary, LoadCSRSlice,
// Ingest, ...). Ctor facts propagate through wrappers: a function in
// another package returning a mapped pointer it obtained from a
// fact-carrying constructor is itself marked, so `shard.Set.Slice` is as
// much a constructor as `graph.LoadCSRSlice`.
//
// The check is a forward may-closed dataflow over the internal/lint/cfg
// block graph, run per function body and per mapped variable:
//
//   - after a path through `v.Close()`, any use of v — a method call, a
//     field read, passing v along — is reported. Mapped, MappedBytes and
//     a repeated Close stay allowed: they read only the struct header,
//     never the mapped pages, and Close is idempotent.
//   - slice-typed variables derived from v (`adj := v.Adj`,
//     `row := v.Neighbors(u)`) alias the mapped region; using one after
//     v's Close is reported the same way.
//   - `defer v.Close()` closes at function exit and constrains nothing
//     inside the body; reassigning v makes it a fresh, open value.
package mmapsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/cfg"
	"thriftylp/internal/lint/lintutil"
)

// MappedTypeFact marks a named type whose values may alias an mmap region.
type MappedTypeFact struct{}

func (*MappedTypeFact) AFact()         {}
func (*MappedTypeFact) String() string { return "mmap-backed" }

// MappedCtorFact marks a function returning a freshly mapped value.
type MappedCtorFact struct{}

func (*MappedCtorFact) AFact()         {}
func (*MappedCtorFact) String() string { return "maps memory" }

// Analyzer is the mmapsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mmapsafe",
	Doc: "check that mmap-backed values and their aliases are not used after Close\n\n" +
		"Close unmaps the pages backing graph.Graph / graph.CSRSlice arrays;\n" +
		"any later use of the value or of a slice derived from it faults or\n" +
		"reads garbage. See graph/zerocopy.go and DESIGN.md §17.",
	Run:       run,
	FactTypes: []analysis.Fact{new(MappedTypeFact), new(MappedCtorFact)},
}

// headerMethods never touch the mapped pages: they read the struct header
// only, and Close is idempotent by contract.
var headerMethods = map[string]bool{
	"Close":       true,
	"Mapped":      true,
	"MappedBytes": true,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, mapped: map[*types.TypeName]bool{}}
	c.seedTypes()
	c.seedCtors()

	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) || lintutil.IsTestFile(pass.Fset, f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkBody(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.checkBody(fl.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// mapped memoizes isMappedName for this package's run.
	mapped map[*types.TypeName]bool
}

// seedTypes exports MappedTypeFact on this package's mapped-shaped types.
func (c *checker) seedTypes() {
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if mappedShape(tn) {
			c.mapped[tn] = true
			c.pass.ExportObjectFact(tn, &MappedTypeFact{})
		}
	}
}

// mappedShape reports the structural signature of an mmap-backed type: a
// named struct with an unexported `mapped []byte` field and a niladic
// Close method.
func mappedShape(tn *types.TypeName) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mapped" {
			continue
		}
		sl, ok := f.Type().(*types.Slice)
		if ok {
			if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				found = true
			}
		}
	}
	if !found {
		return false
	}
	cl, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, tn.Pkg(), "Close")
	fn, ok := cl.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 0
}

// isMappedName reports whether the named type is mmap-backed, consulting
// the fact store for imported types and shape for local ones.
func (c *checker) isMappedName(named *types.Named) bool {
	tn := named.Obj()
	if v, ok := c.mapped[tn]; ok {
		return v
	}
	v := c.pass.ImportObjectFact(tn, &MappedTypeFact{}) || mappedShape(tn)
	c.mapped[tn] = v
	return v
}

// mappedPtrType returns the mapped named type when t is *T for such a T.
func (c *checker) mappedPtrType(t types.Type) *types.Named {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || !c.isMappedName(named) {
		return nil
	}
	return named
}

// seedCtors exports MappedCtorFact on this package's functions that return
// a mapped pointer and reach mapped memory: a call to a package-local
// mmapFile, or to any fact-carrying constructor (local or imported). The
// local fixpoint makes the reachability transitive regardless of
// declaration order.
func (c *checker) seedCtors() {
	type cand struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var cands []cand
	for _, f := range c.pass.Files {
		if lintutil.InGOROOT(c.pass.Fset, f) || lintutil.IsTestFile(c.pass.Fset, f.Package) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			returnsMapped := false
			for i := 0; i < sig.Results().Len(); i++ {
				if c.mappedPtrType(sig.Results().At(i).Type()) != nil {
					returnsMapped = true
				}
			}
			if returnsMapped {
				cands = append(cands, cand{fn, fd.Body})
			}
		}
	}

	marked := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, cd := range cands {
			if marked[cd.fn] {
				continue
			}
			reaches := false
			ast.Inspect(cd.body, func(n ast.Node) bool {
				if reaches {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintutil.CalleeFunc(c.pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if callee.Name() == "mmapFile" && callee.Pkg() == c.pass.Pkg {
					reaches = true
				} else if marked[callee.Origin()] || c.pass.ImportObjectFact(callee.Origin(), &MappedCtorFact{}) {
					reaches = true
				}
				return !reaches
			})
			if reaches {
				marked[cd.fn] = true
				c.pass.ExportObjectFact(cd.fn, &MappedCtorFact{})
				changed = true
			}
		}
	}
}

// tracked is one mapped variable in one body, with the slice variables
// known to alias its arrays.
type tracked struct {
	obj     types.Object
	name    string
	typ     string // named type, for diagnostics
	derived map[types.Object]bool
}

// checkBody runs the may-closed dataflow for every mapped variable.
func (c *checker) checkBody(body *ast.BlockStmt) {
	vars := c.collectVars(body)
	if len(vars) == 0 {
		return
	}
	graph := cfg.New(body, c.mayReturn)
	for _, tv := range vars {
		c.analyzeVar(graph, tv)
	}
}

func (c *checker) mayReturn(call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return true
	}
	switch lintutil.FuncPkgPath(fn) + "." + fn.Name() {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return false
	}
	return true
}

// collectVars finds the body's mapped-pointer variables and their derived
// slice aliases. A variable qualifies by definition inside the body or by
// use (parameters, outer locals); field expressions are out of scope —
// the refcount layer (internal/serve.Snapshot, checked by reflease) owns
// those.
func (c *checker) collectVars(body *ast.BlockStmt) []*tracked {
	byObj := map[types.Object]*tracked{}
	add := func(id *ast.Ident, obj types.Object) {
		if obj == nil || byObj[obj] != nil {
			return
		}
		named := c.mappedPtrType(obj.Type())
		if named == nil {
			return
		}
		byObj[obj] = &tracked{
			obj:     obj,
			name:    id.Name,
			typ:     named.Obj().Name(),
			derived: map[types.Object]bool{},
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			add(id, obj)
		} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			add(id, obj)
		}
		return true
	})
	if len(byObj) == 0 {
		return nil
	}

	// Derived aliases: d := v.Field or d := v.Method(...) with a
	// slice-typed result, v tracked.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			return true
		}
		lobj := c.pass.TypesInfo.Defs[lhs]
		if lobj == nil {
			lobj = c.pass.TypesInfo.Uses[lhs]
		}
		if lobj == nil {
			return true
		}
		if _, ok := lobj.Type().Underlying().(*types.Slice); !ok {
			return true
		}
		base := c.baseOf(as.Rhs[0], byObj)
		if base != nil {
			base.derived[lobj] = true
		}
		return true
	})

	out := make([]*tracked, 0, len(byObj))
	for _, tv := range byObj {
		out = append(out, tv)
	}
	return out
}

// baseOf resolves v from `v.F`, `v.M(...)`, or slicings thereof.
func (c *checker) baseOf(e ast.Expr, byObj map[types.Object]*tracked) *tracked {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				return byObj[obj]
			}
		}
	case *ast.CallExpr:
		return c.baseOf(e.Fun, byObj)
	case *ast.SliceExpr:
		return c.baseOf(e.X, byObj)
	case *ast.IndexExpr:
		return c.baseOf(e.X, byObj)
	}
	return nil
}

// analyzeVar runs the two-bit (open-reachable, closed-reachable) forward
// fixpoint for one variable and reports uses on closed-reachable nodes.
func (c *checker) analyzeVar(graph *cfg.CFG, tv *tracked) {
	const (
		open   = 1 << 0
		closed = 1 << 1
	)
	in := map[*cfg.Block]uint8{}
	in[graph.Entry] = open
	work := []*cfg.Block{graph.Entry}
	inWork := map[*cfg.Block]bool{graph.Entry: true}
	reported := map[token.Pos]bool{}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false

		state := in[blk]
		for _, n := range blk.Nodes {
			state = c.applyNode(n, state, tv, reported, open, closed)
		}
		for _, succ := range blk.Succs {
			if in[succ]|state != in[succ] {
				in[succ] |= state
				if !inWork[succ] {
					work = append(work, succ)
					inWork[succ] = true
				}
			}
		}
	}
}

// applyNode reports closed-state uses inside n and returns the out-state.
func (c *checker) applyNode(n ast.Node, state uint8, tv *tracked, reported map[token.Pos]bool, open, closed uint8) uint8 {
	closes := false
	lhsWrite := map[*ast.Ident]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			// A closure capturing the variable runs later under its own
			// CFG; ordering against this body's Close is not decidable
			// here, so captures stay unchecked (the closure body is).
			return false
		}
		switch m := m.(type) {
		case *ast.DeferStmt:
			// defer v.Close() acts at exit; skip the call so it neither
			// closes mid-body nor counts as a use.
			if c.isCloseCall(m.Call, tv) {
				return false
			}
		case *ast.CallExpr:
			if c.isCloseCall(m, tv) {
				closes = true
				return false // receiver inside is not a use
			}
			if c.isHeaderCall(m, tv) {
				return false
			}
		case *ast.AssignStmt:
			// Reassignment: v on an LHS makes it a fresh open value on
			// this path. (Close-then-reassign is the reload pattern.)
			for _, l := range m.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok {
					continue
				}
				lhsWrite[id] = true
				if c.objOf(id) == tv.obj {
					state = open
				}
			}
		case *ast.BinaryExpr:
			// nil comparisons read only the pointer.
			if m.Op == token.EQL || m.Op == token.NEQ {
				if c.isVarVsNil(m, tv) {
					return false
				}
			}
		case *ast.Ident:
			obj := c.objOf(m)
			if obj == nil {
				return true
			}
			if obj == tv.obj && state&closed != 0 && !reported[m.Pos()] {
				reported[m.Pos()] = true
				c.pass.Reportf(m.Pos(), "use of %s after Close: the mmap-backed %s memory may be unmapped", tv.name, tv.typ)
			}
			if tv.derived[obj] && !lhsWrite[m] && state&closed != 0 && !reported[m.Pos()] {
				// Writing the alias variable itself is fine (the bad read
				// is on the right-hand side and reported there).
				reported[m.Pos()] = true
				c.pass.Reportf(m.Pos(), "use of %s after Close of %s: it aliases the unmapped %s memory", m.Name, tv.name, tv.typ)
			}
		}
		return true
	})
	if closes {
		state |= closed
		state &^= open
	}
	return state
}

// isCloseCall reports whether call is v.Close(...) for the tracked v.
func (c *checker) isCloseCall(call *ast.CallExpr, tv *tracked) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.objOf(id) == tv.obj
}

// isHeaderCall reports whether call is v.M() for a header-only method.
func (c *checker) isHeaderCall(call *ast.CallExpr, tv *tracked) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !headerMethods[sel.Sel.Name] {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.objOf(id) == tv.obj
}

// isVarVsNil reports whether e compares the tracked variable against nil.
func (c *checker) isVarVsNil(e *ast.BinaryExpr, tv *tracked) bool {
	isV := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && c.objOf(id) == tv.obj
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isV(e.X) && isNil(e.Y)) || (isNil(e.X) && isV(e.Y))
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}
