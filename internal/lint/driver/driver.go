// Package driver loads type-checked packages and applies thriftyvet
// analyzers to them. It stands in for golang.org/x/tools/go/packages +
// go/analysis/unitchecker, which the dependency-free go.mod cannot import:
// packages are enumerated with `go list -deps -export -json`, type-checked
// with go/types against the gc export data the go command already produced,
// and analyzed in dependency order with cross-package facts flowing through
// a FactStore (facts.go) — in-memory for standalone runs, serialized into
// the go command's vetx files in unitchecker mode.
//
// Two entry points cover the two ways thriftyvet runs:
//
//   - Load + Analyze: standalone mode (`thriftyvet ./...`), used by `make
//     lint` fallbacks and debugging.
//   - RunUnitchecker (unitchecker.go): the `go vet -vettool` protocol.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"thriftylp/internal/lint/analysis"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset maps the Files' positions.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// Sizes is the gc size model for the target GOARCH.
	Sizes types.Sizes
	// DepOnly marks a package loaded only so its facts reach dependents;
	// callers discard its diagnostics.
	DepOnly bool
}

// A Diagnostic is one analyzer finding with a resolved source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs the go command's list subcommand and decodes its JSON stream.
func goList(extra []string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Sizes returns the gc size model for the effective target architecture.
func Sizes() types.Sizes {
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	if s := types.SizesFor("gc", arch); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// exportImporter satisfies go/types' Importer by reading the gc export data
// files the go command produced. Paths missing from the preloaded table are
// resolved lazily with one extra `go list -export` call (linttest fixtures
// importing stdlib take this path).
type exportImporter struct {
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{exports: exports}
	e.imp = importer.ForCompiler(fset, "gc", e.lookup)
	return e
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := e.exports[path]
	if !ok || f == "" {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		f = strings.TrimSpace(string(out))
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		e.exports[path] = f
	}
	return os.Open(f)
}

func (e *exportImporter) Import(path string) (*types.Package, error) { return e.imp.Import(path) }

// NewImporter returns a gc-export-data importer seeded with the given
// canonical-path→file table (may be nil). Paths missing from the table are
// resolved lazily via `go list -export`; linttest uses this to satisfy
// stdlib imports inside fixture packages.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	if exports == nil {
		exports = map[string]string{}
	}
	return newExportImporter(fset, exports)
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// ParseFiles parses the named files into fset with comments retained.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// langVersion trims a toolchain version like "go1.24.0" to the language
// version form ("go1.24") go/types accepts.
func langVersion(v string) string {
	if v == "" {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

// Check type-checks one package's parsed files.
func Check(fset *token.FileSet, path string, imp types.Importer, files []*ast.File, goVersion string) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     Sizes(),
		GoVersion: langVersion(goVersion),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load enumerates, parses, and type-checks the non-test packages matched by
// patterns (e.g. "./..."). Non-standard dependency packages outside the
// pattern set are loaded too (marked DepOnly) so fact-producing analyzers
// can run over them first; the returned slice is in dependency order, which
// `go list -deps`'s post-order traversal guarantees.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList([]string{"-deps", "-export"}, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && (!p.DepOnly || p.Error == nil) {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, err := ParseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		tpkg, info, err := Check(fset, t.ImportPath, imp, files, "")
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:    t.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Sizes:   Sizes(),
			DepOnly: t.DepOnly,
		})
	}
	return pkgs, nil
}

// Analyze applies the analyzers to one package and returns the findings in
// source order. facts may be nil (factless run); when non-nil it must be
// shared across a dependency-ordered package sequence so exports precede
// imports.
func Analyze(pkg *Package, analyzers []*analysis.Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		// Dependency-only packages run just the fact producers.
		if pkg.DepOnly && len(a.FactTypes) == 0 {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: pkg.Sizes,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if facts != nil {
			pass.Facts = facts
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
