package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// This file is the machine-readable perf-regression harness: the same two
// medium-scale skewed fixtures the BenchmarkThrifty gate runs on, timed
// uninstrumented (fast path) for every label-propagation algorithm, exported
// as JSON so the throughput trajectory can be tracked across commits
// (`make bench-json` writes BENCH_thrifty.json).

// RegressionFixture is one deterministic graph of the perf-regression suite.
type RegressionFixture struct {
	Name  string
	Build func() (*graph.Graph, error)
}

// RegressionFixtures returns the perf-gate fixtures: a pure RMAT social
// analog (pull-heavy, few iterations) and a web-crawl analog (skewed core
// plus pendant chains, the push-heavy many-iteration regime). Both are
// seed-deterministic so numbers are comparable across runs and commits.
func RegressionFixtures() []RegressionFixture {
	return []RegressionFixture{
		{"rmat-medium", func() (*graph.Graph, error) {
			return gen.RMATCompact(gen.DefaultRMAT(17, 16, 42))
		}},
		{"weblike-medium", func() (*graph.Graph, error) {
			return gen.Web(gen.DefaultWeb(16, 42))
		}},
	}
}

// regressionAlgos are the traversal kernels sharing the instrumentation-
// policy design; all are timed so a fast-path regression in any kernel is
// visible, not just in the headline algorithm.
var regressionAlgos = []cc.Algorithm{
	cc.AlgoThrifty, cc.AlgoDOLP, cc.AlgoDOLPUnified, cc.AlgoLP,
}

// BenchRecord is one (algorithm, dataset) measurement.
type BenchRecord struct {
	Algorithm   string  `json:"algorithm"`
	Dataset     string  `json:"dataset"`
	Vertices    int     `json:"vertices"`
	Edges       int64   `json:"edges"`
	Iterations  int     `json:"iterations"`
	NsPerRun    int64   `json:"ns_per_run"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	Reps        int     `json:"reps"`
}

// BenchReport is the full regression run, as serialized to
// BENCH_thrifty.json.
type BenchReport struct {
	// GoMaxProcs records the parallelism the numbers were taken at; absolute
	// throughput is machine-dependent, but the report is primarily read as a
	// same-machine trajectory.
	GoMaxProcs int           `json:"gomaxprocs"`
	Threads    int           `json:"threads"` // 0 = GOMAXPROCS pool
	Records    []BenchRecord `json:"records"`
}

// BenchRegression times every label-propagation algorithm, uninstrumented,
// on the regression fixtures: one warmup run plus cfg.Reps timed runs per
// cell, minimum reported (the paper's convention for eliminating scheduler
// noise, and the same discipline as TimeAlgorithm).
func BenchRegression(cfg RunConfig) (BenchReport, error) {
	rep := BenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), Threads: cfg.Threads}
	for _, f := range RegressionFixtures() {
		g, err := f.Build()
		if err != nil {
			return BenchReport{}, fmt.Errorf("building %s: %w", f.Name, err)
		}
		for _, a := range regressionAlgos {
			best, res, err := TimeAlgorithm(a, g, cfg)
			if err != nil {
				return BenchReport{}, fmt.Errorf("%s on %s: %w", a, f.Name, err)
			}
			rep.Records = append(rep.Records, BenchRecord{
				Algorithm:   string(a),
				Dataset:     f.Name,
				Vertices:    g.NumVertices(),
				Edges:       g.NumEdges(),
				Iterations:  res.Iterations,
				NsPerRun:    best.Nanoseconds(),
				EdgesPerSec: float64(g.NumEdges()) / best.Seconds(),
				Reps:        cfg.reps(),
			})
		}
	}
	return rep, nil
}

// WriteJSON serializes the report to path, indented for reviewable diffs.
func (r BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the report as an aligned console table.
func (r BenchReport) Render() string {
	out := fmt.Sprintf("Perf regression (uninstrumented fast path, min of %s reps)\n",
		pluralReps(r.Records))
	out += fmt.Sprintf("%-14s %-16s %10s %12s %6s %12s\n",
		"algorithm", "dataset", "ms/run", "Medges/s", "iters", "edges")
	for _, rec := range r.Records {
		out += fmt.Sprintf("%-14s %-16s %10.3f %12.1f %6d %12d\n",
			rec.Algorithm, rec.Dataset,
			float64(rec.NsPerRun)/float64(time.Millisecond),
			rec.EdgesPerSec/1e6, rec.Iterations, rec.Edges)
	}
	return out
}

func pluralReps(recs []BenchRecord) string {
	if len(recs) == 0 {
		return "?"
	}
	return fmt.Sprintf("%d", recs[0].Reps)
}
