// Package stats computes the graph-structure measurements the paper uses to
// characterize its datasets: degree-distribution skew (the "Power-Law"
// column of Table II), component censuses (the |CC| column), and the share
// of vertices in the component containing the maximum-degree vertex
// (Table I) — the quantity that justifies Zero Planting.
package stats

import (
	"math"
	"sort"

	"thriftylp/graph"
)

// DegreeStats summarizes a graph's degree distribution.
type DegreeStats struct {
	Min, Max  int
	Mean      float64
	Median    int
	P99       int     // 99th percentile degree
	Alpha     float64 // MLE power-law exponent fit for degrees >= AlphaDMin
	AlphaDMin int     // lower cutoff used in the fit
	SkewRatio float64 // Max / Mean — a quick heavy-tail indicator
}

// Degrees computes DegreeStats by a full scan. O(|V| log |V|) for the
// percentiles.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	sum := 0
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		degs[v] = d
		sum += d
	}
	sort.Ints(degs)
	s := DegreeStats{
		Min:    degs[0],
		Max:    degs[n-1],
		Mean:   float64(sum) / float64(n),
		Median: degs[n/2],
		P99:    degs[min(n-1, n*99/100)],
	}
	if s.Mean > 0 {
		s.SkewRatio = float64(s.Max) / s.Mean
	}
	s.AlphaDMin = max(2, int(s.Mean))
	s.Alpha = powerLawAlpha(degs, s.AlphaDMin)
	return s
}

// powerLawAlpha is the discrete MLE estimator of Clauset-Shalizi-Newman:
// alpha ≈ 1 + n_tail / Σ ln(d / (dmin - 0.5)) over degrees d >= dmin.
// Returns 0 when the fit is undefined: an empty or too-small tail (< 10
// degrees at or above dmin), a cutoff below 1 (the - 0.5 shift would make
// the log argument non-positive), or a degenerate tail whose log-sum
// vanishes. sortedDegs must be ascending.
func powerLawAlpha(sortedDegs []int, dmin int) float64 {
	if len(sortedDegs) == 0 || dmin < 1 {
		return 0
	}
	i := sort.SearchInts(sortedDegs, dmin)
	tail := sortedDegs[i:]
	if len(tail) < 10 {
		return 0
	}
	var lnSum float64
	for _, d := range tail {
		lnSum += math.Log(float64(d) / (float64(dmin) - 0.5))
	}
	// Every tail degree is >= dmin >= 1, so each term is >= ln(dmin/(dmin-0.5))
	// > 0; a non-positive sum can only arise from float underflow on a
	// degenerate constant-degree tail. Refuse to divide by it.
	if lnSum <= 0 {
		return 0
	}
	return 1 + float64(len(tail))/lnSum
}

// IsSkewed reports whether the degree distribution is heavy-tailed enough
// for Thrifty's structural assumptions to apply, using the same qualitative
// split as Table II ("Power-Law: Yes/No"): a max degree at least 20× the
// mean. Road networks (max ≈ 4-8, mean ≈ 2-4) fall far below; RMAT and
// preferential-attachment graphs far above.
func IsSkewed(s DegreeStats) bool {
	return s.SkewRatio >= 20
}

// ComponentCensus summarizes a labelling produced by any CC algorithm.
type ComponentCensus struct {
	NumComponents int
	LargestSize   int64
	// LargestFraction is LargestSize / |V|.
	LargestFraction float64
	// Sizes maps component label → vertex count.
	Sizes map[uint32]int64
}

// Census builds the component census from a labels array.
func Census(labels []uint32) ComponentCensus {
	sizes := make(map[uint32]int64)
	for _, l := range labels {
		sizes[l]++
	}
	var largest int64
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	c := ComponentCensus{
		NumComponents: len(sizes),
		LargestSize:   largest,
		Sizes:         sizes,
	}
	if len(labels) > 0 {
		c.LargestFraction = float64(largest) / float64(len(labels))
	}
	return c
}

// MaxDegreeComponentFraction returns the percentage of vertices that are in
// the same component as the maximum-degree vertex — the Table I
// measurement. labels must be a valid component labelling of g.
func MaxDegreeComponentFraction(g *graph.Graph, labels []uint32) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	hubLabel := labels[g.MaxDegreeVertex()]
	var count int64
	for _, l := range labels {
		if l == hubLabel {
			count++
		}
	}
	return 100 * float64(count) / float64(len(labels))
}
