// Package clitest builds the repository's command-line binaries and
// exercises them end-to-end: flag parsing, file round trips, experiment
// execution, and failure modes.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "thriftylp-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"thriftycc", "graphgen", "ccbench", "ccverify", "thriftyd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "thriftylp/cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest → repo root
}

func run(t *testing.T, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestThriftyccGeneratedGraph(t *testing.T) {
	out, err := run(t, "thriftycc", "-gen", "rmat:10:8", "-algo", "thrifty", "-verify")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("no verification line:\n%s", out)
	}
	if !strings.Contains(out, "components") {
		t.Fatalf("no summary line:\n%s", out)
	}
}

func TestThriftyccAllAlgorithms(t *testing.T) {
	out, err := run(t, "thriftycc", "-gen", "er:500:1000", "-algo", "all")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, a := range []string{"thrifty", "dolp", "afforest", "jt", "bfs", "fastsv", "connectit-kout"} {
		if !strings.Contains(out, a) {
			t.Fatalf("algorithm %s missing from output:\n%s", a, out)
		}
	}
}

func TestThriftyccInstrumented(t *testing.T) {
	out, err := run(t, "thriftycc", "-gen", "star:100", "-algo", "thrifty", "-instrument", "-stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "initial-push") {
		t.Fatalf("trace missing:\n%s", out)
	}
	if !strings.Contains(out, "degrees:") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestThriftyccBadFlags(t *testing.T) {
	if out, err := run(t, "thriftycc"); err == nil {
		t.Fatalf("no -in/-gen accepted:\n%s", out)
	}
	if out, err := run(t, "thriftycc", "-gen", "nope:1"); err == nil {
		t.Fatalf("unknown generator accepted:\n%s", out)
	}
	if out, err := run(t, "thriftycc", "-gen", "rmat:10", "-algo", "bogus"); err == nil {
		t.Fatalf("unknown algorithm accepted:\n%s", out)
	}
}

func TestGraphgenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	out, err := run(t, "graphgen", "-gen", "rmat:10:4", "-o", bin)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if _, err := os.Stat(bin); err != nil {
		t.Fatal(err)
	}
	// thriftycc must be able to load and verify it.
	out, err = run(t, "thriftycc", "-in", bin, "-algo", "afforest", "-verify")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "verify: OK") {
		t.Fatalf("loaded graph failed verification:\n%s", out)
	}
	// Edge-list output too.
	el := filepath.Join(dir, "g.el")
	if out, err := run(t, "graphgen", "-gen", "er:200:400", "-o", el); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out, err := run(t, "thriftycc", "-in", el, "-algo", "thrifty", "-verify"); err != nil {
		t.Fatalf("edge list reload: %v\n%s", err, out)
	}
}

func TestCcbenchListAndSingleExperiment(t *testing.T) {
	out, err := run(t, "ccbench", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, id := range []string{"table4", "fig5", "ablations", "dist"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}
	out, err = run(t, "ccbench", "-exp", "table5", "-scale", "small", "-reps", "1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "TABLE5") || !strings.Contains(out, "Ratio") {
		t.Fatalf("table5 output malformed:\n%s", out)
	}
	if out, err := run(t, "ccbench", "-exp", "table99"); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}

func TestCcbenchCSVOutput(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	if out, err := run(t, "ccbench", "-exp", "table1", "-scale", "small", "-csv", csv); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Dataset,") {
		t.Fatalf("CSV header missing:\n%s", data)
	}
}

// TestQuickstartExample runs the quickstart example end-to-end and checks
// its deterministic output lines.
func TestQuickstartExample(t *testing.T) {
	cmd := exec.Command("go", "run", "thriftylp/examples/quickstart")
	cmd.Dir = repoRoot()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"found 3 components",
		"0 and 3 connected: true",
		"0 and 4 connected: false",
		"verified: true",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

func TestCcverifySmallBattery(t *testing.T) {
	out, err := run(t, "ccverify", "-seeds", "1", "-q")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "0 failures") {
		t.Fatalf("ccverify reported failures:\n%s", out)
	}
}
