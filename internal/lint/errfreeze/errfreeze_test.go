package errfreeze_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thriftylp/internal/lint/errfreeze"
	"thriftylp/internal/lint/linttest"
)

func TestErrfreeze(t *testing.T) {
	linttest.Run(t, linttest.TestData(), errfreeze.Analyzer, "graph", "serve", "shard", "dist")
}

// TestFrozenRoundTrip is the reverse direction of the analyzer: every entry
// in each package's frozen list must still exist as a literal error string
// in that live package, so deleted or reworded call sites cannot leave
// stale entries behind. Together the two checks force frozen == live.
func TestFrozenRoundTrip(t *testing.T) {
	moduleRoot := filepath.Join("..", "..", "..")
	for importPath, frozen := range errfreeze.Packages {
		importPath, frozen := importPath, frozen
		rel := strings.TrimPrefix(importPath, "thriftylp/")
		t.Run(strings.ReplaceAll(rel, "/", "_"), func(t *testing.T) {
			dir := filepath.Join(moduleRoot, filepath.FromSlash(rel))
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("reading %s package dir: %v", importPath, err)
			}
			live := map[string]bool{}
			fset := token.NewFileSet()
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
				if err != nil {
					t.Fatalf("parsing %s: %v", name, err)
				}
				for _, site := range errfreeze.ErrorStrings(f) {
					live[site.Text] = true
				}
			}
			if len(live) == 0 {
				t.Fatalf("found no error strings in live package %s; is the path right?", importPath)
			}
			for s := range frozen {
				if !live[s] {
					t.Errorf("frozen error string %q no longer exists in %s: remove it from frozen.go in the commit that changed the call site", s, importPath)
				}
			}
		})
	}
}
