package graph

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// TestLoadBinaryMmapRoundTrip pins the zero-copy loader: on hosts where the
// mapping path is available the loaded graph must alias a mapping, and in all
// cases the structure must round-trip exactly.
func TestLoadBinaryMmapRoundTrip(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	if mmapSupported && hostLittleEndian {
		if !got.Mapped() {
			t.Error("mmap-capable little-endian host did not take the zero-copy path")
		}
	} else if got.Mapped() {
		t.Error("host without mmap support claims a mapping")
	}
	if !slices.Equal(got.Offsets(), g.Offsets()) || !slices.Equal(got.Adjacency(), g.Adjacency()) {
		t.Fatal("binary round trip changed the CSR")
	}
	if got.MaxDegreeVertex() != g.MaxDegreeVertex() {
		t.Errorf("max-degree vertex: got %d want %d", got.MaxDegreeVertex(), g.MaxDegreeVertex())
	}
}

// TestGraphCloseIdempotent checks the mapping release contract: Close twice
// is fine, and a closed graph reports empty rather than touching unmapped
// memory.
func TestGraphCloseIdempotent(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := got.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got.Mapped() {
		t.Error("closed graph still claims a mapping")
	}
	if got.NumVertices() != 0 {
		t.Errorf("closed graph reports %d vertices", got.NumVertices())
	}
	// Close on a heap-built graph is a no-op, not an error.
	if err := g.Close(); err != nil {
		t.Fatalf("Close on unmapped graph: %v", err)
	}
}

// TestLoadBinaryHostileHeaderFile mirrors the hardening tests through the
// mmap path: a header claiming more payload than the file holds must be
// rejected up front with the stat-based message on every platform.
func TestLoadBinaryHostileHeaderFile(t *testing.T) {
	dir := t.TempDir()

	writeFile := func(name string, data []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	header := func(n, m uint64) []byte {
		var hdr [binHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[0:], binMagic)
		binary.LittleEndian.PutUint64(hdr[8:], binVersion)
		binary.LittleEndian.PutUint64(hdr[16:], n)
		binary.LittleEndian.PutUint64(hdr[24:], m)
		return hdr[:]
	}

	if _, err := LoadBinary(writeFile("huge.bin", header(1<<30, 1<<40))); err == nil {
		t.Fatal("header claiming terabytes accepted")
	} else if !strings.Contains(err.Error(), "file holds") {
		t.Errorf("hostile header error lacks the size diagnosis: %v", err)
	}

	if _, err := LoadBinary(writeFile("badmagic.bin", make([]byte, binHeaderSize))); err == nil {
		t.Fatal("zero magic accepted")
	} else if !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("unexpected error for zero magic: %v", err)
	}

	// Truncated payload: header fine, bytes missing.
	g := testGraph(t)
	full := filepath.Join(dir, "full.bin")
	if err := SaveBinary(full, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(writeFile("trunc.bin", data[:len(data)-4])); err == nil {
		t.Fatal("truncated payload accepted")
	} else if !strings.Contains(err.Error(), "file holds") {
		t.Errorf("truncation error lacks the size diagnosis: %v", err)
	}

	// Short header alone.
	if _, err := LoadBinary(writeFile("short.bin", data[:binHeaderSize-8])); err == nil {
		t.Fatal("short header accepted")
	}
}

// TestWriteBinaryGoldenLayout pins the on-disk byte layout against an
// independently constructed expectation so the zero-copy writer cannot
// silently change the format.
func TestWriteBinaryGoldenLayout(t *testing.T) {
	g, err := BuildUndirected([]Edge{{0, 1}, {1, 2}}, WithSortedAdjacency())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBinary(&sb, g); err != nil {
		t.Fatal(err)
	}
	got := []byte(sb.String())

	var want []byte
	le := binary.LittleEndian
	want = le.AppendUint64(want, binMagic)
	want = le.AppendUint64(want, binVersion)
	want = le.AppendUint64(want, 3) // vertices
	want = le.AppendUint64(want, 4) // directed slots
	for _, o := range []int64{0, 1, 3, 4} {
		want = le.AppendUint64(want, uint64(o))
	}
	for _, a := range []uint32{1, 0, 2, 1} {
		want = le.AppendUint32(want, a)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("binary layout drifted:\n got %x\nwant %x", got, want)
	}
}

// TestIngestStats checks the measured-ingestion wrapper for both formats.
func TestIngestStats(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()

	elPath := filepath.Join(dir, "g.el")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}

	// testGraph carries an isolated trailing vertex that the text format
	// cannot represent, so the vertex count is passed explicitly.
	eg, est, err := Ingest(elPath, WithNumVertices(6), WithSortedAdjacency())
	if err != nil {
		t.Fatal(err)
	}
	defer eg.Close()
	if est.Format != FormatEdgeList {
		t.Errorf("edge-list format = %q", est.Format)
	}
	if est.Bytes <= 0 || est.Vertices != g.NumVertices() || est.Edges != g.NumEdges() {
		t.Errorf("edge-list stats off: %+v", est)
	}
	if est.LoadDuration < 0 || est.BuildDuration < 0 || est.Total() != est.LoadDuration+est.BuildDuration {
		t.Errorf("edge-list durations inconsistent: %+v", est)
	}

	bg, bst, err := Ingest(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()
	wantFormat := FormatBinary
	if mmapSupported && hostLittleEndian {
		wantFormat = FormatBinaryMmap
	}
	if bst.Format != wantFormat {
		t.Errorf("binary format = %q, want %q", bst.Format, wantFormat)
	}
	if bst.BuildDuration != 0 {
		t.Errorf("binary ingest reports a build phase: %+v", bst)
	}
	if bst.Vertices != g.NumVertices() || bst.Edges != g.NumEdges() {
		t.Errorf("binary stats off: %+v", bst)
	}
	if !slices.Equal(bg.Offsets(), eg.Offsets()) || !slices.Equal(bg.Adjacency(), eg.Adjacency()) {
		t.Error("edge-list and binary ingests disagree on the CSR")
	}
}
