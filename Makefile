# Convenience targets for the thriftylp repository.

GO ?= go

.PHONY: all build test race cover bench bench-json verify experiments clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One Benchmark family per paper table/figure; see bench_test.go.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the machine-readable perf-regression records: kernel timings
# (uninstrumented fast path, fixed medium-scale fixtures, min of 5 reps) in
# BENCH_thrifty.json, and ingestion timings (parallel zero-copy pipeline vs
# the frozen sequential baseline) in BENCH_ingest.json.
bench-json:
	$(GO) run ./cmd/ccbench -ingest-json BENCH_ingest.json -json BENCH_thrifty.json -reps 5

# Cross-validate every algorithm against the sequential oracle.
verify:
	$(GO) run ./cmd/ccverify

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ccbench -exp all -scale medium

clean:
	$(GO) clean ./...
	rm -rf bin datasets
