// Distributed-memory simulation: the paper's §VII future work. Label
// propagation's SpMV structure is what lets it scale to distributed
// systems where union-find cannot (§V-B); this example runs CC on a
// simulated BSP cluster and shows what Thrifty's optimizations do to the
// two distributed cost drivers — supersteps (latency) and messages
// (network traffic).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"thriftylp/cc"
	"thriftylp/graph/gen"
	"thriftylp/internal/dist"
)

func main() {
	g, err := gen.RMATCompact(gen.DefaultRMAT(16, 16, 33))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())
	oracle := cc.Sequential(g)

	fmt.Printf("%-8s %-9s %-12s %-14s %-12s\n", "workers", "mode", "supersteps", "messages", "edge scans")
	for _, workers := range []int{2, 4, 8, 16} {
		for _, thrifty := range []bool{false, true} {
			res := dist.Run(g, dist.Config{Workers: workers, Thrifty: thrifty})
			if !cc.Equivalent(res.Labels, oracle) {
				log.Fatalf("workers=%d thrifty=%v produced a wrong partition", workers, thrifty)
			}
			mode := "plain-lp"
			if thrifty {
				mode = "thrifty"
			}
			fmt.Printf("%-8d %-9s %-12d %-14d %-12d\n",
				workers, mode, res.Supersteps, res.MessagesSent, res.EdgeScans)
		}
	}
	fmt.Println("\nThrifty mode cuts messages and scans: the zero label floods the giant")
	fmt.Println("component from the hub, and converged (zero) vertices stop transmitting.")
}
