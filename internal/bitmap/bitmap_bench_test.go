package bitmap

import "testing"

func BenchmarkSet(b *testing.B) {
	bm := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<20 - 1))
	}
}

func BenchmarkSetAtomic(b *testing.B) {
	bm := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.SetAtomic(i & (1<<20 - 1))
	}
}

func BenchmarkSetAtomicParallel(b *testing.B) {
	bm := New(1 << 20)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			bm.SetAtomic(i & (1<<20 - 1))
			i += 61 // stride to spread contention
		}
	})
}

func BenchmarkCount(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bm.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkForEachSparse(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < 1<<20; i += 1024 {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bm.ForEach(func(int) { n++ })
		if n == 0 {
			b.Fatal("none")
		}
	}
}

func BenchmarkReset(b *testing.B) {
	bm := New(1 << 20)
	bm.SetAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Reset()
	}
}
