// Package gen generates the synthetic datasets that stand in for the
// paper's 17 real-world graphs (Table II). Three families cover the
// behaviours that matter to Thrifty:
//
//   - RMAT/Kronecker graphs reproduce the skewed (power-law-like) degree
//     distribution and giant component of social networks (Pokec,
//     LiveJournal, Twitter, Friendster analogs);
//   - web-like graphs (an RMAT core with pendant paths) reproduce the high
//     effective diameter of web crawls (WebBase, UK-Union analogs), which is
//     what drives the paper's long push-iteration tails (70+ iterations);
//   - 2-D grid road networks reproduce the non-power-law, high-diameter
//     regime (GB/US road analogs) where union-find beats label propagation.
//
// All generators are deterministic in their seed, including under parallel
// generation: edge chunks derive independent RNG streams from (seed, chunk).
package gen

import "thriftylp/graph"

// rng is a splitmix64 generator: tiny, fast, and with a trivially splittable
// seeding discipline for reproducible parallel generation.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	// Avoid the all-zero state pathologies by mixing the seed once.
	r := &rng{state: seed + 0x9e3779b97f4a7c15}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uint32n returns a uniform value in [0, n).
func (r *rng) uint32n(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	// Lemire's multiply-shift rejection-free reduction (slightly biased for
	// huge n; negligible for graph generation).
	return uint32((r.next() >> 32) * uint64(n) >> 32)
}

// float64v returns a uniform value in [0, 1).
func (r *rng) float64v() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// chunkRNG derives the RNG stream for chunk i of a seeded generation.
func chunkRNG(seed uint64, i int) *rng {
	r := newRNG(seed ^ (uint64(i)+1)*0xd1342543de82ef95)
	r.next()
	return r
}

// build assembles an undirected simple graph from raw edges, removing
// duplicates and self-loops the way the paper's dataset preparation does.
func build(edges []graph.Edge, n int) (*graph.Graph, error) {
	return graph.BuildUndirected(edges,
		graph.WithNumVertices(n),
		graph.WithDedup(),
		graph.WithoutSelfLoops(),
	)
}

// DisjointUnion concatenates graphs into one graph with disjoint vertex-id
// blocks, in argument order. It is used to assemble datasets with a known
// component census, e.g. a giant RMAT component plus thousands of small
// islands (the |CC| column of Table II).
func DisjointUnion(gs ...*graph.Graph) (*graph.Graph, error) {
	totalV := 0
	totalSlots := int64(0)
	for _, g := range gs {
		totalV += g.NumVertices()
		totalSlots += g.NumDirectedEdges()
	}
	offsets := make([]int64, totalV+1)
	adj := make([]uint32, totalSlots)
	vBase, eBase := 0, int64(0)
	for _, g := range gs {
		go_ := g.Offsets()
		ga := g.Adjacency()
		for v := 0; v < g.NumVertices(); v++ {
			offsets[vBase+v] = eBase + go_[v]
		}
		for i, u := range ga {
			adj[eBase+int64(i)] = uint32(vBase) + u
		}
		vBase += g.NumVertices()
		eBase += int64(len(ga))
	}
	offsets[totalV] = eBase
	return graph.FromCSR(offsets, adj)
}
