package gen

import "testing"

func BenchmarkRMATEdges(b *testing.B) {
	cfg := DefaultRMAT(16, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edges, err := RMATEdges(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(edges) * 8))
	}
	b.ReportMetric(float64((1<<16)*16)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
}

func BenchmarkRMATBuild(b *testing.B) {
	cfg := DefaultRMAT(15, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErdosRenyi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ErdosRenyi(1<<16, 1<<20, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Grid(GridConfig{Rows: 512, Cols: 512, DropFraction: 0.03, Seed: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeb(b *testing.B) {
	cfg := DefaultWeb(14, 5)
	for i := 0; i < b.N; i++ {
		if _, err := Web(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BarabasiAlbert(1<<15, 8, 6); err != nil {
			b.Fatal(err)
		}
	}
}
