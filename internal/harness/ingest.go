package harness

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// This file is the ingestion-regression harness: the same deterministic
// fixtures as the kernel gate, but what is timed is getting the graph into
// memory — text edge-list parse + CSR build, and binary CSR load. Each cell
// is measured twice: once through a frozen copy of the original sequential
// ingestion path (the "baseline" pipeline) and once through the current
// parallel zero-copy path (the "parallel" pipeline), so the report carries
// its own denominator and the speedup survives host changes.

// IngestSchema identifies the BENCH_ingest.json layout.
const IngestSchema = "thriftylp/bench-ingest/v1"

// Pipeline labels for IngestRecord.Pipeline.
const (
	// PipelineBaseline is the frozen pre-pipeline ingestion path.
	PipelineBaseline = "baseline"
	// PipelineParallel is the current graph.Ingest path.
	PipelineParallel = "parallel"
)

// IngestRecord is one (dataset, format, pipeline) ingestion measurement.
type IngestRecord struct {
	Dataset  string `json:"dataset"`
	Format   string `json:"format"`   // "edgelist" | "binary" | "binary-mmap"
	Pipeline string `json:"pipeline"` // "baseline" | "parallel"
	Bytes    int64  `json:"bytes"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// LoadNs covers reading + (for text) parsing; BuildNs covers CSR
	// construction; TotalNs is their sum for the best (minimum-total) rep.
	LoadNs   int64   `json:"load_ns"`
	BuildNs  int64   `json:"build_ns"`
	TotalNs  int64   `json:"total_ns"`
	MBPerSec float64 `json:"mb_per_sec"`
	// Speedup is baseline total / this total, set on parallel rows only.
	Speedup float64 `json:"speedup,omitempty"`
	Reps    int     `json:"reps"`
}

// IngestReport is the full ingestion regression run, as serialized to
// BENCH_ingest.json.
type IngestReport struct {
	Schema string `json:"schema"`
	HostStamp
	Records []IngestRecord `json:"records"`
}

// HostMismatch compares the report's host stamp against a previous report;
// see HostStamp.Mismatch.
func (r IngestReport) HostMismatch(prev IngestReport) []string {
	return r.HostStamp.Mismatch(prev.HostStamp)
}

// IngestFixtures returns the datasets the ingestion gate runs on: the
// kernel-gate regression fixtures at the default scale, and two smaller
// seed-deterministic analogs for test runs.
func IngestFixtures(scale Scale) []RegressionFixture {
	if scale == ScaleSmall {
		return []RegressionFixture{
			{"rmat-small", func() (*graph.Graph, error) {
				return gen.RMATCompact(gen.DefaultRMAT(14, 8, 42))
			}},
			{"weblike-small", func() (*graph.Graph, error) {
				return gen.Web(gen.DefaultWeb(13, 42))
			}},
		}
	}
	return RegressionFixtures()
}

// ingestResult is one rep's phase timing plus what was loaded. The baseline
// pipelines fill the fields directly so they never depend on the evolving
// graph loaders they are the denominator for.
type ingestResult struct {
	load, build time.Duration
	vertices    int
	edges       int64
	mapped      bool
	close       func() error
}

func (r ingestResult) total() time.Duration { return r.load + r.build }

// IngestRegression measures edge-list and binary ingestion for every
// fixture, baseline and parallel pipelines side by side: one warmup plus
// cfg.Reps timed reps per cell, minimum total reported (the same discipline
// as TimeAlgorithm).
func IngestRegression(cfg RunConfig) (IngestReport, error) {
	rep := IngestReport{
		Schema:    IngestSchema,
		HostStamp: currentHostStamp(cfg.Threads),
	}
	dir, err := os.MkdirTemp("", "thriftylp-ingest-")
	if err != nil {
		return IngestReport{}, err
	}
	defer os.RemoveAll(dir)

	for _, f := range IngestFixtures(cfg.scale()) {
		if err := cfg.ctx().Err(); err != nil {
			return IngestReport{}, err
		}
		g, err := f.Build()
		if err != nil {
			return IngestReport{}, fmt.Errorf("building %s: %w", f.Name, err)
		}
		elPath := filepath.Join(dir, f.Name+".el")
		binPath := filepath.Join(dir, f.Name+".bin")
		if err := writeEdgeListFile(elPath, g); err != nil {
			return IngestReport{}, err
		}
		if err := graph.SaveBinary(binPath, g); err != nil {
			return IngestReport{}, err
		}

		cells := []struct {
			path     string
			pipeline string
			run      func(path string) (ingestResult, error)
		}{
			{elPath, PipelineBaseline, baselineIngestEdgeList},
			{elPath, PipelineParallel, parallelIngest},
			{binPath, PipelineBaseline, baselineIngestBinary},
			{binPath, PipelineParallel, parallelIngest},
		}
		// Baseline rows precede their parallel partner, so the speedup
		// denominator for a (dataset, file) pair is always the immediately
		// preceding record.
		var lastBaselineTotal time.Duration
		for _, cell := range cells {
			if err := cfg.ctx().Err(); err != nil {
				return IngestReport{}, err
			}
			rec, bestTotal, err := timeIngestCell(cell.path, f.Name, cell.pipeline, cfg.reps(), cell.run)
			if err != nil {
				return IngestReport{}, fmt.Errorf("%s %s on %s: %w", cell.pipeline, cell.path, f.Name, err)
			}
			if cell.pipeline == PipelineBaseline {
				lastBaselineTotal = bestTotal
			} else if bestTotal > 0 {
				rec.Speedup = float64(lastBaselineTotal) / float64(bestTotal)
			}
			rep.Records = append(rep.Records, rec)
		}
	}
	return rep, nil
}

// timeIngestCell runs one warmup plus reps timed ingestions and reports the
// minimum-total rep.
func timeIngestCell(path, dataset, pipeline string, reps int, run func(path string) (ingestResult, error)) (IngestRecord, time.Duration, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return IngestRecord{}, 0, err
	}
	warm, err := run(path)
	if err != nil {
		return IngestRecord{}, 0, err
	}
	rec := IngestRecord{
		Dataset:  dataset,
		Pipeline: pipeline,
		Bytes:    fi.Size(),
		Vertices: warm.vertices,
		Edges:    warm.edges,
		Reps:     reps,
	}
	warm.close()

	best := ingestResult{load: 1<<63 - 1}
	var format string
	for i := 0; i < reps; i++ {
		res, err := run(path)
		if err != nil {
			return IngestRecord{}, 0, err
		}
		if res.total() < best.total() {
			best = ingestResult{load: res.load, build: res.build}
		}
		format = formatOf(path, res.mapped)
		res.close()
	}
	rec.Format = format
	rec.LoadNs = best.load.Nanoseconds()
	rec.BuildNs = best.build.Nanoseconds()
	rec.TotalNs = best.total().Nanoseconds()
	if rec.TotalNs > 0 {
		rec.MBPerSec = float64(rec.Bytes) / 1e6 / best.total().Seconds()
	}
	return rec, best.total(), nil
}

// formatOf labels what a loaded graph's bytes came through.
func formatOf(path string, mapped bool) string {
	if !strings.HasSuffix(path, ".bin") && !strings.HasSuffix(path, ".csr") {
		return graph.FormatEdgeList
	}
	if mapped {
		return graph.FormatBinaryMmap
	}
	return graph.FormatBinary
}

// parallelIngest is the current pipeline under test: graph.Ingest.
func parallelIngest(path string) (ingestResult, error) {
	g, st, err := graph.Ingest(path)
	if err != nil {
		return ingestResult{}, err
	}
	return ingestResult{
		load: st.LoadDuration, build: st.BuildDuration,
		vertices: st.Vertices, edges: st.Edges,
		mapped: g.Mapped(), close: g.Close,
	}, nil
}

// baselineIngestEdgeList is a frozen copy of the pre-pipeline edge-list
// reader — bufio.Scanner, strings.Fields, strconv.ParseUint, growth-by-append
// edge slice — feeding the legacy atomic CSR builder. It is the speedup
// denominator for text ingestion and must not be improved.
func baselineIngestEdgeList(path string) (ingestResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ingestResult{}, err
	}
	defer f.Close()
	start := time.Now()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return ingestResult{}, fmt.Errorf("baseline: malformed line %q", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return ingestResult{}, err
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return ingestResult{}, err
		}
		edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return ingestResult{}, err
	}
	load := time.Since(start)

	start = time.Now()
	g, err := graph.BuildUndirected(edges, graph.WithLegacyBuild())
	if err != nil {
		return ingestResult{}, err
	}
	return ingestResult{
		load: load, build: time.Since(start),
		vertices: g.NumVertices(), edges: g.NumEdges(), close: g.Close,
	}, nil
}

// baselineIngestBinary is a frozen copy of the pre-mmap binary path: a
// buffered stream read with chunked element-wise decoding, followed by the
// original sequential CSR validation and max-degree scan. It is the speedup
// denominator for binary ingestion and must not be improved — in particular
// it must not call into the evolving graph loaders, whose gains it exists
// to measure.
func baselineIngestBinary(path string) (ingestResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ingestResult{}, err
	}
	defer f.Close()
	start := time.Now()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return ingestResult{}, fmt.Errorf("baseline: reading binary header: %w", err)
	}
	if magic := binary.LittleEndian.Uint64(hdr[0:]); magic != 0x54484c50 {
		return ingestResult{}, fmt.Errorf("baseline: bad magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint64(hdr[8:]); v != 1 {
		return ingestResult{}, fmt.Errorf("baseline: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[16:])
	m := binary.LittleEndian.Uint64(hdr[24:])

	offsets, err := baselineReadInt64s(br, n+1)
	if err != nil {
		return ingestResult{}, err
	}
	adj, err := baselineReadUint32s(br, m)
	if err != nil {
		return ingestResult{}, err
	}
	if err := baselineValidateCSR(offsets, adj); err != nil {
		return ingestResult{}, err
	}
	// Sequential max-degree scan, as the original constructor performed it.
	maxDeg := int64(-1)
	for v := 0; v+1 < len(offsets); v++ {
		if d := offsets[v+1] - offsets[v]; d > maxDeg {
			maxDeg = d
		}
	}
	_ = maxDeg
	return ingestResult{
		load:     time.Since(start),
		vertices: len(offsets) - 1,
		edges:    (int64(len(adj)) + 1) / 2,
		close:    func() error { return nil },
	}, nil
}

// baselineReadInt64s is the frozen chunked int64 decoder (4Mi elements per
// chunk, element-wise byte conversion).
func baselineReadInt64s(r io.Reader, count uint64) ([]int64, error) {
	const chunk = 4 << 20
	k0 := count
	if k0 > chunk {
		k0 = chunk
	}
	out := make([]int64, 0, k0)
	buf := make([]byte, 8*k0)
	for done := uint64(0); done < count; {
		k := count - done
		if k > chunk {
			k = chunk
		}
		b := buf[:8*k]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("baseline: element %d of %d: %w", done, count, err)
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
		done += k
	}
	return out, nil
}

// baselineReadUint32s is the frozen chunked uint32 decoder.
func baselineReadUint32s(r io.Reader, count uint64) ([]uint32, error) {
	const chunk = 4 << 20
	k0 := count
	if k0 > chunk {
		k0 = chunk
	}
	out := make([]uint32, 0, k0)
	buf := make([]byte, 4*k0)
	for done := uint64(0); done < count; {
		k := count - done
		if k > chunk {
			k = chunk
		}
		b := buf[:4*k]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("baseline: element %d of %d: %w", done, count, err)
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[4*i:]))
		}
		done += k
	}
	return out, nil
}

// baselineValidateCSR is the frozen sequential CSR validation: monotone
// offsets spanning the adjacency array, in-range ids, and the in-degree ==
// out-degree symmetry audit.
func baselineValidateCSR(offsets []int64, adj []uint32) error {
	if len(offsets) == 0 {
		return fmt.Errorf("baseline: empty offsets")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return fmt.Errorf("baseline: offsets[0] = %d", offsets[0])
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return fmt.Errorf("baseline: offsets not monotone at vertex %d", v)
		}
	}
	if offsets[n] != int64(len(adj)) {
		return fmt.Errorf("baseline: offsets[%d] = %d, want %d", n, offsets[n], len(adj))
	}
	for i, u := range adj {
		if int(u) >= n {
			return fmt.Errorf("baseline: slot %d references vertex %d out of range", i, u)
		}
	}
	inCount := make([]int64, n)
	for _, u := range adj {
		inCount[u]++
	}
	for v := 0; v < n; v++ {
		if inCount[v] != offsets[v+1]-offsets[v] {
			return fmt.Errorf("baseline: vertex %d asymmetric", v)
		}
	}
	return nil
}

// writeEdgeListFile writes g as a text edge list at path.
func writeEdgeListFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadIngestReport loads a previously written BENCH_ingest.json file.
func ReadIngestReport(path string) (IngestReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return IngestReport{}, err
	}
	var rep IngestReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return IngestReport{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}

// WriteJSON serializes the report to path, indented for reviewable diffs.
func (r IngestReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the report as an aligned console table.
func (r IngestReport) Render() string {
	out := "Ingestion regression (min-of-reps, baseline = frozen sequential path)\n"
	out += fmt.Sprintf("%-16s %-12s %-9s %10s %10s %10s %8s\n",
		"dataset", "format", "pipeline", "load ms", "build ms", "MB/s", "speedup")
	for _, rec := range r.Records {
		speedup := ""
		if rec.Speedup > 0 {
			speedup = fmt.Sprintf("%7.2fx", rec.Speedup)
		}
		out += fmt.Sprintf("%-16s %-12s %-9s %10.3f %10.3f %10.1f %8s\n",
			rec.Dataset, rec.Format, rec.Pipeline,
			float64(rec.LoadNs)/float64(time.Millisecond),
			float64(rec.BuildNs)/float64(time.Millisecond),
			rec.MBPerSec, speedup)
	}
	return out
}
