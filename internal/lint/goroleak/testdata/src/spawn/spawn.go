// Package spawn exercises goroleak's directive coverage forms.
package spawn

func bare(ch chan int) {
	go func() { ch <- 1 }() // want "go statement outside internal/parallel needs //thrifty:goroutine <reason> naming its shutdown path"
}

func lineAbove(ch chan int) {
	//thrifty:goroutine drains one value then exits
	go func() { ch <- 1 }()
}

func sameLine(ch chan int) {
	go func() { ch <- 1 }() //thrifty:goroutine drains one value then exits
}

//thrifty:goroutine all spawns in this helper exit with the process
func docCovered(ch chan int) {
	go func() { ch <- 1 }()
	go func() { ch <- 2 }()
}

func emptyReason(ch chan int) {
	//thrifty:goroutine
	go func() { ch <- 1 }() // want "go statement outside internal/parallel needs //thrifty:goroutine <reason> naming its shutdown path"
}

func wrongDirective(ch chan int) {
	//thrifty:benign-race not the right directive
	go func() { ch <- 1 }() // want "go statement outside internal/parallel needs //thrifty:goroutine <reason> naming its shutdown path"
}

func nested(ch chan int, ok bool) {
	if ok {
		defer func() {
			go func() { ch <- 1 }() // want "go statement outside internal/parallel needs //thrifty:goroutine <reason> naming its shutdown path"
		}()
	}
}
