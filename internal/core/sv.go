package core

import (
	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/parallel"
)

// ShiloachVishkin is the classic 1982 parallel CC algorithm, the first
// Disjoint Set CC (§II, baseline "SV" in Table IV). Each pass hooks the
// root of one endpoint's tree under the smaller root of the other endpoint
// and then fully shortcuts every tree to a star by pointer jumping; passes
// repeat until no hook fires. Every pass scans all edges, which is why SV
// trails the other baselines by an order of magnitude on large graphs.
func ShiloachVishkin(g *graph.Graph, cfg Config) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	comp := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, comp, func(i int) uint32 { return uint32(i) })
	sch := newScheduler(g, cfg, pool)

	res := Result{}
	maxIters := cfg.maxIters(n)
	for res.Iterations < maxIters {
		var changed int64
		// Hook pass: for every directed slot (v,u), if comp[v] < comp[u]
		// and comp[u] is a root, hook it under comp[v].
		sch.sweep(func(tid, lo, hi int) {
			if cfg.Stop.Requested() {
				return // cancellation poll at partition entry
			}
			var local int64
			var ck chunkCounts
			for v := lo; v < hi; v++ {
				ck.visits++
				for _, u := range g.Neighbors(uint32(v)) {
					ck.edges++
					ck.loads += 2
					ck.branches++
					x := atomicx.LoadUint32(&comp[v])
					y := atomicx.LoadUint32(&comp[u])
					if x < y {
						ck.loads++
						ck.cas++
						// Hook only roots: CAS guards against y having been
						// re-parented concurrently.
						if atomicx.CASUint32(&comp[y], y, x) {
							ck.stores++
							local++
						}
					}
				}
			}
			ck.flush(cfg.Ctr, tid)
			atomicx.AddInt64(&changed, local)
		})
		// Shortcut pass: full pointer jumping collapses every tree to a
		// star so the next hook pass compares roots directly.
		parallel.For(pool, n, 2048, func(tid, lo, hi int) {
			var ck chunkCounts
			for v := lo; v < hi; v++ {
				ck.visits++
				for {
					p := atomicx.LoadUint32(&comp[v])
					gp := atomicx.LoadUint32(&comp[p])
					ck.loads += 2
					ck.branches++
					if p == gp {
						break
					}
					atomicx.StoreUint32(&comp[v], gp)
					ck.stores++
				}
			}
			ck.flush(cfg.Ctr, tid)
		})
		res.Iterations++
		// Cancellation before convergence: a cancelled hook pass reports a
		// changed count of 0 that means "aborted", not "fixed point".
		if cfg.cancelPoint(&res, PhaseHook) {
			break
		}
		if changed == 0 {
			break
		}
	}
	res.Labels = comp
	res.Sched = sch.stealStats()
	return res
}
