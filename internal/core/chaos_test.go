package core

import (
	"strings"
	"testing"
	"time"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/parallel"
)

// The chaos suite runs the kernels under scheduling fault injection. The
// tests are named TestChaos* so CI can select exactly this suite with
// -run Chaos -race: descheduling workers mid-traversal widens the benign
// race windows the paper's design tolerates (the non-atomic worklist dedup
// marks and the unified labels array, §IV-A/§V-A) far beyond what natural
// scheduling reaches, and injected panics drive the pool's recovery paths
// from arbitrary depths inside a parallel region.

// chaosGraph is a moderately sized skewed graph so the injected
// perturbations land inside real multi-iteration runs.
func chaosGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChaosGoschedPreservesCorrectness: with a Gosched injected at every
// 101st hook event, every algorithm must still agree with the sequential
// oracle — the paper's benign races must stay benign under hostile
// scheduling.
func TestChaosGoschedPreservesCorrectness(t *testing.T) {
	g := chaosGraph(t)
	oracle := SeqCC(g)
	for _, a := range algorithmsUnderTest {
		t.Run(a.name, func(t *testing.T) {
			res := a.run(g, Config{Faults: &FaultPlan{GoschedEvery: 101}})
			if res.Canceled {
				t.Fatalf("%s: chaos run spuriously cancelled", a.name)
			}
			if !Equivalent(res.Labels, oracle) {
				t.Fatalf("%s: labels diverge from oracle under Gosched injection", a.name)
			}
		})
	}
}

// TestChaosDelayPreservesCorrectness: sparse microsecond sleeps stretch the
// windows between a label load and its dependent store — the exact interval
// in which another worker's write can be lost benignly (labels only
// decrease) but never incorrectly.
func TestChaosDelayPreservesCorrectness(t *testing.T) {
	g := chaosGraph(t)
	oracle := SeqCC(g)
	plan := &FaultPlan{DelayEvery: 7919, Delay: 50 * time.Microsecond}
	for _, a := range []struct {
		name string
		run  func(*graph.Graph, Config) Result
	}{
		{"thrifty", Thrifty},
		{"dolp-unified", DOLPUnified},
	} {
		t.Run(a.name, func(t *testing.T) {
			res := a.run(g, Config{Faults: plan})
			if !Equivalent(res.Labels, oracle) {
				t.Fatalf("%s: labels diverge from oracle under delay injection", a.name)
			}
		})
	}
}

// TestChaosInjectedPanicIsRecovered: a panic injected mid-traversal must
// surface as a *parallel.PanicError from the pool (not a deadlock, not a
// crash), and the same pool must complete a clean run immediately after.
func TestChaosInjectedPanicIsRecovered(t *testing.T) {
	g := chaosGraph(t)
	oracle := SeqCC(g)
	pool := parallel.NewPool(4)
	defer pool.Close()

	// Calibrate: count one clean chaos run's hook events, then schedule the
	// panic somewhere in the middle of a second run.
	calibrate := &FaultPlan{}
	Thrifty(g, Config{Faults: calibrate, Pool: pool})
	if calibrate.Events() == 0 {
		t.Fatal("calibration run observed no hook events")
	}

	plan := &FaultPlan{PanicAt: calibrate.Events() / 2}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected panic did not propagate")
			}
			pe, ok := r.(*parallel.PanicError)
			if !ok {
				// The panic landed on the calling goroutine (sequential
				// push path) rather than a worker; the raw value is fine.
				if !strings.Contains(toString(r), "injected fault") {
					t.Fatalf("unexpected panic value %v", r)
				}
				return
			}
			if !strings.Contains(pe.Error(), "injected fault") {
				t.Fatalf("unexpected worker panic %v", pe)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("worker panic lost its stack")
			}
		}()
		Thrifty(g, Config{Faults: plan, Pool: pool})
	}()

	// The pool must have drained cleanly: a follow-up run on the same pool
	// must converge to the oracle.
	res := Thrifty(g, Config{Pool: pool})
	if !Equivalent(res.Labels, oracle) {
		t.Fatal("pool produced wrong labels after recovered injected panic")
	}
}

// TestChaosCancellationUnderInjection: cancellation and fault injection
// compose — a stop requested mid-chaos-run is honoured at the next
// boundary even while the scheduler is being perturbed.
func TestChaosCancellationUnderInjection(t *testing.T) {
	g := chaosGraph(t)
	stop := &Stop{}
	stop.Request()
	res := Thrifty(g, Config{
		Faults: &FaultPlan{GoschedEvery: 101},
		Stop:   stop,
	})
	if !res.Canceled {
		t.Fatal("pre-requested stop ignored under fault injection")
	}
	if res.Iterations > 2 {
		t.Fatalf("cancelled chaos run executed %d iterations", res.Iterations)
	}
}

// TestChaosEventsObserved: sanity-check that the chaos policy is actually
// instantiated — a run under a plan must tick hook events.
func TestChaosEventsObserved(t *testing.T) {
	g := chaosGraph(t)
	for _, a := range algorithmsUnderTest {
		// The non-generic union-find kernels route their work through
		// chunkCounts rather than the seam, so only the generic LP-family
		// kernels tick the plan.
		switch a.name {
		case "thrifty", "dolp", "dolp-unified", "lp":
		default:
			continue
		}
		plan := &FaultPlan{}
		a.run(g, Config{Faults: plan})
		if plan.Events() == 0 {
			t.Fatalf("%s: no hook events ticked under a fault plan", a.name)
		}
	}
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}
