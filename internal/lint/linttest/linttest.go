// Package linttest is a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest for the thriftyvet suite.
//
// Each analyzer keeps golden fixtures under testdata/src/<pkg>/: ordinary Go
// source annotated with `// want "regexp"` comments marking the diagnostics
// the analyzer must produce on that line (several per line are allowed;
// regexps may be double- or back-quoted). When the diagnostic line is
// itself a line comment — a flagged //thrifty: directive — the expectation
// uses the block form `/* want "regexp" */` ahead of it on the same line. Run loads a fixture package with
// the real type checker, applies the analyzer, and fails the test on any
// missing, unexpected, or mismatched diagnostic — so every fixture is
// simultaneously a failing case (the want lines) and a passing case (every
// unannotated line).
//
// Fixture imports resolve against sibling fixture directories first (so a
// fixture can import a stub `parallel` runtime), then fall back to the real
// toolchain's export data for the standard library.
//
// Multi-package fixtures: the analyzer runs over the whole fixture-import
// closure of the named packages, in dependency order, sharing one fact
// store — so a fixture importing a sibling sees the facts the analyzer
// exported there, exactly as the driver arranges for real packages. Facts
// are asserted with `// wantfact "regexp"` comments on the line declaring
// the object: each exported object fact in a named package must match a
// wantfact regexp against "ObjectName: fact-string" on its declaration
// line, and vice versa.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/driver"
)

// Run loads each named fixture package from <testdata>/src/<pkg> along with
// its fixture-import closure, applies the analyzer over the closure in
// dependency order with a shared fact store, and compares diagnostics and
// exported facts against the named packages' want/wantfact comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		root: filepath.Join(testdata, "src"),
		pkgs: map[string]*fixturePkg{},
	}
	ld.std = driver.NewImporter(ld.fset, nil)
	for _, path := range pkgs {
		if _, err := ld.load(path); err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
	}

	// Analyze the whole closure in dependency order (the loader appends a
	// package only after its fixture imports finished loading) so facts
	// flow to importers the way the real driver arranges.
	facts := driver.NewFactStore([]*analysis.Analyzer{a})
	diags := map[string][]analysis.Diagnostic{}
	for _, fp := range ld.order {
		fp := fp
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       ld.fset,
			Files:      fp.files,
			Pkg:        fp.pkg,
			TypesInfo:  fp.info,
			TypesSizes: driver.Sizes(),
			Report: func(d analysis.Diagnostic) {
				diags[fp.path] = append(diags[fp.path], d)
			},
			Facts: facts,
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer error on fixture %s: %v", a.Name, fp.path, err)
		}
	}

	for _, path := range pkgs {
		check(t, ld.fset, a, ld.pkgs[path], diags[path])
		checkFacts(t, ld.fset, a, ld.pkgs[path], facts)
	}
}

// TestData returns the absolute path of the calling package's testdata
// directory (tests run with the package directory as working directory).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader parses and type-checks fixture packages, memoizing results so a
// fixture imported by another fixture is checked once. order records
// completion order, which is topological: a package is appended only after
// the type checker finished importing (and hence loading) its fixture deps.
type loader struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	pkgs  map[string]*fixturePkg
	order []*fixturePkg
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files, err := driver.ParseFiles(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := driver.Check(l.fset, path, l, files, runtime.Version())
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = fp
	l.order = append(l.order, fp)
	return fp, nil
}

// Import satisfies types.Importer: fixture directories shadow everything
// else; non-fixture paths resolve through the toolchain's export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

// check reconciles one fixture package's diagnostics with its want
// comments.
func check(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, fp *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(t, fset, c, "want")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s:%d: unexpected diagnostic: %s", a.Name, k.file, k.line, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, k.file, k.line, re)
		}
	}
}

// checkFacts reconciles the object facts the analyzer exported on one
// fixture package against its wantfact comments. A fact's golden form is
// "ObjectName: fact-string" (fact types typically implement Stringer), and
// its anchor line is the object's declaration position.
func checkFacts(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, fp *fixturePkg, facts *driver.FactStore) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(t, fset, c, "wantfact")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}

	for _, ef := range facts.Exported() {
		if ef.Analyzer != a.Name || ef.Object.Pkg() != fp.pkg {
			continue
		}
		pos := fset.Position(ef.Object.Pos())
		k := key{filepath.Base(pos.Filename), pos.Line}
		text := fmt.Sprintf("%s: %s", ef.Object.Name(), fmt.Sprint(ef.Fact))
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(text) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s:%d: unexpected fact: %s", a.Name, k.file, k.line, text)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: %s:%d: expected fact matching %q, got none", a.Name, k.file, k.line, re)
		}
	}
}

// wantRE extracts the quoted regexps of a want comment: double-quoted
// (Go-unquoted) or back-quoted (verbatim).
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWant reports whether the comment is a `// <verb> ...` expectation
// (verb is "want" or "wantfact") and returns its compiled patterns.
func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment, verb string) ([]*regexp.Regexp, bool) {
	t.Helper()
	text := c.Text
	if strings.HasPrefix(text, "/*") {
		// Block form, for diagnostics on comment-only lines (a directive
		// fixture can't put two line comments on one line):
		//   /* want "..." */ //thrifty:hotpath
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	} else {
		text = strings.TrimPrefix(text, "//")
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, verb+" ") {
		return nil, false
	}
	rest := strings.TrimPrefix(text, verb+" ")
	var out []*regexp.Regexp
	for _, q := range wantRE.FindAllString(rest, -1) {
		s := q
		if s[0] == '"' {
			u, err := strconv.Unquote(s)
			if err != nil {
				t.Fatalf("%s: bad %s string %s: %v", fset.Position(c.Pos()), verb, q, err)
			}
			s = u
		} else {
			s = s[1 : len(s)-1]
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s: bad %s regexp %s: %v", fset.Position(c.Pos()), verb, q, err)
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		t.Fatalf("%s: %s comment with no quoted regexps", fset.Position(c.Pos()), verb)
	}
	return out, true
}
