// Quickstart: build a graph from an edge list, run Thrifty Label
// Propagation, and inspect the components.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thriftylp/cc"
	"thriftylp/graph"
)

func main() {
	// Two components: a square {0,1,2,3} with a chord, and a triangle
	// {4,5,6}. Vertex 7 is isolated.
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 4},
	}
	g, err := graph.BuildUndirected(edges, graph.WithNumVertices(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// Run the paper's algorithm. Results from any other algorithm in the
	// package (cc.Afforest, cc.DOLP, ...) describe the same partition.
	res := cc.Thrifty(g)
	fmt.Printf("found %d components in %d iterations\n", res.NumComponents(), res.Iterations)

	for v := uint32(0); v < uint32(g.NumVertices()); v++ {
		fmt.Printf("  vertex %d -> component label %d\n", v, res.ComponentOf(v))
	}

	fmt.Println("0 and 3 connected:", res.SameComponent(0, 3))
	fmt.Println("0 and 4 connected:", res.SameComponent(0, 4))

	// Canonical labels (smallest vertex id per component) for stable
	// cross-algorithm comparison.
	fmt.Println("canonical labels:", cc.Normalize(res.Labels))

	// Always true: Thrifty agrees with the sequential oracle.
	fmt.Println("verified:", cc.Verify(g, res.Labels))
}
