package core

import (
	"sync/atomic"

	"thriftylp/graph"
	"thriftylp/internal/parallel"
)

// LP is the textbook synchronous Label Propagation CC (§II): every vertex,
// every iteration, takes the minimum of its own and its neighbours' labels
// from the previous iteration's array, until a fixed point. It has no
// frontier, no direction optimization and no convergence shortcuts — it is
// the semantic reference the optimized variants are validated against, and
// the zero line for measuring what DO-LP's frontier machinery buys.
func LP(g *graph.Graph, cfg Config) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	oldLbs := make([]uint32, n)
	newLbs := make([]uint32, n)
	parallel.Fill(pool, oldLbs, func(i int) uint32 { return uint32(i) })
	parallel.Copy(pool, newLbs, oldLbs)
	sch := newScheduler(g, cfg, pool)

	iters := 0
	maxIters := cfg.maxIters(n)
	for iters < maxIters {
		var changed int64
		sch.sweep(func(tid, lo, hi int) {
			var local int64
			var ck chunkCounts
			for v := lo; v < hi; v++ {
				ck.visits++
				newLabel := oldLbs[v]
				ck.loads++
				for _, u := range g.Neighbors(uint32(v)) {
					ck.edges++
					ck.loads++
					ck.branches++
					if l := oldLbs[u]; l < newLabel {
						newLabel = l
					}
				}
				ck.branches++
				if newLabel < oldLbs[v] {
					newLbs[v] = newLabel
					ck.stores++
					local++
				}
			}
			ck.flush(cfg.Ctr, tid)
			if local > 0 {
				atomic.AddInt64(&changed, local)
			}
		})
		iters++
		if changed == 0 {
			break
		}
		parallel.Copy(pool, oldLbs, newLbs)
	}
	return Result{Labels: newLbs, Iterations: iters, PullIterations: iters}
}
