package graph

import (
	"math/rand"
	"slices"
	"testing"

	"thriftylp/internal/parallel"
)

// referenceCSR is a deliberately naive sequential builder used as the
// property-test oracle: count degrees, prefix-sum, scatter in edge order.
// It mirrors what buildCSRSerial does but shares no code with it.
func referenceCSR(edges []Edge, n int, dropLoops bool) ([]int64, []uint32) {
	deg := make([]int64, n)
	for _, e := range edges {
		if e.U == e.V {
			if !dropLoops {
				deg[e.U]++
			}
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]uint32, offsets[n])
	cur := make([]int64, n)
	copy(cur, offsets[:n])
	for _, e := range edges {
		if e.U == e.V {
			if !dropLoops {
				adj[cur[e.U]] = e.V
				cur[e.U]++
			}
			continue
		}
		adj[cur[e.U]] = e.V
		cur[e.U]++
		adj[cur[e.V]] = e.U
		cur[e.V]++
	}
	return offsets, adj
}

// randomEdges generates an edge list with self-loops, duplicates and sparse
// ids (leaving isolated vertices below n).
func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if rng.Intn(10) == 0 {
			v = u // forced self-loop
		}
		edges[i] = Edge{U: u, V: v}
		if i > 0 && rng.Intn(8) == 0 {
			edges[i] = edges[rng.Intn(i)] // forced duplicate
		}
	}
	return edges
}

// TestBuildStrategiesMatchReference cross-checks all three construction
// strategies against the naive oracle over random inputs: the serial and
// histogram strategies must reproduce the oracle's layout bit-for-bit
// (deterministic scatter order), and the atomic strategy must agree after
// per-vertex sorting (its slot order is scheduling-dependent).
func TestBuildStrategiesMatchReference(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		m := rng.Intn(800)
		edges := randomEdges(rng, n, m)
		dropLoops := trial%2 == 0

		wantOff, wantAdj := referenceCSR(edges, n, dropLoops)

		serOff, serAdj := buildCSRSerial(edges, n, dropLoops)
		if !slices.Equal(serOff, wantOff) || !slices.Equal(serAdj, wantAdj) {
			t.Fatalf("trial %d: serial layout differs from reference", trial)
		}

		histOff, histAdj := buildCSRHistogram(edges, n, dropLoops, pool)
		if !slices.Equal(histOff, wantOff) {
			t.Fatalf("trial %d: histogram offsets differ from reference", trial)
		}
		if !slices.Equal(histAdj, wantAdj) {
			t.Fatalf("trial %d: histogram adjacency not bit-identical to sequential reference", trial)
		}

		atomOff, atomAdj := buildCSRAtomic(edges, n, dropLoops, pool)
		if !slices.Equal(atomOff, wantOff) {
			t.Fatalf("trial %d: atomic offsets differ from reference", trial)
		}
		sortPerVertex := func(off []int64, adj []uint32) []uint32 {
			s := slices.Clone(adj)
			for v := 0; v < n; v++ {
				slices.Sort(s[off[v]:off[v+1]])
			}
			return s
		}
		if !slices.Equal(sortPerVertex(atomOff, atomAdj), sortPerVertex(wantOff, wantAdj)) {
			t.Fatalf("trial %d: atomic adjacency differs from reference as a multiset", trial)
		}
	}
}

// TestBuildUndirectedLegacyEquivalence checks the public entry point: the
// default (histogram/serial) pipeline and WithLegacyBuild produce identical
// graphs once adjacency order is canonicalized.
func TestBuildUndirectedLegacyEquivalence(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(300)
		edges := randomEdges(rng, n, 100+rng.Intn(2000))

		g1, err := BuildUndirected(edges, WithSortedAdjacency(), WithBuildPool(pool))
		if err != nil {
			t.Fatal(err)
		}
		g2, err := BuildUndirected(edges, WithSortedAdjacency(), WithLegacyBuild(), WithBuildPool(pool))
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(g1.Offsets(), g2.Offsets()) || !slices.Equal(g1.Adjacency(), g2.Adjacency()) {
			t.Fatalf("trial %d: default and legacy builds disagree", trial)
		}
		if g1.MaxDegreeVertex() != g2.MaxDegreeVertex() {
			t.Fatalf("trial %d: max-degree vertex differs: %d vs %d",
				trial, g1.MaxDegreeVertex(), g2.MaxDegreeVertex())
		}
		if err := g1.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestBuildHistogramLargeDeterminism forces the histogram path past the
// parallel cutoff and checks determinism across repeated parallel builds
// and against the serial layout.
func TestBuildHistogramLargeDeterminism(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(3))
	n := 5000
	edges := randomEdges(rng, n, parallelBuildCutoff+5000)

	wantOff, wantAdj := buildCSRSerial(edges, n, false)
	for rep := 0; rep < 3; rep++ {
		off, adj := buildCSRHistogram(edges, n, false, pool)
		if !slices.Equal(off, wantOff) || !slices.Equal(adj, wantAdj) {
			t.Fatalf("rep %d: parallel histogram layout differs from serial", rep)
		}
	}
}

func TestHistogramFits(t *testing.T) {
	if !histogramFits(4, 1000, 100000) {
		t.Errorf("dense small graph should fit")
	}
	if histogramFits(4, 1<<28, 100) {
		t.Errorf("histograms 4x of a huge vertex set over 100 edges should not fit")
	}
	if histogramFits(2, 10, 1<<30) {
		t.Errorf("edge counts at the int32 cursor limit should not fit")
	}
}

// TestParseEdgeListShardedLineNumbers pins that a parse error deep in a
// later shard still reports its file-global line number.
func TestParseEdgeListShardedLineNumbers(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()

	var data []byte
	// Enough lines to exceed parseParallelCutoff and spread over shards.
	line := 0
	for len(data) < parseParallelCutoff*2 {
		line++
		data = append(data, []byte("7 8\n")...)
	}
	badLine := line + 1
	data = append(data, []byte("oops not numbers\n")...)

	_, err := parseEdgeList(data, pool)
	if err == nil {
		t.Fatal("malformed tail line accepted")
	}
	want := "line " + itoa(badLine)
	if !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not carry global %q", err, want)
	}

	// And a clean parse of the same prefix agrees with the sequential path.
	clean := data[:len(data)-len("oops not numbers\n")]
	seq, perr := parseEdgeChunk(clean, nil)
	if perr != nil {
		t.Fatal(perr.msg)
	}
	par, err := parseEdgeList(clean, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(seq, par) {
		t.Fatal("sharded parse differs from sequential parse")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
