package driver

// This file is the facts half of the driver: an in-memory store keyed by
// (analyzer, package path, object path) strings plus a gob wire format for
// the vetx files the go vet protocol threads between packages. String keys
// — not types.Object identity — are load-bearing: the same object is a
// source-checked *types.Func in the pass that exports a fact and an
// export-data-loaded one in the pass that imports it, and only the
// (package path, object path) pair survives that round trip.
//
// Object paths are a deliberately small subset of x/tools' objectpath:
// "Name" for package-scope objects and "Type.Method" for methods — the
// only shapes the thriftyvet analyzers attach facts to. gc export data
// carries unexported methods of exported types, so method facts resolve on
// the importing side; facts on locals or fields are silently dropped at
// export time.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"

	"thriftylp/internal/lint/analysis"
)

// factKey names one fact: obj is "" for package-level facts.
type factKey struct {
	analyzer string
	pkg      string
	obj      string
}

// A FactStore accumulates facts across the passes of one driver run (or
// decodes them from dependency vetx files) and implements analysis.Facter.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]analysis.Fact
	// objs remembers the live types.Object of facts exported in this
	// process, for linttest's wantfact assertions; decoded facts have none.
	objs map[factKey]types.Object
}

// NewFactStore returns an empty store and gob-registers the fact types of
// the given analyzers so interface values round-trip through vetx files.
func NewFactStore(analyzers []*analysis.Analyzer) *FactStore {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
	return &FactStore{
		facts: map[factKey]analysis.Fact{},
		objs:  map[factKey]types.Object{},
	}
}

// HasFacts reports whether any of the analyzers declares fact types — the
// driver skips the whole facts pipeline otherwise.
func HasFacts(analyzers []*analysis.Analyzer) bool {
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			return true
		}
	}
	return false
}

// objPath names obj within its package: "Name" for package-scope objects,
// "Type.Method" for methods. ok is false for objects vetx cannot express.
func objPath(obj types.Object) (string, bool) {
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		return o.Name(), true
	case *types.TypeName:
		return o.Name(), true
	case *types.Var:
		if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
			return o.Name(), true
		}
		return "", false
	case *types.Const:
		if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
			return o.Name(), true
		}
		return "", false
	}
	return "", false
}

func (s *FactStore) key(a *analysis.Analyzer, obj types.Object) (factKey, bool) {
	if obj == nil || obj.Pkg() == nil {
		return factKey{}, false
	}
	p, ok := objPath(obj)
	if !ok {
		return factKey{}, false
	}
	return factKey{analyzer: a.Name, pkg: obj.Pkg().Path(), obj: p}, true
}

// ExportObjectFact implements analysis.Facter.
func (s *FactStore) ExportObjectFact(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) {
	k, ok := s.key(a, obj)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[k] = fact
	s.objs[k] = obj
}

// ImportObjectFact implements analysis.Facter: on a hit it copies the
// stored fact into *ptr (whose concrete type must match) and returns true.
func (s *FactStore) ImportObjectFact(a *analysis.Analyzer, obj types.Object, ptr analysis.Fact) bool {
	k, ok := s.key(a, obj)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyFact(s.facts[k], ptr)
}

// AllObjectFacts implements analysis.Facter. Facts decoded from vetx files
// carry no live types.Object and are omitted; analyzers resolve those
// through ImportObjectFact on the objects they already hold.
func (s *FactStore) AllObjectFacts(a *analysis.Analyzer) []analysis.ObjectFact {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []analysis.ObjectFact
	for k, f := range s.facts {
		if k.analyzer != a.Name || k.obj == "" {
			continue
		}
		if obj := s.objs[k]; obj != nil {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

// ExportPackageFact implements analysis.Facter.
func (s *FactStore) ExportPackageFact(a *analysis.Analyzer, pkg *types.Package, fact analysis.Fact) {
	if pkg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[factKey{analyzer: a.Name, pkg: pkg.Path()}] = fact
}

// ImportPackageFact implements analysis.Facter.
func (s *FactStore) ImportPackageFact(a *analysis.Analyzer, pkg *types.Package, ptr analysis.Fact) bool {
	if pkg == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyFact(s.facts[factKey{analyzer: a.Name, pkg: pkg.Path()}], ptr)
}

// copyFact copies src into the pointer-typed dst when their concrete types
// match (both are pointers to structs by the Fact convention), reporting
// whether a copy happened.
func copyFact(src, dst analysis.Fact) bool {
	if src == nil || dst == nil {
		return false
	}
	sv := reflect.ValueOf(src)
	dv := reflect.ValueOf(dst)
	if sv.Type() != dv.Type() || sv.Kind() != reflect.Pointer || sv.IsNil() || dv.IsNil() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// ExportedFact pairs a fact with the live object it was exported on, for
// test harnesses.
type ExportedFact struct {
	Analyzer string
	Object   types.Object
	Fact     analysis.Fact
}

// Exported returns every object fact exported in-process (not decoded),
// ordered by object position — linttest's wantfact source of truth.
func (s *FactStore) Exported() []ExportedFact {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ExportedFact
	for k, f := range s.facts {
		if obj := s.objs[k]; obj != nil {
			out = append(out, ExportedFact{Analyzer: k.analyzer, Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

// factRecord is the vetx wire form of one fact.
type factRecord struct {
	Analyzer string
	PkgPath  string
	ObjPath  string // "" for package facts
	Fact     analysis.Fact
}

// Encode serializes every fact in the store. The driver writes this to the
// package's VetxOutput; re-encoding imported dependency facts alongside the
// package's own makes fact flow transitive, since go vet hands each
// package only its direct PackageVetx files.
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	recs := make([]factRecord, 0, len(s.facts))
	for k, f := range s.facts {
		recs = append(recs, factRecord{Analyzer: k.analyzer, PkgPath: k.pkg, ObjPath: k.obj, Fact: f})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.ObjPath < b.ObjPath
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges the facts of one vetx file into the store. Empty input is
// a valid empty fact set (the factless-era files, and the stdlib's).
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.facts[factKey{analyzer: r.Analyzer, pkg: r.PkgPath, obj: r.ObjPath}] = r.Fact
	}
	return nil
}
