package hangtest

import (
	"testing"

	"thriftylp/internal/lint/linttest"
	"thriftylp/internal/lint/reflease"
)

func TestHang(t *testing.T) {
	linttest.Run(t, "/root/repo/internal/lint/reflease/hangcheck/testdata", reflease.Analyzer, "snap", "use")
}
