package harness

import (
	"path/filepath"
	"testing"
)

// TestServeRegressionSmall runs the serving load test end to end at the
// small scale and sanity-checks the report: every endpoint is represented,
// nothing errored, latencies are ordered, and the JSON round-trips.
func TestServeRegressionSmall(t *testing.T) {
	rep, err := ServeRegression(RunConfig{Scale: ScaleSmall, Reps: 1, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ServeSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ServeSchema)
	}
	if rep.Dataset != "rmat-small" {
		t.Errorf("dataset = %q, want rmat-small", rep.Dataset)
	}
	if rep.LoadNs <= 0 || rep.DriveNs <= 0 {
		t.Errorf("non-positive phase timings: load=%d drive=%d", rep.LoadNs, rep.DriveNs)
	}
	if len(rep.Records) != len(serveEndpoints) {
		t.Fatalf("got %d records, want %d", len(rep.Records), len(serveEndpoints))
	}
	want := rep.Clients * rep.RequestsPerClient
	for _, rec := range rep.Records {
		if rec.Errors != 0 {
			t.Errorf("%s: %d errored requests", rec.Endpoint, rec.Errors)
		}
		if rec.Requests != want {
			t.Errorf("%s: %d served requests, want %d", rec.Endpoint, rec.Requests, want)
		}
		if rec.QPS <= 0 {
			t.Errorf("%s: non-positive QPS %f", rec.Endpoint, rec.QPS)
		}
		if rec.P50Ns <= 0 || rec.P50Ns > rec.P99Ns || rec.P99Ns > rec.MaxNs {
			t.Errorf("%s: unordered percentiles p50=%d p99=%d max=%d",
				rec.Endpoint, rec.P50Ns, rec.P99Ns, rec.MaxNs)
		}
		// Server-side histogram view: every served request (200s, plus the
		// 404 label misses /size legitimately answers) is recorded, and the
		// percentiles are ordered.
		if rec.ServerCount != int64(rec.Requests) {
			t.Errorf("%s: server histogram count %d, want %d",
				rec.Endpoint, rec.ServerCount, rec.Requests)
		}
		if rec.ServerP50Ns <= 0 || rec.ServerP50Ns > rec.ServerP99Ns {
			t.Errorf("%s: unordered server percentiles p50=%d p99=%d",
				rec.Endpoint, rec.ServerP50Ns, rec.ServerP99Ns)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadServeReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.HostMismatch(rep)) != 0 {
		t.Errorf("host stamp did not round-trip: %v", back.HostMismatch(rep))
	}
	if len(back.Records) != len(rep.Records) || back.Records[0] != rep.Records[0] {
		t.Error("records did not round-trip")
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}
