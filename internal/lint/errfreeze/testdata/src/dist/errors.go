// Fixture for errfreeze over the dist package: the package name matches
// the frozen path thriftylp/internal/dist, so FrozenDist applies.
package dist

import "fmt"

func frozenOK(n int) error {
	return fmt.Errorf("dist: negative shard count %d", n)
}

func drifted(n int) error {
	return fmt.Errorf("dist: rounds exploded at %d", n) // want `is not in the frozen list`
}
