// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, providing the Analyzer/Pass/Diagnostic
// vocabulary the thriftyvet analyzers are written against.
//
// The repository builds offline with a dependency-free go.mod, so the real
// x/tools module is deliberately not imported; this shim mirrors the fields
// and semantics of the upstream API closely enough that the analyzers (and
// their fixtures) could be moved onto x/tools unchanged if the dependency
// ever becomes available. Only the features the thriftyvet suite needs are
// implemented: syntax + type information, diagnostics, type sizes, and —
// since thriftyvet v2 — cross-package facts (AFact/ObjectFact, serialized
// through the unitchecker driver's vetx files). SSA and inter-analyzer
// results are intentionally absent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. Name must be a valid identifier; it is
// the diagnostic prefix and the -<name>=false disable flag of thriftyvet.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report/Reportf and returns an optional result (unused here, kept
	// for upstream signature compatibility).
	Run func(*Pass) (any, error)
	// FactTypes lists the fact types the analyzer produces and consumes,
	// as zero-valued pointer instances (upstream convention). An analyzer
	// with facts is run on dependency packages too, so its exports reach
	// importers; the driver gob-registers these types for vetx
	// serialization.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the syntax trees and type information
// of a single package, and receives its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the parsed syntax trees of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression/object maps.
	TypesInfo *types.Info
	// TypesSizes describes the target architecture's size/alignment model.
	TypesSizes types.Sizes
	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)
	// Facts is the driver's fact store view, or nil when the driver (or a
	// test harness) runs without facts; the fact methods below degrade to
	// no-ops then, so factless execution stays valid.
	Facts Facter
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Fact is a serializable observation one analyzer makes about a package
// or one of its objects, visible to the same analyzer when it later runs on
// an importing package. Concrete fact types are pointers to structs with a
// no-op AFact method (upstream convention); the driver serializes them with
// encoding/gob, so exported fields only.
type Fact interface {
	AFact()
}

// An ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// Facter is the driver-side fact store interface a Pass delegates to. The
// analyzer identity scopes every operation: facts are namespaced per
// analyzer, as upstream.
type Facter interface {
	ExportObjectFact(a *Analyzer, obj types.Object, fact Fact)
	ImportObjectFact(a *Analyzer, obj types.Object, ptr Fact) bool
	AllObjectFacts(a *Analyzer) []ObjectFact
	ExportPackageFact(a *Analyzer, pkg *types.Package, fact Fact)
	ImportPackageFact(a *Analyzer, pkg *types.Package, ptr Fact) bool
}

// ExportObjectFact associates fact with obj for importing packages'
// passes. obj must belong to a package the driver loaded from source
// (typically the pass's own package); facts on objects the driver cannot
// name (locals, struct fields) are silently dropped, matching what the
// vetx wire format can express.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts != nil {
		p.Facts.ExportObjectFact(p.Analyzer, obj, fact)
	}
}

// ImportObjectFact copies into ptr the fact (of ptr's concrete type) this
// analyzer previously exported for obj, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.ImportObjectFact(p.Analyzer, obj, ptr)
}

// AllObjectFacts returns every object fact visible to this pass's analyzer.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.AllObjectFacts(p.Analyzer)
}

// ExportPackageFact associates fact with the pass's own package.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts != nil {
		p.Facts.ExportPackageFact(p.Analyzer, p.Pkg, fact)
	}
}

// ImportPackageFact copies into ptr the fact this analyzer exported for
// pkg, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.ImportPackageFact(p.Analyzer, pkg, ptr)
}

// A Diagnostic is one finding, tied to a position in the package source.
type Diagnostic struct {
	// Pos is where the problem is.
	Pos token.Pos
	// Message states the problem. By upstream convention it is not
	// capitalized and has no trailing period.
	Message string
}
