// Fixture for the metricfreeze analyzer. The package is named obs so the
// package-path gate applies; frozen names come from the real Frozen list.
package obs

// Full frozen names pass.
const (
	metricRuns  = "thriftylp_runs_total"
	metricTicks = "thriftylp_watchdog_ticks_total"
)

// Frozen prefix and suffix fragments pass.
func eventMetric(event string) string {
	return "thriftylp_events_" + event + "_total"
}

// A renamed series trips the freeze.
const metricDrifted = "thriftylp_runs_grand_total" // want `is not in the frozen list`

// So does an unfrozen composed suffix.
func latencyMetric(endpoint string) string {
	return "thriftyd_" + endpoint + "_latency_us" // want `is not in the frozen list`
}

// Non-metric strings are outside the freeze entirely.
const (
	program = "thriftyd"
	schema  = "thriftylp/trace/v1"
	flag    = "-slowlog"
)
