package core

import (
	"time"

	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// DOLPUnified is Direction-Optimizing Label Propagation with exactly one of
// Thrifty's four optimizations applied: the Unified Labels Array (§IV-A).
// A single labels array replaces the old/new pair, so a label written early
// in an iteration is already visible to vertices processed later in the
// same iteration, and the end-of-iteration synchronization pass disappears.
// No zero planting, zero convergence, or initial push.
//
// This variant exists for the ablation of Fig 9/10: the gap between DOLP
// and DOLPUnified measures the Unified Labels contribution (~65% of
// Thrifty's total improvement in the paper), and the gap between
// DOLPUnified and Thrifty measures the other three techniques combined.
func DOLPUnified(g *graph.Graph, cfg Config) Result {
	switch {
	case cfg.Faults != nil:
		return dolpUnifiedRun(g, cfg, newChaos(cfg))
	case !cfg.fastInstr():
		return dolpUnifiedRun(g, cfg, newCounting(cfg))
	default:
		return dolpUnifiedRun(g, cfg, noInstr{})
	}
}

func dolpUnifiedRun[I instr[I]](g *graph.Graph, cfg Config, proto I) Result {
	pool := cfg.pool()
	n := g.NumVertices()
	threshold := cfg.threshold(DefaultDOLPThreshold)
	labels := cfg.Arena.Uint32s(n)
	parallel.Fill(pool, labels, func(i int) uint32 { return uint32(i) })

	oldFr := frontierState{bm: cfg.Arena.Bitmap(n)}
	newFr := frontierState{bm: cfg.Arena.Bitmap(n)}
	oldFr.bm.SetAll()
	oldFr.activeV = int64(n)
	oldFr.activeE = g.NumDirectedEdges()
	sch := newScheduler(g, cfg, pool)

	res := Result{}
	maxIters := cfg.maxIters(n)
	phases := make(map[string]time.Duration, 2)
	phase := string(counters.KindPull)
	for oldFr.activeV > 0 && res.Iterations < maxIters {
		start := time.Now()
		ctrBefore := cfg.Ctr.Total(counters.EdgesProcessed)
		density := oldFr.density(g)
		activeAtStart, activeEAtStart := oldFr.activeV, oldFr.activeE
		var changed int64
		var kind counters.IterKind

		if density < threshold {
			kind = counters.KindPush
			phase = string(kind)
			res.PushIterations++
			changed = dolpUnifiedPush(g, pool, labels, &oldFr, &newFr, cfg.Stop, proto)
		} else {
			kind = counters.KindPull
			phase = string(kind)
			res.PullIterations++
			changed = dolpUnifiedPull(g, sch, labels, &newFr, cfg.Stop, proto)
		}

		newFr.recount(pool, g)
		oldFr, newFr = newFr, oldFr
		newFr.bm.Reset()
		newFr.activeV, newFr.activeE = 0, 0
		cfg.Lines.FlushIteration(cfg.Ctr, 0)

		res.Iterations++
		dur := time.Since(start)
		phases[string(kind)] += dur
		if cfg.Trace.Enabled() {
			cfg.Trace.Record(counters.IterRecord{
				Index:       res.Iterations - 1,
				Kind:        kind,
				Active:      activeAtStart,
				ActiveEdges: activeEAtStart,
				Changed:     changed,
				Edges:       cfg.Ctr.Total(counters.EdgesProcessed) - ctrBefore,
				Density:     density,
				Threshold:   threshold,
				Duration:    dur,
			}, labels)
		}
		// Cancellation before the loop condition re-evaluates: a cancelled
		// sweep skips partitions, and the resulting empty frontier means
		// "aborted", not "converged".
		if cfg.cancelPoint(&res, phase) {
			break
		}
	}
	res.Labels = labels
	res.Sched = sch.stealStats()
	res.PhaseDurations = phases
	return res
}

// dolpUnifiedPush runs one push iteration over the unified labels array:
// identical to DO-LP's push except source labels are read (atomically) from
// the same array the atomic-min writes target.
func dolpUnifiedPush[I instr[I]](g *graph.Graph, pool *parallel.Pool, labels []uint32, oldFr, newFr *frontierState, stop *Stop, proto I) int64 {
	offs, adj := g.Offsets(), g.Adjacency()
	active := oldFr.extract(pool)
	var changed int64
	parallel.For(pool, len(active), 512, func(tid, lo, hi int) {
		ins := proto.Fresh()
		if stop.Requested() {
			return // cancellation poll at chunk entry
		}
		var local int64
		for _, v := range active[lo:hi] {
			iVisit(ins)
			lv := atomicx.LoadUint32(&labels[v])
			iLoad(ins)
			for _, u := range adj[offs[v]:offs[v+1]] {
				iEdge(ins)
				iLoad(ins)
				iCAS(ins)
				iBranch(ins)
				iTouch(ins, u)
				if atomicx.MinUint32(&labels[u], lv) {
					iStore(ins)
					if newFr.bm.SetAtomic(int(u)) {
						local++
					}
				}
			}
		}
		iFlush(ins, tid)
		atomicx.AddInt64(&changed, local)
	})
	return changed
}

// dolpUnifiedPull runs one pull iteration over the unified labels array. The
// neighbour read may observe a label written earlier in this same iteration,
// which is what accelerates wavefront propagation.
func dolpUnifiedPull[I instr[I]](g *graph.Graph, sch *scheduler, labels []uint32, newFr *frontierState, stop *Stop, proto I) int64 {
	offs, adj := g.Offsets(), g.Adjacency()
	var changed int64
	sch.sweep(func(tid, lo, hi int) {
		ins := proto.Fresh()
		if stop.Requested() {
			return // cancellation poll at partition entry
		}
		var local int64
		for v := lo; v < hi; v++ {
			iVisit(ins)
			own := atomicx.LoadUint32(&labels[v])
			newLabel := own
			iLoad(ins)
			iTouch(ins, uint32(v))
			for _, u := range adj[offs[v]:offs[v+1]] {
				iEdge(ins)
				iLoad(ins)
				iBranch(ins)
				iTouch(ins, u)
				if l := atomicx.LoadUint32(&labels[u]); l < newLabel {
					newLabel = l
				}
			}
			iBranch(ins)
			if newLabel < own {
				atomicx.StoreUint32(&labels[v], newLabel)
				iStore(ins)
				newFr.bm.SetAtomic(v) // chunks share words at their edges
				local++
			}
		}
		iFlush(ins, tid)
		atomicx.AddInt64(&changed, local)
	})
	return changed
}
