package harness

import (
	"path/filepath"
	"testing"
)

// TestIngestRegressionSmall runs the full ingestion gate at the small scale
// and checks the report's shape: every fixture yields a baseline/parallel
// pair for both formats, parallel rows carry a speedup denominator, and the
// report survives a JSON round trip.
func TestIngestRegressionSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ingestion regression fixtures are slow in -short mode")
	}
	rep, err := IngestRegression(RunConfig{Scale: ScaleSmall, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != IngestSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, IngestSchema)
	}
	fixtures := IngestFixtures(ScaleSmall)
	if want := len(fixtures) * 4; len(rep.Records) != want {
		t.Fatalf("got %d records, want %d (2 formats x 2 pipelines per fixture)", len(rep.Records), want)
	}

	for i, rec := range rep.Records {
		wantPipeline := PipelineBaseline
		if i%2 == 1 {
			wantPipeline = PipelineParallel
		}
		if rec.Pipeline != wantPipeline {
			t.Errorf("record %d: pipeline = %q, want %q", i, rec.Pipeline, wantPipeline)
		}
		if rec.Bytes <= 0 || rec.Vertices <= 0 || rec.Edges <= 0 {
			t.Errorf("record %d: degenerate sizes: %+v", i, rec)
		}
		if rec.TotalNs != rec.LoadNs+rec.BuildNs {
			t.Errorf("record %d: total %d != load %d + build %d", i, rec.TotalNs, rec.LoadNs, rec.BuildNs)
		}
		if rec.Pipeline == PipelineParallel && rec.Speedup <= 0 {
			t.Errorf("record %d: parallel row missing speedup: %+v", i, rec)
		}
		if rec.Pipeline == PipelineBaseline && rec.Speedup != 0 {
			t.Errorf("record %d: baseline row carries a speedup: %+v", i, rec)
		}
	}

	// Baseline and parallel must agree on what they loaded.
	for i := 0; i+1 < len(rep.Records); i += 2 {
		b, p := rep.Records[i], rep.Records[i+1]
		if b.Dataset != p.Dataset || b.Vertices != p.Vertices || b.Edges != p.Edges || b.Bytes != p.Bytes {
			t.Errorf("records %d/%d: pipelines disagree on the dataset: %+v vs %+v", i, i+1, b, p)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_ingest.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIngestReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || len(back.Records) != len(rep.Records) {
		t.Fatalf("JSON round trip changed the report: %+v", back)
	}
	if back.Records[1] != rep.Records[1] {
		t.Errorf("record drifted through JSON: %+v vs %+v", back.Records[1], rep.Records[1])
	}
	if ms := back.HostMismatch(rep); len(ms) != 0 {
		t.Errorf("self host-mismatch: %v", ms)
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}
