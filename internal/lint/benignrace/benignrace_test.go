package benignrace_test

import (
	"testing"

	"thriftylp/internal/lint/benignrace"
	"thriftylp/internal/lint/linttest"
)

func TestBenignRace(t *testing.T) {
	linttest.Run(t, linttest.TestData(), benignrace.Analyzer, "benignrace", "atomicx")
}
