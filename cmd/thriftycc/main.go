// Command thriftycc runs a connected-components algorithm on a graph and
// reports the component census and timing.
//
// The graph comes either from a file (-in, text edge list or .bin binary
// CSR produced by graphgen) or from an inline generator spec (-gen):
//
//	thriftycc -gen rmat:20:16 -algo thrifty
//	thriftycc -gen road:1000000 -algo afforest -verify
//	thriftycc -in graph.bin -algo all -reps 3
//	thriftycc -gen web:16 -algo thrifty -stats
//
// Generator specs: rmat:<scale>[:<edgefactor>], road:<vertices>,
// er:<vertices>[:<edges>], web:<scale>, ba:<vertices>[:<m>],
// star:<vertices>, path:<vertices>.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/stats"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph file (edge list, or .bin/.csr binary CSR)")
		genSpec = flag.String("gen", "", "generator spec (see package doc) used when -in is empty")
		algo    = flag.String("algo", "thrifty", "algorithm: "+algoNames()+", or 'all'")
		reps    = flag.Int("reps", 1, "timed repetitions (min reported)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		verify  = flag.Bool("verify", false, "validate the result against the sequential oracle")
		stat    = flag.Bool("stats", false, "print degree-distribution and census statistics")
		inst    = flag.Bool("instrument", false, "print software event counters and per-iteration trace")
		timeout = flag.Duration("timeout", 0, "abort runs after this duration (0 = no limit)")
	)
	flag.Parse()

	// SIGINT cancels the runs cooperatively: the current algorithm stops at
	// its next iteration boundary and the process exits non-zero, instead of
	// dying mid-write or needing SIGKILL. A second SIGINT kills immediately
	// (signal.NotifyContext restores default handling after the first).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	g, err := loadGraph(*in, *genSpec, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("graph: %d vertices, %d edges (max degree %d)\n",
		g.NumVertices(), g.NumEdges(), g.Degree(g.MaxDegreeVertex()))

	if *stat {
		printStats(g)
	}

	algos := []cc.Algorithm{cc.Algorithm(*algo)}
	if *algo == "all" {
		algos = cc.Algorithms()
	}

	for _, a := range algos {
		if err := runOne(ctx, a, g, *reps, *threads, *verify, *inst); err != nil {
			var ce *cc.CanceledError
			if errors.As(err, &ce) {
				if errors.Is(err, context.DeadlineExceeded) {
					fatalf("%s: timeout after %v (%d iterations completed)", a, *timeout, ce.Iterations)
				}
				fatalf("%s: interrupted (%d iterations completed)", a, ce.Iterations)
			}
			fatalf("%s: %v", a, err)
		}
	}
}

func algoNames() string {
	names := make([]string, 0, len(cc.Algorithms()))
	for _, a := range cc.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

func runOne(ctx context.Context, a cc.Algorithm, g *graph.Graph, reps, threads int, verify, instrument bool) error {
	var opts []cc.Option
	if threads > 0 {
		opts = append(opts, cc.WithThreads(threads))
	}
	var instData *cc.Instrumentation
	if instrument {
		instData = &cc.Instrumentation{}
		opts = append(opts, cc.WithInstrumentation(instData))
	}

	best := time.Duration(1<<63 - 1)
	var res cc.Result
	var err error
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err = cc.RunContext(ctx, a, g, opts...)
		if err != nil {
			return err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	fmt.Printf("%-14s %10.3f ms   %d components, %d iterations (%d push, %d pull)\n",
		a, float64(best.Nanoseconds())/1e6, res.NumComponents(), res.Iterations,
		res.PushIterations, res.PullIterations)

	if instrument {
		fmt.Printf("  events: ")
		for _, k := range []string{"edges", "vertex-visits", "label-loads", "label-stores", "cas-ops", "branch-checks", "cache-lines"} {
			fmt.Printf("%s=%d ", k, instData.Events[k])
		}
		fmt.Println()
		for _, it := range instData.Iterations {
			fmt.Printf("  iter %3d %-13s active=%-10d changed=%-10d zero=%-10d edges=%-12d density=%.4f%% time=%v\n",
				it.Index, it.Kind, it.Active, it.Changed, it.ConvergedZero, it.Edges, it.Density*100, it.Duration.Round(time.Microsecond))
		}
	}

	if verify {
		if cc.Verify(g, res.Labels) {
			fmt.Printf("  verify: OK (matches sequential oracle)\n")
		} else {
			return fmt.Errorf("verification FAILED")
		}
	}
	return nil
}

func printStats(g *graph.Graph) {
	ds := stats.Degrees(g)
	fmt.Printf("degrees: min=%d max=%d mean=%.2f median=%d p99=%d skew=%.1f alpha=%.2f power-law=%v\n",
		ds.Min, ds.Max, ds.Mean, ds.Median, ds.P99, ds.SkewRatio, ds.Alpha, stats.IsSkewed(ds))
	census := stats.Census(cc.Sequential(g))
	fmt.Printf("components: %d total, largest holds %.1f%% of vertices\n",
		census.NumComponents, 100*census.LargestFraction)
}

func loadGraph(in, spec string, seed uint64) (*graph.Graph, error) {
	if in != "" {
		return graph.Load(in)
	}
	if spec == "" {
		return nil, fmt.Errorf("need -in or -gen")
	}
	parts := strings.Split(spec, ":")
	argInt := func(i, def int) (int, error) {
		if len(parts) <= i || parts[i] == "" {
			return def, nil
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "rmat":
		scale, err := argInt(1, 18)
		if err != nil {
			return nil, err
		}
		ef, err := argInt(2, 16)
		if err != nil {
			return nil, err
		}
		return gen.RMATCompact(gen.DefaultRMAT(scale, ef, seed))
	case "road":
		n, err := argInt(1, 1<<20)
		if err != nil {
			return nil, err
		}
		return gen.Road(n, seed)
	case "er":
		n, err := argInt(1, 1<<18)
		if err != nil {
			return nil, err
		}
		m, err := argInt(2, 8*n)
		if err != nil {
			return nil, err
		}
		return gen.ErdosRenyi(n, m, seed)
	case "web":
		scale, err := argInt(1, 16)
		if err != nil {
			return nil, err
		}
		return gen.Web(gen.DefaultWeb(scale, seed))
	case "ba":
		n, err := argInt(1, 1<<18)
		if err != nil {
			return nil, err
		}
		m, err := argInt(2, 8)
		if err != nil {
			return nil, err
		}
		return gen.BarabasiAlbert(n, m, seed)
	case "star":
		n, err := argInt(1, 1<<20)
		if err != nil {
			return nil, err
		}
		return gen.Star(n)
	case "path":
		n, err := argInt(1, 1<<20)
		if err != nil {
			return nil, err
		}
		return gen.Path(n)
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "thriftycc: "+format+"\n", args...)
	os.Exit(1)
}
