// Package mmapgraph mimics the graph package's zero-copy shape for the
// mmapsafe fixtures: a named struct aliasing an mmap region through an
// unexported `mapped []byte` field, constructors reaching mmapFile, and a
// Close that unmaps.
package mmapgraph

import "os"

// G is the mapped type: CSR arrays aliasing the mapped region.
type G struct { // wantfact "G: mmap-backed"
	Offsets []int64
	Adj     []uint32
	mapped  []byte
}

// Close unmaps. Idempotent.
func (g *G) Close() error {
	g.mapped = nil
	return nil
}

// Mapped reads the header only.
func (g *G) Mapped() bool { return g.mapped != nil }

// NumVertices reads the (possibly unmapped) offsets array.
func (g *G) NumVertices() int { return len(g.Offsets) - 1 }

// Neighbors returns a slice aliasing the mapped adjacency array.
func (g *G) Neighbors(v int) []uint32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// mmapFile stands in for the real syscall wrapper.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return make([]byte, size), nil
}

// Load maps a file: the direct constructor.
func Load(path string) (*G, error) { // wantfact "Load: maps memory"
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := mmapFile(f, 64)
	if err != nil {
		return nil, err
	}
	return &G{mapped: data}, nil
}

// Open wraps Load: the fact must propagate through the wrapper.
func Open(path string) (*G, error) { // wantfact "Open: maps memory"
	return Load(path)
}

// FromArrays builds a heap-backed G and never touches mmapFile: no fact.
func FromArrays(offsets []int64, adj []uint32) *G {
	return &G{Offsets: offsets, Adj: adj}
}
