// Package core implements the paper's contribution — Thrifty Label
// Propagation (Algorithm 2) — together with every baseline it is evaluated
// against: textbook synchronous Label Propagation, Direction-Optimizing
// Label Propagation (Algorithm 1), the DO-LP + Unified-Labels ablation
// variant, Shiloach-Vishkin, Afforest, Jayanti-Tarjan, BFS-CC, and FastSV.
// All algorithms run on the same runtime (internal/parallel), the same CSR
// representation (graph), and the same optional instrumentation
// (internal/counters), so comparisons among them measure algorithmic work
// rather than infrastructure differences.
package core

import (
	"time"

	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// Default push/pull density thresholds. DO-LP traditionally switches at 5%
// (GraphGrind/Ligra-style); Thrifty's convergence optimizations make pull
// iterations so much cheaper that 1% is the better crossover (§IV-E,
// Table VII).
const (
	DefaultDOLPThreshold    = 0.05
	DefaultThriftyThreshold = 0.01
)

// Config carries the run-time knobs shared by all algorithms. The zero
// value is valid: it selects the default pool, the algorithm's default
// threshold, and no instrumentation.
type Config struct {
	// Pool supplies worker threads; nil selects parallel.Default().
	Pool *parallel.Pool
	// Threshold overrides the push/pull density threshold; 0 selects the
	// algorithm's default. Density is (|F.V|+|F.E|)/|E| as in Algorithm 1.
	Threshold float64
	// Ctr, when non-nil, accumulates software event counts (Fig 5/6).
	Ctr *counters.Counters
	// Trace, when non-nil, records per-iteration telemetry (Fig 3/7,
	// Tables V-VII).
	Trace *counters.Trace
	// Lines, when non-nil, tracks distinct labels-array cache lines per
	// iteration (the LLC proxy of Fig 6).
	Lines *counters.LineTracker
	// MaxIterations caps the iteration loops as a safety net; 0 means
	// 2·|V|+16, which no correct run can reach.
	MaxIterations int
	// Stop, when non-nil, is polled at iteration and partition boundaries;
	// once requested, the run abandons remaining work and returns a partial
	// Result with Canceled set. cc.RunContext arms it from a context.
	Stop *Stop
	// Faults, when non-nil, selects the fault-injection policy: scheduling
	// perturbations (and optionally a panic) at the instrumentation hook
	// points. Chaos tests only; mutually exclusive with Ctr/Lines/Trace.
	Faults *FaultPlan
	// Arena, when non-nil, supplies the run's working buffers (labels,
	// worklists, bitmaps) from a reusable pool instead of fresh allocations;
	// see Arena. nil keeps the allocate-per-run behaviour.
	Arena *Arena

	// The remaining fields are Thrifty ablation/tuning switches; the zero
	// values select the paper's algorithm.

	// PlantVertex overrides where Zero Planting puts the 0 label: -1 or 0
	// with NoPlantOverride unset selects the max-degree vertex (§IV-C).
	// Setting PlantVertexSet plants at PlantVertex instead — the
	// structure-oblivious planting ablation, or a caller-known root.
	PlantVertex    uint32
	PlantVertexSet bool
	// NoInitialPush replaces the initial push (§IV-D) with a full first
	// pull, isolating the Initial Push technique's contribution (Table VI).
	NoInitialPush bool
	// EagerFrontier records a detailed frontier in every pull iteration
	// instead of counting-only pulls plus one Pull-Frontier bridge (§IV-E),
	// isolating that design choice's cost.
	EagerFrontier bool
	// DynamicScheduling replaces the paper's edge-balanced partitions with
	// work stealing (§V-A) by uniform dynamic vertex chunking — the runtime
	// ablation.
	DynamicScheduling bool
}

func (c Config) pool() *parallel.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	return parallel.Default()
}

func (c Config) threshold(def float64) float64 {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return def
}

func (c Config) maxIters(n int) int {
	if c.MaxIterations > 0 {
		return c.MaxIterations
	}
	return 2*n + 16
}

// Result is the outcome of one connected-components run.
type Result struct {
	// Labels assigns every vertex a component label. Labels are consistent
	// within an algorithm but their value space differs across algorithms
	// (e.g. Thrifty's giant component converges to 0, union-find roots are
	// vertex ids); use Normalize/Equivalent for cross-algorithm comparison.
	Labels []uint32
	// Iterations is the number of iterations executed; for Thrifty the
	// initial push counts as an iteration (§V-C), for union-find algorithms
	// it is the number of graph passes.
	Iterations int
	// PushIterations and PullIterations decompose Iterations for the
	// label-propagation algorithms (Table VII); zero for union-find.
	PushIterations int
	PullIterations int
	// Sched aggregates the run's partition-scheduling activity (partitions
	// run from a thread's own block vs stolen, failed steal attempts).
	// Collected at partition boundaries only, so it is populated even on the
	// uninstrumented fast path; zero under the DynamicScheduling ablation
	// and for kernels that do not sweep through the stealer.
	Sched parallel.StealStats
	// PhaseDurations sums wall time per iteration kind ("pull", "push",
	// "pull-frontier", "initial-push"), measured at iteration boundaries.
	// Populated by the label-propagation kernels; nil for the union-find
	// family, whose passes are not phase loops.
	PhaseDurations map[string]time.Duration
	// Canceled reports that the run stopped at a cancellation point before
	// converging; Labels then holds the algorithm's intermediate state (for
	// the LP family a refinement en route to the partition, for union-find
	// a partially built forest), not the final partition.
	Canceled bool
	// Phase names the phase the run was in when cancelled ("pull", "push",
	// "hook", ...); empty for completed runs.
	Phase string
}

// chunkCounts is the per-chunk local counter block algorithms accumulate in
// registers and flush once per chunk, keeping instrumentation overhead out
// of inner loops.
type chunkCounts struct {
	edges, visits, loads, stores, cas, branches int64
}

func (cc *chunkCounts) flush(ctr *counters.Counters, tid int) {
	if ctr == nil {
		return
	}
	ctr.Add(tid, counters.EdgesProcessed, cc.edges)
	ctr.Add(tid, counters.VertexVisits, cc.visits)
	ctr.Add(tid, counters.LabelLoads, cc.loads)
	ctr.Add(tid, counters.LabelStores, cc.stores)
	ctr.Add(tid, counters.CASOps, cc.cas)
	ctr.Add(tid, counters.BranchChecks, cc.branches)
	*cc = chunkCounts{}
}

// countZeros returns how many labels are zero — the converged count that
// Zero Convergence telemetry reports per iteration.
func countZeros(pool *parallel.Pool, labels []uint32) int64 {
	return parallel.SumInt64(pool, len(labels), 0, func(lo, hi int) int64 {
		var z int64
		for _, l := range labels[lo:hi] {
			if l == 0 {
				z++
			}
		}
		return z
	})
}
