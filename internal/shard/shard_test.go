package shard

import (
	"os"
	"path/filepath"
	"testing"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/parallel"
)

func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestCodecRoundTrip(t *testing.T) {
	cases := [][]Pair{
		nil,
		{{V: 100, L: 0}},
		{{V: 100, L: 7}, {V: 101, L: 0}, {V: 5000, L: 1 << 30}},
		{{V: 4242, L: 3}, {V: 100, L: 9}, {V: 100, L: 4}, {V: 9999, L: 0}}, // unsorted + dup vertex
	}
	for i, pairs := range cases {
		in := append([]Pair(nil), pairs...)
		buf := AppendPairs(nil, 100, in)
		var got []Pair
		if err := DecodePairs(buf, 100, 10_000, func(v, l uint32) {
			got = append(got, Pair{V: v, L: l})
		}); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Expected: sorted by vertex, min label per vertex.
		min := map[uint32]uint32{}
		for _, p := range pairs {
			if cur, ok := min[p.V]; !ok || p.L < cur {
				min[p.V] = p.L
			}
		}
		if len(got) != len(min) {
			t.Fatalf("case %d: %d decoded pairs, want %d", i, len(got), len(min))
		}
		prev := int64(-1)
		for _, p := range got {
			if int64(p.V) <= prev {
				t.Fatalf("case %d: vertices not strictly ascending", i)
			}
			prev = int64(p.V)
			if min[p.V] != p.L {
				t.Fatalf("case %d: vertex %d decoded label %d, want %d", i, p.V, p.L, min[p.V])
			}
		}
	}
}

func TestCodecZeroLabelIsTwoBytes(t *testing.T) {
	// The suppressing message — one vertex at a small delta with label 0 —
	// must cost two bytes past the count: that is the wire-level version of
	// "converged vertices are cheap to announce, then free forever".
	buf := AppendPairs(nil, 100, []Pair{{V: 101, L: 0}})
	if len(buf) != 3 { // count=1 (1B) + delta=1 (1B) + label=0 (1B)
		t.Fatalf("zero-label pair encoded to %d bytes, want 3", len(buf))
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	buf := AppendPairs(nil, 0, []Pair{{V: 5, L: 9}, {V: 80, L: 1}})
	nop := func(uint32, uint32) {}
	if err := DecodePairs(buf[:len(buf)-1], 0, 100, nop); err == nil {
		t.Fatal("truncated batch accepted")
	}
	if err := DecodePairs(buf, 0, 50, nop); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if err := DecodePairs(append(buf, 0x7), 0, 100, nop); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if err := DecodePairs(nil, 0, 100, nop); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(10, 8, 11)))
	dir := t.TempDir()
	m, err := Write(g, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 4 || m.Vertices != g.NumVertices() || m.Slots != g.NumDirectedEdges() {
		t.Fatalf("manifest shape: %+v", m)
	}
	if m.Hub != g.MaxDegreeVertex() {
		t.Fatalf("manifest hub %d, want %d", m.Hub, g.MaxDegreeVertex())
	}
	set, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < set.Shards(); i++ {
		sl, err := set.Slice(i)
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		for v := sl.Lo; v < sl.Hi; v++ {
			got, want := sl.Row(v), g.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("shard %d row %d: %d slots, want %d", i, v, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("shard %d row %d slot %d: %d, want %d", i, v, j, got[j], want[j])
				}
			}
		}
		if err := set.Release(sl); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenRejectsMismatchedManifest(t *testing.T) {
	g := mustGraph(gen.ErdosRenyi(512, 2048, 3))
	dir := t.TempDir()
	m, err := Write(g, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Claim the wrong slot count for shard 0 (keeping the total consistent
	// by shifting it to shard 1): Open succeeds on the manifest but the
	// slice header cross-check at load time must catch it.
	m.Shards[0].Slots--
	m.Shards[1].Slots++
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	set, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Slice(0); err == nil {
		t.Fatal("slot-count mismatch between manifest and slice header accepted")
	}
}

func TestManifestValidation(t *testing.T) {
	good := Manifest{
		Schema: ManifestSchema, Vertices: 10, Slots: 6, Hub: 3,
		Shards: []Info{{File: "a", Lo: 0, Hi: 4, Slots: 4}, {File: "b", Lo: 4, Hi: 10, Slots: 2}},
	}
	if err := good.validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := good
	bad.Schema = "nope"
	if bad.validate() == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = good
	bad.Shards = []Info{{File: "a", Lo: 0, Hi: 4, Slots: 4}, {File: "b", Lo: 5, Hi: 10, Slots: 2}}
	if bad.validate() == nil {
		t.Fatal("range gap accepted")
	}
	bad = good
	bad.Slots = 7
	if bad.validate() == nil {
		t.Fatal("slot total mismatch accepted")
	}
	bad = good
	bad.Hub = 10
	if bad.validate() == nil {
		t.Fatal("out-of-range hub accepted")
	}
}

func TestIsSetDir(t *testing.T) {
	g := mustGraph(gen.Path(32))
	dir := t.TempDir()
	if IsSetDir(dir) {
		t.Fatal("empty dir reported as shard set")
	}
	if _, err := Write(g, dir, 2); err != nil {
		t.Fatal(err)
	}
	if !IsSetDir(dir) {
		t.Fatal("shard-set dir not recognized")
	}
	file := filepath.Join(dir, ManifestName)
	if IsSetDir(file) {
		t.Fatal("plain file reported as shard set")
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOf(t *testing.T) {
	ranges := []parallel.Range{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 3}, {Lo: 3, Hi: 10}}
	for _, tc := range []struct {
		v    uint32
		want int
	}{{0, 0}, {2, 0}, {3, 2}, {9, 2}} {
		if got := OwnerOf(ranges, tc.v); got != tc.want {
			t.Fatalf("OwnerOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestGraphSourceClampsShardCount(t *testing.T) {
	g := mustGraph(gen.Path(3))
	gs := NewGraphSource(g, 100)
	if gs.Shards() > 3 {
		t.Fatalf("%d shards for 3 vertices", gs.Shards())
	}
	total := 0
	for i := 0; i < gs.Shards(); i++ {
		sl, err := gs.Slice(i)
		if err != nil {
			t.Fatal(err)
		}
		total += sl.NumLocal()
	}
	if total != 3 {
		t.Fatalf("shards cover %d vertices, want 3", total)
	}
}
