// Package use exercises reflease across a package boundary: snap's
// Acquire/MustAcquire facts arrive through the fact store, so every call
// site here carries a release obligation.
package use

import "snap"

// leak releases on the happy path only; the early flag-return loses the
// reference.
func leak(src *snap.Source, flag bool) {
	sn := src.Acquire() // want "result of Acquire is not released on every path \\(reference leak\\)"
	if sn == nil {
		return
	}
	if flag {
		return
	}
	sn.Release()
}

// ok is the canonical pattern: nil-check, then defer covers every exit.
func ok(src *snap.Source, flag bool) int {
	sn := src.Acquire()
	if sn == nil {
		return -1
	}
	defer sn.Release()
	if flag {
		return 0
	}
	return sn.ID()
}

// okNegated nil-checks through a negation; the analyzer must still refine.
func okNegated(src *snap.Source) {
	sn := src.Acquire()
	if !(sn != nil) {
		return
	}
	sn.Release()
}

// double releases twice on the fallthrough path.
func double(src *snap.Source) {
	sn := src.Acquire()
	if sn == nil {
		return
	}
	sn.Release()
	sn.Release() // want "sn is released more than once on some path"
}

// deferThenCall arms a deferred release and then releases again.
func deferThenCall(src *snap.Source) {
	sn := src.Acquire()
	if sn == nil {
		return
	}
	defer sn.Release()
	sn.Release() // want "sn is released more than once on some path"
}

// nilRelease defers a release without checking the nil failure value.
func nilRelease(src *snap.Source) {
	sn := src.Acquire()
	defer sn.Release() // want "sn may be nil here: Acquire can fail; check before releasing"
}

// dropped discards the reference outright, twice over.
func dropped(src *snap.Source) {
	src.Acquire()     // want "result of Acquire is dropped: the acquired reference can never be released"
	_ = src.Acquire() // want "result of Acquire is dropped: the acquired reference can never be released"
}

// handOff moves the obligation to its caller — clean here, and the
// propagated fact makes handOff itself an acquire function.
func handOff(src *snap.Source) *snap.Snapshot { // wantfact "handOff: acquires"
	sn := src.Acquire()
	return sn
}

// store parks the reference in package state: ownership escapes, some
// other protocol releases it.
var parked *snap.Snapshot

func store(src *snap.Source) {
	sn := src.Acquire()
	parked = sn
}

// passOn hands the reference to another function, which then owns it.
func passOn(src *snap.Source) {
	sn := src.Acquire()
	consume(sn)
}

func consume(sn *snap.Snapshot) {
	if sn != nil {
		sn.Release()
	}
}

// capture closes over the reference; the closure owns it now.
func capture(src *snap.Source) func() {
	sn := src.Acquire()
	return func() {
		if sn != nil {
			sn.Release()
		}
	}
}

// useMust leaks a reference obtained through the propagated MustAcquire
// fact — the cross-package, non-signature-seeded case.
func useMust(src *snap.Source) {
	sn := src.MustAcquire() // want "result of MustAcquire is not released on every path \\(reference leak\\)"
	_ = sn.ID()
}

// loop re-acquires while still holding the previous iteration's reference.
func loop(src *snap.Source, n int) {
	for i := 0; i < n; i++ {
		sn := src.Acquire() // want "result of Acquire is not released on every path \\(reference leak\\)"
		if sn == nil {
			continue
		}
		_ = sn.ID()
	}
}

// loopOK releases before looping back.
func loopOK(src *snap.Source, n int) {
	for i := 0; i < n; i++ {
		sn := src.Acquire()
		if sn == nil {
			continue
		}
		_ = sn.ID()
		sn.Release()
	}
}

// vacuous has a redundant second nil check whose then-branch contains a loop.
func vacuous(src *snap.Source) {
	sn := src.Acquire()
	if sn == nil {
		return
	}
	if sn == nil {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}
	sn.Release()
}
