package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"thriftylp/cc"
)

// TraceSchema identifies the JSONL trace record layout. Every record carries
// it, so a consumer can reject files written by a future incompatible
// version instead of misreading them. Additive field changes keep the same
// schema id; renames/semantic changes bump it.
const TraceSchema = "thriftylp/trace/v1"

// TraceRecord is one per-iteration telemetry row as serialized to the -trace
// JSONL artifact. It is the stable external form of cc.IterationStats plus
// run identity, and it carries the *why* of the direction decision: the
// frontier size (active/active_edges), the density it implied, and the
// threshold the density was compared against.
type TraceRecord struct {
	Schema  string `json:"schema"`
	Algo    string `json:"algo"`
	Dataset string `json:"dataset,omitempty"`
	// Run distinguishes repetitions when one invocation traces several runs
	// (e.g. thriftycc -reps 3 emits runs 0, 1, 2).
	Run  int `json:"run"`
	Iter int `json:"iter"`
	// Kind is the traversal direction chosen ("pull", "push",
	// "pull-frontier", "initial-push") or "ingest" for a graph-loading
	// record.
	Kind        string  `json:"kind"`
	Active      int64   `json:"active"`
	ActiveEdges int64   `json:"active_edges"`
	Changed     int64   `json:"changed"`
	Zero        int64   `json:"zero"`
	Edges       int64   `json:"edges"`
	Density     float64 `json:"density"`
	Threshold   float64 `json:"threshold"`
	DurationNs  int64   `json:"duration_ns"`
	// LoadNs and BuildNs split an "ingest" record's duration into the
	// read+parse and CSR-construction phases. Additive fields: zero (and
	// omitted) on iteration records, so the schema id is unchanged.
	LoadNs  int64 `json:"load_ns,omitempty"`
	BuildNs int64 `json:"build_ns,omitempty"`
	// Selector-record fields (Kind "select", written by WriteSelector for
	// cc.AlgoAuto runs): the concrete algorithm chosen, the decision rule
	// that fired, and the probe values the rule fired on. Additive: absent
	// on iteration and ingest records, so the schema id is unchanged.
	Selected       string  `json:"selected,omitempty"`
	Reason         string  `json:"reason,omitempty"`
	ProbeVertices  int     `json:"probe_vertices,omitempty"`
	ProbeEdges     int64   `json:"probe_edges,omitempty"`
	ProbeSkew      float64 `json:"probe_skew,omitempty"`
	ProbeHubFrac   float64 `json:"probe_hub_frac,omitempty"`
	ProbeMeanDeg   float64 `json:"probe_mean_deg,omitempty"`
	ProbeAlpha     float64 `json:"probe_alpha,omitempty"`
	ProbeCoverage  float64 `json:"probe_coverage,omitempty"`
	ProbeLargestCC float64 `json:"probe_largest_cc,omitempty"`
	// Request-span fields (Kind "request", written by the serving slow-query
	// log): the request's id, endpoint, HTTP status, and the phase split of
	// its latency (queue wait, snapshot acquire, handler, encode; the total
	// is in DurationNs). Additive: absent on all earlier record kinds, so
	// the schema id is unchanged.
	ReqID     uint64 `json:"req_id,omitempty"`
	Endpoint  string `json:"endpoint,omitempty"`
	Status    int    `json:"status,omitempty"`
	QueueNs   int64  `json:"queue_ns,omitempty"`
	AcquireNs int64  `json:"acquire_ns,omitempty"`
	HandlerNs int64  `json:"handler_ns,omitempty"`
	EncodeNs  int64  `json:"encode_ns,omitempty"`
	// Reload-span fields (Kind "reload", one record per snapshot publish,
	// including the initial load): the validate/solve/publish phase split;
	// ingest time rides the existing LoadNs field and the total is in
	// DurationNs. Additive, schema id unchanged.
	ValidateNs int64 `json:"validate_ns,omitempty"`
	SolveNs    int64 `json:"solve_ns,omitempty"`
	PublishNs  int64 `json:"publish_ns,omitempty"`
}

// Record kinds introduced by the serving telemetry layer; iteration records
// keep using the traversal-direction kinds and "ingest"/"select" documented
// on TraceRecord.Kind.
const (
	// KindRequest marks a request-span record from the slow-query log.
	KindRequest = "request"
	// KindReload marks a snapshot load/reload span record.
	KindReload = "reload"
)

// traceFromIteration converts one iteration's stats to its external form.
func traceFromIteration(algo, dataset string, run int, it cc.IterationStats) TraceRecord {
	return TraceRecord{
		Schema:      TraceSchema,
		Algo:        algo,
		Dataset:     dataset,
		Run:         run,
		Iter:        it.Index,
		Kind:        it.Kind,
		Active:      it.Active,
		ActiveEdges: it.ActiveEdges,
		Changed:     it.Changed,
		Zero:        it.ConvergedZero,
		Edges:       it.Edges,
		Density:     it.Density,
		Threshold:   it.Threshold,
		DurationNs:  it.Duration.Nanoseconds(),
	}
}

// TraceWriter streams TraceRecords as JSONL (one record per line). Writes
// are serialized, so several runs may append concurrently.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	closer io.Closer
}

// NewTraceWriter wraps w in a buffered JSONL encoder. Close flushes; it does
// not close w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// CreateTrace creates (truncating) the JSONL trace file at path. Close
// flushes and closes the file.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating trace file: %w", err)
	}
	t := NewTraceWriter(f)
	t.closer = f
	return t, nil
}

// Write appends one record. The record's Schema field is stamped if empty.
func (t *TraceWriter) Write(rec TraceRecord) error {
	if rec.Schema == "" {
		rec.Schema = TraceSchema
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(rec) // Encode appends the newline
}

// WriteRun appends every iteration of one run, in execution order.
func (t *TraceWriter) WriteRun(algo, dataset string, run int, iters []cc.IterationStats) error {
	for _, it := range iters {
		if err := t.Write(traceFromIteration(algo, dataset, run, it)); err != nil {
			return err
		}
	}
	return nil
}

// WriteIngest appends one graph-ingestion record: Kind "ingest", with the
// load/build phase split in LoadNs/BuildNs and their sum in DurationNs.
func (t *TraceWriter) WriteIngest(dataset string, loadNs, buildNs int64) error {
	return t.Write(TraceRecord{
		Schema:     TraceSchema,
		Algo:       "ingest",
		Dataset:    dataset,
		Kind:       "ingest",
		LoadNs:     loadNs,
		BuildNs:    buildNs,
		DurationNs: loadNs + buildNs,
	})
}

// WriteSelector appends one algorithm-selection record for an auto run:
// Kind "select", Algo "auto", the chosen algorithm, the rule that fired,
// the probe values it fired on, and the probe's cost in DurationNs. No-op
// when the run carries no probe (i.e. was not an AlgoAuto run).
func (t *TraceWriter) WriteSelector(dataset string, run int, st *cc.RunStats) error {
	if st == nil || st.Probe == nil {
		return nil
	}
	p := st.Probe
	return t.Write(TraceRecord{
		Schema:         TraceSchema,
		Algo:           string(st.Algorithm),
		Dataset:        dataset,
		Run:            run,
		Kind:           "select",
		DurationNs:     p.Cost.Nanoseconds(),
		Selected:       string(st.Selected),
		Reason:         p.Reason,
		ProbeVertices:  p.Vertices,
		ProbeEdges:     p.DirectedEdges,
		ProbeSkew:      p.SkewRatio,
		ProbeHubFrac:   p.HubEdgeFraction,
		ProbeMeanDeg:   p.MeanDegree,
		ProbeAlpha:     p.SampleAlpha,
		ProbeCoverage:  p.SampleCoverage,
		ProbeLargestCC: p.LargestSampleComponent,
	})
}

// Flush forces buffered records to the underlying writer without closing
// it. Long-lived writers (the serving slow-query log) flush on drain so an
// imminent SIGTERM exit cannot truncate the final records.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes buffered records and closes the underlying file when the
// writer owns one.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.bw.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadTrace decodes a JSONL trace stream, rejecting records whose schema id
// is missing or unknown (line numbers are 1-based in errors).
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	dec := json.NewDecoder(r)
	var recs []TraceRecord
	for line := 1; ; line++ {
		var rec TraceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return recs, nil
		} else if err != nil {
			return recs, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if rec.Schema != TraceSchema {
			return recs, fmt.Errorf("obs: trace line %d: unknown schema %q (want %q)", line, rec.Schema, TraceSchema)
		}
		recs = append(recs, rec)
	}
}
