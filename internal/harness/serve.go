package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"thriftylp/graph"
	"thriftylp/internal/obs"
	"thriftylp/internal/retry"
	"thriftylp/internal/serve"
)

// This file is the serving-layer load-test harness: it stands up a real
// internal/serve server (real listener, real HTTP stack, admission control
// on) over the regression fixture graph and drives it with concurrent
// clients, reporting QPS and latency percentiles per endpoint to
// BENCH_serve.json. Like the kernel and ingestion gates, the report is a
// same-host trajectory: a serving regression (slower queries, collapsed
// admission, reload stalls) shows up as a diff in a checked-in JSON file.

// ServeSchema identifies the BENCH_serve.json layout. v2 added the
// server-side histogram percentiles (server_p50_ns/server_p99_ns/
// server_count) next to the client-observed ones.
const ServeSchema = "thriftylp/bench-serve/v2"

// ServeRecord is one endpoint's load-test measurement.
type ServeRecord struct {
	Endpoint string `json:"endpoint"`
	// Requests/Shed/Errors decompose the client attempts: 200s, 429
	// sheds (retried by the client, counted where they happened), and
	// anything else.
	Requests int `json:"requests"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
	// QPS is successful requests per wall-clock second of the drive phase.
	QPS float64 `json:"qps"`
	// P50Ns/P99Ns/MaxNs are client-observed latency percentiles of the
	// successful requests.
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
	// ServerP50Ns/ServerP99Ns are the server's own view of the same load,
	// read from the endpoint's lock-free latency histogram after the drive.
	// They exclude client/transport time, so they sit at or below the
	// client-observed percentiles; ServerCount is the histogram's sample
	// count (successful responses the server recorded).
	ServerP50Ns int64 `json:"server_p50_ns"`
	ServerP99Ns int64 `json:"server_p99_ns"`
	ServerCount int64 `json:"server_count"`
}

// ServeReport is the full serving load test, as serialized to
// BENCH_serve.json.
type ServeReport struct {
	Schema string `json:"schema"`
	HostStamp
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// Clients is the number of concurrent drivers; RequestsPerClient their
	// per-endpoint request budget.
	Clients           int `json:"clients"`
	RequestsPerClient int `json:"requests_per_client"`
	// LoadNs is the initial ingest+validate+solve (the availability gap a
	// cold start or reload implies); DriveNs the load-generation phase.
	LoadNs  int64         `json:"load_ns"`
	DriveNs int64         `json:"drive_ns"`
	Records []ServeRecord `json:"records"`
}

// HostMismatch compares the report's host stamp against a previous report.
func (r ServeReport) HostMismatch(prev ServeReport) []string {
	return r.HostStamp.Mismatch(prev.HostStamp)
}

// WriteJSON serializes the report to path, indented for reviewable diffs.
func (r ServeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadServeReport loads a previously written BENCH_serve.json.
func ReadServeReport(path string) (ServeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ServeReport{}, err
	}
	var rep ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return ServeReport{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}

// serveEndpoints are the query mixes driven, one record each.
var serveEndpoints = []string{"component", "same", "size", "census"}

// serveFixture returns the graph the load test serves: the kernel gate's
// rmat fixture at the given scale (small for tests/CI smoke, medium for the
// checked-in baseline).
func serveFixture(scale Scale) RegressionFixture {
	if scale == ScaleSmall {
		return IngestFixtures(ScaleSmall)[0] // rmat-small
	}
	return RegressionFixtures()[0] // rmat-medium
}

// ServeRegression materializes the fixture graph as a binary CSR, serves it
// through a real internal/serve server on a loopback listener, and drives
// it with cfg-scaled concurrent clients. Each client walks all four
// endpoints with deterministic pseudo-random vertex ids and rides through
// 429 shedding with the same capped-backoff retry the production reload
// watcher uses — so the reported QPS is what a well-behaved client fleet
// actually sustains, shedding included.
func ServeRegression(cfg RunConfig) (ServeReport, error) {
	rep := ServeReport{
		Schema:    ServeSchema,
		HostStamp: currentHostStamp(cfg.Threads),
	}
	fix := serveFixture(cfg.scale())
	rep.Dataset = fix.Name

	g, err := fix.Build()
	if err != nil {
		return ServeReport{}, fmt.Errorf("building %s: %w", fix.Name, err)
	}
	rep.Vertices = g.NumVertices()
	rep.Edges = g.NumEdges()

	dir, err := os.MkdirTemp("", "thriftylp-serve-")
	if err != nil {
		return ServeReport{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, fix.Name+".bin")
	if err := graph.SaveBinary(path, g); err != nil {
		return ServeReport{}, err
	}

	// The harness passes its own registry so it can read the server-side
	// latency histograms back out after the drive.
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{Path: path, Registry: reg})
	loadStart := time.Now()
	if err := srv.Load(cfg.ctx()); err != nil {
		return ServeReport{}, err
	}
	rep.LoadNs = time.Since(loadStart).Nanoseconds()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeReport{}, err
	}
	go srv.Serve(ln) //thrifty:goroutine exits when the deferred Drain closes the listener
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Drain(dctx)
	}()
	base := "http://" + ln.Addr().String()

	clients := cfg.Threads
	if clients <= 0 {
		clients = 2 * rep.GoMaxProcs
	}
	perClient := 200 * cfg.reps()
	if cfg.scale() == ScaleSmall {
		perClient = 25
	}
	rep.Clients, rep.RequestsPerClient = clients, perClient

	type obsv struct {
		endpoint string
		ns       int64
		status   int
	}
	results := make([][]obsv, clients)
	pol := retry.Policy{Initial: time.Millisecond, Max: 50 * time.Millisecond, Attempts: 5}

	driveStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//thrifty:goroutine joined by wg.Wait below after a fixed request count
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			client := &http.Client{Timeout: 10 * time.Second}
			out := make([]obsv, 0, perClient*len(serveEndpoints))
			for n := 0; n < perClient; n++ {
				for _, ep := range serveEndpoints {
					v := uint32(rng.Intn(rep.Vertices))
					var url string
					switch ep {
					case "component":
						url = fmt.Sprintf("%s/component?v=%d", base, v)
					case "same":
						url = fmt.Sprintf("%s/same?u=%d&v=%d", base, v, uint32(rng.Intn(rep.Vertices)))
					case "size":
						url = fmt.Sprintf("%s/size?c=%d", base, v)
					case "census":
						url = base + "/census"
					}
					start := time.Now()
					status := 0
					shed := 0
					err := retry.Do(cfg.ctx(), pol, func(context.Context) error {
						resp, err := client.Get(url)
						if err != nil {
							return err
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						status = resp.StatusCode
						if status == http.StatusTooManyRequests {
							shed++
							return fmt.Errorf("shed")
						}
						return nil
					})
					ns := time.Since(start).Nanoseconds()
					if err != nil && status == 0 {
						status = -1 // transport error
					}
					for i := 0; i < shed; i++ {
						out = append(out, obsv{ep, 0, http.StatusTooManyRequests})
					}
					if status != http.StatusTooManyRequests {
						out = append(out, obsv{ep, ns, status})
					}
				}
			}
			results[c] = out
		}(c)
	}
	wg.Wait()
	drive := time.Since(driveStart)
	rep.DriveNs = drive.Nanoseconds()

	// A random id is not necessarily a live component label, so /size
	// legitimately answers 404 for misses; both outcomes exercise the same
	// lookup path and count as served requests. Anything else is an error.
	byEp := map[string]*ServeRecord{}
	var lats = map[string][]int64{}
	for _, ep := range serveEndpoints {
		byEp[ep] = &ServeRecord{Endpoint: ep}
	}
	for _, out := range results {
		for _, o := range out {
			r := byEp[o.endpoint]
			switch {
			case o.status == http.StatusOK:
				r.Requests++
				lats[o.endpoint] = append(lats[o.endpoint], o.ns)
			case o.status == http.StatusTooManyRequests:
				r.Shed++
			case o.status == http.StatusNotFound && o.endpoint == "size":
				r.Requests++
				lats[o.endpoint] = append(lats[o.endpoint], o.ns)
			default:
				r.Errors++
			}
		}
	}
	for _, ep := range serveEndpoints {
		r := byEp[ep]
		ls := lats[ep]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		if n := len(ls); n > 0 {
			r.P50Ns = ls[n/2]
			r.P99Ns = ls[n*99/100]
			r.MaxNs = ls[n-1]
			var sum int64
			for _, l := range ls {
				sum += l
			}
			r.MeanNs = sum / int64(n)
		}
		r.QPS = float64(r.Requests) / drive.Seconds()
		hs := reg.Histogram(serve.LatencyHistogram(ep)).Snapshot()
		r.ServerCount = hs.Count
		r.ServerP50Ns = hs.Quantile(0.50)
		r.ServerP99Ns = hs.Quantile(0.99)
		rep.Records = append(rep.Records, *r)
	}
	return rep, nil
}

// Render formats the report as an aligned console table.
func (r ServeReport) Render() string {
	out := fmt.Sprintf("Serving load test (%s: %d vertices, %d edges; %d clients × %d rounds; load %.1f ms)\n",
		r.Dataset, r.Vertices, r.Edges, r.Clients, r.RequestsPerClient,
		float64(r.LoadNs)/1e6)
	out += fmt.Sprintf("%-10s %10s %10s %10s %10s %10s %10s %7s %7s\n",
		"endpoint", "qps", "p50 µs", "p99 µs", "max µs", "srv p50", "srv p99", "shed", "errors")
	for _, rec := range r.Records {
		out += fmt.Sprintf("%-10s %10.0f %10.1f %10.1f %10.1f %10.1f %10.1f %7d %7d\n",
			rec.Endpoint, rec.QPS,
			float64(rec.P50Ns)/1e3, float64(rec.P99Ns)/1e3, float64(rec.MaxNs)/1e3,
			float64(rec.ServerP50Ns)/1e3, float64(rec.ServerP99Ns)/1e3,
			rec.Shed, rec.Errors)
	}
	return out
}
