package counters

import "time"

// IterKind classifies one iteration of a label-propagation run.
type IterKind string

// Iteration kinds. InitialPush is Thrifty's iteration 0 (§IV-D);
// PullFrontier is the pull iteration that additionally records a detailed
// frontier just before switching to push traversal (§IV-E).
const (
	KindPull         IterKind = "pull"
	KindPush         IterKind = "push"
	KindPullFrontier IterKind = "pull-frontier"
	KindInitialPush  IterKind = "initial-push"
)

// IterRecord is the per-iteration telemetry row used to regenerate Fig 3,
// Fig 7/8, Table VI and Table VII.
type IterRecord struct {
	Index       int           // iteration number, counting the initial push as 0
	Kind        IterKind      // traversal direction chosen
	Active      int64         // active vertices at iteration start (frontier size)
	ActiveEdges int64         // summed degree of the frontier at iteration start (|F.E|)
	Changed     int64         // vertices whose label changed this iteration
	Zero        int64         // vertices holding label 0 at iteration end
	Edges       int64         // edges processed during this iteration
	Density     float64       // (|F.V|+|F.E|)/|E| density that drove the direction choice
	Threshold   float64       // push/pull density threshold the decision was made against
	Duration    time.Duration // wall time of the iteration
}

// Trace collects per-iteration records of one algorithm run. A nil *Trace is
// valid; all methods no-op. If OnIteration is set it is invoked at the end
// of every iteration with the record and the labels array as it stands at
// that moment; the harness uses this to compute converged-to-final
// percentages against an oracle (Fig 3 / Fig 7). The callback must not
// retain or mutate labels.
type Trace struct {
	Iters       []IterRecord
	OnIteration func(rec IterRecord, labels []uint32)
}

// Record appends rec and fires the callback.
func (t *Trace) Record(rec IterRecord, labels []uint32) {
	if t == nil {
		return
	}
	t.Iters = append(t.Iters, rec)
	if t.OnIteration != nil {
		t.OnIteration(rec, labels)
	}
}

// Enabled reports whether t collects records.
func (t *Trace) Enabled() bool { return t != nil }

// Total sums fn over all recorded iterations.
func (t *Trace) Total(fn func(IterRecord) int64) int64 {
	if t == nil {
		return 0
	}
	var s int64
	for _, r := range t.Iters {
		s += fn(r)
	}
	return s
}

// TotalDuration returns the summed iteration wall time.
func (t *Trace) TotalDuration() time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for _, r := range t.Iters {
		d += r.Duration
	}
	return d
}
