package cc_test

import (
	"fmt"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
)

// The Example functions double as executable documentation (shown on the
// package's godoc) and as output-checked tests.

func ExampleThrifty() {
	// A triangle and an isolated edge: two components.
	g, _ := graph.BuildUndirected([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 4},
	})
	res := cc.Thrifty(g)
	fmt.Println("components:", res.NumComponents())
	fmt.Println("0~2 connected:", res.SameComponent(0, 2))
	fmt.Println("0~4 connected:", res.SameComponent(0, 4))
	// Output:
	// components: 2
	// 0~2 connected: true
	// 0~4 connected: false
}

func ExampleRun() {
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	res, err := cc.Run(cc.AlgoAfforest, g)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.NumComponents())
	// Output: 2
}

func ExampleEquivalent() {
	g, _ := gen.RMAT(gen.DefaultRMAT(8, 4, 1))
	a := cc.Thrifty(g)
	b := cc.JayantiTarjan(g)
	// Different label value spaces, same partition.
	fmt.Println(cc.Equivalent(a.Labels, b.Labels))
	// Output: true
}

func ExampleNormalize() {
	labels := []uint32{9, 9, 4, 4, 7}
	fmt.Println(cc.Normalize(labels))
	// Output: [0 0 2 2 4]
}

func ExampleWithInstrumentation() {
	g, _ := graph.BuildUndirected([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	inst := &cc.Instrumentation{}
	cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst))
	fmt.Println("iteration 0:", inst.Iterations[0].Kind)
	fmt.Println("edges processed > 0:", inst.Events["edges"] > 0)
	// Output:
	// iteration 0: initial-push
	// edges processed > 0: true
}

func ExampleResult_ComponentSizes() {
	g, _ := gen.Components(2, 3) // two 3-cliques
	res := cc.BFSCC(g)
	sizes := res.ComponentSizes()
	fmt.Println(len(sizes))
	// Output: 2
}
