// BenchmarkThrifty is the perf-regression gate for the Thrifty fast path:
// uninstrumented runs (no counters, no trace, no line tracking) on the two
// medium-scale skewed fixtures the paper's headline numbers target. The same
// measurements are exported as machine-readable JSON by `make bench-json`
// (cmd/ccbench -json), which records the perf trajectory across PRs in
// BENCH_thrifty.json; both gates share harness.RegressionFixtures.
package thriftylp_test

import (
	"fmt"
	"testing"

	"thriftylp/cc"
	"thriftylp/internal/harness"
)

func BenchmarkThrifty(b *testing.B) {
	for _, f := range harness.RegressionFixtures() {
		g, err := f.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.Name, func(b *testing.B) {
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cc.Run(cc.AlgoThrifty, g)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
			b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
		})
	}
}

// BenchmarkThriftyInstrumented times the counting path on the same fixtures,
// so the cost of opting into instrumentation stays visible (it is paid only
// when requested; plain runs take the fast path above).
func BenchmarkThriftyInstrumented(b *testing.B) {
	for _, f := range harness.RegressionFixtures() {
		g, err := f.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.Name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst := &cc.Instrumentation{}
				if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFastPathBaselines times the uninstrumented fast path of the other
// traversal kernels sharing the instrumentation-policy design, catching
// regressions outside the headline algorithm.
func BenchmarkFastPathBaselines(b *testing.B) {
	fixtures := harness.RegressionFixtures()
	g, err := fixtures[0].Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range []cc.Algorithm{cc.AlgoDOLP, cc.AlgoDOLPUnified, cc.AlgoLP} {
		b.Run(fmt.Sprintf("%s/%s", fixtures[0].Name, a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(a, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
