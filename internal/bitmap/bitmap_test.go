package bitmap

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d, want 200", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set on fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestSetAllAndReset(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Count after SetAll = %d", n, got)
		}
		if b.Any() != (n > 0) {
			t.Fatalf("n=%d: Any = %v", n, b.Any())
		}
		b.Reset()
		if b.Count() != 0 || b.Any() {
			t.Fatalf("n=%d: bits remain after Reset", n)
		}
	}
}

func TestSetAtomicReportsChange(t *testing.T) {
	b := New(100)
	if !b.SetAtomic(42) {
		t.Fatal("first SetAtomic returned false")
	}
	if b.SetAtomic(42) {
		t.Fatal("second SetAtomic returned true")
	}
	if !b.GetAtomic(42) {
		t.Fatal("GetAtomic false after SetAtomic")
	}
}

// TestSetAtomicConcurrent checks that exactly one concurrent setter wins
// each bit and that all set bits survive.
func TestSetAtomicConcurrent(t *testing.T) {
	const n = 1 << 14
	const workers = 8
	b := New(n)
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if b.SetAtomic(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("total wins = %d, want %d (each bit won exactly once)", total, n)
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestForEachAndAppendTo(t *testing.T) {
	b := New(300)
	want := []int{0, 5, 63, 64, 100, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	ids := b.AppendTo(nil)
	for i := range want {
		if int(ids[i]) != want[i] {
			t.Fatalf("AppendTo: ids[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
}

func TestSwapAndClone(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(3)
	b.Set(99)
	a.Swap(b)
	if !a.Get(99) || !b.Get(3) || a.Get(3) || b.Get(99) {
		t.Fatal("Swap did not exchange contents")
	}
	c := a.Clone()
	a.Set(5)
	if c.Get(5) {
		t.Fatal("Clone aliases original")
	}
	if !c.Get(99) {
		t.Fatal("Clone lost bits")
	}
}

func TestUnion(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	b.Set(2)
	b.Set(1)
	a.Union(b)
	if !a.Get(1) || !a.Get(2) || a.Count() != 2 {
		t.Fatal("Union incorrect")
	}
}

func TestCountRange(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 3 {
		b.Set(i)
	}
	for _, tc := range []struct{ lo, hi int }{
		{0, 0}, {0, 256}, {1, 255}, {63, 65}, {64, 128}, {100, 101}, {0, 64},
	} {
		want := 0
		for i := tc.lo; i < tc.hi; i++ {
			if b.Get(i) {
				want++
			}
		}
		if got := b.CountRange(tc.lo, tc.hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", tc.lo, tc.hi, got, want)
		}
	}
}

// TestQuickCountMatchesNaive is a property test: Count equals the number of
// distinct indices set, for arbitrary index sets.
func TestQuickCountMatchesNaive(t *testing.T) {
	f := func(idx []uint16) bool {
		b := New(1 << 16)
		distinct := map[uint16]bool{}
		for _, i := range idx {
			b.Set(int(i))
			distinct[i] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Swap of different sizes did not panic")
		}
	}()
	New(10).Swap(New(11))
}

// TestForEachRangeMatchesGet cross-checks the word-at-a-time range drain
// against naive per-bit probing over awkward word-boundary ranges.
func TestForEachRangeMatchesGet(t *testing.T) {
	b := New(300)
	for _, i := range []int{0, 1, 62, 63, 64, 65, 127, 128, 200, 255, 256, 299} {
		b.Set(i)
	}
	for _, tc := range []struct{ lo, hi int }{
		{0, 0}, {0, 300}, {1, 299}, {63, 65}, {64, 128}, {100, 101},
		{0, 64}, {62, 66}, {255, 257}, {299, 300},
	} {
		var want []int
		for i := tc.lo; i < tc.hi; i++ {
			if b.Get(i) {
				want = append(want, i)
			}
		}
		var got []int
		b.ForEachRange(tc.lo, tc.hi, func(i int) { got = append(got, i) })
		if len(got) != len(want) {
			t.Fatalf("ForEachRange(%d,%d): got %v, want %v", tc.lo, tc.hi, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("ForEachRange(%d,%d): got %v, want %v", tc.lo, tc.hi, got, want)
			}
		}
		app := b.AppendRange(nil, tc.lo, tc.hi)
		if len(app) != len(want) {
			t.Fatalf("AppendRange(%d,%d): got %v, want %v", tc.lo, tc.hi, app, want)
		}
		for k := range app {
			if int(app[k]) != want[k] {
				t.Fatalf("AppendRange(%d,%d): got %v, want %v", tc.lo, tc.hi, app, want)
			}
		}
	}
}

// TestQuickForEachRangeMatchesNaive is a property test over arbitrary index
// sets and ranges.
func TestQuickForEachRangeMatchesNaive(t *testing.T) {
	f := func(idx []uint16, lo16, hi16 uint16) bool {
		const n = 1 << 16
		b := New(n)
		for _, i := range idx {
			b.Set(int(i))
		}
		lo, hi := int(lo16), int(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		count := 0
		ok := true
		b.ForEachRange(lo, hi, func(i int) {
			if i < lo || i >= hi || !b.Get(i) {
				ok = false
			}
			count++
		})
		return ok && count == b.CountRange(lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachRangeOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForEachRange out of bounds did not panic")
		}
	}()
	New(10).ForEachRange(0, 11, func(int) {})
}
