// Package usemap exercises mmapsafe across the package boundary: the
// mapped-type and constructor facts arrive from mmapgraph through the
// fact store.
package usemap

import "mmapgraph"

// bad touches the graph after Close.
func bad(path string) int {
	g, err := mmapgraph.Load(path)
	if err != nil {
		return -1
	}
	n := g.NumVertices()
	_ = g.Close()
	return n + g.NumVertices() // want "use of g after Close: the mmap-backed G memory may be unmapped"
}

// good defers the Close: nothing in the body runs after it.
func good(path string) (int, error) {
	g, err := mmapgraph.Open(path)
	if err != nil {
		return 0, err
	}
	defer g.Close()
	return g.NumVertices(), nil
}

// headerOK: Mapped and a second Close read only the struct header.
func headerOK(g *mmapgraph.G) bool {
	_ = g.Close()
	_ = g.Close()
	return g.Mapped()
}

// aliasCall reads a slice obtained from a method after the base's Close.
func aliasCall(g *mmapgraph.G) uint32 {
	adj := g.Neighbors(0)
	_ = g.Close()
	return adj[0] // want "use of adj after Close of g: it aliases the unmapped G memory"
}

// aliasField reads a slice field alias after Close.
func aliasField(g *mmapgraph.G) int64 {
	offs := g.Offsets
	_ = g.Close()
	return offs[1] // want "use of offs after Close of g: it aliases the unmapped G memory"
}

// captureBefore snapshots the needed values before closing: the fix
// pattern mmapsafe pushes code toward.
func captureBefore(g *mmapgraph.G) int {
	n := g.NumVertices()
	_ = g.Close()
	return n
}

// branchClose closes on one path only; the join still reaches the use.
func branchClose(g *mmapgraph.G, flag bool) int {
	if flag {
		_ = g.Close()
	}
	return g.NumVertices() // want "use of g after Close: the mmap-backed G memory may be unmapped"
}

// reassign gives the variable a fresh mapping: open again from there.
func reassign(path string) {
	g, _ := mmapgraph.Load(path)
	_ = g.Close()
	g, _ = mmapgraph.Load(path)
	_ = g.NumVertices()
	_ = g.Close()
}

// nilCheckOK compares against nil after Close: reads only the pointer.
func nilCheckOK(g *mmapgraph.G) bool {
	_ = g.Close()
	return g != nil
}

// wrap returns a mapped value it obtained from an imported constructor:
// the ctor fact must cross the package boundary and re-export here.
func wrap(path string) (*mmapgraph.G, error) { // wantfact "wrap: maps memory"
	return mmapgraph.Load(path)
}
