// Package benignrace implements the thriftyvet analyzer that keeps the
// "intentional race" / "bug" boundary machine-checked.
//
// The Thrifty paper deliberately shares non-atomic state between threads
// (the push-phase dedup discipline, §IV-E); this repository reproduces that
// with two rules the analyzer enforces:
//
//  1. Every plain (non-atomic) write to captured shared state inside a
//     parallel worker body must be annotated //thrifty:benign-race <reason>.
//     A worker body is a function literal handed to the internal/parallel
//     runtime (Pool.Run, Pool.MustRun, Stealer.Run, For, Fill, ...), where
//     concurrent execution is the contract. The annotation goes on the
//     statement's line, the line above it, or the enclosing function's doc
//     comment, and the reason is mandatory: the next reader must learn why
//     the write is safe (exclusive index partitioning, monotonic idempotent
//     update, ...). Writes to worker-local state (declared inside the
//     worker, or rooted at a worker parameter such as a partition range) are
//     not flagged.
//
//  2. Conversely, everything that *is* atomic must route through
//     internal/atomicx: importing sync/atomic anywhere else in the module
//     (tests excepted — they run under -race instead) is an error. With
//     both rules in force, "goes through atomicx" and "annotated
//     benign-race" partition every shared-memory access in the module.
package benignrace

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/directive"
	"thriftylp/internal/lint/lintutil"
)

// Analyzer is the benignrace analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "benignrace",
	Doc:  "require //thrifty:benign-race on plain shared writes in parallel workers; route atomics through internal/atomicx",
	Run:  run,
}

// atomicxPath identifies the one package allowed to import sync/atomic.
const atomicxPath = "thriftylp/internal/atomicx"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) {
			continue
		}
		if !lintutil.IsTestFile(pass.Fset, f.Package) {
			checkAtomicImport(pass, f)
			checkWorkerWrites(pass, f)
		}
	}
	return nil, nil
}

// checkAtomicImport flags sync/atomic imports outside internal/atomicx.
func checkAtomicImport(pass *analysis.Pass, f *ast.File) {
	if lintutil.PkgPathMatches(pass.Pkg.Path(), atomicxPath) {
		return
	}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "sync/atomic" {
			pass.Reportf(imp.Pos(), "import of sync/atomic outside internal/atomicx: route atomics through the atomicx wrappers")
		}
	}
}

// checkWorkerWrites finds worker function literals and audits their plain
// writes to captured state.
func checkWorkerWrites(pass *analysis.Pass, f *ast.File) {
	dirs := directive.FileLines(pass.Fset, f)

	// funcLitOf maps a local variable object to the function literal it was
	// bound to by a simple `name := func(...) {...}` assignment, so worker
	// bodies passed by name (body := func(tid int){...}; pool.MustRun(body))
	// are recognized too.
	funcLitOf := map[types.Object]*ast.FuncLit{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			fl, ok := as.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				funcLitOf[obj] = fl
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				funcLitOf[obj] = fl
			}
		}
		return true
	})

	// Collect worker bodies: function-typed arguments of calls into the
	// parallel runtime.
	workers := map[*ast.FuncLit]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !isParallelRuntime(fn) {
			return true
		}
		for _, arg := range call.Args {
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				workers[a] = true
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[a]; obj != nil {
					if fl, ok := funcLitOf[obj]; ok {
						workers[fl] = true
					}
				}
			}
		}
		return true
	})

	for fl := range workers {
		w := &workerChecker{pass: pass, dirs: dirs, worker: fl, all: workers}
		w.check(fl)
	}
}

// isParallelRuntime reports whether fn belongs to the internal/parallel
// package (or an analysistest fixture stand-in named parallel). Any function
// there that accepts a func argument runs it on pool workers.
func isParallelRuntime(fn *types.Func) bool {
	path := lintutil.FuncPkgPath(fn)
	return path == "thriftylp/internal/parallel" || path == "parallel" ||
		strings.HasSuffix(path, "/parallel")
}

type workerChecker struct {
	pass   *analysis.Pass
	dirs   []directive.Line
	worker *ast.FuncLit
	all    map[*ast.FuncLit]bool
}

func (w *workerChecker) check(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal that is itself a registered worker is audited
			// by its own checker; descending here would double-report.
			if w.all[n] {
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.checkWrite(n.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			w.checkWrite(n.Pos(), n.X)
		}
		return true
	})
}

// checkWrite flags a plain write whose destination is captured shared
// memory: an element of a slice/array, a dereferenced pointer, or a field
// reached from a variable declared outside the worker literal.
func (w *workerChecker) checkWrite(pos token.Pos, lhs ast.Expr) {
	switch ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
	default:
		// Writes to plain identifiers: a captured scalar would be a real
		// (non-benign) race for results, but every occurrence in this
		// codebase is a worker-local accumulator; flagging `localV++` style
		// writes would drown the signal, so only writes through memory
		// shared by construction (slices, pointers, fields) are audited.
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := w.pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = w.pass.TypesInfo.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if w.declaredInside(v) {
		return
	}
	line := w.pass.Fset.Position(pos).Line
	if directive.Covers(w.dirs, directive.BenignRace, line, true) {
		return
	}
	if w.funcDocCovered() {
		return
	}
	w.pass.Reportf(pos, "plain write to captured %s inside a parallel worker: annotate //thrifty:benign-race <reason> or use internal/atomicx", root.Name)
}

// declaredInside reports whether v's declaration lies lexically within the
// worker literal (locals and the worker's own parameters are worker-owned).
func (w *workerChecker) declaredInside(v *types.Var) bool {
	return v.Pos() >= w.worker.Pos() && v.Pos() <= w.worker.End()
}

// funcDocCovered reports whether the function declaration enclosing the
// worker literal carries a blanket //thrifty:benign-race annotation with a
// reason.
func (w *workerChecker) funcDocCovered() bool {
	for _, f := range w.pass.Files {
		if w.worker.Pos() < f.Pos() || w.worker.Pos() > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if w.worker.Pos() >= fd.Pos() && w.worker.Pos() <= fd.End() {
				arg, ok := directive.FromDoc(fd.Doc, directive.BenignRace)
				return ok && arg != ""
			}
		}
	}
	return false
}

// rootIdent walks an lvalue expression to the identifier at its base:
// s.lists[tid] -> s, (*p).f -> p, labels[v] -> labels.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
