package benignrace

import "sync/atomic" // want `import of sync/atomic outside internal/atomicx`

var counter int64

func bump() { atomic.AddInt64(&counter, 1) }
