// Benchmark harness: one Benchmark family per table and figure of the
// paper's evaluation (§V). Custom metrics (iterations, edges%, speedups)
// ride along as b.ReportMetric values so `go test -bench=. -benchmem`
// regenerates the paper's rows, not just ns/op.
//
// Dataset sizes default to the "small" analog suite so the full sweep
// finishes in minutes; set THRIFTYLP_BENCH_SCALE=medium|large for the
// paper-shaped runs (cmd/ccbench renders the same experiments as tables).
package thriftylp_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/dist"
	"thriftylp/internal/harness"
	"thriftylp/internal/spmv"
	"thriftylp/internal/stats"
)

func benchScale() harness.Scale {
	if s := os.Getenv("THRIFTYLP_BENCH_SCALE"); s != "" {
		return harness.Scale(s)
	}
	return harness.ScaleSmall
}

// benchGraph builds (or fetches the memoized) suite dataset.
func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	d, err := harness.FindDataset(benchScale(), name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := harness.BuildCached(benchScale(), d)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchDatasets is the subset of the suite the timed benches sweep: one
// road network, three skewed families, one web crawl.
var benchDatasets = []string{
	"road-gb", "social-pokec", "social-twitter", "web-webbase", "social-friendster",
}

// table4Algos matches the Table IV column order.
var table4Algos = []cc.Algorithm{
	cc.AlgoSV, cc.AlgoBFSCC, cc.AlgoDOLP, cc.AlgoJayantiT, cc.AlgoAfforest, cc.AlgoThrifty,
}

// BenchmarkTable4 regenerates Table IV: wall time of the six algorithms on
// every suite dataset (iterations reported as a metric).
func BenchmarkTable4(b *testing.B) {
	for _, name := range benchDatasets {
		g := benchGraph(b, name)
		for _, a := range table4Algos {
			b.Run(fmt.Sprintf("%s/%s", name, a), func(b *testing.B) {
				var iters int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := cc.Run(a, g)
					if err != nil {
						b.Fatal(err)
					}
					iters = res.Iterations
				}
				b.ReportMetric(float64(iters), "iterations")
				b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
			})
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: the per-baseline speedup of Thrifty,
// reported as the "speedup-vs-thrifty" metric of each baseline sub-bench on
// a Twitter-like graph. The Thrifty reference time is measured directly
// (testing.Benchmark cannot be nested inside a running benchmark).
func BenchmarkFig1(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	perOpThrifty := func() float64 {
		const reps = 5
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := cc.Run(cc.AlgoThrifty, g); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds())
	}()
	for _, a := range []cc.Algorithm{cc.AlgoSV, cc.AlgoDOLP, cc.AlgoBFSCC, cc.AlgoJayantiT, cc.AlgoAfforest} {
		b.Run(string(a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(a, g); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/perOpThrifty, "speedup-vs-thrifty")
		})
	}
}

// BenchmarkFig2 times the two walkthrough algorithms on the Figure-2 toy
// graph (micro-benchmark of fixed per-iteration overheads).
func BenchmarkFig2(b *testing.B) {
	g, err := gen.PaperFigure2()
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range []cc.Algorithm{cc.AlgoDOLP, cc.AlgoThrifty} {
		b.Run(string(a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(a, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3 regenerates Figure 3's headline number: DO-LP's
// converged-to-final percentage after its first four pull iterations
// (paper: 34.8%), reported as a metric.
func BenchmarkFig3(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	final, err := cc.Run(cc.AlgoDOLP, g)
	if err != nil {
		b.Fatal(err)
	}
	var convergedAt4 float64
	for i := 0; i < b.N; i++ {
		inst := &cc.Instrumentation{}
		inst.OnIteration = func(it cc.IterationStats, labels []uint32) {
			if it.Index == 3 {
				conv := 0
				for v, l := range labels {
					if l == final.Labels[v] {
						conv++
					}
				}
				convergedAt4 = 100 * float64(conv) / float64(len(labels))
			}
		}
		if _, err := cc.Run(cc.AlgoDOLP, g, cc.WithInstrumentation(inst)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(convergedAt4, "converged%-after-4-iters")
}

// BenchmarkTable5 regenerates Table V: iteration counts of DO-LP vs
// Thrifty and their ratio.
func BenchmarkTable5(b *testing.B) {
	for _, name := range []string{"social-twitter", "web-webbase", "web-uk"} {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rd, err := cc.Run(cc.AlgoDOLP, g)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := cc.Run(cc.AlgoThrifty, g)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(rt.Iterations) / float64(rd.Iterations)
			}
			b.ReportMetric(ratio, "iteration-ratio")
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: edge traversals of Thrifty as a
// percentage of |E| and of DO-LP as a multiple of |E|.
func BenchmarkFig5(b *testing.B) {
	for _, name := range []string{"social-twitter", "web-webbase"} {
		g := benchGraph(b, name)
		m := float64(g.NumDirectedEdges())
		for _, a := range []cc.Algorithm{cc.AlgoDOLP, cc.AlgoThrifty} {
			b.Run(fmt.Sprintf("%s/%s", name, a), func(b *testing.B) {
				var edges int64
				for i := 0; i < b.N; i++ {
					inst := &cc.Instrumentation{}
					if _, err := cc.Run(a, g, cc.WithInstrumentation(inst)); err != nil {
						b.Fatal(err)
					}
					edges = inst.Events["edges"]
				}
				b.ReportMetric(100*float64(edges)/m, "edges-pct-of-E")
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: the reduction in the four software
// counter proxies, reported as metrics of one sub-bench per dataset.
func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"social-twitter", "web-webbase"} {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			var metrics map[string]float64
			for i := 0; i < b.N; i++ {
				instD, instT := &cc.Instrumentation{}, &cc.Instrumentation{}
				if _, err := cc.Run(cc.AlgoDOLP, g, cc.WithInstrumentation(instD)); err != nil {
					b.Fatal(err)
				}
				if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(instT)); err != nil {
					b.Fatal(err)
				}
				red := func(k string) float64 {
					return 100 * (1 - float64(instT.Events[k])/float64(instD.Events[k]))
				}
				metrics = map[string]float64{
					"llc-reduction%":    red("cache-lines"),
					"mem-reduction%":    100 * (1 - float64(instT.Events["label-loads"]+instT.Events["label-stores"])/float64(instD.Events["label-loads"]+instD.Events["label-stores"])),
					"branch-reduction%": red("branch-checks"),
					"instr-reduction%":  100 * (1 - float64(instT.Events["edges"]+instT.Events["vertex-visits"])/float64(instD.Events["edges"]+instD.Events["vertex-visits"])),
				}
			}
			for k, v := range metrics {
				b.ReportMetric(v, k)
			}
		})
	}
}

// BenchmarkFig7 regenerates Figures 7/8's headline: Thrifty's
// converged-to-final percentage after its first pull iteration (paper:
// 88.3%).
func BenchmarkFig7(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	final, err := cc.Run(cc.AlgoThrifty, g)
	if err != nil {
		b.Fatal(err)
	}
	var afterFirstPull float64
	for i := 0; i < b.N; i++ {
		inst := &cc.Instrumentation{}
		inst.OnIteration = func(it cc.IterationStats, labels []uint32) {
			if it.Index == 1 { // iteration 1 = first pull (0 is the initial push)
				conv := 0
				for v, l := range labels {
					if l == final.Labels[v] {
						conv++
					}
				}
				afterFirstPull = 100 * float64(conv) / float64(len(labels))
			}
		}
		if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(afterFirstPull, "converged%-after-first-pull")
}

// BenchmarkTable6 regenerates Table VI: first-iteration time of DO-LP vs
// Thrifty's initial push + first pull, as a speedup metric.
func BenchmarkTable6(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	b.Run("first-iteration-speedup", func(b *testing.B) {
		var speedup float64
		for i := 0; i < b.N; i++ {
			instD, instT := &cc.Instrumentation{}, &cc.Instrumentation{}
			if _, err := cc.Run(cc.AlgoDOLP, g, cc.WithInstrumentation(instD)); err != nil {
				b.Fatal(err)
			}
			if _, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(instT)); err != nil {
				b.Fatal(err)
			}
			d0 := instD.Iterations[0].Duration.Seconds()
			t01 := instT.Iterations[0].Duration.Seconds() + instT.Iterations[1].Duration.Seconds()
			speedup = d0 / t01
		}
		b.ReportMetric(speedup, "first-iter-speedup")
	})
}

// BenchmarkTable7 regenerates Table VII: Thrifty under a 1% vs 5%
// push/pull threshold on the web-crawl analog.
func BenchmarkTable7(b *testing.B) {
	g := benchGraph(b, "web-uk")
	for _, th := range []float64{0.01, 0.05} {
		b.Run(fmt.Sprintf("threshold-%.0f%%", th*100), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := cc.Run(cc.AlgoThrifty, g, cc.WithThreshold(th))
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkFig9 regenerates Figures 9/10: the three-way ablation DO-LP vs
// DO-LP+Unified vs Thrifty (compare the sub-benches' ns/op).
func BenchmarkFig9(b *testing.B) {
	for _, name := range []string{"social-twitter", "web-webbase"} {
		g := benchGraph(b, name)
		for _, a := range []cc.Algorithm{cc.AlgoDOLP, cc.AlgoDOLPUnified, cc.AlgoThrifty} {
			b.Run(fmt.Sprintf("%s/%s", name, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cc.Run(a, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable1 regenerates Table I's measurement: the fraction of
// vertices in the max-degree vertex's component.
func BenchmarkTable1(b *testing.B) {
	for _, name := range []string{"social-twitter", "web-webbase"} {
		g := benchGraph(b, name)
		b.Run(name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				labels := cc.Sequential(g)
				frac = stats.MaxDegreeComponentFraction(g, labels)
			}
			b.ReportMetric(frac, "hub-component-%")
		})
	}
}

// BenchmarkTable2 times dataset generation + census (the Table II
// inventory pipeline), reporting the component count.
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"social-pokec", "road-gb"} {
		b.Run(name, func(b *testing.B) {
			var comps int
			for i := 0; i < b.N; i++ {
				g := benchGraph(b, name)
				comps = stats.Census(cc.Sequential(g)).NumComponents
			}
			b.ReportMetric(float64(comps), "components")
		})
	}
}

// BenchmarkAblations regenerates the extension ablation (ccbench -exp
// ablations): one sub-bench per disabled design choice.
func BenchmarkAblations(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	variants := []struct {
		name string
		opts []cc.Option
	}{
		{"full-thrifty", nil},
		{"no-initial-push", []cc.Option{cc.WithoutInitialPush()}},
		{"plant-at-v0", []cc.Option{cc.WithPlantVertex(0)}},
		{"eager-frontier", []cc.Option{cc.WithEagerPullFrontier()}},
		{"dynamic-scheduling", []cc.Option{cc.WithDynamicScheduling()}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(cc.AlgoThrifty, g, v.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConnectIt regenerates the extension comparison against the
// ConnectIt framework points (ccbench -exp connectit).
func BenchmarkConnectIt(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	for _, a := range []cc.Algorithm{cc.AlgoAfforest, cc.AlgoConnectItKOut, cc.AlgoConnectItBFS, cc.AlgoThrifty} {
		b.Run(string(a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(a, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributed regenerates the sharded-exchange extension
// (ccbench -exp dist), reporting exchange traffic as metrics.
func BenchmarkDistributed(b *testing.B) {
	g := benchGraph(b, "social-twitter")
	for _, shards := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			var bytes, suppressed int64
			for i := 0; i < b.N; i++ {
				res, err := dist.Run(g, dist.Config{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.ExchangedBytes
				suppressed = res.SuppressedVertices
			}
			b.ReportMetric(float64(bytes), "exchanged-bytes")
			b.ReportMetric(float64(suppressed), "suppressed")
		})
	}
}

// BenchmarkAsyncEngine regenerates the sync-vs-async SpMV extension
// (ccbench -exp async), reporting iteration counts as metrics.
func BenchmarkAsyncEngine(b *testing.B) {
	g := benchGraph(b, "web-webbase")
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				iters = spmv.CC(g, async).Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkGraphBuild measures CSR construction throughput, the substrate
// cost underneath every experiment.
func BenchmarkGraphBuild(b *testing.B) {
	edges, err := gen.RMATEdges(gen.DefaultRMAT(16, 8, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.BuildUndirected(edges); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medges/s")
}
