// Package obs is the run-telemetry subsystem: a metrics registry served as
// Prometheus text and expvar, a debug HTTP server (pprof, expvar, /metrics),
// a stable JSONL encoding of per-iteration trace records, and log/slog
// helpers for run lifecycle events.
//
// The package sits strictly outside the traversal hot paths. Everything it
// publishes is derived from telemetry the kernels already collect at
// iteration and partition boundaries (cc.RunStats, counters.Counters totals,
// parallel scheduler stats); obs itself never injects per-edge work, so
// observing a run does not change what is measured. The zero-cost boundary
// rule is documented in DESIGN.md §10: per-edge events go through the
// compile-time instrumentation policy seam (internal/core/instr.go),
// boundary-granularity statistics are plain always-on code, and obs only
// aggregates and exposes.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"thriftylp/internal/atomicx"

	"thriftylp/cc"
)

// Registry is a process-wide set of named metrics: monotone int64 counters
// and float64 gauges. It backs the /metrics endpoint and the "thriftylp"
// expvar. All methods are safe for concurrent use; reads while runs are
// publishing see a consistent per-metric snapshot.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*atomicx.Int64
	gauges   map[string]*atomicx.Uint64 // float64 bits
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*atomicx.Int64),
		gauges:   make(map[string]*atomicx.Uint64),
		hists:    make(map[string]*Histogram),
	}
}

// counter returns the counter cell for name, creating it at zero.
func (r *Registry) counter(name string) *atomicx.Int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(atomicx.Int64)
		r.counters[name] = c
	}
	return c
}

// Add increments counter name by delta (creating it at zero).
func (r *Registry) Add(name string, delta int64) {
	r.counter(name).Add(delta)
}

// Counter returns the current value of counter name (zero if absent). For
// a name of the form <hist>_total where <hist> is a registered histogram,
// it returns the histogram's exact sample sum — the pre-histogram
// cumulative counters (thriftyd_<endpoint>_latency_ns_total) keep their
// names and values while the underlying metric is histogram-backed.
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	c := r.counters[name]
	var h *Histogram
	if c == nil && strings.HasSuffix(name, counterSuffixTotal) {
		h = r.hists[strings.TrimSuffix(name, counterSuffixTotal)]
	}
	r.mu.Unlock()
	if c != nil {
		return c.Load()
	}
	if h != nil {
		return h.Sum()
	}
	return 0
}

// Histogram returns the histogram registered under name, creating an empty
// one on first use. The returned pointer is stable: hot paths resolve it
// once and Record against it without touching the registry again.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// SetGauge sets gauge name to v.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = new(atomicx.Uint64)
		r.gauges[name] = g
	}
	r.mu.Unlock()
	g.Store(math.Float64bits(v))
}

// Gauge returns the current value of gauge name (zero if absent).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.Load())
}

// Snapshot returns all metrics as a flat name → value map (counters as
// int64, gauges as float64, histograms as their derived count/sum/quantile
// scalars). Used by the expvar publication.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]any, len(r.counters)+len(r.gauges)+8*len(r.hists))
	for name, c := range r.counters {
		m[name] = c.Load()
	}
	for name, g := range r.gauges {
		m[name] = math.Float64frombits(g.Load())
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		s.derived(name, m)
	}
	return m
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name so output is stable across scrapes. Histograms
// render as a full histogram family (sparse cumulative _bucket series,
// _sum/_count, derived quantile gauges, and the legacy <name>_total sum
// counter), after the scalar metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type row struct {
		name, typ, val string
	}
	rows := make([]row, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		rows = append(rows, row{name, "counter", fmt.Sprintf("%d", c.Load())})
	}
	for name, g := range r.gauges {
		rows = append(rows, row{name, "gauge",
			strconv.FormatFloat(math.Float64frombits(g.Load()), 'g', -1, 64)})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{name, h})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, x := range rows {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", x.name, x.typ, x.name, x.val); err != nil {
			return err
		}
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, x := range hists {
		if err := x.h.writePrometheus(w, x.name); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP serves the registry as a Prometheus-style /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// sanitizeMetric maps an event/phase name onto the Prometheus metric-name
// alphabet ("pull-frontier" → "pull_frontier").
func sanitizeMetric(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			return c
		default:
			return '_'
		}
	}, s)
}

// Metric names published by ObserveRun. Event and phase metrics follow the
// patterns thriftylp_events_<event>_total and thriftylp_phase_<kind>_seconds.
const (
	MetricRuns             = "thriftylp_runs_total"
	MetricIterations       = "thriftylp_iterations_total"
	MetricRunSeconds       = "thriftylp_run_duration_seconds"
	MetricPartitionsOwned  = "thriftylp_sched_partitions_owned_total"
	MetricPartitionsStolen = "thriftylp_sched_partitions_stolen_total"
	MetricFailedSteals     = "thriftylp_sched_steal_failures_total"
	MetricPoolJobs         = "thriftylp_pool_jobs_total"
	MetricPoolIdleSeconds  = "thriftylp_pool_idle_seconds"

	// Sharded-pipeline exchange metrics (populated only by AlgoShard runs).
	MetricShardRounds         = "thriftylp_shard_rounds_total"
	MetricShardExchangedBytes = "thriftylp_shard_exchanged_bytes_total"
	MetricShardNaiveBytes     = "thriftylp_shard_naive_bytes_total"
	MetricShardSuppressed     = "thriftylp_shard_suppressed_total"
	MetricShardBoundary       = "thriftylp_shard_boundary_entries"
)

// EventMetric returns the counter name for a software event ("edges" →
// "thriftylp_events_edges_total").
func EventMetric(event string) string {
	return "thriftylp_events_" + sanitizeMetric(event) + "_total"
}

// PhaseMetric returns the gauge name for a phase's cumulative wall time.
func PhaseMetric(kind string) string {
	return "thriftylp_phase_" + sanitizeMetric(kind) + "_seconds"
}

// ObserveRun folds one completed run's telemetry into the registry:
// run/iteration counters, scheduler activity, per-phase wall time, and — for
// instrumented runs — the software event totals (so /metrics reports exactly
// the counters.Counters totals of the run). Call it after each run; counters
// accumulate across runs, gauges reflect the latest.
func (r *Registry) ObserveRun(res *cc.Result) {
	if res == nil || res.Stats == nil {
		return
	}
	st := res.Stats
	r.Add(MetricRuns, 1)
	r.Add(MetricIterations, int64(res.Iterations))
	r.SetGauge(MetricRunSeconds, st.Duration.Seconds())
	r.Add(MetricPartitionsOwned, st.Sched.PartitionsOwned)
	r.Add(MetricPartitionsStolen, st.Sched.PartitionsStolen)
	r.Add(MetricFailedSteals, st.Sched.FailedSteals)
	r.Add(MetricPoolJobs, st.Sched.PoolJobs)
	r.SetGauge(MetricPoolIdleSeconds, st.Sched.PoolIdle.Seconds())
	for kind, d := range st.PhaseDurations {
		r.SetGauge(PhaseMetric(kind), d.Seconds())
	}
	for event, n := range st.Events {
		r.Add(EventMetric(event), n)
	}
	if sh := st.Shard; sh != nil {
		r.Add(MetricShardRounds, int64(sh.Rounds))
		r.Add(MetricShardExchangedBytes, sh.ExchangedBytes)
		r.Add(MetricShardNaiveBytes, sh.NaiveBytes)
		r.Add(MetricShardSuppressed, sh.SuppressedVertices)
		r.SetGauge(MetricShardBoundary, float64(sh.BoundaryEntries))
	}
}
