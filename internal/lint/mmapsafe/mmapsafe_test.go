package mmapsafe_test

import (
	"testing"

	"thriftylp/internal/lint/linttest"
	"thriftylp/internal/lint/mmapsafe"
)

func TestMmapSafe(t *testing.T) {
	linttest.Run(t, linttest.TestData(), mmapsafe.Analyzer, "mmapgraph", "usemap")
}
