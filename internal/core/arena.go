package core

import (
	"thriftylp/internal/bitmap"
	"thriftylp/internal/worklist"
)

// Arena is a reusable allocation pool for the per-run working state of the
// CC kernels: label arrays, sparse-frontier worklists, and dense-frontier
// bitmaps. A fresh run of Thrifty on a medium graph allocates several
// megabytes (labels, two worklist mark arrays, per-thread lists) that are
// dead the moment the run returns; a serving path that answers many queries
// over the same graph — or a benchmark harness taking repeated measurements
// — pays that allocation and the induced GC pressure on every run. Routing
// the kernels' acquisitions through an Arena makes the second and later runs
// allocation-free: buffers are recycled by position, growing only when a
// larger graph arrives.
//
// Contract:
//
//   - An Arena serves ONE run at a time. Concurrent runs need one Arena
//     each (or nil to fall back to plain allocation).
//   - Buffers handed out are owned by the arena: the NEXT run that begins
//     on the same arena recycles them. In particular a Result.Labels slice
//     produced by an arena-backed run is invalidated by the next run —
//     callers that retain results across runs must copy, exactly as a
//     serving snapshot would.
//   - The zero value and the nil pointer are both valid and mean "no
//     reuse": every acquisition falls back to a fresh allocation.
//
// Acquired buffers arrive in a defined state: Uint32s contents are
// UNSPECIFIED (every kernel fully initializes its arrays), Worklists are
// fully reset (no marks, empty lists), Bitmaps are cleared.
type Arena struct {
	u32  []arenaU32
	sets []*worklist.Set
	bms  []*bitmap.Bitmap
	// Watermarks: how many of each kind the current run has acquired.
	// BeginRun rewinds them so the next run recycles from the start.
	u32n, setsN, bmsN int
}

type arenaU32 struct{ buf []uint32 }

// BeginRun rewinds the arena so the next kernel acquisitions recycle the
// buffers of the previous run. cc.RunContext calls it once per run; kernels
// never do.
func (a *Arena) BeginRun() {
	if a == nil {
		return
	}
	a.u32n, a.setsN, a.bmsN = 0, 0, 0
}

// Uint32s returns a length-n uint32 buffer with unspecified contents. The
// caller must fully initialize it (all kernels do: labels via parallel.Fill,
// union-find parents via iota fills).
func (a *Arena) Uint32s(n int) []uint32 {
	if a == nil {
		return make([]uint32, n)
	}
	if a.u32n < len(a.u32) {
		slot := &a.u32[a.u32n]
		a.u32n++
		if cap(slot.buf) < n {
			slot.buf = make([]uint32, n)
		}
		return slot.buf[:n]
	}
	buf := make([]uint32, n)
	a.u32 = append(a.u32, arenaU32{buf: buf})
	a.u32n = len(a.u32)
	return buf
}

// Worklist returns a fully reset worklist.Set for vertex ids [0, n) with the
// given thread count. A recycled set is reused only when its capacity and
// thread count match; otherwise it is replaced (a pool-size change mid-arena
// is rare and costs one reallocation, not a correctness hazard).
func (a *Arena) Worklist(n, threads int) *worklist.Set {
	if a == nil {
		return worklist.New(n, threads)
	}
	if a.setsN < len(a.sets) {
		s := a.sets[a.setsN]
		if s.Cap() == n && s.Threads() == threads {
			a.setsN++
			s.ResetFull()
			return s
		}
		s = worklist.New(n, threads)
		a.sets[a.setsN] = s
		a.setsN++
		return s
	}
	s := worklist.New(n, threads)
	a.sets = append(a.sets, s)
	a.setsN = len(a.sets)
	return s
}

// Bitmap returns a cleared bitmap of capacity n bits.
func (a *Arena) Bitmap(n int) *bitmap.Bitmap {
	if a == nil {
		return bitmap.New(n)
	}
	if a.bmsN < len(a.bms) {
		b := a.bms[a.bmsN]
		if b.Len() == n {
			a.bmsN++
			b.Reset()
			return b
		}
		b = bitmap.New(n)
		a.bms[a.bmsN] = b
		a.bmsN++
		return b
	}
	b := bitmap.New(n)
	a.bms = append(a.bms, b)
	a.bmsN = len(a.bms)
	return b
}
