package core

import (
	"sync/atomic"
	"testing"

	"thriftylp/graph/gen"
	"thriftylp/internal/parallel"
)

func TestSchedulerSweepCoversAllVertices(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 3)))
	for _, dynamic := range []bool{false, true} {
		sch := newScheduler(g, Config{DynamicScheduling: dynamic}, parallel.Default())
		touched := make([]int32, g.NumVertices())
		for round := 0; round < 3; round++ { // reuse across "iterations"
			sch.sweep(func(_, lo, hi int) {
				for v := lo; v < hi; v++ {
					atomic.AddInt32(&touched[v], 1)
				}
			})
		}
		for v, c := range touched {
			if c != 3 {
				t.Fatalf("dynamic=%v: vertex %d swept %d times, want 3", dynamic, v, c)
			}
		}
	}
}

func TestSchedulerEmptyGraph(t *testing.T) {
	g := mustGraph(gen.Empty(0))
	sch := newScheduler(g, Config{}, parallel.Default())
	called := false
	sch.sweep(func(_, _, _ int) { called = true })
	if called {
		t.Fatal("sweep over empty graph invoked fn")
	}
}

// TestSchedulerEdgeBalance: with a hub-heavy graph, the stealing schedule's
// partitions carry far fewer vertices near the hub than uniform chunks
// would — verify partitions are edge-balanced within 2× of ideal except for
// unsplittable hubs.
func TestSchedulerEdgeBalance(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 16, 5)))
	pool := parallel.Default()
	parts := parallel.PartitionEdges(g.Offsets(), parallel.PartitionsPerThread*pool.Threads())
	total := g.NumDirectedEdges()
	ideal := total / int64(len(parts))
	maxHub := int64(g.Degree(g.MaxDegreeVertex()))
	for _, p := range parts {
		edges := g.Offsets()[p.Hi] - g.Offsets()[p.Lo]
		bound := 2*ideal + maxHub
		if edges > bound {
			t.Fatalf("partition [%d,%d) has %d edges, bound %d", p.Lo, p.Hi, edges, bound)
		}
	}
}

// TestDynamicSchedulingAblationCorrect: both disciplines produce identical
// partitions for every algorithm family.
func TestDynamicSchedulingAblationCorrect(t *testing.T) {
	g := mustGraph(gen.Web(gen.WebConfig{CoreScale: 9, CoreEdgeFactor: 8, NumChains: 6, ChainLength: 32, Seed: 11}))
	oracle := SeqCC(g)
	for _, a := range algorithmsUnderTest {
		res := a.run(g, Config{DynamicScheduling: true})
		if !Equivalent(res.Labels, oracle) {
			t.Fatalf("%s with dynamic scheduling: wrong partition", a.name)
		}
	}
}
