package core

import (
	"fmt"
	"runtime"
	"thriftylp/internal/atomicx"
	"time"
)

// FaultPlan is the fault-injection policy — the third instantiation of the
// instrumentation seam (after noInstr and counting). It perturbs scheduling
// at the same hook points the counters use: every hook event bumps a global
// event counter, and the plan injects runtime.Gosched calls, sleeps, and an
// optional panic at configured event counts. Running the kernels under a
// plan with -race actively exercises the paper's benign-race claims (the
// non-atomic dedup discipline of the worklists and the unified labels array,
// §IV-A/§V-A) far beyond what natural scheduling reaches, and the panic
// schedule drives the pool's recovery paths from arbitrary depths inside a
// traversal.
//
// A FaultPlan is selected by setting Config.Faults; it composes with
// cancellation (Config.Stop) but not with counters — chaos runs measure
// robustness, not event totals.
type FaultPlan struct {
	// GoschedEvery injects runtime.Gosched every Nth hook event (0 = never).
	// Descheduling a worker mid-traversal widens the benign-race windows the
	// paper's design tolerates.
	GoschedEvery uint64
	// DelayEvery injects a Delay-long sleep every Nth hook event (0 = never).
	DelayEvery uint64
	// Delay is the sleep duration for DelayEvery injections.
	Delay time.Duration
	// PanicAt panics at the Nth hook event (0 = never), exercising panic
	// capture and pool drain from deep inside a parallel region.
	PanicAt uint64

	events atomicx.Uint64 // global hook-event count, shared by all workers
}

// Events returns the number of hook events observed so far. Useful for
// calibrating PanicAt in tests.
func (p *FaultPlan) Events() uint64 { return p.events.Load() }

// tick advances the global event count and applies whichever injections are
// scheduled for this event.
func (p *FaultPlan) tick() {
	n := p.events.Add(1)
	if p.PanicAt != 0 && n == p.PanicAt {
		panic(fmt.Sprintf("core: injected fault at hook event %d", n))
	}
	if p.GoschedEvery != 0 && n%p.GoschedEvery == 0 {
		runtime.Gosched()
	}
	if p.DelayEvery != 0 && n%p.DelayEvery == 0 {
		time.Sleep(p.Delay)
	}
}

// chaos is the seam policy driven by a FaultPlan. Every hook ticks the plan;
// cancellation is handled outside the seam (the kernels poll Config.Stop at
// partition boundaries for every policy), so chaos runs remain cancellable.
type chaos struct {
	plan *FaultPlan
}

func newChaos(cfg Config) chaos {
	return chaos{plan: cfg.Faults}
}

func (c chaos) Fresh() chaos { return c }
func (c chaos) Visit()       { c.plan.tick() }
func (c chaos) Edge()        { c.plan.tick() }
func (c chaos) Load()        { c.plan.tick() }
func (c chaos) Store()       { c.plan.tick() }
func (c chaos) CAS()         { c.plan.tick() }
func (c chaos) Branch()      { c.plan.tick() }
func (c chaos) Touch(uint32) { c.plan.tick() }
func (c chaos) Flush(int)    {}
