package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list format: one "u v" pair per line, whitespace separated,
// '#' or '%' prefixed lines are comments. Binary CSR format: a fixed header
// (magic, version, |V|, directed slot count) followed by the little-endian
// offsets and adjacency arrays; loading a binary CSR skips edge-list
// re-symmetrization entirely, which is how the large generated datasets are
// shipped between cmd/graphgen and the benchmark tools.

const (
	binMagic   = 0x54484c50 // "THLP"
	binVersion = 1
)

// WriteEdgeList writes g as a text edge list with one line per undirected
// edge (u <= v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# thriftylp edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) <= u {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list and builds an undirected graph with
// the supplied build options.
func ReadEdgeList(r io.Reader, opts ...BuildOption) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, Edge{U: uint32(u), V: uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return BuildUndirected(edges, opts...)
}

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := [4]uint64{binMagic, binVersion, uint64(g.NumVertices()), uint64(len(g.adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary, validating the CSR
// invariants before returning it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] != binVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[1])
	}
	n, m := int(hdr[2]), int(hdr[3])
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative sizes in header")
	}
	offsets := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	adj := make([]uint32, m)
	if err := binary.Read(br, binary.LittleEndian, adj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	return FromCSR(offsets, adj)
}

// SaveBinary writes g to the named file in binary CSR format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from a binary CSR file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// LoadEdgeList reads a graph from a text edge-list file.
func LoadEdgeList(path string, opts ...BuildOption) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, opts...)
}

// Load reads a graph from path, dispatching on extension: ".bin" and ".csr"
// use the binary CSR format, anything else is parsed as a text edge list.
func Load(path string, opts ...BuildOption) (*Graph, error) {
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".csr") {
		return LoadBinary(path)
	}
	return LoadEdgeList(path, opts...)
}
