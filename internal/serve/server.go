package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"thriftylp/cc"
	"thriftylp/internal/obs"
)

// Config parameterizes a query server. The zero value of every field is
// replaced by a sensible default in New; tests shrink the limits to make
// saturation and shedding reachable without load.
type Config struct {
	// Path is the graph file served; Reload re-ingests it.
	Path string
	// Algo is the solve algorithm (default cc.AlgoAuto).
	Algo cc.Algorithm
	// MaxInFlight bounds concurrently executing queries (default
	// 4×GOMAXPROCS — queries are O(1) map/array reads, so a small multiple
	// of the CPUs keeps them cache-friendly without queue starvation).
	MaxInFlight int
	// MaxQueue bounds queries waiting for a slot; beyond it requests are
	// shed immediately with 429 (default 4×MaxInFlight).
	MaxQueue int
	// QueueWait caps how long an admitted-to-queue request waits for a
	// slot before being shed (default 50ms).
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline once admitted (default
	// 1s). It also seeds the HTTP server's read-header timeout, so a
	// stalled or byte-dribbling client is disconnected rather than holding
	// a connection open across the drain deadline.
	RequestTimeout time.Duration
	// Registry receives the serving metrics (default: a private registry;
	// pass the debug server's to expose them on /metrics).
	Registry *obs.Registry
	// Log receives lifecycle events (default: discard).
	Log *slog.Logger
	// SlowLog, when set, receives sampled slow-query span records and the
	// per-reload span records (thriftylp/trace/v1 JSONL). The server
	// flushes it on Drain; the creator owns closing it.
	SlowLog *obs.SlowLog
	// Watchdog, when set, gains a "reload" heartbeat (deadline
	// ReloadDeadline) and snapshot health probes: published refcount,
	// mapped bytes, and mmap residency of the current snapshot. The caller
	// starts and stops it.
	Watchdog *obs.Watchdog
	// ReloadDeadline is the stall deadline for the reload heartbeat: a
	// load/reload running longer triggers a watchdog goroutine dump
	// (default 2m). Only meaningful with Watchdog set.
	ReloadDeadline time.Duration
}

// Serving metric names. Per-endpoint latency is a histogram
// (thriftyd_<endpoint>_latency_ns, log-linear buckets, scrape-time p50/p90/
// p99/p999 gauges); the pre-histogram cumulative counter name
// thriftyd_<endpoint>_latency_ns_total stays published, derived from the
// histogram's exact sum, so existing dashboards keep working.
const (
	MetricShed           = "thriftyd_shed_total"
	MetricInFlight       = "thriftyd_inflight"
	MetricQueueDepth     = "thriftyd_queue_depth"
	MetricReloads        = "thriftyd_reloads_total"
	MetricReloadFailures = "thriftyd_reload_failures_total"
	MetricSnapshotSwaps  = "thriftyd_snapshot_swaps_total"
	MetricReloadSeconds  = "thriftyd_reload_seconds"
	MetricQueueWaitHist  = "thriftyd_queue_wait_ns"
	MetricSnapshotRefs   = "thriftyd_snapshot_refs"
	MetricMappedBytes    = "thriftyd_snapshot_mapped_bytes"
	MetricResidentBytes  = "thriftyd_snapshot_resident_bytes"
)

// RequestsMetric returns the request counter name for an endpoint.
func RequestsMetric(endpoint string) string {
	return "thriftyd_" + endpoint + "_requests_total"
}

// LatencyMetric returns the cumulative-latency counter name for an
// endpoint. Since the histogram conversion the value is derived (the
// histogram's exact sample sum) but the name and semantics are unchanged.
func LatencyMetric(endpoint string) string {
	return "thriftyd_" + endpoint + "_latency_ns_total"
}

// LatencyHistogram returns the latency histogram name for an endpoint.
func LatencyHistogram(endpoint string) string {
	return "thriftyd_" + endpoint + "_latency_ns"
}

// ErrReloadInProgress is returned by Reload when another reload is already
// running; the HTTP endpoint maps it to 409 Conflict.
var ErrReloadInProgress = errors.New("serve: reload already in progress")

// Server is the admission-controlled connectivity query server. Create with
// New, publish the first snapshot with Load (queries 503 until it
// completes), expose Handler on a listener (or call Serve/ListenAndServe),
// and stop with Drain.
type Server struct {
	cfg Config
	src Source
	adm *admission
	mux *http.ServeMux
	reg *obs.Registry
	log *slog.Logger

	// slow is the optional slow-query/reload span log; qwait the shared
	// queue-wait histogram; reloadHB the optional watchdog heartbeat
	// bracketing load/reload (nil without a watchdog).
	slow     *obs.SlowLog
	qwait    *obs.Histogram
	reloadHB *obs.Heartbeat

	// reloadMu serializes Load/Reload; TryLock turns a concurrent reload
	// into ErrReloadInProgress instead of a queue of stale reloads.
	reloadMu sync.Mutex

	// statusMu guards the readiness state reported by /readyz. Not-ready
	// does not imply not-serving: after a failed reload the old snapshot
	// keeps answering queries while readiness screams for an operator.
	statusMu sync.Mutex
	ready    bool
	reason   string

	// httpMu guards httpSrv, which exists only between Serve and Drain.
	httpMu  sync.Mutex
	httpSrv *http.Server

	// testQueryDelay, when set (chaos tests only, before serving starts),
	// stretches every query handler so deadlines and drains become
	// observable without a large graph.
	testQueryDelay time.Duration
}

// New builds a server around cfg without loading anything: /healthz answers
// immediately, /readyz reports not-ready, queries 503 until Load publishes
// the first snapshot.
func New(cfg Config) *Server {
	if cfg.Algo == "" {
		cfg.Algo = cc.AlgoAuto
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 50 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	if cfg.ReloadDeadline <= 0 {
		cfg.ReloadDeadline = 2 * time.Minute
	}
	s := &Server{
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		mux:    http.NewServeMux(),
		reg:    cfg.Registry,
		log:    cfg.Log,
		slow:   cfg.SlowLog,
		reason: "initial load not complete",
	}
	s.qwait = s.reg.Histogram(MetricQueueWaitHist)
	if wd := cfg.Watchdog; wd != nil {
		s.reloadHB = wd.Heartbeat("reload", cfg.ReloadDeadline)
		wd.Gauge(MetricSnapshotRefs, s.probeRefs)
		wd.Gauge(MetricMappedBytes, s.probeMapped)
		wd.Gauge(MetricResidentBytes, s.probeResident)
	}
	s.mux.HandleFunc("/component", s.query("component", s.handleComponent))
	s.mux.HandleFunc("/same", s.query("same", s.handleSame))
	s.mux.HandleFunc("/size", s.query("size", s.handleSize))
	s.mux.HandleFunc("/census", s.query("census", s.handleCensus))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.Handle("/metrics", s.reg)
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// Watchdog probes: each acquires the current snapshot (so the graph cannot
// be closed mid-probe), reads one health value, and releases. The refcount
// reported excludes the probe's own transient reference.
func (s *Server) probeRefs() float64 {
	sn := s.src.Acquire()
	if sn == nil {
		return 0
	}
	defer sn.Release()
	return float64(sn.Refs() - 1)
}

func (s *Server) probeMapped() float64 {
	sn := s.src.Acquire()
	if sn == nil {
		return 0
	}
	defer sn.Release()
	return float64(sn.Graph.MappedBytes())
}

func (s *Server) probeResident() float64 {
	sn := s.src.Acquire()
	if sn == nil {
		return 0
	}
	defer sn.Release()
	b, ok := sn.Graph.ResidentBytes()
	if !ok {
		return 0
	}
	return float64(b)
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Source returns the snapshot source (tests and diagnostics).
func (s *Server) Source() *Source { return &s.src }

// setReady publishes the /readyz state.
func (s *Server) setReady(ready bool, reason string) {
	s.statusMu.Lock()
	s.ready, s.reason = ready, reason
	s.statusMu.Unlock()
}

// Ready reports the current /readyz state.
func (s *Server) Ready() (bool, string) {
	s.statusMu.Lock()
	defer s.statusMu.Unlock()
	return s.ready, s.reason
}

// Load performs the initial load-validate-solve-publish sequence. It is
// Reload without the rollback framing: there is nothing to roll back to, so
// a failure simply leaves the server not-ready (reason carries the error)
// and queries answering 503.
func (s *Server) Load(ctx context.Context) error { return s.Reload(ctx) }

// Reload ingests, validates and fully re-solves cfg.Path off to the side,
// then atomically publishes the result. On any error the currently-published
// snapshot is untouched — queries keep being answered from it — and /readyz
// flips to not-ready so orchestrators see the failed reload. Concurrent
// calls are rejected with ErrReloadInProgress rather than queued: a reload
// reflects the file's current state, so a queued second reload would either
// duplicate work or publish the same bytes twice.
func (s *Server) Reload(ctx context.Context) error {
	if !s.reloadMu.TryLock() {
		return ErrReloadInProgress
	}
	defer s.reloadMu.Unlock()
	if s.reloadHB != nil {
		s.reloadHB.Begin()
		defer s.reloadHB.End()
	}
	start := time.Now()
	sn, err := LoadSnapshot(ctx, s.cfg.Path, s.cfg.Algo)
	if err != nil {
		s.reg.Add(MetricReloadFailures, 1)
		s.setReady(false, fmt.Sprintf("reload failed (serving previous snapshot): %v", err))
		s.log.Error("reload failed", "path", s.cfg.Path, "err", err)
		return err
	}
	pubStart := time.Now()
	s.src.Publish(sn)
	publishNs := time.Since(pubStart).Nanoseconds()
	s.reg.Add(MetricReloads, 1)
	s.reg.SetGauge(MetricSnapshotSwaps, float64(s.src.Swaps()))
	s.reg.SetGauge(MetricReloadSeconds, time.Since(start).Seconds())
	s.reg.ObserveRun(&sn.Result)
	s.setReady(true, "")
	if s.slow != nil {
		// One span record per publish, initial load included: the
		// ingest/validate/solve/publish split that decides whether a slow
		// reload is I/O, a hostile file, or the solve itself.
		_ = s.slow.WriteRecord(obs.TraceRecord{
			Kind:       obs.KindReload,
			Dataset:    s.cfg.Path,
			LoadNs:     sn.Phases.IngestNs,
			ValidateNs: sn.Phases.ValidateNs,
			SolveNs:    sn.Phases.SolveNs,
			PublishNs:  publishNs,
			DurationNs: time.Since(start).Nanoseconds(),
		})
	}
	s.log.Info("snapshot published",
		"path", s.cfg.Path,
		"vertices", sn.NumVertices(),
		"edges", sn.Graph.NumEdges(),
		"components", sn.NumComponents(),
		"ingest", time.Duration(sn.Phases.IngestNs),
		"validate", time.Duration(sn.Phases.ValidateNs),
		"solve", time.Duration(sn.Phases.SolveNs),
		"total", time.Since(start))
	return nil
}

// Serve accepts connections on ln until Drain. The embedded http.Server
// carries the anti-stall timeouts: ReadHeaderTimeout evicts byte-dribbling
// clients, WriteTimeout bounds the full queue-wait + handler + response
// window so no connection can outlive the drain deadline by stalling reads.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.RequestTimeout,
		WriteTimeout:      s.cfg.QueueWait + 2*s.cfg.RequestTimeout,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr and calls Serve. thriftyd binds its own
// listener instead so it can print the resolved port before serving.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Drain gracefully stops the server: /readyz flips to not-ready, the
// listener closes, in-flight requests get until ctx's deadline, then the
// snapshot source retires (the final munmap fires once the last reader
// releases — never under one). If the deadline passes with requests still
// running, remaining connections are aborted and ctx's error returned.
func (s *Server) Drain(ctx context.Context) error {
	s.setReady(false, "draining")
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
		if err != nil {
			_ = srv.Close()
		}
	}
	s.src.Retire()
	if s.slow != nil {
		// Push buffered span records to disk before the process exits: a
		// drain must not truncate the slow-query log's final records. The
		// creator still owns (and closes) the underlying file.
		if ferr := s.slow.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// query wraps an endpoint handler in the serving envelope: a request span
// (id + queue/acquire/handler/encode phase clocks, one time read per
// boundary), admission control (shed with 429 + Retry-After), the
// per-request deadline, snapshot acquire/release, and latency metrics —
// the per-endpoint latency histogram plus the sampled slow-query log. The
// wrapped fn runs with a live snapshot reference — the munmap of a
// concurrent reload-retired graph cannot fire until fn returns and the
// reference is released.
func (s *Server) query(name string, fn func(http.ResponseWriter, *http.Request, *Snapshot, *obs.RequestSpan) error) http.HandlerFunc {
	hist := s.reg.Histogram(LatencyHistogram(name))
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan(name)
		release, ok := s.adm.admit(r.Context())
		sp.EndQueue()
		s.qwait.Record(sp.QueueNs)
		if !ok {
			s.reg.Add(MetricShed, 1)
			retryAfter := int(s.cfg.QueueWait / time.Second)
			if retryAfter < 1 {
				retryAfter = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			http.Error(w, "overloaded: admission queue full", http.StatusTooManyRequests)
			s.observeSpan(&sp, http.StatusTooManyRequests)
			return
		}
		defer release()
		s.reg.SetGauge(MetricInFlight, float64(s.adm.inFlight()))
		s.reg.SetGauge(MetricQueueDepth, float64(s.adm.queued()))

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		sn := s.src.Acquire()
		sp.EndAcquire()
		if sn == nil {
			http.Error(w, "no snapshot loaded", http.StatusServiceUnavailable)
			s.observeSpan(&sp, http.StatusServiceUnavailable)
			return
		}
		defer sn.Release()

		if d := s.testQueryDelay; d > 0 {
			// Chaos seam: pretend the query is expensive, but stay
			// deadline-aware like a real expensive query would.
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if err := ctx.Err(); err != nil {
			http.Error(w, "deadline exceeded", http.StatusServiceUnavailable)
			s.observeSpan(&sp, http.StatusServiceUnavailable)
			return
		}

		if err := fn(w, r.WithContext(ctx), sn, &sp); err != nil {
			sp.EndHandler()
			var qe *queryError
			status := http.StatusInternalServerError
			if errors.As(err, &qe) {
				status = qe.status
			}
			if qe != nil {
				http.Error(w, qe.msg, status)
			} else {
				http.Error(w, err.Error(), status)
			}
			s.observeSpan(&sp, status)
			if status == http.StatusNotFound {
				// A well-formed lookup that found nothing (/size of a dead
				// label) ran the full query path and is served latency, not
				// an error: it belongs in the histogram.
				hist.Record(sp.TotalNs)
			}
			return
		}
		sp.EndHandler()
		s.reg.Add(RequestsMetric(name), 1)
		s.observeSpan(&sp, http.StatusOK)
		hist.Record(sp.TotalNs)
	}
}

// observeSpan finishes a request span and offers it to the slow-query log.
func (s *Server) observeSpan(sp *obs.RequestSpan, status int) {
	sp.Finish(status)
	if s.slow != nil {
		s.slow.Observe(sp)
	}
}

// queryError carries an HTTP status with a handler error.
type queryError struct {
	status int
	msg    string
}

func (e *queryError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &queryError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &queryError{http.StatusNotFound, fmt.Sprintf(format, args...)}
}

// vertexParam parses and bounds-checks a vertex-id query parameter.
func vertexParam(r *http.Request, sn *Snapshot, key string) (uint32, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, badRequest("missing query parameter %q", key)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, badRequest("bad vertex id %q: %v", raw, err)
	}
	if int(v) >= sn.NumVertices() {
		return 0, notFound("vertex %d out of range [0,%d)", v, sn.NumVertices())
	}
	return uint32(v), nil
}

// writeJSON encodes the response body, crediting the encode+write time to
// the span's encode phase (sp may be nil for control-plane endpoints).
func writeJSON(w http.ResponseWriter, sp *obs.RequestSpan, v any) error {
	if sp != nil {
		sp.EndHandler()
	}
	w.Header().Set("Content-Type", "application/json")
	err := json.NewEncoder(w).Encode(v)
	if sp != nil {
		sp.EndEncode()
	}
	return err
}

func (s *Server) handleComponent(w http.ResponseWriter, r *http.Request, sn *Snapshot, sp *obs.RequestSpan) error {
	v, err := vertexParam(r, sn, "v")
	if err != nil {
		return err
	}
	c := sn.ComponentOf(v)
	return writeJSON(w, sp, map[string]any{
		"vertex": v, "component": c, "size": sn.SizeOf(c),
	})
}

func (s *Server) handleSame(w http.ResponseWriter, r *http.Request, sn *Snapshot, sp *obs.RequestSpan) error {
	u, err := vertexParam(r, sn, "u")
	if err != nil {
		return err
	}
	v, err := vertexParam(r, sn, "v")
	if err != nil {
		return err
	}
	return writeJSON(w, sp, map[string]any{
		"u": u, "v": v, "same": sn.ComponentOf(u) == sn.ComponentOf(v),
	})
}

func (s *Server) handleSize(w http.ResponseWriter, r *http.Request, sn *Snapshot, sp *obs.RequestSpan) error {
	raw := r.URL.Query().Get("c")
	if raw == "" {
		return badRequest("missing query parameter \"c\"")
	}
	c, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return badRequest("bad component label %q: %v", raw, err)
	}
	size := sn.SizeOf(uint32(c))
	if size == 0 {
		return notFound("no component labelled %d", c)
	}
	return writeJSON(w, sp, map[string]any{"component": uint32(c), "size": size})
}

func (s *Server) handleCensus(w http.ResponseWriter, _ *http.Request, sn *Snapshot, sp *obs.RequestSpan) error {
	label, size := sn.Largest()
	body := map[string]any{
		"path":       sn.Path,
		"vertices":   sn.NumVertices(),
		"edges":      sn.Graph.NumEdges(),
		"components": sn.NumComponents(),
		"largest":    map[string]any{"label": label, "size": size},
		"loaded":     sn.Loaded.Format(time.RFC3339Nano),
	}
	if st := sn.Result.Stats; st != nil {
		algo := st.Algorithm
		if st.Selected != "" {
			algo = st.Selected
		}
		body["algorithm"] = string(algo)
		body["solve_ns"] = st.Duration.Nanoseconds()
	}
	return writeJSON(w, sp, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := s.Ready()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: "+reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleReload is the endpoint-triggered hot reload. POST-only: it mutates
// serving state. It is a control-plane operation and deliberately bypasses
// query admission — an operator must be able to reload a saturated server.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "reload requires POST", http.StatusMethodNotAllowed)
		return
	}
	err := s.Reload(r.Context())
	switch {
	case errors.Is(err, ErrReloadInProgress):
		http.Error(w, err.Error(), http.StatusConflict)
	case err != nil:
		http.Error(w, fmt.Sprintf("reload failed, still serving previous snapshot: %v", err),
			http.StatusInternalServerError)
	default:
		sn := s.src.Acquire()
		if sn == nil {
			// The freshly reloaded snapshot was retired before we could
			// reference it (concurrent shutdown); the reload itself stuck.
			http.Error(w, "reloaded, but no snapshot available", http.StatusServiceUnavailable)
			return
		}
		defer sn.Release()
		_ = writeJSON(w, nil, map[string]any{
			"reloaded":   true,
			"vertices":   sn.NumVertices(),
			"components": sn.NumComponents(),
		})
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "thriftyd connectivity query server")
	fmt.Fprintln(w, "  /component?v=ID     component label and size of vertex ID")
	fmt.Fprintln(w, "  /same?u=ID&v=ID     whether u and v are connected")
	fmt.Fprintln(w, "  /size?c=LABEL       vertex count of component LABEL")
	fmt.Fprintln(w, "  /census             component census of the loaded graph")
	fmt.Fprintln(w, "  /reload (POST)      re-ingest, re-solve and swap the graph")
	fmt.Fprintln(w, "  /metrics            Prometheus text metrics (histograms + counters)")
	fmt.Fprintln(w, "  /healthz /readyz    liveness / readiness")
}
