package graph

import (
	"os"
	"strings"
	"time"
)

// Ingestion formats reported in IngestStats.Format.
const (
	// FormatEdgeList is the text edge-list path: read, sharded parse, CSR
	// build.
	FormatEdgeList = "edgelist"
	// FormatBinary is the portable binary CSR path: chunked element-wise
	// decode.
	FormatBinary = "binary"
	// FormatBinaryMmap is the zero-copy binary CSR path: the arrays alias
	// the page cache.
	FormatBinaryMmap = "binary-mmap"
)

// IngestStats describes one measured graph load. Load covers getting bytes
// into memory and (for text inputs) parsing them into edges; Build covers
// CSR construction. Binary inputs carry a prebuilt CSR, so their Build phase
// is zero and validation is part of Load.
type IngestStats struct {
	Path     string
	Format   string
	Bytes    int64 // input file size
	Vertices int
	Edges    int64 // undirected edge count of the resulting graph

	LoadDuration  time.Duration
	BuildDuration time.Duration
}

// Total returns the end-to-end ingestion time.
func (s IngestStats) Total() time.Duration {
	return s.LoadDuration + s.BuildDuration
}

// Ingest reads a graph from path with per-phase timing, dispatching on
// extension exactly like Load: ".bin" and ".csr" use the binary CSR format,
// anything else is parsed as a text edge list. Binary graphs loaded through
// the zero-copy path own a memory mapping; see Graph.Close.
func Ingest(path string, opts ...BuildOption) (*Graph, IngestStats, error) {
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".csr") {
		return ingestBinary(path)
	}
	return ingestEdgeList(path, opts...)
}

// ingestEdgeList loads a text edge list: the file is mapped (or read whole)
// and parsed by the sharded parser, then the CSR is built. The mapping is
// released before returning — parsed edges are plain values, nothing
// aliases the text.
func ingestEdgeList(path string, opts ...BuildOption) (*Graph, IngestStats, error) {
	st := IngestStats{Path: path, Format: FormatEdgeList}
	start := time.Now()
	data, release, err := readFileZeroCopy(path)
	if err != nil {
		return nil, st, err
	}
	defer release()
	st.Bytes = int64(len(data))
	edges, err := parseEdgeList(data, nil)
	if err != nil {
		return nil, st, err
	}
	st.LoadDuration = time.Since(start)

	start = time.Now()
	g, err := BuildUndirected(edges, opts...)
	if err != nil {
		return nil, st, err
	}
	st.BuildDuration = time.Since(start)
	st.Vertices = g.NumVertices()
	st.Edges = g.NumEdges()
	return g, st, nil
}

// ingestBinary loads a binary CSR file via LoadBinary (zero-copy when the
// host supports it) and reports which path was taken.
func ingestBinary(path string) (*Graph, IngestStats, error) {
	st := IngestStats{Path: path, Format: FormatBinary}
	if fi, err := os.Stat(path); err == nil {
		st.Bytes = fi.Size()
	}
	start := time.Now()
	g, err := LoadBinary(path)
	if err != nil {
		return nil, st, err
	}
	st.LoadDuration = time.Since(start)
	if g.mapped != nil {
		st.Format = FormatBinaryMmap
	}
	st.Vertices = g.NumVertices()
	st.Edges = g.NumEdges()
	return g, st, nil
}

// readFileZeroCopy returns the file's content and a release function. On
// mmap-capable hosts the content aliases a private read-only mapping and
// release unmaps it; otherwise the content is heap-read and release is a
// no-op. Callers must not touch the returned bytes after release.
func readFileZeroCopy(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if mmapSupported {
		if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() && fi.Size() > 0 {
			if data, err := mmapFile(f, fi.Size()); err == nil {
				return data, func() { munmapBytes(data) }, nil
			}
		}
	}
	data, err := readAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
