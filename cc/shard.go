package cc

import (
	"os"
	"strconv"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/dist"
	"thriftylp/internal/shard"
	"thriftylp/internal/stats"
)

// AlgoShard is sharded out-of-core Thrifty: the graph is split into
// vertex-range CSR shards, each shard's interior is solved with the
// shared-memory Thrifty kernel while only that shard's adjacency is
// resident, and the shards then reconcile through rounds of compacted
// boundary-label exchange (internal/dist). On an in-memory graph the shards
// are views — no copy — so AlgoShard is also a way to measure the exchange
// overhead the out-of-core pipeline would pay. Labels land in the same
// value space as AlgoThrifty: hub component 0, every other component
// min-vertex-id+1.
const AlgoShard Algorithm = "shard"

// MemBudgetEnv, when set to a positive byte count, gives AlgoAuto a memory
// budget on runs that did not pass WithMemoryBudget explicitly.
const MemBudgetEnv = "THRIFTY_MEM_BUDGET"

// ShardRoundStats is one exchange round's traffic, in execution order on
// ShardStats.PerRound.
type ShardRoundStats struct {
	// Bytes is what the compacted exchange shipped this round; NaiveBytes is
	// what a full-boundary flat (vertex,label) exchange would have shipped.
	Bytes, NaiveBytes int64
	// Pairs is the number of (vertex,label) pairs exchanged.
	Pairs int64
	// Suppressed counts zero-convergence suppression hits this round.
	Suppressed int64
}

// ShardStats is the sharded pipeline's telemetry, attached to
// RunStats.Shard on AlgoShard runs (nil for every other algorithm).
type ShardStats struct {
	// Shards is the shard count the run actually used (after clamping).
	Shards int
	// Rounds is the number of boundary-exchange rounds to global
	// convergence; LocalIterations sums the interior Thrifty iterations
	// across shards.
	Rounds, LocalIterations int
	// BoundaryEntries is the total size of the per-shard boundary lists
	// (component, destination, target) the exchange operates on.
	BoundaryEntries int64
	// ExchangedBytes is the total compacted exchange traffic; NaiveBytes is
	// the flat-encoding denominator the compaction is measured against.
	ExchangedBytes, NaiveBytes int64
	// Pairs is the total number of (vertex,label) pairs exchanged.
	Pairs int64
	// SuppressedVertices counts every exchange emission or application
	// skipped because zero convergence had already finalized the target.
	SuppressedVertices int64
	// PerRound decomposes the traffic by round.
	PerRound []ShardRoundStats
}

// WithShards sets the shard count for AlgoShard runs (clamped to the vertex
// count; 0 keeps the default). Ignored by other algorithms.
func WithShards(k int) Option {
	return func(o *options) {
		if k > 0 {
			o.shards = k
		}
	}
}

// WithMemoryBudget tells the AlgoAuto selector how many bytes of resident
// graph + solver state the run may use. When the input's estimated
// working set exceeds the budget, the selector picks AlgoShard with a shard
// count scaled so one shard's share fits, instead of a whole-graph
// algorithm ("beyond-memory-budget" rule). Zero means unlimited; the
// THRIFTY_MEM_BUDGET environment variable supplies a default when the
// option is absent. Ignored when the caller names an algorithm directly.
func WithMemoryBudget(bytes int64) Option {
	return func(o *options) {
		if bytes > 0 {
			o.memBudget = bytes
		}
	}
}

// memoryBudget resolves the effective budget: explicit option first, then
// the environment, else unlimited (0).
func (o *options) memoryBudget() int64 {
	if o.memBudget > 0 {
		return o.memBudget
	}
	if s := os.Getenv(MemBudgetEnv); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// estimateResidentBytes is the whole-graph working set the selector holds
// against the budget: the CSR arrays (8-byte offsets, 4-byte adjacency)
// plus the label-propagation solver state (labels, shadow labels, frontier
// bookkeeping — roughly 16 bytes per vertex).
func estimateResidentBytes(p stats.Probe) int64 {
	return 8*int64(p.Vertices+1) + 4*p.DirectedEdges + 16*int64(p.Vertices)
}

// budgetShardCount picks the shard count for a budget-driven AlgoShard run:
// enough shards that one shard's slice share of the estimate fits the
// budget, never fewer than two (one shard would be the whole-graph run the
// rule just rejected).
func budgetShardCount(estimate, budget int64) int {
	k := int((estimate + budget - 1) / budget)
	if k < 2 {
		k = 2
	}
	return k
}

// Shard runs the sharded out-of-core Thrifty pipeline (see AlgoShard).
func Shard(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoShard, g, opts) }

// runShard executes the sharded pipeline and adapts its result to the
// kernel Result shape, parking the shard telemetry on o for RunContext to
// attach to RunStats.
func runShard(g *graph.Graph, o *options) (core.Result, error) {
	k := o.shards
	if k <= 0 {
		k = 4 // dist.Run's default
	}
	src := shard.NewGraphSource(g, k)
	res, err := dist.RunSource(src, dist.Config{
		Pool:      o.cfg.Pool,
		Stop:      o.cfg.Stop,
		MaxRounds: o.cfg.MaxIterations,
		Faults:    o.cfg.Faults,
	})
	if err != nil {
		return core.Result{}, err
	}
	st := &ShardStats{
		Shards:             src.Shards(),
		Rounds:             res.Rounds,
		LocalIterations:    res.LocalIterations,
		BoundaryEntries:    res.BoundaryEntries,
		ExchangedBytes:     res.ExchangedBytes,
		NaiveBytes:         res.NaiveBytes,
		Pairs:              res.Pairs,
		SuppressedVertices: res.SuppressedVertices,
	}
	for _, r := range res.PerRound {
		st.PerRound = append(st.PerRound, ShardRoundStats{
			Bytes: r.Bytes, NaiveBytes: r.NaiveBytes, Pairs: r.Pairs, Suppressed: r.Suppressed,
		})
	}
	o.shardStats = st
	out := core.Result{
		Labels:     res.Labels,
		Iterations: res.LocalIterations,
		Canceled:   res.Canceled,
	}
	if res.Canceled {
		out.Phase = "shard-solve"
	}
	return out, nil
}
