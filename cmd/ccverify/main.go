// Command ccverify cross-validates every connected-components algorithm in
// the repository against the sequential oracle on a battery of generated
// graphs — the CI smoke check. It exits non-zero on the first disagreement.
//
//	ccverify                 # default battery
//	ccverify -seeds 20       # more random instances
//	ccverify -in graph.bin   # validate all algorithms on one graph file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/obs"
)

func main() {
	var (
		in     = flag.String("in", "", "validate on this graph file instead of the generated battery")
		seeds  = flag.Int("seeds", 5, "random instances per generator family")
		quiet  = flag.Bool("q", false, "only print failures and the final summary")
		httpAd = flag.String("http", "", "serve /metrics, expvar and /debug/pprof on this address while the battery runs")
	)
	flag.Parse()

	var reg *obs.Registry
	if *httpAd != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*httpAd, reg, nil)
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Printf("debug server listening on %s\n", srv.URL())
	}

	var cases []struct {
		name string
		g    *graph.Graph
	}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			fatalf("building %s: %v", name, err)
		}
		cases = append(cases, struct {
			name string
			g    *graph.Graph
		}{name, g})
	}

	if *in != "" {
		g, ist, err := graph.Ingest(*in)
		if err == nil {
			fmt.Printf("ingest: %s, %.1f MB in %.3f ms (load %.3f + build %.3f)\n",
				ist.Format, float64(ist.Bytes)/1e6,
				float64(ist.Total().Nanoseconds())/1e6,
				float64(ist.LoadDuration.Nanoseconds())/1e6,
				float64(ist.BuildDuration.Nanoseconds())/1e6)
		}
		add(*in, g, err)
	} else {
		for s := 0; s < *seeds; s++ {
			seed := uint64(s)
			g, err := gen.RMAT(gen.DefaultRMAT(12, 8, seed))
			add(fmt.Sprintf("rmat-seed%d", s), g, err)
			g, err = gen.ErdosRenyi(4096, 6000, seed)
			add(fmt.Sprintf("er-seed%d", s), g, err)
			g, err = gen.Web(gen.WebConfig{CoreScale: 10, CoreEdgeFactor: 6, NumChains: 8, ChainLength: 40, Seed: seed})
			add(fmt.Sprintf("web-seed%d", s), g, err)
		}
		g, err := gen.Path(20000)
		add("path", g, err)
		g, err = gen.Star(20000)
		add("star", g, err)
		g, err = gen.Components(50, 10)
		add("cliques", g, err)
		g, err = gen.Grid(gen.GridConfig{Rows: 100, Cols: 100, DropFraction: 0.05, Seed: 1})
		add("grid", g, err)
	}

	start := time.Now()
	checks, failures := 0, 0
	for _, tc := range cases {
		oracle := cc.Sequential(tc.g)
		for _, a := range cc.Algorithms() {
			res, err := cc.Run(a, tc.g)
			checks++
			if reg != nil && err == nil {
				reg.ObserveRun(&res)
			}
			if err != nil {
				failures++
				fmt.Printf("FAIL %-20s %-16s error: %v\n", tc.name, a, err)
				continue
			}
			if !cc.Equivalent(res.Labels, oracle) {
				failures++
				fmt.Printf("FAIL %-20s %-16s partition differs from oracle\n", tc.name, a)
				continue
			}
			if !*quiet {
				fmt.Printf("ok   %-20s %-16s %d components, %d iterations\n",
					tc.name, a, res.NumComponents(), res.Iterations)
			}
		}
	}
	fmt.Printf("\n%d checks, %d failures in %v\n", checks, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ccverify: "+format+"\n", args...)
	os.Exit(1)
}
