package core

import (
	"thriftylp/graph"
	"thriftylp/internal/parallel"
)

// scheduler executes the per-vertex sweeps of the CC kernels. The default
// discipline is the paper's (§V-A): the vertex set is split into
// 32×#threads edge-balanced partitions, each thread processes its own
// partitions in ascending order and steals from other threads' blocks in
// descending order. The DynamicScheduling ablation replaces this with
// uniform dynamic chunking (a fetch-add chunk queue), quantifying what
// edge-balanced stealing buys on skewed graphs where a uniform vertex chunk
// can hide a hub with a million edges.
type scheduler struct {
	pool    *parallel.Pool
	stealer *parallel.Stealer // nil ⇒ dynamic chunking
	n       int
}

// newScheduler builds the sweep executor for one algorithm run on g.
func newScheduler(g *graph.Graph, cfg Config, pool *parallel.Pool) *scheduler {
	s := &scheduler{pool: pool, n: g.NumVertices()}
	if !cfg.DynamicScheduling && s.n > 0 {
		parts := parallel.PartitionEdges(g.Offsets(), parallel.PartitionsPerThread*pool.Threads())
		s.stealer = parallel.NewStealer(parts, pool.Threads())
	}
	return s
}

// stealStats returns the accumulated partition-scheduling counters of this
// run's sweeps, or zeros under the dynamic-chunking ablation.
func (s *scheduler) stealStats() parallel.StealStats {
	if s.stealer == nil {
		return parallel.StealStats{}
	}
	return s.stealer.Stats()
}

// sweep runs fn over [0, n) in parallel under the configured discipline.
// fn receives half-open [lo, hi) vertex ranges.
func (s *scheduler) sweep(fn func(tid, lo, hi int)) {
	if s.n == 0 {
		return
	}
	if s.stealer == nil {
		parallel.For(s.pool, s.n, 2048, fn)
		return
	}
	s.stealer.Run(s.pool, func(tid int, r parallel.Range) {
		if r.Len() > 0 {
			fn(tid, int(r.Lo), int(r.Hi))
		}
	})
}
