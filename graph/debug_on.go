//go:build thriftydebug

package graph

// debugClosedChecks is on in builds tagged thriftydebug: the accessors panic
// with errUseAfterClose when touching a mapped graph after Close, turning a
// latent page fault (or silent garbage read) into a deterministic failure at
// the offending access. See debug_off.go for why this is a build-tag constant
// rather than a runtime flag.
const debugClosedChecks = true
