package core

import (
	"testing"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/counters"
)

// mustGraph adapts a generator's (graph, error) pair; generation failures
// are programming errors in the tests themselves.
func mustGraph(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestSeqCCLabelsAreComponentMinima(t *testing.T) {
	g := mustGraph(gen.Components(4, 5))
	labels := SeqCC(g)
	for v, l := range labels {
		if int(l) != (v/5)*5 {
			t.Fatalf("vertex %d labelled %d, want %d", v, l, (v/5)*5)
		}
	}
}

func TestNormalizeAndEquivalent(t *testing.T) {
	a := []uint32{7, 7, 3, 3, 9}
	b := []uint32{0, 0, 1, 1, 2}
	if !Equivalent(a, b) {
		t.Fatal("same partition judged different")
	}
	c := []uint32{0, 1, 1, 1, 2}
	if Equivalent(a, c) {
		t.Fatal("different partitions judged equal")
	}
	if Equivalent(a, []uint32{1, 2}) {
		t.Fatal("length mismatch judged equal")
	}
	n := Normalize(a)
	want := []uint32{0, 0, 2, 2, 4}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", n, want)
		}
	}
}

// TestThriftyGiantConvergesToZero: the defining property of Zero Planting —
// the component containing the max-degree vertex ends with label 0.
func TestThriftyGiantConvergesToZero(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 8, 3)))
	res := Thrifty(g, Config{})
	hub := g.MaxDegreeVertex()
	if res.Labels[hub] != 0 {
		t.Fatalf("hub label = %d, want 0", res.Labels[hub])
	}
	// Every vertex labelled 0 must be in the hub's component and vice versa.
	oracle := SeqCC(g)
	for v, l := range res.Labels {
		inHub := oracle[v] == oracle[hub]
		if (l == 0) != inHub {
			t.Fatalf("vertex %d: label %d, in-hub-component=%v", v, l, inHub)
		}
	}
}

// TestThriftySmallComponentLabels: vertices outside the giant component get
// minID+1 labels (the v+1 label space of Zero Planting).
func TestThriftySmallComponentLabels(t *testing.T) {
	g := mustGraph(gen.Components(3, 4)) // cliques {0..3},{4..7},{8..11}
	res := Thrifty(g, Config{})
	// Hub (max degree, ties → smallest id) is vertex 0; its clique gets 0.
	for v := 0; v < 4; v++ {
		if res.Labels[v] != 0 {
			t.Fatalf("giant-clique vertex %d label %d", v, res.Labels[v])
		}
	}
	for v := 4; v < 8; v++ {
		if res.Labels[v] != 5 { // min id 4, +1 label space
			t.Fatalf("vertex %d label %d, want 5", v, res.Labels[v])
		}
	}
	for v := 8; v < 12; v++ {
		if res.Labels[v] != 9 {
			t.Fatalf("vertex %d label %d, want 9", v, res.Labels[v])
		}
	}
}

// TestThriftyInitialPushIsOneIteration: iteration accounting per §V-C.
func TestThriftyInitialPushIsOneIteration(t *testing.T) {
	g := mustGraph(gen.Star(100))
	tr := &counters.Trace{}
	res := Thrifty(g, Config{Trace: tr})
	if len(tr.Iters) != res.Iterations {
		t.Fatalf("trace has %d records for %d iterations", len(tr.Iters), res.Iterations)
	}
	if tr.Iters[0].Kind != counters.KindInitialPush {
		t.Fatalf("iteration 0 kind = %s, want initial-push", tr.Iters[0].Kind)
	}
	// Star: the hub pushes 0 to all leaves in iteration 0; iteration 1 is
	// the mandatory pull finding nothing; done in 2 iterations.
	if res.Iterations != 2 {
		t.Fatalf("star iterations = %d, want 2", res.Iterations)
	}
	if tr.Iters[1].Kind != counters.KindPull {
		t.Fatalf("iteration 1 kind = %s, want pull", tr.Iters[1].Kind)
	}
}

// TestThriftyZeroConvergenceSkipsEdges: on a star, the second iteration's
// pull must process ~zero edges because every leaf already holds 0.
func TestThriftyZeroConvergenceSkipsEdges(t *testing.T) {
	g := mustGraph(gen.Star(10000))
	ctr := counters.New(1)
	tr := &counters.Trace{}
	Thrifty(g, Config{Ctr: ctr, Trace: tr})
	// Iteration 0 pushes deg(hub) edges. Iteration 1 pulls: every leaf is
	// skipped (label 0), only the hub itself... the hub is 0 too, so 0
	// edges. Total edges must be exactly deg(hub).
	if got := ctr.Total(counters.EdgesProcessed); got != int64(g.Degree(0)) {
		t.Fatalf("total edges processed = %d, want %d (Zero Convergence must skip the converged star)",
			got, g.Degree(0))
	}
}

// TestThriftyProcessesFarFewerEdgesThanDOLP is the Fig 5 invariant at test
// scale: Thrifty's edge traversals are a small fraction of DO-LP's.
func TestThriftyProcessesFarFewerEdgesThanDOLP(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(13, 16, 9)))
	ctrD, ctrT := counters.New(1), counters.New(1)
	DOLP(g, Config{Ctr: ctrD})
	Thrifty(g, Config{Ctr: ctrT})
	d := ctrD.Total(counters.EdgesProcessed)
	th := ctrT.Total(counters.EdgesProcessed)
	if th*4 > d {
		t.Fatalf("Thrifty processed %d edges vs DO-LP %d — expected at least a 4x reduction", th, d)
	}
	// And Thrifty must touch at most ~a third of |E| on a giant-component
	// RMAT graph (the paper reports ~1.4% at billion-edge scale; small
	// graphs have proportionally larger fringes).
	if th*3 > g.NumDirectedEdges() {
		t.Fatalf("Thrifty processed %d of %d directed slots", th, g.NumDirectedEdges())
	}
}

// TestDOLPIterationsVsUnified: the Unified Labels Array may not increase
// the iteration count (Table V's mechanism).
func TestDOLPIterationsVsUnified(t *testing.T) {
	g := mustGraph(gen.Web(gen.WebConfig{CoreScale: 9, CoreEdgeFactor: 8, NumChains: 8, ChainLength: 64, Seed: 4}))
	rd := DOLP(g, Config{})
	ru := DOLPUnified(g, Config{})
	if ru.Iterations > rd.Iterations {
		t.Fatalf("unified variant used %d iterations vs DO-LP's %d", ru.Iterations, rd.Iterations)
	}
	if !Equivalent(rd.Labels, ru.Labels) {
		t.Fatal("unified variant computed a different partition")
	}
}

// TestLabelsMonotoneDecrease: a Thrifty trace's zero-count must be
// non-decreasing (labels never move away from converged).
func TestLabelsMonotoneDecrease(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 13)))
	tr := &counters.Trace{}
	Thrifty(g, Config{Trace: tr})
	last := int64(-1)
	for _, it := range tr.Iters {
		if it.Zero < last {
			t.Fatalf("zero-label count decreased: %d -> %d at iteration %d", last, it.Zero, it.Index)
		}
		last = it.Zero
	}
}

// TestConfigDefaults exercises threshold/pool/max-iteration defaulting.
func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.threshold(0.05) != 0.05 {
		t.Fatal("default threshold not applied")
	}
	c.Threshold = 0.2
	if c.threshold(0.05) != 0.2 {
		t.Fatal("override threshold not applied")
	}
	if c.maxIters(10) != 36 {
		t.Fatalf("maxIters default = %d", c.maxIters(10))
	}
	c.MaxIterations = 3
	if c.maxIters(10) != 3 {
		t.Fatal("maxIters override not applied")
	}
	if c.pool() == nil {
		t.Fatal("default pool nil")
	}
}

// TestMaxIterationsCapStopsRuns: adversarial cap keeps algorithms from
// running away (results may be incomplete — that is the point).
func TestMaxIterationsCapStopsRuns(t *testing.T) {
	g := mustGraph(gen.Path(5000))
	res := DOLP(g, Config{MaxIterations: 3})
	if res.Iterations != 3 {
		t.Fatalf("DOLP ran %d iterations under a cap of 3", res.Iterations)
	}
	res = LP(g, Config{MaxIterations: 2})
	if res.Iterations != 2 {
		t.Fatalf("LP ran %d iterations under a cap of 2", res.Iterations)
	}
}

// TestVerifyAgainstGraphRejects under- and over-merging.
func TestVerifyAgainstGraphRejects(t *testing.T) {
	g := mustGraph(gen.Components(2, 3))
	good := SeqCC(g)
	if !VerifyAgainstGraph(g, good) {
		t.Fatal("rejected correct labels")
	}
	under := append([]uint32(nil), good...)
	under[1] = 99 // splits an edge's endpoints
	if VerifyAgainstGraph(g, under) {
		t.Fatal("accepted under-merged labels")
	}
	over := make([]uint32, len(good)) // everything one component
	if VerifyAgainstGraph(g, over) {
		t.Fatal("accepted over-merged labels")
	}
	if VerifyAgainstGraph(g, good[:2]) {
		t.Fatal("accepted truncated labels")
	}
}
