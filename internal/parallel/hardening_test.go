package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestChaosRunRecoversPanic(t *testing.T) {
	for _, threads := range []int{1, 4} {
		p := NewPool(threads)
		err := p.Run(func(tid int) {
			if tid == 0 {
				panic("boom")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("threads=%d: want *PanicError, got %v", threads, err)
		}
		if pe.Value != "boom" {
			t.Fatalf("threads=%d: panic value = %v, want boom", threads, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "hardening_test") {
			t.Errorf("threads=%d: stack trace does not point at the panicking job:\n%s", threads, pe.Stack)
		}
		// The pool must remain usable after a panic.
		var ran int32
		if err := p.Run(func(int) { atomic.AddInt32(&ran, 1) }); err != nil {
			t.Fatalf("threads=%d: Run after panic: %v", threads, err)
		}
		if int(ran) != threads {
			t.Fatalf("threads=%d: post-panic Run reached %d workers", threads, ran)
		}
		p.Close()
	}
}

func TestChaosAllWorkersPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < 3; i++ {
		err := p.Run(func(tid int) { panic(tid) })
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: want *PanicError, got %v", i, err)
		}
	}
	if err := p.Run(func(int) {}); err != nil {
		t.Fatalf("pool unusable after repeated panics: %v", err)
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	p := NewPool(2)
	defer p.Close()
	err := p.Run(func(tid int) {
		if tid == 1 {
			panic(sentinel)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is does not reach the panicked error: %v", err)
	}
}

func TestRunAfterClose(t *testing.T) {
	for _, threads := range []int{1, 4} {
		p := NewPool(threads)
		p.Close()
		p.Close() // idempotent
		if err := p.Run(func(int) { t.Error("job ran on closed pool") }); !errors.Is(err, ErrClosed) {
			t.Fatalf("threads=%d: Run after Close = %v, want ErrClosed", threads, err)
		}
	}
}

func TestCloseAfterPanic(t *testing.T) {
	p := NewPool(4)
	if err := p.Run(func(int) { panic("x") }); err == nil {
		t.Fatal("panic not reported")
	}
	p.Close() // must not hang or crash
	if err := p.Run(func(int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
}

func TestChaosForPropagatesPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("For panicked with %T %v, want *PanicError", r, r)
		}
		if pe.Value != "mid-sweep" {
			t.Fatalf("panic value = %v", pe.Value)
		}
	}()
	For(p, 1<<16, 16, func(_, lo, _ int) {
		if lo >= 1<<15 {
			panic("mid-sweep")
		}
	})
	t.Fatal("For returned normally despite a panicking body")
}

// TestAbandonedPoolIsFinalized verifies the leak backstop of the ownership
// contract: a pool that goes unreachable without Close is shut down by its
// finalizer, so its worker goroutines exit after GC instead of leaking
// forever.
func TestAbandonedPoolIsFinalized(t *testing.T) {
	const threads = 8
	before := runtime.NumGoroutine()
	func() {
		p := NewPool(threads)
		p.Run(func(int) {}) // workers are live
	}()
	// The handle is now unreachable. Force the finalizer and wait for the
	// workers to observe closed and exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		runtime.GC() // finalizer runs after the first cycle, Close takes effect before the next check
		if runtime.NumGoroutine() <= before+threads/2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker goroutines leaked: %d before, %d after GC", before, runtime.NumGoroutine())
}
