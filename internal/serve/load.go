package serve

import (
	"context"
	"fmt"

	"thriftylp/cc"
	"thriftylp/graph"
)

// LoadSnapshot builds a ready-to-publish snapshot from a graph file: ingest
// (zero-copy mmap for binary CSR), full structural validation, and a
// complete connected-components solve — all off to the side, touching
// nothing shared. Any failure closes the candidate graph and returns an
// error; the caller's currently-published snapshot is untouched, which is
// exactly what makes reload rollback trivial.
//
// Validation runs even though the binary loaders validate on ingest: a
// reload file is untrusted input arriving mid-flight (possibly still being
// written), and the O(|V|+|E|) symmetry audit is cheap next to the solve
// that follows.
func LoadSnapshot(ctx context.Context, path string, algo cc.Algorithm) (*Snapshot, error) {
	if algo == "" {
		algo = cc.AlgoAuto
	}
	g, ist, err := graph.Ingest(path)
	if err != nil {
		return nil, fmt.Errorf("serve: ingest %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		_ = g.Close()
		return nil, fmt.Errorf("serve: validate %s: %w", path, err)
	}
	res, err := cc.RunContext(ctx, algo, g)
	if err != nil {
		_ = g.Close()
		return nil, fmt.Errorf("serve: solve %s: %w", path, err)
	}
	return NewSnapshot(g, res, path, &ist), nil
}
