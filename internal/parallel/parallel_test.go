package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolRunsAllWorkers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Threads() != 4 {
		t.Fatalf("Threads = %d, want 4", p.Threads())
	}
	seen := make([]int32, 4)
	p.Run(func(tid int) { atomic.AddInt32(&seen[tid], 1) })
	for tid, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d ran %d times, want 1", tid, c)
		}
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total int64
	for i := 0; i < 100; i++ {
		p.Run(func(tid int) { atomic.AddInt64(&total, 1) })
	}
	if total != 300 {
		t.Fatalf("total = %d, want 300", total)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 7, 100, 4096, 10001} {
		touched := make([]int32, n)
		For(p, n, 13, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&touched[i], 1)
			}
		})
		for i, c := range touched {
			if c != 1 {
				t.Fatalf("n=%d: index %d touched %d times", n, i, c)
			}
		}
	}
}

func TestForEachAndFill(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum int64
	ForEach(p, 1000, 0, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 499500 {
		t.Fatalf("sum = %d, want 499500", sum)
	}
	dst := make([]uint32, 777)
	Fill(p, dst, func(i int) uint32 { return uint32(i * 2) })
	for i, v := range dst {
		if v != uint32(i*2) {
			t.Fatalf("dst[%d] = %d", i, v)
		}
	}
	src := make([]uint32, 777)
	Fill(p, src, func(i int) uint32 { return uint32(i + 5) })
	Copy(p, dst, src)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("Copy mismatch at %d", i)
		}
	}
}

func TestSumInt64(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	got := SumInt64(p, 10000, 0, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	})
	if got != 49995000 {
		t.Fatalf("SumInt64 = %d", got)
	}
}

func TestMaxIndexDeterministicTies(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	vals := []int64{3, 9, 2, 9, 9, 1}
	got := MaxIndex(p, len(vals), func(i int) int64 { return vals[i] })
	if got != 1 {
		t.Fatalf("MaxIndex = %d, want 1 (first of the ties)", got)
	}
	if got := MaxIndex(p, 1, func(int) int64 { return -7 }); got != 0 {
		t.Fatalf("single-element MaxIndex = %d", got)
	}
}

func TestMaxIndexQuick(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		got := MaxIndex(p, len(vals), func(i int) int64 { return int64(vals[i]) })
		want := 0
		for i, v := range vals {
			if int64(v) > int64(vals[want]) {
				want = i
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEdgesBalanced(t *testing.T) {
	// CSR index of a graph where vertex v has degree v (triangle numbers).
	n := 100
	index := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		index[v] = index[v-1] + int64(v-1)
	}
	parts := PartitionEdges(index, 8)
	if len(parts) != 8 {
		t.Fatalf("got %d partitions", len(parts))
	}
	// Coverage: contiguous, complete.
	if parts[0].Lo != 0 || parts[len(parts)-1].Hi != uint32(n) {
		t.Fatalf("partitions do not span [0,%d): %v", n, parts)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].Lo != parts[i-1].Hi {
			t.Fatalf("gap between partitions %d and %d", i-1, i)
		}
	}
	// Balance: no partition holds more than 2× the ideal edge share (the
	// heaviest single vertex here has < 1/8 of edges so this must hold).
	total := index[n]
	for _, p := range parts {
		edges := index[p.Hi] - index[p.Lo]
		if edges > total/4 {
			t.Fatalf("partition %v has %d of %d edges", p, edges, total)
		}
	}
}

func TestPartitionEdgesEmptyAndHub(t *testing.T) {
	// Empty graph.
	parts := PartitionEdges([]int64{0}, 4)
	if len(parts) != 4 {
		t.Fatalf("empty: got %d partitions", len(parts))
	}
	// One hub vertex with all edges: partitions may be empty but must cover.
	index := []int64{0, 1000, 1000, 1000, 1000}
	parts = PartitionEdges(index, 4)
	if parts[len(parts)-1].Hi != 4 || parts[0].Lo != 0 {
		t.Fatalf("hub: bad coverage %v", parts)
	}
}

func TestPartitionVertices(t *testing.T) {
	parts := PartitionVertices(10, 3)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 10 {
		t.Fatalf("vertex partitions cover %d, want 10", total)
	}
}

func TestStealerProcessesEachPartitionOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	index := make([]int64, 1001)
	for v := 1; v <= 1000; v++ {
		index[v] = index[v-1] + 3
	}
	parts := PartitionEdges(index, PartitionsPerThread*p.Threads())
	s := NewStealer(parts, p.Threads())
	counts := make([]int32, 1000)
	for round := 0; round < 3; round++ { // Reset-and-reuse across rounds
		s.Run(p, func(_ int, r Range) {
			for v := r.Lo; v < r.Hi; v++ {
				atomic.AddInt32(&counts[v], 1)
			}
		})
	}
	for v, c := range counts {
		if c != 3 {
			t.Fatalf("vertex %d processed %d times, want 3", v, c)
		}
	}
}

func TestDefaultPool(t *testing.T) {
	p1 := Default()
	p2 := Default()
	if p1 != p2 {
		t.Fatal("Default() not cached")
	}
	var ran int32
	p1.Run(func(int) { atomic.AddInt32(&ran, 1) })
	if ran == 0 {
		t.Fatal("default pool did not run")
	}
}
