package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"thriftylp/internal/lint/analysis"
)

// This file implements the `go vet -vettool` protocol, mirroring
// golang.org/x/tools/go/analysis/unitchecker. The go command drives the tool
// as follows:
//
//  1. `tool -flags` — print a JSON description of the tool's flags.
//  2. `tool -V=full` — print "<path> version devel comments-go-here
//     buildID=<hex>"; the go command hashes this line into its cache key, so
//     the ID must change whenever the tool binary changes (hashing the
//     executable achieves that).
//  3. `tool <file>.cfg` — analyze one package. The cfg names the package's
//     sources and maps every import to the gc export data file the build
//     already produced. The tool must write cfg.VetxOutput (the facts file)
//     and exit 2 if it found diagnostics, 0 otherwise.
//
// The go command invokes step 3 for every dependency too, with VetxOnly set
// — those calls exist only to propagate facts. Facts can only originate in
// this module's own source (nothing outside the module imports it), so a
// standard-library VetxOnly call writes an empty facts file and returns
// without parsing anything; module packages run the fact-producing
// analyzers with diagnostics suppressed. That keeps
// `go vet -vettool=thriftyvet ./...` at roughly the cost of vetting the
// module's own packages. The vetx wire format is the driver's own
// (facts.go): a gob record list re-exporting dependency facts alongside the
// package's new ones, so flow is transitive even though go vet hands each
// package only its direct imports' files.

// vetConfig mirrors the JSON the go command writes to vet.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", exe, string(sum[:]))
	return nil
}

// PrintFlags implements -flags: the JSON flag inventory the go command reads
// to decide which command-line flags it may forward to the tool.
func PrintFlags(w io.Writer, analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"V", false, "print version and exit"},
		{"flags", true, "print flags in JSON"},
	}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{a.Name, true, "enable the " + a.Name + " analyzer (disables those not named)"})
	}
	data, _ := json.Marshal(flags)
	fmt.Fprintln(w, string(data))
}

// RunUnitchecker analyzes the package described by the cfg file and returns
// the process exit code: 0 clean, 1 operational error, 2 diagnostics found.
// Diagnostics go to stderr (the go command relays them), matching the
// x/tools unitchecker contract.
func RunUnitchecker(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Standard-library packages cannot carry this module's facts (nothing
	// outside the module imports it), so their VetxOnly calls — the bulk of
	// what go vet dispatches — write the empty facts file and return
	// without parsing anything. The same fast path serves fully factless
	// analyzer sets.
	if cfg.VetxOnly && (!HasFacts(analyzers) || cfg.Standard[cfg.ImportPath]) {
		if err := writeVetx(cfg, []byte{}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	facts := NewFactStore(analyzers)
	if HasFacts(analyzers) {
		for path, file := range cfg.PackageVetx {
			data, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: reading facts of %s: %v\n", cfg.ImportPath, path, err)
				return 1
			}
			if err := facts.Decode(data); err != nil {
				fmt.Fprintf(os.Stderr, "%s: facts of %s: %v\n", cfg.ImportPath, path, err)
				return 1
			}
		}
	}

	diags, err := analyzeVetConfig(cfg, analyzers, facts)
	if err != nil {
		// Even on failure the go command expects the facts file; hand it
		// the dependency pass-through so downstream decoding still works.
		data, encErr := facts.Encode()
		if encErr == nil {
			_ = writeVetx(cfg, data)
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}
	data, err := facts.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(cfg, data); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", relativePos(d.Pos, cfg.Dir), d.Message)
	}
	return 2
}

// writeVetx stores the serialized facts where the cfg asks.
func writeVetx(cfg *vetConfig, data []byte) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: parsing vet config: %v", path, err)
	}
	return cfg, nil
}

func analyzeVetConfig(cfg *vetConfig, analyzers []*analysis.Analyzer, facts *FactStore) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	// Imports resolve through the cfg's ImportMap (which canonicalizes test
	// variants and vendored paths) to the export data files of the build.
	exp := &exportImporter{exports: cfg.PackageFile}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return exp.lookup(path)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := Check(fset, cfg.ImportPath, imp, files, cfg.GoVersion)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:    cfg.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sizes:   Sizes(),
		DepOnly: cfg.VetxOnly,
	}
	return Analyze(pkg, analyzers, facts)
}

// relativePos renders a token.Position with the filename relative to dir
// when possible, matching how go vet prints positions.
func relativePos(pos token.Position, dir string) string {
	name := pos.Filename
	if dir != "" && strings.HasPrefix(name, dir+string(os.PathSeparator)) {
		name = name[len(dir)+1:]
	}
	p := pos
	p.Filename = name
	return p.String()
}
