// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, providing the Analyzer/Pass/Diagnostic
// vocabulary the thriftyvet analyzers are written against.
//
// The repository builds offline with a dependency-free go.mod, so the real
// x/tools module is deliberately not imported; this shim mirrors the fields
// and semantics of the upstream API closely enough that the analyzers (and
// their fixtures) could be moved onto x/tools unchanged if the dependency
// ever becomes available. Only the features the thriftyvet suite needs are
// implemented: syntax + type information, diagnostics, and type sizes.
// Facts, SSA, and inter-analyzer results are intentionally absent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. Name must be a valid identifier; it is
// the diagnostic prefix and the -<name>=false disable flag of thriftyvet.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report/Reportf and returns an optional result (unused here, kept
	// for upstream signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the syntax trees and type information
// of a single package, and receives its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the parsed syntax trees of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression/object maps.
	TypesInfo *types.Info
	// TypesSizes describes the target architecture's size/alignment model.
	TypesSizes types.Sizes
	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, tied to a position in the package source.
type Diagnostic struct {
	// Pos is where the problem is.
	Pos token.Pos
	// Message states the problem. By upstream convention it is not
	// capitalized and has no trailing period.
	Message string
}
