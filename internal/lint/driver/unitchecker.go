package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"thriftylp/internal/lint/analysis"
)

// This file implements the `go vet -vettool` protocol, mirroring
// golang.org/x/tools/go/analysis/unitchecker. The go command drives the tool
// as follows:
//
//  1. `tool -flags` — print a JSON description of the tool's flags.
//  2. `tool -V=full` — print "<path> version devel comments-go-here
//     buildID=<hex>"; the go command hashes this line into its cache key, so
//     the ID must change whenever the tool binary changes (hashing the
//     executable achieves that).
//  3. `tool <file>.cfg` — analyze one package. The cfg names the package's
//     sources and maps every import to the gc export data file the build
//     already produced. The tool must write cfg.VetxOutput (the facts file;
//     empty here, no thriftyvet analyzer uses facts) and exit 2 if it found
//     diagnostics, 0 otherwise.
//
// The go command invokes step 3 for every dependency too, with VetxOnly set
// — those calls exist only to propagate facts, so a factless tool writes the
// empty output and returns without parsing anything. That keeps
// `go vet -vettool=thriftyvet ./...` at roughly the cost of vetting the
// module's own packages.

// vetConfig mirrors the JSON the go command writes to vet.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", exe, string(sum[:]))
	return nil
}

// PrintFlags implements -flags: the JSON flag inventory the go command reads
// to decide which command-line flags it may forward to the tool.
func PrintFlags(w io.Writer, analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"V", false, "print version and exit"},
		{"flags", true, "print flags in JSON"},
	}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{a.Name, true, "enable the " + a.Name + " analyzer (disables those not named)"})
	}
	data, _ := json.Marshal(flags)
	fmt.Fprintln(w, string(data))
}

// RunUnitchecker analyzes the package described by the cfg file and returns
// the process exit code: 0 clean, 1 operational error, 2 diagnostics found.
// Diagnostics go to stderr (the go command relays them), matching the
// x/tools unitchecker contract.
func RunUnitchecker(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Facts stub: thriftyvet analyzers are factless, so the facts file the
	// go command expects to cache is always empty — and VetxOnly
	// (dependency) invocations need nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := analyzeVetConfig(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", relativePos(d.Pos, cfg.Dir), d.Message)
	}
	return 2
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: parsing vet config: %v", path, err)
	}
	return cfg, nil
}

func analyzeVetConfig(cfg *vetConfig, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	// Imports resolve through the cfg's ImportMap (which canonicalizes test
	// variants and vendored paths) to the export data files of the build.
	exp := &exportImporter{exports: cfg.PackageFile}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return exp.lookup(path)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := Check(fset, cfg.ImportPath, imp, files, cfg.GoVersion)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: Sizes(),
	}
	return Analyze(pkg, analyzers)
}

// relativePos renders a token.Position with the filename relative to dir
// when possible, matching how go vet prints positions.
func relativePos(pos token.Position, dir string) string {
	name := pos.Filename
	if dir != "" && strings.HasPrefix(name, dir+string(os.PathSeparator)) {
		name = name[len(dir)+1:]
	}
	p := pos
	p.Filename = name
	return p.String()
}
