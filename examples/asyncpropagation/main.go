// Asynchronous propagation: the paper's §VII closes by asking about "the
// connection between the unified arrays optimization and asynchronous
// execution". This example makes that connection concrete on the generic
// min-propagation engine (internal/spmv): the same two programs — connected
// components and BFS hop distance — run under a synchronous two-array
// schedule and an asynchronous unified-array schedule, and the iteration
// counts show how much of Thrifty's Unified Labels win is really
// "asynchrony smuggled into a bulk-synchronous loop".
//
//	go run ./examples/asyncpropagation
package main

import (
	"fmt"
	"log"

	"thriftylp/graph"
	"thriftylp/graph/gen"
	"thriftylp/internal/spmv"
)

func main() {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{name, g})
	}
	rm, err := gen.RMATCompact(gen.DefaultRMAT(16, 16, 5))
	add("social (RMAT)", rm, err)
	web, err2 := gen.Web(gen.DefaultWeb(15, 5))
	add("web crawl", web, err2)
	road, err3 := gen.Road(1<<17, 5)
	add("road grid", road, err3)

	fmt.Printf("%-15s  %-22s  %-22s\n", "", "CC iterations", "BFS iterations")
	fmt.Printf("%-15s  %-10s %-10s  %-10s %-10s\n", "dataset", "sync", "async", "sync", "async")
	for _, tc := range graphs {
		ccS := spmv.CC(tc.g, false)
		ccA := spmv.CC(tc.g, true)
		root := tc.g.MaxDegreeVertex()
		bfS := spmv.HopDistance(tc.g, root, false)
		bfA := spmv.HopDistance(tc.g, root, true)
		fmt.Printf("%-15s  %-10d %-10d  %-10d %-10d\n",
			tc.name, ccS.Iterations, ccA.Iterations, bfS.Iterations, bfA.Iterations)
	}
	fmt.Println("\nSynchronous sweeps move values one hop per iteration; the unified array")
	fmt.Println("lets a value cross an entire in-order run of vertices in one sweep — the")
	fmt.Println("effect is largest exactly where diameters are large (roads, crawls).")
}
