// Web-graph component analysis: web crawls (WebBase, UK-Union in the
// paper) mix a hub-dominated core with long page chains, giving them a far
// larger diameter than social networks. This example shows the consequence
// the paper discusses in §IV-E: dozens of sparse push iterations after the
// dense pulls, and why the 1% push/pull threshold beats the classical 5%.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"time"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

func main() {
	fmt.Println("generating web-crawl analog (RMAT core + page chains)...")
	g, err := gen.Web(gen.WebConfig{
		CoreScale:      16,
		CoreEdgeFactor: 12,
		NumChains:      1 << 10,
		ChainLength:    160,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d pages, %d links\n", g.NumVertices(), g.NumEdges())

	inst := &cc.Instrumentation{}
	res, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThrifty: %d components, %d iterations (%d pull + %d push)\n",
		res.NumComponents(), res.Iterations, res.PullIterations, res.PushIterations)
	fmt.Println("the iteration tail is the page chains being drained wave by wave:")
	for _, it := range inst.Iterations {
		if it.Index < 6 || it.Index%20 == 0 || it.Index == len(inst.Iterations)-1 {
			fmt.Printf("  iter %3d %-13s active=%-8d edges=%-8d time=%v\n",
				it.Index, it.Kind, it.Active, it.Edges, it.Duration.Round(time.Microsecond))
		}
	}

	// Threshold study (paper Table VII): 1% vs 5%.
	fmt.Println("\npush/pull threshold comparison (paper §IV-E, Table VII):")
	for _, th := range []float64{0.01, 0.05} {
		best := time.Duration(1<<63 - 1)
		var r cc.Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			r, err = cc.Run(cc.AlgoThrifty, g, cc.WithThreshold(th))
			if err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		fmt.Printf("  threshold %.0f%%: %v, %d iterations (%d pull, %d push)\n",
			th*100, best.Round(time.Microsecond), r.Iterations, r.PullIterations, r.PushIterations)
	}
}
