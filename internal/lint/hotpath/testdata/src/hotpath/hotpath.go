// Fixture for the hotpath analyzer: every construct the annotation forbids,
// plus the same constructs unannotated (which must stay silent).
package hotpath

import "fmt"

func sinkAny(v any) { _ = v }

func sinkInt(v int) { _ = v }

//thrifty:hotpath
func badBuiltins(xs []int, n int) []int {
	xs = append(xs, 1) // want `call to append allocates`
	p := new(int)      // want `call to new allocates`
	_ = p
	ys := make([]int, n) // want `call to make allocates`
	_ = ys
	return xs
}

//thrifty:hotpath
func badMaps(m map[int]int) int {
	v := m[3]               // want `map access`
	delete(m, 3)            // want `map delete`
	m2 := map[int]int{1: 2} // want `map literal`
	m2[1] = v               // want `map access`
	for k := range m {      // want `range over map`
		v += k
	}
	return v
}

//thrifty:hotpath
func badClosureInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		f := func() int { return i } // want `closure created inside a loop`
		total += f()
	}
	return total
}

//thrifty:hotpath
func badFmtAndBoxing(n int) {
	fmt.Println(n) // want `call to fmt\.Println` `argument boxed into interface`
	var x any = n  // want `value boxed into interface`
	_ = x
	y := any(n) // want `conversion to interface`
	_ = y
	sinkAny(n) // want `argument boxed into interface`
}

// goodHot exercises the allowed constructs: index loops over slices, calls
// to non-fmt functions, closures outside loops, interface-to-interface and
// nil assignments.
//
//thrifty:hotpath
func goodHot(xs []int, e error) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	f := func(v int) int { return v + 1 }
	total = f(total)
	sinkInt(total)
	var e2 error = e // interface to interface: no boxing
	_ = e2
	var e3 error = nil // nil: no boxing
	_ = e3
	return total
}

// notAnnotated repeats the forbidden constructs without the directive; the
// analyzer must not report anything here.
func notAnnotated(xs []int, m map[int]int, n int) []int {
	xs = append(xs, m[0])
	for i := 0; i < n; i++ {
		f := func() int { return i }
		xs = append(xs, f())
	}
	fmt.Println(len(xs))
	return xs
}
