package hotpath_test

import (
	"testing"

	"thriftylp/internal/lint/hotpath"
	"thriftylp/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, linttest.TestData(), hotpath.Analyzer, "hotpath")
}
