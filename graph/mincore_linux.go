//go:build linux

package graph

import (
	"os"
	"syscall"
	"unsafe"
)

// ResidentBytes reports how many bytes of the graph's memory mapping are
// currently resident in physical memory (via mincore), and whether the
// measurement was possible at all — false for heap-backed graphs, closed
// mappings, and kernels that refuse the syscall. The serving watchdog
// publishes the result as a gauge: a residency collapse under memory
// pressure is the early warning for the page-fault latency cliff mmap-
// backed serving is exposed to.
//
// The caller must hold the graph live (a serve.Snapshot reference); the
// probe allocates one byte per mapped page, which at 4KiB pages is ~256KiB
// per mapped GiB — paid per watchdog tick, never on the query path.
func (g *Graph) ResidentBytes() (int64, bool) {
	m := g.mapped
	if len(m) == 0 {
		return 0, false
	}
	page := int64(os.Getpagesize())
	pages := (int64(len(m)) + page - 1) / page
	vec := make([]byte, pages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&m[0])), uintptr(len(m)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, false
	}
	var resident int64
	for _, v := range vec {
		// The low bit is the residency flag; the rest is kernel-reserved.
		resident += int64(v & 1)
	}
	return resident * page, true
}
