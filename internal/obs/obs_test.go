package obs

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thriftylp/cc"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add("a_total", 2)
	r.Add("a_total", 3)
	r.SetGauge("g", 1.5)
	r.SetGauge("g", 2.5)
	if got := r.Counter("a_total"); got != 5 {
		t.Errorf("Counter(a_total) = %d, want 5", got)
	}
	if got := r.Gauge("g"); got != 2.5 {
		t.Errorf("Gauge(g) = %v, want 2.5", got)
	}
	if got := r.Counter("absent"); got != 0 {
		t.Errorf("Counter(absent) = %d, want 0", got)
	}
	snap := r.Snapshot()
	if snap["a_total"] != int64(5) || snap["g"] != 2.5 {
		t.Errorf("Snapshot() = %v", snap)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Add("zz_total", 7)
	r.SetGauge("aa_seconds", 0.25)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE aa_seconds gauge\naa_seconds 0.25\n# TYPE zz_total counter\nzz_total 7\n"
	if buf.String() != want {
		t.Errorf("WritePrometheus:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestObserveRun(t *testing.T) {
	r := NewRegistry()
	res := &cc.Result{
		Iterations: 4,
		Stats: &cc.RunStats{
			Algorithm: cc.AlgoThrifty,
			Duration:  125 * time.Millisecond,
			PhaseDurations: map[string]time.Duration{
				"pull": 100 * time.Millisecond,
			},
			Sched:  cc.SchedStats{PartitionsOwned: 90, PartitionsStolen: 6, FailedSteals: 11},
			Events: map[string]int64{"edges": 1234, "cas-ops": 56},
		},
	}
	r.ObserveRun(res)
	r.ObserveRun(res)
	if got := r.Counter(MetricRuns); got != 2 {
		t.Errorf("%s = %d, want 2", MetricRuns, got)
	}
	if got := r.Counter(MetricIterations); got != 8 {
		t.Errorf("%s = %d, want 8", MetricIterations, got)
	}
	if got := r.Counter(MetricPartitionsStolen); got != 12 {
		t.Errorf("%s = %d, want 12", MetricPartitionsStolen, got)
	}
	if got := r.Counter(EventMetric("edges")); got != 2468 {
		t.Errorf("%s = %d, want 2468", EventMetric("edges"), got)
	}
	if got := r.Counter(EventMetric("cas-ops")); got != 112 {
		t.Errorf("%s = %d, want 112 (name sanitized)", EventMetric("cas-ops"), got)
	}
	if got := r.Gauge(PhaseMetric("pull")); got != 0.1 {
		t.Errorf("%s = %v, want 0.1", PhaseMetric("pull"), got)
	}
	// Nil-safe on hand-constructed results.
	r.ObserveRun(&cc.Result{})
	r.ObserveRun(nil)
	if got := r.Counter(MetricRuns); got != 2 {
		t.Errorf("%s = %d after nil-stats observes, want 2", MetricRuns, got)
	}
	// Shard telemetry folds only when present.
	if got := r.Counter(MetricShardRounds); got != 0 {
		t.Errorf("%s = %d before any shard run, want 0", MetricShardRounds, got)
	}
	r.ObserveRun(&cc.Result{Stats: &cc.RunStats{
		Algorithm: cc.AlgoShard,
		Shard: &cc.ShardStats{
			Shards: 4, Rounds: 3, BoundaryEntries: 500,
			ExchangedBytes: 900, NaiveBytes: 4000, SuppressedVertices: 42,
		},
	}})
	if got := r.Counter(MetricShardRounds); got != 3 {
		t.Errorf("%s = %d, want 3", MetricShardRounds, got)
	}
	if got := r.Counter(MetricShardExchangedBytes); got != 900 {
		t.Errorf("%s = %d, want 900", MetricShardExchangedBytes, got)
	}
	if got := r.Counter(MetricShardNaiveBytes); got != 4000 {
		t.Errorf("%s = %d, want 4000", MetricShardNaiveBytes, got)
	}
	if got := r.Counter(MetricShardSuppressed); got != 42 {
		t.Errorf("%s = %d, want 42", MetricShardSuppressed, got)
	}
	if got := r.Gauge(MetricShardBoundary); got != 500 {
		t.Errorf("%s = %v, want 500", MetricShardBoundary, got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tw, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	iters := []cc.IterationStats{
		{Index: 0, Kind: "initial-push", Active: 1, ActiveEdges: 50, Changed: 50, Edges: 50, Threshold: 0.01, Duration: time.Millisecond},
		{Index: 1, Kind: "pull", Active: 50, ActiveEdges: 400, Changed: 7, ConvergedZero: 93, Edges: 120, Density: 0.4, Threshold: 0.01, Duration: 2 * time.Millisecond},
	}
	if err := tw.WriteRun("thrifty", "rmat:10", 0, iters); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(iters) {
		t.Fatalf("ReadTrace returned %d records, want %d", len(recs), len(iters))
	}
	for i, rec := range recs {
		it := iters[i]
		if rec.Schema != TraceSchema {
			t.Errorf("rec %d schema = %q, want %q", i, rec.Schema, TraceSchema)
		}
		if rec.Algo != "thrifty" || rec.Dataset != "rmat:10" || rec.Run != 0 {
			t.Errorf("rec %d identity = %q/%q/%d", i, rec.Algo, rec.Dataset, rec.Run)
		}
		if rec.Iter != it.Index || rec.Kind != it.Kind || rec.Active != it.Active ||
			rec.ActiveEdges != it.ActiveEdges || rec.Changed != it.Changed ||
			rec.Zero != it.ConvergedZero || rec.Edges != it.Edges ||
			rec.Density != it.Density || rec.Threshold != it.Threshold ||
			rec.DurationNs != it.Duration.Nanoseconds() {
			t.Errorf("rec %d = %+v does not match iteration %+v", i, rec, it)
		}
	}
}

// TestTraceGoldenDecode pins the v1 wire format: a byte-for-byte golden line
// must keep decoding, so readers of old trace files never break silently.
func TestTraceGoldenDecode(t *testing.T) {
	const golden = `{"schema":"thriftylp/trace/v1","algo":"thrifty","dataset":"rmat:14:8","run":0,"iter":1,"kind":"pull","active":2478,"active_edges":165661,"changed":8266,"zero":10730,"edges":8862,"density":0.7357801136015544,"threshold":0.01,"duration_ns":367905}`
	recs, err := ReadTrace(strings.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	want := TraceRecord{
		Schema: TraceSchema, Algo: "thrifty", Dataset: "rmat:14:8",
		Run: 0, Iter: 1, Kind: "pull", Active: 2478, ActiveEdges: 165661,
		Changed: 8266, Zero: 10730, Edges: 8862,
		Density: 0.7357801136015544, Threshold: 0.01, DurationNs: 367905,
	}
	if recs[0] != want {
		t.Errorf("decoded %+v, want %+v", recs[0], want)
	}
}

func TestReadTraceRejectsUnknownSchema(t *testing.T) {
	_, err := ReadTrace(strings.NewReader(`{"schema":"thriftylp/trace/v999","iter":0}`))
	if err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("err = %v, want unknown-schema error", err)
	}
	_, err = ReadTrace(strings.NewReader(`{"iter":0}`))
	if err == nil {
		t.Errorf("missing schema accepted")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Add(MetricRuns, 3)
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, MetricRuns+" 3") {
		t.Errorf("/metrics: code %d body:\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "thriftylp") {
		t.Errorf("/debug/vars: code %d body:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("/: code %d body:\n%s", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code %d, want 404", code)
	}
}
