package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the watchdog goroutine write dumps while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestWatchdogGauges checks that a started watchdog publishes the runtime
// gauges and registered probes from its first (immediate) tick.
func TestWatchdogGauges(t *testing.T) {
	reg := NewRegistry()
	w := NewWatchdog(WatchdogConfig{Interval: time.Hour, Registry: reg, DumpTo: &syncBuffer{}})
	w.Gauge("thriftyd_snapshot_refs", func() float64 { return 3 })
	w.Start()
	defer w.Stop()

	// The immediate tick runs on the watchdog goroutine; wait for it to
	// complete (the ticks counter is the last thing a tick publishes).
	deadline := time.Now().Add(30 * time.Second)
	for reg.Counter(MetricTicks) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if got := reg.Gauge(MetricGoroutines); got <= 0 {
		t.Errorf("%s = %v, want > 0", MetricGoroutines, got)
	}
	if got := reg.Gauge(MetricHeapAlloc); got <= 0 {
		t.Errorf("%s = %v, want > 0", MetricHeapAlloc, got)
	}
	if got := reg.Gauge("thriftyd_snapshot_refs"); got != 3 {
		t.Errorf("probe gauge = %v, want 3", got)
	}
	if got := reg.Counter(MetricTicks); got != 1 {
		t.Errorf("%s = %d, want 1 immediate tick", MetricTicks, got)
	}
}

// TestWatchdogStall checks the stall detector: an overrunning heartbeat
// triggers exactly one goroutine dump per activation — not one per tick —
// and a fresh activation can fire again.
func TestWatchdogStall(t *testing.T) {
	reg := NewRegistry()
	dump := &syncBuffer{}
	w := NewWatchdog(WatchdogConfig{Interval: 5 * time.Millisecond, Registry: reg, DumpTo: dump})
	hb := w.Heartbeat("reload", time.Nanosecond)
	hb.Begin()
	w.Start()
	defer w.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for hb.Stalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := hb.Stalls(); got != 1 {
		t.Fatalf("Stalls = %d, want 1", got)
	}
	// Let several more ticks pass: still one dump for this activation.
	time.Sleep(30 * time.Millisecond)
	if got := hb.Stalls(); got != 1 {
		t.Errorf("Stalls grew to %d within one activation", got)
	}
	if got := strings.Count(dump.String(), "goroutine "); got == 0 {
		t.Error("no goroutine dump written")
	}

	// A clean End/Begin re-arms the detector.
	hb.End()
	hb.Begin()
	deadline = time.Now().Add(30 * time.Second)
	for hb.Stalls() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := hb.Stalls(); got != 2 {
		t.Errorf("Stalls = %d after second overrun, want 2", got)
	}
	if got := reg.Counter(MetricStalls); got != 2 {
		t.Errorf("%s = %d, want 2", MetricStalls, got)
	}
}
