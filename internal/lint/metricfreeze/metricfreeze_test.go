package metricfreeze_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thriftylp/internal/lint/linttest"
	"thriftylp/internal/lint/metricfreeze"
)

func TestMetricfreeze(t *testing.T) {
	linttest.Run(t, linttest.TestData(), metricfreeze.Analyzer, "obs")
}

// TestFrozenRoundTrip is the reverse direction of the analyzer: every entry
// in the Frozen list must still exist as a metric-shaped literal in the
// live obs or serve packages, so renamed or deleted series cannot leave
// stale entries behind. Together the two checks force Frozen == live names.
func TestFrozenRoundTrip(t *testing.T) {
	live := map[string]bool{}
	fset := token.NewFileSet()
	for _, dir := range []string{
		filepath.Join("..", "..", "obs"),
		filepath.Join("..", "..", "serve"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading package dir %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			for _, site := range metricfreeze.MetricStrings(f) {
				live[site.Text] = true
			}
		}
	}
	if len(live) == 0 {
		t.Fatal("found no metric-name literals in the live obs/serve packages; is the path right?")
	}
	for s := range metricfreeze.Frozen {
		if !live[s] {
			t.Errorf("frozen metric name %q no longer exists in obs or serve: remove it from frozen.go in the commit that changed the call site", s)
		}
	}
	for s := range live {
		if !metricfreeze.Frozen[s] {
			t.Errorf("live metric name %q is not frozen: add it to frozen.go", s)
		}
	}
}
