package gen

import (
	"testing"

	"thriftylp/graph"
)

// TestRMATStreamMatchesEdges: replaying every chunk must reproduce
// RMATEdges exactly — same edges, same order — since both derive per-chunk
// RNG streams and the vertex permutation from the same seed. This is the
// determinism contract shard.StreamWrite's two passes rely on.
func TestRMATStreamMatchesEdges(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 42)
	want, err := RMATEdges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewRMATStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Edges() != int64(len(want)) {
		t.Fatalf("stream reports %d edges, RMATEdges generated %d", s.Edges(), len(want))
	}
	got := make([]graph.Edge, 0, len(want))
	for ci := 0; ci < s.Chunks(); ci++ {
		s.Chunk(ci, func(u, v uint32) {
			got = append(got, graph.Edge{U: u, V: v})
		})
	}
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d: stream %v, RMATEdges %v", i, got[i], want[i])
		}
	}
}

// TestRMATStreamReplayIdentical: the same chunk must emit the same edges on
// every replay — pass 2 of the sharded build replays chunks once per shard.
func TestRMATStreamReplayIdentical(t *testing.T) {
	s, err := NewRMATStream(DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range []int{0, s.Chunks() - 1} {
		var a, b []graph.Edge
		s.Chunk(ci, func(u, v uint32) { a = append(a, graph.Edge{U: u, V: v}) })
		s.Chunk(ci, func(u, v uint32) { b = append(b, graph.Edge{U: u, V: v}) })
		if len(a) != len(b) {
			t.Fatalf("chunk %d: %d vs %d edges across replays", ci, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("chunk %d edge %d: %v vs %v across replays", ci, i, a[i], b[i])
			}
		}
	}
}

func TestNewRMATStreamRejectsBadConfig(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 1)
	cfg.Scale = -1
	if _, err := NewRMATStream(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
