// Package metricfreeze implements the thriftyvet analyzer that freezes the
// telemetry metric names of the obs and serve packages.
//
// Metric names are scraped API: dashboards, alert rules, the CI obs-smoke
// job's awk assertions, and operators' runbooks all match on the literal
// Prometheus series names thriftyd exposes. A refactor that renames
// thriftyd_shed_total breaks every one of them silently — the scrape still
// succeeds, the alert just never fires again. This analyzer turns the
// naming contract into a standing check, exactly like errfreeze does for
// graph error strings: every metric-shaped string literal in the obs and
// serve packages (full thriftylp_*/thriftyd_* names, the prefix fragments
// composed names are built from, and the _total/_p50-style suffix
// fragments) must appear in the Frozen list (frozen.go), and
// TestFrozenRoundTrip keeps the list free of stale entries.
package metricfreeze

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/lintutil"
)

// frozenPkgs are the packages whose metric-name literals are frozen: the
// metric registry/exposition layer and the serving layer that publishes the
// thriftyd_* series.
var frozenPkgs = []string{
	"thriftylp/internal/obs",
	"thriftylp/internal/serve",
}

// Analyzer is the metricfreeze analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metricfreeze",
	Doc:  "require obs/serve metric-name literals to match the checked-in frozen list",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	gated := false
	for _, p := range frozenPkgs {
		if lintutil.PkgPathMatches(pass.Pkg.Path(), p) {
			gated = true
			break
		}
	}
	if !gated {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) || lintutil.IsTestFile(pass.Fset, f.Package) {
			continue
		}
		for _, site := range MetricStrings(f) {
			if !Frozen[site.Text] {
				pass.Reportf(site.Pos, "metric name %q is not in the frozen list: metric names are scraped API — if the change is deliberate, update internal/lint/metricfreeze/frozen.go in the same commit", site.Text)
			}
		}
	}
	return nil, nil
}

// A MetricSite is one metric-shaped string literal.
type MetricSite struct {
	Text string
	Pos  token.Pos
}

// metricShape matches the literals the freeze covers: a full or prefix
// metric name rooted at one of the module's namespaces (thriftylp_runs_total,
// thriftyd_, thriftylp_events_) or a suffix fragment composed onto a name
// (_total, _latency_ns, _p50). Fragments are frozen as they appear in
// source, so a renamed suffix trips the check even though the full composed
// name never exists as one literal.
var metricShape = regexp.MustCompile(`^(?:(?:thriftylp|thriftyd)(?:_[a-z0-9]+)*_?|(?:_[a-z0-9]+)+)$`)

// MetricStrings returns every metric-shaped string literal in the file,
// matched syntactically so the round-trip test can run it over bare parse
// trees. Bare "thriftylp"/"thriftyd" (no underscore) are program names, not
// metric names, and are excluded.
func MetricStrings(f *ast.File) []MetricSite {
	var out []MetricSite
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if s == "thriftylp" || s == "thriftyd" || !metricShape.MatchString(s) {
			return true
		}
		out = append(out, MetricSite{Text: s, Pos: lit.Pos()})
		return true
	})
	return out
}
