// Package dirhygiene defines a thriftyvet analyzer keeping the //thrifty:
// directive inventory honest. Directives are load-bearing — hotpath gates
// the allocation check, benign-race silences the race check, goroutine
// licenses a go statement — so a stale one is worse than a missing one: it
// silently suppresses a check at a site that no longer exists, or never
// suppressed anything because it sits where no analyzer looks.
//
// dirhygiene reports:
//
//   - unknown directive names (typo'd //thrifty:hotpth suppresses nothing
//     and reads like it does);
//   - misplaced directives: hotpath and nocancel belong in a function's
//     doc comment, padded in a type's;
//   - reasonless benign-race / goroutine directives (the analyzers ignore
//     them without an argument, so they cover nothing);
//   - stale goroutine directives with no go statement on their line, the
//     line below, or anywhere in the documented function;
//   - stale benign-race directives outside any function.
package dirhygiene

import (
	"go/ast"
	"go/token"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/directive"
	"thriftylp/internal/lint/lintutil"
)

// Analyzer is the dirhygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "dirhygiene",
	Doc: "check that //thrifty: directives are known, placed, and not stale\n\n" +
		"Every directive must use a recognized name, sit where its analyzer\n" +
		"looks for it, and still have the code it annotates; see DESIGN.md §17.",
	Run: run,
}

// known maps each directive name to whether it requires a reason argument.
var known = map[string]bool{
	directive.Hotpath:    false,
	directive.BenignRace: true,
	directive.Padded:     false,
	directive.Nocancel:   false,
	directive.Goroutine:  true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) || lintutil.IsTestFile(pass.Fset, f.Package) {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

// placement records where one file's doc comments and bodies live.
type placement struct {
	funcDoc  map[token.Pos]*ast.FuncDecl // doc-comment position -> function
	typeDoc  map[token.Pos]bool
	bodies   [][2]int // [startLine, endLine] of function bodies
	goLines  map[int]bool
	goInFunc map[*ast.FuncDecl]bool
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	pl := &placement{
		funcDoc:  map[token.Pos]*ast.FuncDecl{},
		typeDoc:  map[token.Pos]bool{},
		goLines:  map[int]bool{},
		goInFunc: map[*ast.FuncDecl]bool{},
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				for _, c := range d.Doc.List {
					pl.funcDoc[c.Pos()] = d
				}
			}
			if d.Body != nil {
				start := pass.Fset.Position(d.Body.Lbrace).Line
				end := pass.Fset.Position(d.Body.Rbrace).Line
				pl.bodies = append(pl.bodies, [2]int{start, end})
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						pl.goLines[pass.Fset.Position(g.Pos()).Line] = true
						pl.goInFunc[d] = true
					}
					return true
				})
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			if d.Doc != nil {
				for _, c := range d.Doc.List {
					pl.typeDoc[c.Pos()] = true
				}
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Doc == nil {
					continue
				}
				for _, c := range ts.Doc.List {
					pl.typeDoc[c.Pos()] = true
				}
			}
		}
	}

	for _, l := range directive.FileLines(pass.Fset, f) {
		requireArg, ok := known[l.Name]
		if !ok {
			pass.Reportf(l.Pos, "unknown directive //thrifty:%s (known: benign-race, goroutine, hotpath, nocancel, padded)", l.Name)
			continue
		}
		if requireArg && l.Arg == "" {
			pass.Reportf(l.Pos, "//thrifty:%s needs a reason: without one the %s check ignores it", l.Name, analyzerFor(l.Name))
			continue
		}

		switch l.Name {
		case directive.Hotpath, directive.Nocancel:
			if pl.funcDoc[l.Pos] == nil {
				pass.Reportf(l.Pos, "misplaced //thrifty:%s: it only works in a function's doc comment", l.Name)
			}
		case directive.Padded:
			if !pl.typeDoc[l.Pos] {
				pass.Reportf(l.Pos, "misplaced //thrifty:padded: it only works in a struct type's doc comment")
			}
		case directive.Goroutine:
			if fd := pl.funcDoc[l.Pos]; fd != nil {
				if !pl.goInFunc[fd] {
					pass.Reportf(l.Pos, "stale //thrifty:goroutine: %s contains no go statement", fd.Name.Name)
				}
			} else if !pl.goLines[l.Line] && !pl.goLines[l.Line+1] {
				pass.Reportf(l.Pos, "stale //thrifty:goroutine: no go statement on this line or the next")
			}
		case directive.BenignRace:
			if pl.funcDoc[l.Pos] == nil && !pl.inBody(l.Line) {
				pass.Reportf(l.Pos, "stale //thrifty:benign-race: not in a function's doc comment or body")
			}
		}
	}
}

// inBody reports whether the line (or the one below, for directives just
// above their statement) falls inside some function body.
func (pl *placement) inBody(line int) bool {
	for _, b := range pl.bodies {
		if line >= b[0] && line <= b[1] {
			return true
		}
		if line+1 >= b[0] && line+1 <= b[1] {
			return true
		}
	}
	return false
}

// analyzerFor names the analyzer that consumes a reason-bearing directive.
func analyzerFor(name string) string {
	if name == directive.BenignRace {
		return "benignrace"
	}
	return "goroleak"
}
