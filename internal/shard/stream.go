package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"thriftylp/graph"
	"thriftylp/internal/atomicx"
	"thriftylp/internal/parallel"
)

// Streamed shard-set construction: a replayable edge stream straight to a
// directory of CSR slice files, without ever materializing the edge list.
// Pass 1 replays every chunk to count directed degrees and choose
// edge-balanced cut points; pass 2 replays every chunk once per shard,
// keeping only the endpoints that land in the shard's vertex range, so peak
// memory is the per-vertex degree/offset arrays (12 bytes per vertex) plus
// one shard's slice at a time. Self-loops are dropped; duplicate edges are
// kept (streaming dedup would need edge-list-sized state — the thing being
// avoided) and are harmless to connected components and the CSR invariants.

// EdgeStream is a deterministic, replayable chunked edge stream — the
// contract StreamWrite builds shard sets from. gen.RMATStream implements it.
type EdgeStream interface {
	// Vertices returns the vertex-id space size; every emitted endpoint is
	// below it.
	Vertices() int
	// Chunks returns the replayable chunk count.
	Chunks() int
	// Chunk replays chunk ci, calling emit for each edge. Replays must be
	// bit-identical — StreamWrite replays every chunk once in pass 1 and
	// once per shard in pass 2 and relies on them agreeing. Distinct chunks
	// may be replayed concurrently.
	Chunk(ci int, emit func(u, v uint32))
}

// StreamStats accounts for the streamed build's memory shape, next to what
// the in-RAM edge-list path would have needed for the same input.
type StreamStats struct {
	// Vertices and DirectedSlots describe the generated graph.
	Vertices      int   `json:"vertices"`
	DirectedSlots int64 `json:"directed_slots"`
	// SelfLoops is the number of generated self-loops (dropped).
	SelfLoops int64 `json:"self_loops"`
	// PeakBytes estimates the streamed path's peak heap: the per-vertex
	// degree/offset arrays plus the largest shard's slice (offsets +
	// adjacency).
	PeakBytes int64 `json:"peak_bytes"`
	// EdgeListBytes is what materializing the raw edge list alone would
	// cost (8 bytes per generated edge) — the in-memory path's floor,
	// before it builds the CSR on top.
	EdgeListBytes int64 `json:"edge_list_bytes"`
}

// StreamWrite builds the graph described by src directly as a sharded CSR
// set in dir: k edge-balanced vertex-range slice files plus a manifest,
// ready for Open / dist.RunSource. See the file comment above for the
// memory model and the duplicate-edge semantics.
func StreamWrite(src EdgeStream, dir string, shards int) (*Manifest, *StreamStats, error) {
	n := src.Vertices()
	if n <= 0 {
		return nil, nil, fmt.Errorf("shard: stream has %d vertices", n)
	}
	if shards <= 0 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	pool := parallel.Default()
	chunks := src.Chunks()

	// Pass 1: replay every chunk once, counting directed degrees. Counts are
	// uint32 (the id-space bound CheckOffsets64 enforces); the prefix sum
	// below detects any wrap because it accumulates in int64 and must land
	// exactly on the known slot total.
	deg := make([]uint32, n)
	var edges, selfLoops atomicx.Int64
	parallel.For(pool, chunks, 1, func(_, clo, chi int) {
		var total, loops int64
		for ci := clo; ci < chi; ci++ {
			src.Chunk(ci, func(u, v uint32) {
				total++
				if u == v {
					loops++
					return
				}
				atomicx.AddUint32(&deg[u], 1)
				atomicx.AddUint32(&deg[v], 1)
			})
		}
		edges.Add(total)
		selfLoops.Add(loops)
	})

	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int64(deg[v])
	}
	slots := 2 * (edges.Load() - selfLoops.Load())
	if offsets[n] != slots {
		return nil, nil, fmt.Errorf("shard: streamed degree count %d does not match %d directed slots (degree overflow?)", offsets[n], slots)
	}
	if err := graph.CheckOffsets64(offsets, slots); err != nil {
		return nil, nil, err
	}
	parts := parallel.PartitionEdges(offsets, shards)

	// The hub (needed for Zero Planting downstream): max degree, smallest
	// id among ties — the same tie-break as Graph.MaxDegreeVertex.
	hub := uint32(parallel.MaxIndex(pool, n, func(v int) int64 { return int64(deg[v]) }))
	deg = nil

	m := &Manifest{Schema: ManifestSchema, Vertices: n, Slots: slots, Hub: hub}
	stats := &StreamStats{
		Vertices:      n,
		DirectedSlots: slots,
		SelfLoops:     selfLoops.Load(),
		EdgeListBytes: 8 * edges.Load(),
	}
	perVertexBytes := int64(n)*4 + int64(n+1)*8 // deg + offsets
	// Pass 2, once per shard: replay every chunk, keep endpoints in
	// [lo, hi), write the slice, free it. Rows fill via atomic cursors (the
	// chunk workers race per target row), then sort — deterministic file
	// bytes regardless of scheduling.
	for i, p := range parts {
		lo, hi := int(p.Lo), int(p.Hi)
		base := offsets[lo]
		local := make([]int64, hi-lo+1)
		for v := lo; v <= hi; v++ {
			local[v-lo] = offsets[v] - base
		}
		adj := make([]uint32, local[hi-lo])
		cursor := make([]int64, hi-lo)
		copy(cursor, local[:hi-lo])
		parallel.For(pool, chunks, 1, func(_, clo, chi int) {
			for ci := clo; ci < chi; ci++ {
				src.Chunk(ci, func(u, v uint32) {
					if u == v {
						return
					}
					if int(u) >= lo && int(u) < hi {
						adj[atomicx.AddInt64(&cursor[u-uint32(lo)], 1)-1] = v //thrifty:benign-race each atomic cursor add claims a distinct slot
					}
					if int(v) >= lo && int(v) < hi {
						adj[atomicx.AddInt64(&cursor[v-uint32(lo)], 1)-1] = u //thrifty:benign-race each atomic cursor add claims a distinct slot
					}
				})
			}
		})
		parallel.For(pool, hi-lo, 1<<10, func(_, vlo, vhi int) {
			for v := vlo; v < vhi; v++ {
				row := adj[local[v]:local[v+1]]
				sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
			}
		})
		sl := &graph.CSRSlice{GlobalVertices: n, Lo: p.Lo, Hi: p.Hi, Offsets: local, Adj: adj}
		if bytes := perVertexBytes + int64(len(local))*8 + int64(len(adj))*4; bytes > stats.PeakBytes {
			stats.PeakBytes = bytes
		}
		file := ShardFileName(i)
		if err := writeShardFile(dir, file, sl); err != nil {
			return nil, nil, err
		}
		m.Shards = append(m.Shards, Info{File: file, Lo: p.Lo, Hi: p.Hi, Slots: sl.NumSlots()})
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// writeShardFile writes one slice into dir, creating dir on first use.
func writeShardFile(dir, file string, sl *graph.CSRSlice) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return graph.SaveCSRSlice(filepath.Join(dir, file), sl)
}
