package graph

import (
	"testing"
	"testing/quick"
)

func TestInducedSubgraphBasic(t *testing.T) {
	// Square 0-1-2-3 plus pendant 4 on vertex 0.
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}})
	sub, orig, err := InducedSubgraph(g, []uint32{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", sub.NumVertices())
	}
	// Surviving edges: 0-1 and 3-0 (2 and 4 excluded).
	if sub.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 0 || orig[1] != 1 || orig[2] != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// New vertex 0 (orig 0) connects to new 1 (orig 1) and new 2 (orig 3).
	if sub.Degree(0) != 2 || sub.Degree(1) != 1 || sub.Degree(2) != 1 {
		t.Fatalf("degrees: %d %d %d", sub.Degree(0), sub.Degree(1), sub.Degree(2))
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}})
	if _, _, err := InducedSubgraph(g, []uint32{5}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, _, err := InducedSubgraph(g, []uint32{0, 0}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	sub, orig, err := InducedSubgraph(g, nil)
	if err != nil || sub.NumVertices() != 0 || len(orig) != 0 {
		t.Fatalf("empty set: %v %v %v", sub, orig, err)
	}
}

func TestComponentSubgraph(t *testing.T) {
	// Two triangles.
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	labels := []uint32{7, 7, 7, 9, 9, 9}
	sub, orig, err := ComponentSubgraph(g, labels, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("component subgraph: %v", sub)
	}
	if orig[0] != 3 || orig[2] != 5 {
		t.Fatalf("orig = %v", orig)
	}
	if _, _, err := ComponentSubgraph(g, labels[:2], 9); err == nil {
		t.Fatal("short labelling accepted")
	}
}

// TestQuickSubgraphDegreeBound: induced degrees never exceed original
// degrees, and the subgraph always validates.
func TestQuickSubgraphDegreeBound(t *testing.T) {
	f := func(raw []byte, pick []bool) bool {
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: uint32(raw[i] % 64), V: uint32(raw[i+1] % 64)})
		}
		g, err := BuildUndirected(edges, WithNumVertices(64))
		if err != nil {
			return false
		}
		var set []uint32
		for v := 0; v < 64 && v < len(pick); v++ {
			if pick[v] {
				set = append(set, uint32(v))
			}
		}
		sub, orig, err := InducedSubgraph(g, set)
		if err != nil {
			return false
		}
		if sub.Validate() != nil {
			return false
		}
		for nv, ov := range orig {
			if sub.Degree(uint32(nv)) > g.Degree(ov) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelRoundTrip(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	perm := []uint32{3, 1, 0, 2} // arbitrary bijection
	ng, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degrees follow the permutation.
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) != ng.Degree(perm[v]) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	// Edges map through perm: 0-1 becomes 3-1.
	found := false
	for _, u := range ng.Neighbors(3) {
		if u == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge 0-1 did not map to 3-1")
	}
	// Inverse permutation restores the original.
	inv := make([]uint32, len(perm))
	for v, p := range perm {
		inv[p] = uint32(v)
	}
	back, err := Relabel(ng, inv)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) != back.Degree(uint32(v)) {
			t.Fatal("double relabel did not restore degrees")
		}
	}
}

func TestRelabelErrors(t *testing.T) {
	g := mustBuild(t, []Edge{{0, 1}})
	if _, err := Relabel(g, []uint32{0}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Relabel(g, []uint32{0, 5}); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
	if _, err := Relabel(g, []uint32{0, 0}); err == nil {
		t.Fatal("non-injective permutation accepted")
	}
}

func TestDegreeDescendingPermutation(t *testing.T) {
	// Star: hub 0 must get rank 0; leaves keep ascending ranks by id.
	g := mustBuild(t, []Edge{{0, 1}, {0, 2}, {0, 3}})
	perm := DegreeDescendingPermutation(g)
	if perm[0] != 0 {
		t.Fatalf("hub rank = %d", perm[0])
	}
	if perm[1] != 1 || perm[2] != 2 || perm[3] != 3 {
		t.Fatalf("tie order broken: %v", perm)
	}
	ng, perm2, err := RelabelByDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if ng.MaxDegreeVertex() != 0 {
		t.Fatal("hub not at id 0 after degree relabeling")
	}
	if perm2[0] != perm[0] {
		t.Fatal("returned permutation differs")
	}
}
