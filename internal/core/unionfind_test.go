package core

import (
	"testing"

	"thriftylp/graph/gen"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// TestAfforestLinkUnitesAndIsIdempotent exercises the hooking primitive
// directly.
func TestAfforestLinkUnitesAndIsIdempotent(t *testing.T) {
	comp := []uint32{0, 1, 2, 3}
	var ck chunkCounts
	afforestLink(1, 3, comp, &ck)
	// Roots 1 and 3: the higher id hooks under the lower.
	if comp[3] != 1 {
		t.Fatalf("comp after link = %v", comp)
	}
	afforestLink(1, 3, comp, &ck) // already united: no change
	if comp[3] != 1 || comp[1] != 1 {
		t.Fatalf("comp after re-link = %v", comp)
	}
	// Transitive union through non-roots.
	afforestLink(3, 2, comp, &ck)
	fl := &chunkFlusher{cfg: &Config{}}
	afforestCompress(parallel.Default(), comp, fl)
	if comp[2] != 1 || comp[3] != 1 {
		t.Fatalf("comp after transitive link+compress = %v", comp)
	}
}

// TestAfforestCompressFlattens: after compress every entry points directly
// at a root.
func TestAfforestCompressFlattens(t *testing.T) {
	// A chain 4→3→2→1→0.
	comp := []uint32{0, 0, 1, 2, 3}
	fl := &chunkFlusher{cfg: &Config{}}
	afforestCompress(parallel.Default(), comp, fl)
	for v, p := range comp {
		if p != 0 {
			t.Fatalf("comp[%d] = %d after compress", v, p)
		}
	}
}

// TestSampleFrequentComponent: an overwhelmingly dominant label must win.
func TestSampleFrequentComponent(t *testing.T) {
	comp := make([]uint32, 10000)
	for i := range comp {
		comp[i] = 7
	}
	comp[3] = 9
	if got := sampleFrequentComponent(comp); got != 7 {
		t.Fatalf("sampleFrequentComponent = %d", got)
	}
}

// TestAfforestSkipsGiantEdges: phase 2 must process far fewer edges than
// the whole graph on a giant-component RMAT — the sampling payoff that
// makes Afforest the paper's strongest baseline.
func TestAfforestSkipsGiantEdges(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(13, 16, 4)))
	ctr := counters.New(1)
	Afforest(g, Config{Ctr: ctr})
	edges := ctr.Total(counters.EdgesProcessed)
	// Neighbour rounds cost ≈ 2·|V|; phase 2 only touches non-giant
	// vertices. Altogether this must be well under half the directed slots.
	if edges*2 > g.NumDirectedEdges() {
		t.Fatalf("Afforest processed %d of %d slots — sampling skip not effective",
			edges, g.NumDirectedEdges())
	}
}

// TestJTProcessesEachEdgeOnce: JT's edge loop visits each undirected edge
// exactly once (u<v direction), matching the paper's description.
func TestJTProcessesEachEdgeOnce(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(11, 8, 8)))
	ctr := counters.New(1)
	JayantiTarjan(g, Config{Ctr: ctr})
	edges := ctr.Total(counters.EdgesProcessed)
	want := g.NumDirectedEdges() / 2
	// Self-loops are stored once with u == v and are skipped by the u < v
	// filter, so edges <= want; it must be within the loop-count slack.
	if edges > want || edges < want-int64(g.NumVertices()) {
		t.Fatalf("JT processed %d edges, want ~%d (each edge once)", edges, want)
	}
}

// TestSVTerminatesOnPathologicalShapes: long chains and stars exercise the
// hook/shortcut interplay.
func TestSVTerminatesOnPathologicalShapes(t *testing.T) {
	for name, g := range map[string]func() Result{
		"path": func() Result { return ShiloachVishkin(mustGraph(gen.Path(3000)), Config{}) },
		"star": func() Result { return ShiloachVishkin(mustGraph(gen.Star(3000)), Config{}) },
	} {
		res := g()
		if res.Iterations > 60 {
			t.Fatalf("%s: SV needed %d passes", name, res.Iterations)
		}
	}
}

// TestFastSVLogarithmicPasses: FastSV's grandparent hooking converges in
// O(log n) passes even on a maximum-diameter input. (Plain SV can finish in
// fewer passes here purely through the sequential in-order hook sweep — a
// Gauss-Seidel effect — so the two counts are not directly comparable on
// one core; the logarithmic bound is the meaningful invariant.)
func TestFastSVLogarithmicPasses(t *testing.T) {
	g := mustGraph(gen.Path(5000))
	sv := ShiloachVishkin(g, Config{})
	fsv := FastSV(g, Config{})
	if fsv.Iterations > 40 { // ~3·log2(5000)
		t.Fatalf("FastSV needed %d passes on a 5000-path", fsv.Iterations)
	}
	if !Equivalent(sv.Labels, fsv.Labels) {
		t.Fatal("partitions differ")
	}
}

// TestConnectItBFSSamplingClaimsGiant: after the BFS sampling phase the
// finish loop must skip nearly everything on a one-component graph —
// total edge traversals stay near one full scan (the BFS itself).
func TestConnectItBFSSamplingClaimsGiant(t *testing.T) {
	g := mustGraph(gen.RMAT(gen.DefaultRMAT(12, 16, 6)))
	ctr := counters.New(1)
	ConnectItBFS(g, Config{Ctr: ctr})
	edges := ctr.Total(counters.EdgesProcessed)
	if edges > 2*g.NumDirectedEdges() {
		t.Fatalf("ConnectIt-BFS processed %d of %d slots", edges, g.NumDirectedEdges())
	}
}
