// Package goroleak defines a thriftyvet analyzer keeping goroutine
// creation auditable: internal/parallel owns structured concurrency (its
// workers join deterministically), so every `go` statement anywhere else
// is an unmanaged lifetime that must justify itself with a
//
//	//thrifty:goroutine <reason>
//
// directive — on the statement's line, the line directly above, or the
// enclosing function's doc comment. The reason documents who stops the
// goroutine and when (a context, a channel close, process exit), which is
// exactly the information a leak hunt needs and exactly what silently
// spawned goroutines lack.
package goroleak

import (
	"go/ast"
	"strings"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/directive"
	"thriftylp/internal/lint/lintutil"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "check that go statements outside internal/parallel document their lifecycle\n\n" +
		"Every `go` statement outside the structured-concurrency runtime must\n" +
		"carry //thrifty:goroutine <reason> naming its shutdown path; see\n" +
		"DESIGN.md §17.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if exemptPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) || lintutil.IsTestFile(pass.Fset, f.Package) {
			continue
		}
		lines := directive.FileLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, docCovered := directive.FromDoc(fd.Doc, directive.Goroutine)
			if docCovered {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := pass.Fset.Position(g.Pos()).Line
				if !directive.Covers(lines, directive.Goroutine, line, true) {
					pass.Reportf(g.Pos(), "go statement outside internal/parallel needs //thrifty:goroutine <reason> naming its shutdown path")
				}
				return true
			})
		}
	}
	return nil, nil
}

// exemptPkg reports whether the package is the structured-concurrency
// runtime itself, where goroutine lifetimes are the package's whole job.
func exemptPkg(path string) bool {
	path = strings.TrimSuffix(path, " [pkg.test]")
	return path == "parallel" || strings.HasSuffix(path, "/parallel")
}
