// Package dist is the shard scheduler: it drives N per-shard nodes
// (internal/shard.Node) — goroutine "nodes" today, a process boundary later
// — through the out-of-core connected-components pipeline:
//
//  1. Solve phase, sequential over shards: load one CSR slice, solve its
//     interior with the shared-memory Thrifty kernel at full parallelism,
//     extract the boundary lists, release the slice. At most one shard's
//     adjacency is resident at a time — this is what lets the pipeline run
//     graphs whose adjacency exceeds RAM, with the per-vertex label state
//     (a few bytes per vertex) as the only global footprint.
//  2. Exchange phase, parallel over nodes: rounds of compacted boundary
//     label exchange (delta-only emission, zero-convergence suppression,
//     varint delta encoding — see shard.Node.Emit) until no component's
//     label changes anywhere.
//
// Inboxes are double-buffered by round parity: while node i decodes and
// applies its round-r batches, node j is already encoding its round-r+1
// batches into the other buffer, so decode and emit overlap across nodes
// with no locks — slot (parity, dst, src) is written only by src and read
// only by dst, with the round barrier providing the happens-before edge.
package dist

import (
	"fmt"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/parallel"
	"thriftylp/internal/shard"
)

// Config parameterizes a sharded run.
type Config struct {
	// Shards is the shard count when partitioning an in-memory graph
	// (default 4); ignored by RunSource, where the source fixes it.
	Shards int
	// Pool supplies worker threads; nil selects parallel.Default(). The
	// solve phase hands the whole pool to one shard at a time; the exchange
	// phase spreads nodes across it.
	Pool *parallel.Pool
	// Stop, when non-nil, is polled between shard solves and at round
	// boundaries; once requested the run returns early with Canceled set.
	Stop *core.Stop
	// MaxRounds caps the exchange loop as a safety net; 0 means 2·|V|+16,
	// which no correct run can reach (labels strictly decrease).
	MaxRounds int
	// Faults, when non-nil, is forwarded to the interior Thrifty solves —
	// the kernel-level chaos policy.
	Faults *core.FaultPlan
	// ExchangeFault, when non-nil, is invoked by every node at the start of
	// each exchange round — the exchange-level chaos hook. It may block,
	// deschedule, or panic; panics surface to the caller as
	// *parallel.PanicError like any pool-job panic.
	ExchangeFault func(round, node int)
}

// RoundStats records one exchange round's traffic.
type RoundStats struct {
	// Bytes is the encoded batch bytes shipped this round.
	Bytes int64 `json:"bytes"`
	// NaiveBytes is what a naive full-boundary exchange would have shipped
	// this round: every boundary entry at 8 flat bytes, changed or not.
	NaiveBytes int64 `json:"naive_bytes"`
	// Pairs is the (vertex, label) pair count emitted this round.
	Pairs int64 `json:"pairs"`
	// Suppressed is the zero-convergence suppression count this round:
	// entries dropped because their target or addressee had already
	// converged to label 0.
	Suppressed int64 `json:"suppressed"`
}

// Result reports the outcome and the exchange cost model.
type Result struct {
	// Labels is the final component labelling: the hub's component
	// converges to 0, every other component to its minimum vertex id + 1 —
	// the same value space as the shared-memory Thrifty kernel.
	Labels []uint32
	// Rounds is the number of exchange rounds executed (the bootstrap
	// emission is round 1).
	Rounds int
	// LocalIterations sums the interior Thrifty solves' iteration counts.
	LocalIterations int
	// BoundaryEntries is the total deduplicated (component, target) entry
	// count across shards — the static cut size.
	BoundaryEntries int64
	// ExchangedBytes is the total encoded exchange traffic.
	ExchangedBytes int64
	// NaiveBytes is the naive full-boundary total over the same rounds.
	NaiveBytes int64
	// Pairs is the total emitted pair count.
	Pairs int64
	// SuppressedVertices is the total zero-convergence suppression count.
	SuppressedVertices int64
	// PerRound holds the per-round traffic breakdown.
	PerRound []RoundStats
	// Canceled reports that Stop fired before convergence; Labels then
	// holds intermediate state.
	Canceled bool
}

// Run partitions an in-memory graph into cfg.Shards edge-balanced shards
// and solves it with the sharded pipeline. The graph's adjacency is shared
// (shards are views), so this path measures the exchange algorithm without
// I/O; RunSource over a shard.Set is the out-of-core path.
func Run(g *graph.Graph, cfg Config) (Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	return RunSource(shard.NewGraphSource(g, cfg.Shards), cfg)
}

// RunSource solves the shard set provided by src.
func RunSource(src shard.Source, cfg Config) (Result, error) {
	n := src.Vertices()
	res := Result{Labels: make([]uint32, n)}
	if n == 0 {
		return res, nil
	}
	k := src.Shards()
	ranges := src.Ranges()
	hub := src.Hub()
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*n + 16
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parallel.Default()
	}
	solveCfg := core.Config{Pool: pool, Stop: cfg.Stop, Faults: cfg.Faults}

	// Solve phase: one shard resident at a time.
	nodes := make([]*shard.Node, k)
	for i := 0; i < k; i++ {
		if cfg.Stop.Requested() {
			res.Canceled = true
			return res, nil
		}
		sl, err := src.Slice(i)
		if err != nil {
			return res, err
		}
		node, canceled, err := shard.NewNode(i, sl, ranges, hub, solveCfg)
		if rerr := src.Release(sl); err == nil {
			err = rerr
		}
		if err != nil {
			return res, err
		}
		if canceled {
			res.Canceled = true
			return res, nil
		}
		nodes[i] = node
		res.LocalIterations += node.LocalIterations
		res.BoundaryEntries += node.BoundaryEntries
		node.Bootstrap()
	}

	// Exchange phase. inboxes[parity][dst][src] holds the batch src encoded
	// for dst in the round of that parity; see the package comment for the
	// ownership discipline that makes the buffers race-free.
	var inboxes [2][][][]byte
	for p := 0; p < 2; p++ {
		inboxes[p] = make([][][]byte, k)
		for d := range inboxes[p] {
			inboxes[p][d] = make([][]byte, k)
		}
	}
	perNode := make([]struct {
		bytes, pairs int64
		err          error
	}, k)

	for round := 0; round < maxRounds; round++ {
		if cfg.Stop.Requested() {
			res.Canceled = true
			return res, nil
		}
		p := round & 1
		parallel.For(pool, k, 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if cfg.ExchangeFault != nil {
					cfg.ExchangeFault(round, i)
				}
				st := &perNode[i]
				st.bytes, st.pairs, st.err = 0, 0, nil
				// Decode and apply this round's inbound batches...
				for s := 0; s < k; s++ {
					if b := inboxes[p][i][s]; b != nil {
						inboxes[p][i][s] = nil //thrifty:benign-race node i owns row [p][i] during its round
						if err := nodes[i].Apply(b); err != nil {
							st.err = err
							return
						}
					}
				}
				// ...then encode the next round's outbound ones.
				batches, pairs := nodes[i].Emit(k)
				for d := range batches {
					if batches[d] != nil {
						inboxes[1-p][d][i] = batches[d] //thrifty:benign-race node i owns column [1-p][*][i]; rows are read only next round
						st.bytes += int64(len(batches[d]))
					}
				}
				st.pairs = pairs
			}
		})
		var rs RoundStats
		var suppressed int64
		for i := range perNode {
			if perNode[i].err != nil {
				return res, perNode[i].err
			}
			rs.Bytes += perNode[i].bytes
			rs.Pairs += perNode[i].pairs
			suppressed += nodes[i].Suppressed
		}
		rs.Suppressed = suppressed - res.SuppressedVertices
		res.SuppressedVertices = suppressed
		rs.NaiveBytes = res.BoundaryEntries * shard.NaivePairBytes
		res.Rounds++
		res.PerRound = append(res.PerRound, rs)
		res.ExchangedBytes += rs.Bytes
		res.NaiveBytes += rs.NaiveBytes
		res.Pairs += rs.Pairs
		if rs.Bytes == 0 {
			break
		}
	}

	for _, node := range nodes {
		node.Labels(res.Labels)
	}
	return res, nil
}

// Validate sanity-checks a Config.
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("dist: negative shard count %d", c.Shards)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("dist: negative round cap %d", c.MaxRounds)
	}
	return nil
}
