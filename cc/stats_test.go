package cc_test

import (
	"testing"
	"time"

	"thriftylp/cc"
	"thriftylp/graph/gen"
)

// TestRunStatsAlwaysOn: every Run attaches RunStats, without requesting
// instrumentation — it is assembled from boundary bookkeeping only.
func TestRunStatsAlwaysOn(t *testing.T) {
	g, err := gen.RMATCompact(gen.DefaultRMAT(12, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoThrifty, g)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("Stats nil on uninstrumented run")
	}
	if st.Algorithm != cc.AlgoThrifty {
		t.Errorf("Algorithm = %q", st.Algorithm)
	}
	if st.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", st.Duration)
	}
	if st.Sched.PartitionsOwned+st.Sched.PartitionsStolen <= 0 {
		t.Errorf("no partitions scheduled: %+v", st.Sched)
	}
	if st.Events != nil {
		t.Errorf("Events = %v on uninstrumented run, want nil", st.Events)
	}
	if len(st.PhaseDurations) == 0 {
		t.Fatalf("no phase durations")
	}
	var sum time.Duration
	for kind, d := range st.PhaseDurations {
		if d < 0 {
			t.Errorf("phase %q duration %v < 0", kind, d)
		}
		sum += d
	}
	if sum > st.Duration {
		t.Errorf("phase durations sum %v exceeds run duration %v", sum, st.Duration)
	}
	if st.PhaseDuration("initial-push") <= 0 {
		t.Errorf("Thrifty run has no initial-push phase time: %v", st.PhaseDurations)
	}
	// Nil receiver is safe (hand-constructed Results have no stats).
	var nilStats *cc.RunStats
	if nilStats.PhaseDuration("pull") != 0 {
		t.Errorf("nil PhaseDuration != 0")
	}
}

// TestRunStatsEventsMatchInstrumentation: on an instrumented run the same
// event totals are reachable through both surfaces.
func TestRunStatsEventsMatchInstrumentation(t *testing.T) {
	g, err := gen.RMATCompact(gen.DefaultRMAT(11, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	inst := &cc.Instrumentation{}
	res, err := cc.Run(cc.AlgoThrifty, g, cc.WithInstrumentation(inst))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Events == nil {
		t.Fatal("instrumented run has no Stats.Events")
	}
	if res.Stats.Events["edges"] != inst.Events["edges"] || inst.Events["edges"] <= 0 {
		t.Errorf("Stats.Events edges = %d, Instrumentation says %d",
			res.Stats.Events["edges"], inst.Events["edges"])
	}
	// Iteration records carry the direction-decision inputs.
	for i, it := range inst.Iterations {
		if it.Threshold <= 0 {
			t.Errorf("iteration %d has no threshold: %+v", i, it)
		}
		if i > 0 && it.ActiveEdges <= 0 && it.Active > 0 {
			t.Errorf("iteration %d active=%d but active_edges=%d", i, it.Active, it.ActiveEdges)
		}
	}
}

// TestRunStatsUnionFind: union-find algorithms report scheduler stats but no
// phase map.
func TestRunStatsUnionFind(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Run(cc.AlgoAfforest, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("Stats nil")
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("Duration = %v", res.Stats.Duration)
	}
}
