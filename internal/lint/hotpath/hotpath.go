// Package hotpath implements the thriftyvet analyzer that keeps annotated
// traversal kernels allocation-free.
//
// The zero-cost instrumentation design (DESIGN.md §8) only stays zero-cost
// if the per-edge/per-vertex loops compile to bare traversals: one heap
// allocation, boxing conversion, or fmt call inside them costs more than the
// instrumentation the policy split removed. Functions annotated
// //thrifty:hotpath therefore may not contain:
//
//   - calls to the allocating builtins append, make, new
//   - map operations of any kind (index, assignment, range, delete,
//     literals) — map access hashes and may allocate
//   - closures created inside loops (a FuncLit per iteration escapes)
//   - conversions of concrete values to interface types (boxing), whether
//     explicit, at call sites, in assignments, or at returns
//   - calls into package fmt
//
// The analyzer checks the annotated function's entire lexical body,
// including nested function literals (worker bodies).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"thriftylp/internal/lint/analysis"
	"thriftylp/internal/lint/directive"
	"thriftylp/internal/lint/lintutil"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject allocations, map ops, boxing and fmt calls in //thrifty:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if lintutil.InGOROOT(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := directive.FromDoc(fd.Doc, directive.Hotpath); !ok {
				continue
			}
			c := &checker{pass: pass, fname: fd.Name.Name}
			c.check(fd.Body, 0)
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	fname string
}

// check walks a statement tree; loopDepth counts enclosing for/range
// statements so closures allocated per iteration can be distinguished from
// once-per-call worker bodies.
func (c *checker) check(n ast.Node, loopDepth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			c.checkParts(loopDepth, n.Init, n.Cond, n.Post)
			c.check(n.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			c.rangeExpr(n)
			c.checkParts(loopDepth, n.Key, n.Value, n.X)
			c.check(n.Body, loopDepth+1)
			return false
		case *ast.FuncLit:
			if loopDepth > 0 {
				c.reportf(n.Pos(), "closure created inside a loop in //thrifty:hotpath function %s (allocates per iteration)", c.fname)
			}
			// The literal's body is still hot code: keep walking at its own
			// loop depth.
			c.check(n.Body, 0)
			return false
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			if t := c.typeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.reportf(n.Pos(), "map literal in //thrifty:hotpath function %s", c.fname)
				}
			}
		case *ast.IndexExpr:
			if t := c.typeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.reportf(n.Pos(), "map access in //thrifty:hotpath function %s", c.fname)
				}
			}
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ValueSpec:
			c.valueSpec(n)
		}
		return true
	})
}

// checkParts walks loop header sub-nodes at the surrounding depth.
func (c *checker) checkParts(loopDepth int, nodes ...ast.Node) {
	for _, n := range nodes {
		switch v := n.(type) {
		case nil:
		case ast.Expr:
			if v != nil {
				c.check(v, loopDepth)
			}
		case ast.Stmt:
			if v != nil {
				c.check(v, loopDepth)
			}
		}
	}
}

func (c *checker) rangeExpr(n *ast.RangeStmt) {
	if t := c.typeOf(n.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			c.reportf(n.Pos(), "range over map in //thrifty:hotpath function %s", c.fname)
		}
	}
}

func (c *checker) call(call *ast.CallExpr) {
	// Builtins and conversions first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				c.reportf(call.Pos(), "call to %s allocates in //thrifty:hotpath function %s", b.Name(), c.fname)
			case "delete":
				c.reportf(call.Pos(), "map delete in //thrifty:hotpath function %s", c.fname)
			}
			return
		}
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion T(x).
		if isBoxing(tv.Type, c.typeOf(call.Args[0])) {
			c.reportf(call.Pos(), "conversion to interface %s in //thrifty:hotpath function %s (boxes)", tv.Type, c.fname)
		}
		return
	}
	if fn := lintutil.CalleeFunc(c.pass.TypesInfo, call); fn != nil {
		if lintutil.FuncPkgPath(fn) == "fmt" {
			c.reportf(call.Pos(), "call to fmt.%s in //thrifty:hotpath function %s", fn.Name(), c.fname)
		}
	}
	// Implicit boxing of arguments at interface-typed parameters.
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if isBoxing(pt, c.typeOf(arg)) {
			c.reportf(arg.Pos(), "argument boxed into interface %s in //thrifty:hotpath function %s", pt, c.fname)
		}
	}
}

func (c *checker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := c.typeOf(lhs)
		if isBoxing(lt, c.typeOf(n.Rhs[i])) {
			c.reportf(n.Rhs[i].Pos(), "value boxed into interface %s in //thrifty:hotpath function %s", lt, c.fname)
		}
	}
}

func (c *checker) valueSpec(n *ast.ValueSpec) {
	if n.Type == nil || len(n.Values) == 0 {
		return
	}
	lt := c.typeOf(n.Type)
	for _, v := range n.Values {
		if isBoxing(lt, c.typeOf(v)) {
			c.reportf(v.Pos(), "value boxed into interface %s in //thrifty:hotpath function %s", lt, c.fname)
		}
	}
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return c.pass.TypesInfo.TypeOf(e)
}

// isBoxing reports whether assigning a value of type src to a destination of
// type dst converts a concrete value to an interface (a heap-boxing
// conversion). Type parameters are excluded: the instrumentation hooks take
// type-parameter operands precisely so that the zero-size fast path
// monomorphizes away.
func isBoxing(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, isTP := dst.(*types.TypeParam); isTP {
		return false
	}
	if !types.IsInterface(dst) {
		return false
	}
	if types.IsInterface(src) {
		return false
	}
	if _, isTP := src.(*types.TypeParam); isTP {
		return false
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}
