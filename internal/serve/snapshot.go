// Package serve is the long-lived connectivity query layer behind
// cmd/thriftyd: an immutable refcounted Snapshot of one solved graph, a
// Source that swaps snapshots atomically on hot reload, an admission-
// controlled HTTP query server, and the reload machinery that validates and
// fully recomputes a replacement graph off to the side before it ever
// becomes visible.
//
// The package exists to make mmap lifetime safe under concurrency. A mapped
// graph.Graph dies at Close — see the ownership contract in
// graph/zerocopy.go — and a reloading server wants to Close the old graph
// while queries may still be reading it. Snapshot is the reference-counting
// layer that contract demands: queries acquire, read, release; the munmap
// fires on the last release after the snapshot has been retired, never
// under an in-flight reader.
package serve

import (
	"fmt"
	"time"

	"thriftylp/cc"
	"thriftylp/graph"
	"thriftylp/internal/atomicx"
)

// Snapshot is one immutable solved graph: the CSR, the component labels,
// the run's telemetry, and the precomputed census every query endpoint
// reads. Snapshots are never mutated after construction; all sharing is
// governed by the reference count.
//
// Lifecycle: NewSnapshot returns the snapshot holding one reference — the
// creator's, which a Source takes over on Publish/Swap. Readers add
// references via Source.Acquire and drop them with Release. When the last
// reference goes, the underlying graph is closed (for mapped graphs: the
// munmap). A snapshot whose count has reached zero is dead and can never be
// re-acquired.
type Snapshot struct {
	// Graph is the solved CSR. Mapped graphs alias kernel pages; their
	// lifetime is exactly this snapshot's reference count.
	Graph *graph.Graph
	// Result is the connected-components run the labels came from. Labels
	// are Result.Labels; Stats carries the solve telemetry.
	Result cc.Result
	// Ingest carries the load/build phase timings of this snapshot's
	// ingestion, nil for generated graphs.
	Ingest *graph.IngestStats
	// Path is the file the graph was loaded from (provenance for /census
	// and logs; empty for handed-in graphs).
	Path string
	// Phases is the ingest/validate/solve wall-time split of this
	// snapshot's construction (zero for handed-in graphs); the reload span
	// record is built from it.
	Phases LoadPhases
	// Loaded is when the snapshot became ready (construction time).
	Loaded time.Time

	// sizes is the precomputed component census: label → vertex count.
	// Computed once at construction so size/census queries are O(1)/O(k)
	// map reads, never an O(|V|) scan under a request deadline.
	sizes map[uint32]int64
	// largestLabel/largestSize cache the giant component.
	largestLabel uint32
	largestSize  int64

	// refs is the reference count: one for the owner (creator, then the
	// Source while the snapshot is current) plus one per in-flight reader.
	// The transition to zero is the point of no return: exactly one
	// releaser observes it and closes the graph.
	refs atomicx.Int64
}

// NewSnapshot wraps a solved graph into a snapshot holding one (owner)
// reference. It precomputes the component census; for serving-sized graphs
// this is one O(|V|) pass paid at load time, off the query path.
func NewSnapshot(g *graph.Graph, res cc.Result, path string, ist *graph.IngestStats) *Snapshot {
	s := &Snapshot{
		Graph:  g,
		Result: res,
		Ingest: ist,
		Path:   path,
		Loaded: time.Now(),
		sizes:  res.ComponentSizes(),
	}
	for l, n := range s.sizes {
		if n > s.largestSize || (n == s.largestSize && l < s.largestLabel) {
			s.largestLabel, s.largestSize = l, n
		}
	}
	s.refs.Store(1)
	return s
}

// NumVertices returns the snapshot graph's vertex count.
func (s *Snapshot) NumVertices() int { return len(s.Result.Labels) }

// ComponentOf returns v's component label. The caller must hold a
// reference and have bounds-checked v.
func (s *Snapshot) ComponentOf(v uint32) uint32 { return s.Result.Labels[v] }

// SizeOf returns the vertex count of component label c (0 when c labels no
// component).
func (s *Snapshot) SizeOf(c uint32) int64 { return s.sizes[c] }

// NumComponents returns the component count.
func (s *Snapshot) NumComponents() int { return len(s.sizes) }

// Largest returns the label and size of the largest component.
func (s *Snapshot) Largest() (label uint32, size int64) {
	return s.largestLabel, s.largestSize
}

// Refs returns the current reference count (diagnostics and tests; the
// value is stale the moment it is read).
func (s *Snapshot) Refs() int64 { return s.refs.Load() }

// tryRef adds a reference unless the snapshot is already dead (count zero).
// The CAS loop makes acquire-vs-death race-free: a reader that loaded the
// snapshot pointer just before a swap retired it either wins the CAS while
// the count is still positive (and then owns a valid reference — the close
// cannot have happened) or observes zero and reports failure.
func (s *Snapshot) tryRef() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference. The caller's right to touch the snapshot —
// including any slice read out of its graph — ends at this call. The last
// release closes the graph; for mapped graphs that is the munmap, so the
// refcount discipline is precisely what keeps Close from firing under a
// reader (the use-after-close detection in package graph backstops it).
func (s *Snapshot) Release() {
	n := s.refs.Add(-1)
	switch {
	case n == 0:
		// Last reference out: exactly one releaser gets n==0.
		_ = s.Graph.Close()
	case n < 0:
		panic(fmt.Sprintf("serve: snapshot over-released (refs %d)", n))
	}
}

// Source is the atomically-swappable holder of the current snapshot: the
// one mutable cell of the serving path. Readers Acquire, the reloader
// Publishes, shutdown Retires. All methods are safe for concurrent use and
// the read path is lock-free (one pointer load + one CAS in the common
// case).
type Source struct {
	cur atomicx.Pointer[Snapshot]
	// swaps counts successful Publish calls (metrics).
	swaps atomicx.Int64
}

// Acquire returns the current snapshot with a reference added, or nil when
// no snapshot is published (before the initial load, or after Retire). The
// caller must Release exactly once.
//
// The retry loop covers the acquire-vs-swap race: if the snapshot read from
// the pointer dies (swap retired it and the last reference drained) between
// the load and the refcount CAS, tryRef fails and the loop re-reads the
// pointer — which now holds the successor. Progress is guaranteed: a failed
// iteration implies a completed swap, and swaps are rare.
func (s *Source) Acquire() *Snapshot {
	for {
		sn := s.cur.Load()
		if sn == nil {
			return nil
		}
		if sn.tryRef() {
			return sn
		}
	}
}

// Current returns the current snapshot without taking a reference. For
// health/metrics peeks only — the pointer may be retired at any moment, so
// callers must not touch Graph through it.
func (s *Source) Current() *Snapshot { return s.cur.Load() }

// Publish makes next the current snapshot, taking over its owner
// reference, and retires the previous one (dropping the owner reference it
// held; the old graph closes once its last in-flight reader releases).
// next must hold an unshared owner reference, i.e. come straight from
// NewSnapshot.
func (s *Source) Publish(next *Snapshot) {
	old := s.cur.Swap(next)
	s.swaps.Add(1)
	if old != nil {
		old.Release()
	}
}

// Retire unpublishes the current snapshot (Acquire returns nil afterwards)
// and drops the owner reference, closing the graph once in-flight readers
// drain. Used on shutdown, after the HTTP server has stopped accepting.
func (s *Source) Retire() {
	if old := s.cur.Swap(nil); old != nil {
		old.Release()
	}
}

// Swaps returns the number of Publish calls (metrics).
func (s *Source) Swaps() int64 { return s.swaps.Load() }
