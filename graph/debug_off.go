//go:build !thriftydebug

package graph

// debugClosedChecks gates the use-after-close checks in the hot accessors
// (Degree, Neighbors, Offsets, Adjacency). It is a build-tag constant so the
// release build compiles the checks out entirely — the kernels call these
// accessors per vertex, and even a predictable load+branch is budget the hot
// path does not have. Build with -tags thriftydebug to turn the checks on.
const debugClosedChecks = false
