// Package atomicx provides small lock-free helpers used by the concurrent
// connected-components algorithms, most importantly the atomic-min operation
// that Label Propagation uses to merge labels (Algorithm 1, line 10 of the
// Thrifty paper) and the write-min operation union-find algorithms use for
// hooking.
//
// All helpers operate on plain integer slices through unsafe-free
// sync/atomic pointer casts: the caller guarantees the element is only
// accessed through this package (or is otherwise data-race free).
package atomicx

import "sync/atomic"

// MinUint32 atomically sets *addr to min(*addr, val) and reports whether the
// stored value was lowered. It implements the paper's atomic_min(): a
// compare-and-swap loop that retries while the current value is larger than
// val and another writer intervenes.
func MinUint32(addr *uint32, val uint32) bool {
	for {
		cur := atomic.LoadUint32(addr)
		if cur <= val {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, cur, val) {
			return true
		}
	}
}

// MinUint64 is MinUint32 for 64-bit labels.
func MinUint64(addr *uint64, val uint64) bool {
	for {
		cur := atomic.LoadUint64(addr)
		if cur <= val {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, cur, val) {
			return true
		}
	}
}

// MaxUint32 atomically sets *addr to max(*addr, val) and reports whether the
// stored value was raised.
func MaxUint32(addr *uint32, val uint32) bool {
	for {
		cur := atomic.LoadUint32(addr)
		if cur >= val {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, cur, val) {
			return true
		}
	}
}

// MaxInt64 atomically sets *addr to max(*addr, val) and reports whether the
// stored value was raised.
func MaxInt64(addr *int64, val int64) bool {
	for {
		cur := atomic.LoadInt64(addr)
		if cur >= val {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, cur, val) {
			return true
		}
	}
}

// LoadUint32 is a convenience re-export so callers of this package do not
// need to also import sync/atomic for the common load/store pair.
func LoadUint32(addr *uint32) uint32 { return atomic.LoadUint32(addr) }

// StoreUint32 is the matching atomic store re-export.
func StoreUint32(addr *uint32, val uint32) { atomic.StoreUint32(addr, val) }

// AddInt64 atomically adds delta to *addr and returns the new value.
func AddInt64(addr *int64, delta int64) int64 { return atomic.AddInt64(addr, delta) }

// AddUint32 atomically adds delta to *addr and returns the new value (the
// streamed shard builder's degree counters and row cursors).
func AddUint32(addr *uint32, delta uint32) uint32 { return atomic.AddUint32(addr, delta) }

// CASUint32 is a thin re-export of CompareAndSwapUint32, used by the
// union-find hooking loops where the retry policy differs from MinUint32.
func CASUint32(addr *uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(addr, old, new)
}

// The remaining declarations re-export the sync/atomic surface the rest of
// the repository needs, so that every atomic access outside this package
// routes through atomicx. The benignrace analyzer (internal/lint/benignrace)
// enforces the routing: a direct sync/atomic import anywhere else in the
// module is a lint error. Funneling atomics through one package keeps the
// intentionally non-atomic regions (//thrifty:benign-race) the only accesses
// that bypass it, so "uses atomicx" vs "annotated benign race" partitions
// every shared-memory access in the codebase.

// LoadInt64 and StoreInt64 are sync/atomic re-exports for int64 counters.
func LoadInt64(addr *int64) int64       { return atomic.LoadInt64(addr) }
func StoreInt64(addr *int64, val int64) { atomic.StoreInt64(addr, val) }

// LoadUint64 and StoreUint64 are sync/atomic re-exports for uint64 words
// (bitmap words, cache-line sets).
func LoadUint64(addr *uint64) uint64       { return atomic.LoadUint64(addr) }
func StoreUint64(addr *uint64, val uint64) { atomic.StoreUint64(addr, val) }

// LoadInt32 and StoreInt32 are sync/atomic re-exports for int32 claim flags.
func LoadInt32(addr *int32) int32       { return atomic.LoadInt32(addr) }
func StoreInt32(addr *int32, val int32) { atomic.StoreInt32(addr, val) }

// CASInt32, CASInt64 and CASUint64 re-export the CompareAndSwap family for
// the claim/scatter/line-tracking loops whose retry policies live at the
// call site.
func CASInt32(addr *int32, old, new int32) bool {
	return atomic.CompareAndSwapInt32(addr, old, new)
}

func CASInt64(addr *int64, old, new int64) bool {
	return atomic.CompareAndSwapInt64(addr, old, new)
}

func CASUint64(addr *uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(addr, old, new)
}

// Int32, Int64, Uint64 and Bool alias the sync/atomic struct types so
// value-style atomics also route through this package. Aliases (not
// definitions) keep method sets and zero-value semantics identical.
type (
	Int32  = atomic.Int32
	Int64  = atomic.Int64
	Uint64 = atomic.Uint64
	Bool   = atomic.Bool
)

// Pointer is a typed atomic pointer routed through this package. It wraps
// sync/atomic.Pointer rather than aliasing it because generic type aliases
// are not available at this module's language version; the method set is the
// same. The zero value holds nil.
type Pointer[T any] struct{ p atomic.Pointer[T] }

// Load returns the current pointer.
func (p *Pointer[T]) Load() *T { return p.p.Load() }

// Store sets the pointer to v.
func (p *Pointer[T]) Store(v *T) { p.p.Store(v) }

// Swap sets the pointer to v and returns the previous value.
func (p *Pointer[T]) Swap(v *T) *T { return p.p.Swap(v) }

// CompareAndSwap executes the compare-and-swap operation on the pointer.
func (p *Pointer[T]) CompareAndSwap(old, new *T) bool { return p.p.CompareAndSwap(old, new) }
