package cc

import (
	"fmt"

	"thriftylp/graph"
	"thriftylp/internal/core"
	"thriftylp/internal/counters"
	"thriftylp/internal/parallel"
)

// Result is the outcome of a connected-components run.
type Result struct {
	// Labels assigns every vertex its component label. Label value spaces
	// differ per algorithm; use Normalize or Equivalent for comparisons.
	Labels []uint32
	// Iterations is the number of iterations (graph passes for union-find
	// algorithms, BFS levels for BFS-CC; Thrifty counts the initial push).
	Iterations int
	// PushIterations and PullIterations decompose label-propagation runs.
	PushIterations, PullIterations int

	numComponents int // lazily computed; 0 = unknown (valid graphs with 0 vertices have 0 components)
}

// NumComponents returns the number of connected components, computed on
// first call.
func (r *Result) NumComponents() int {
	if r.numComponents == 0 && len(r.Labels) > 0 {
		seen := make(map[uint32]struct{}, 64)
		for _, l := range r.Labels {
			seen[l] = struct{}{}
		}
		r.numComponents = len(seen)
	}
	return r.numComponents
}

// ComponentOf returns v's component label.
func (r *Result) ComponentOf(v uint32) uint32 { return r.Labels[v] }

// SameComponent reports whether u and v are connected.
func (r *Result) SameComponent(u, v uint32) bool { return r.Labels[u] == r.Labels[v] }

// ComponentSizes returns a map from component label to vertex count.
func (r *Result) ComponentSizes() map[uint32]int64 {
	sizes := make(map[uint32]int64, 64)
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// LargestComponent returns the label and size of the largest component.
// On an empty graph it returns (0, 0).
func (r *Result) LargestComponent() (label uint32, size int64) {
	for l, s := range r.ComponentSizes() {
		if s > size || (s == size && l < label) {
			label, size = l, s
		}
	}
	return
}

// run dispatches to the internal implementation.
func run(a Algorithm, g *graph.Graph, o *options) (core.Result, error) {
	switch a {
	case AlgoThrifty:
		return core.Thrifty(g, o.cfg), nil
	case AlgoDOLP:
		return core.DOLP(g, o.cfg), nil
	case AlgoDOLPUnified:
		return core.DOLPUnified(g, o.cfg), nil
	case AlgoLP:
		return core.LP(g, o.cfg), nil
	case AlgoSV:
		return core.ShiloachVishkin(g, o.cfg), nil
	case AlgoAfforest:
		return core.Afforest(g, o.cfg), nil
	case AlgoJayantiT:
		return core.JayantiTarjan(g, o.cfg), nil
	case AlgoBFSCC:
		return core.BFSCC(g, o.cfg), nil
	case AlgoFastSV:
		return core.FastSV(g, o.cfg), nil
	case AlgoConnectItKOut:
		return core.ConnectItKOut(g, o.cfg), nil
	case AlgoConnectItBFS:
		return core.ConnectItBFS(g, o.cfg), nil
	default:
		return core.Result{}, fmt.Errorf("cc: unknown algorithm %q", a)
	}
}

// Run executes algorithm a on g and returns its Result.
func Run(a Algorithm, g *graph.Graph, opts ...Option) (Result, error) {
	o := &options{}
	for _, opt := range opts {
		opt(o)
	}
	if o.pool != nil {
		o.cfg.Pool = o.pool
		defer func() {
			if o.ownPool {
				o.pool.Close()
			}
		}()
	}
	if o.inst != nil {
		pool := o.cfg.Pool
		if pool == nil {
			pool = parallel.Default()
		}
		o.cfg.Ctr = counters.New(pool.Threads())
		o.cfg.Lines = counters.NewLineTracker(g.NumVertices())
		tr := &counters.Trace{}
		if o.inst.OnIteration != nil {
			cb := o.inst.OnIteration
			tr.OnIteration = func(rec counters.IterRecord, labels []uint32) {
				cb(toIterStats(rec), labels)
			}
		}
		o.cfg.Trace = tr
	}

	cres, err := run(a, g, o)
	if err != nil {
		return Result{}, err
	}

	if o.inst != nil {
		o.inst.Events = make(map[string]int64)
		for _, e := range counters.Events() {
			o.inst.Events[e.String()] = o.cfg.Ctr.Total(e)
		}
		o.inst.Iterations = o.inst.Iterations[:0]
		for _, rec := range o.cfg.Trace.Iters {
			o.inst.Iterations = append(o.inst.Iterations, toIterStats(rec))
		}
	}

	return Result{
		Labels:         cres.Labels,
		Iterations:     cres.Iterations,
		PushIterations: cres.PushIterations,
		PullIterations: cres.PullIterations,
	}, nil
}

func toIterStats(rec counters.IterRecord) IterationStats {
	return IterationStats{
		Index:         rec.Index,
		Kind:          string(rec.Kind),
		Active:        rec.Active,
		Changed:       rec.Changed,
		ConvergedZero: rec.Zero,
		Edges:         rec.Edges,
		Density:       rec.Density,
		Duration:      rec.Duration,
	}
}

// Thrifty runs Thrifty Label Propagation (the paper's Algorithm 2).
func Thrifty(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoThrifty, g, opts) }

// DOLP runs Direction-Optimizing Label Propagation (Algorithm 1).
func DOLP(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoDOLP, g, opts) }

// DOLPUnified runs the DO-LP + Unified Labels Array ablation variant.
func DOLPUnified(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoDOLPUnified, g, opts) }

// LP runs textbook synchronous Label Propagation.
func LP(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoLP, g, opts) }

// ShiloachVishkin runs the Shiloach-Vishkin CC algorithm.
func ShiloachVishkin(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoSV, g, opts) }

// Afforest runs the sampling-based Afforest CC algorithm.
func Afforest(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoAfforest, g, opts) }

// JayantiTarjan runs the Jayanti-Tarjan concurrent union-find CC.
func JayantiTarjan(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoJayantiT, g, opts) }

// BFSCC runs direction-optimizing BFS-based CC.
func BFSCC(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoBFSCC, g, opts) }

// FastSV runs the FastSV min-hooking CC algorithm.
func FastSV(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoFastSV, g, opts) }

// ConnectItKOut runs the ConnectIt-style k-out-sampling + union-find CC.
func ConnectItKOut(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoConnectItKOut, g, opts) }

// ConnectItBFS runs the ConnectIt-style BFS-sampling + union-find CC.
func ConnectItBFS(g *graph.Graph, opts ...Option) Result { return mustRun(AlgoConnectItBFS, g, opts) }

func mustRun(a Algorithm, g *graph.Graph, opts []Option) Result {
	r, err := Run(a, g, opts...)
	if err != nil {
		panic(err) // unreachable: a is always a known constant here
	}
	return r
}
